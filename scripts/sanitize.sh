#!/usr/bin/env bash
# Build and run the parallel-execution test suite under a sanitizer.
#
# Usage:
#   scripts/sanitize.sh [thread|address|undefined]
#
# Defaults to ThreadSanitizer, which is the interesting one for the
# ursa::exec layer: the per-unit ownership model (each parallel index
# owns its own Cluster) means the pool itself is the only shared
# mutable state, and TSan over these tests exercises every
# synchronization edge in src/exec/thread_pool.cc plus the parallel
# callers in src/core/explorer.cc and bench/common.cc.
#
# The sanitized tree lives in build-<sanitizer>/ so it never disturbs
# the primary build/ directory.

set -euo pipefail

SAN="${1:-thread}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-$SAN"

cmake -B "$BUILD" -S "$ROOT" -DURSA_SANITIZE="$SAN" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo

# The parallel paths and the kernel they drive. test_bench_grid_*
# is the heaviest; keep it last so the cheap ones fail fast.
TARGETS=(
    test_exec_thread_pool
    test_sim_event_queue
    test_core_parallel_determinism
    test_bench_grid_determinism
)

cmake --build "$BUILD" -j "$(nproc)" --target "${TARGETS[@]}"

for t in "${TARGETS[@]}"; do
    echo "== $SAN :: $t =="
    "$BUILD/tests/$t"
done

echo "All sanitizer ($SAN) runs passed."
