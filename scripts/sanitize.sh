#!/usr/bin/env bash
# Build and run the parallel-execution test suite under sanitizers.
#
# Usage:
#   scripts/sanitize.sh [all|thread|address|undefined]...
#
# With no argument (or `all`) every sanitizer runs in one invocation:
# thread, then address, then undefined. Each sanitizer gets its own
# build tree (build-<sanitizer>/) so none disturbs the primary build/
# directory. A failure in any leg does NOT stop the remaining legs;
# the script prints a per-leg summary and exits nonzero if ANY leg
# failed, so CI can call it directly.
#
# ThreadSanitizer is the interesting one for the ursa::exec layer: the
# per-unit ownership model (each parallel index owns its own Cluster)
# means the pool itself is the only shared mutable state, and TSan over
# these tests exercises every synchronization edge in
# src/exec/thread_pool.cc plus the parallel callers in
# src/core/explorer.cc and bench/common.cc. TSan legs run with
# URSA_THREADS=8 (overridable) to force real contention.

set -uo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

# The parallel paths and the kernel they drive, plus the check-layer
# and pool suites (freelist headers + invariant audits are exactly the
# code sanitizers should see). test_bench_grid_determinism is the
# heaviest; keep it last so the cheap ones fail fast.
TARGETS=(
    test_exec_thread_pool
    test_sim_event_queue
    test_sim_pool
    test_check
    test_core_parallel_determinism
    test_bench_grid_determinism
)

if [ "$#" -eq 0 ] || [ "$1" = "all" ]; then
    SANITIZERS=(thread address undefined)
else
    SANITIZERS=("$@")
fi

declare -A RESULT
rc=0

for SAN in "${SANITIZERS[@]}"; do
    BUILD="$ROOT/build-$SAN"
    echo "==== sanitizer: $SAN (build tree: $BUILD) ===="
    leg_rc=0

    if ! cmake -B "$BUILD" -S "$ROOT" -DURSA_SANITIZE="$SAN" \
            -DCMAKE_BUILD_TYPE=RelWithDebInfo; then
        leg_rc=1
    elif ! cmake --build "$BUILD" -j "$(nproc)" --target "${TARGETS[@]}"
    then
        leg_rc=1
    else
        for t in "${TARGETS[@]}"; do
            echo "== $SAN :: $t =="
            if [ "$SAN" = "thread" ]; then
                URSA_THREADS="${URSA_THREADS:-8}" "$BUILD/tests/$t" ||
                    leg_rc=1
            else
                "$BUILD/tests/$t" || leg_rc=1
            fi
        done
    fi

    RESULT[$SAN]=$leg_rc
    [ "$leg_rc" -ne 0 ] && rc=1
done

echo "==== sanitizer summary ===="
for SAN in "${SANITIZERS[@]}"; do
    if [ "${RESULT[$SAN]}" -eq 0 ]; then
        echo "  $SAN: PASS"
    else
        echo "  $SAN: FAIL"
    fi
done

exit "$rc"
