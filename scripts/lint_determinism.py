#!/usr/bin/env python3
"""Project lint banning nondeterminism and hygiene hazards in src/.

Ursa's evaluation rests on the simulator being bit-deterministic for a
(topology, workload, seed) triple — across thread counts, platforms and
reruns. This lint mechanically bans the patterns that historically break
that property, plus assertion hygiene now that the tree uses the
ursa::check layer:

  wall-clock       std::chrono::{system,steady,high_resolution}_clock or
                   C time() in the deterministic layers (src/sim,
                   src/core, src/stats, src/workload). Simulated time
                   comes from the event queue; wall time may only be
                   used for explicitly-annotated overhead measurement
                   (the paper's Table 6 control-plane numbers).
  raw-rand         rand()/srand()/std::random_device/std::mt19937 and
                   friends anywhere outside src/stats/rng.* — every
                   stochastic draw must flow through the seeded
                   ursa::stats::Rng.
  unordered-sim    std::unordered_{map,set} anywhere in src/sim or
                   src/trace: hash iteration order is implementation-
                   defined; kernel-side iteration can feed event
                   scheduling, and trace snapshots/exports are part of
                   the bit-identical determinism contract.
  unordered-sched  elsewhere in src/: iterating an unordered container
                   in a file that also schedules simulation events
                   (schedule/scheduleIn/submit/invoke/publish calls).
  bare-assert      assert( outside src/check/ — migrated invariants
                   must use URSA_CHECK so they stay active in Release
                   builds and carry a component tag.

Suppression: append `// ursa-lint: allow(<rule>)` to the offending line
(or place it on the line directly above) with a reason.

Exit status: 0 when clean, 1 when any violation is found, 2 on usage
errors. Registered as the `lint_determinism` ctest; the `--self-test`
mode lints embedded bait snippets and fails if any rule does NOT fire,
so the lint cannot silently rot.
"""

import argparse
import re
import sys
from pathlib import Path

SOURCE_GLOBS = ("*.h", "*.cc", "*.cpp", "*.hpp")

ALLOW_RE = re.compile(r"//\s*ursa-lint:\s*allow\(([a-z0-9_,\s-]+)\)")

WALL_CLOCK_RE = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"
    r"|(?<![A-Za-z0-9_])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
)
RAW_RAND_RE = re.compile(
    r"(?<![A-Za-z0-9_])(?:rand|srand)\s*\("
    r"|\brandom_device\b|\bmt19937(?:_64)?\b"
    r"|\buniform_(?:int|real)_distribution\b"
)
UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s*"
    r"(?:&\s*)?(\w+)\s*[;={(]"
)
UNORDERED_USE_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b")
SCHED_RE = re.compile(
    r"\b(?:schedule|scheduleIn|submit|invoke|publish|publishTo)\s*\("
)
BARE_ASSERT_RE = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")

# Deterministic layers where wall clocks are banned. Baselines and the
# exec thread pool legitimately measure wall time (controller inference
# cost is itself an evaluated quantity).
WALL_CLOCK_SCOPES = ("sim", "core", "stats", "workload", "trace")

# Layers whose containers must iterate deterministically: the sim
# kernel schedules events off them, and the trace layer's span
# snapshots/exports must be byte-identical across runs.
UNORDERED_SCOPES = ("sim", "trace")


def strip_comments_and_strings(line, in_block):
    """Blank out string/char literals and comments, preserving column
    positions. Returns (scrubbed_line, in_block_after)."""
    out = []
    i, n = 0, len(line)
    state = "block" if in_block else "code"
    while i < n:
        ch = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                out.append(" " * (n - i))
                i = n
            elif ch == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
            elif ch == '"':
                state = "str"
                out.append(" ")
                i += 1
            elif ch == "'":
                state = "chr"
                out.append(" ")
                i += 1
            else:
                out.append(ch)
                i += 1
        elif state == "block":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(" ")
                i += 1
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if ch == "\\":
                out.append("  ")
                i += 2
            elif ch == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out), state == "block"


class Violation:
    def __init__(self, path, line_no, rule, text):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.text = text

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.text}"


def allowed_rules(raw_line, prev_raw_line):
    rules = set()
    for source in (raw_line, prev_raw_line):
        if source is None:
            continue
        m = ALLOW_RE.search(source)
        if m:
            rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def top_dir(rel_path):
    parts = rel_path.parts
    return parts[0] if len(parts) > 1 else ""


def lint_file(path, rel_path, text):
    violations = []
    raw_lines = text.splitlines()
    scrubbed = []
    in_block = False
    for raw in raw_lines:
        s, in_block = strip_comments_and_strings(raw, in_block)
        scrubbed.append(s)

    scope = top_dir(rel_path)
    in_rng = scope == "stats" and rel_path.name.startswith("rng.")
    in_check = scope == "check"
    schedules = any(SCHED_RE.search(s) for s in scrubbed)

    unordered_names = set()
    for s in scrubbed:
        for m in UNORDERED_DECL_RE.finditer(s):
            unordered_names.add(m.group(1))
    iter_re = (
        re.compile(
            r"for\s*\([^;)]*:\s*(?:\w+\.)*(%s)\s*\)"
            % "|".join(re.escape(n) for n in sorted(unordered_names))
        )
        if unordered_names
        else None
    )

    for idx, s in enumerate(scrubbed):
        raw = raw_lines[idx]
        prev_raw = raw_lines[idx - 1] if idx > 0 else None
        allow = allowed_rules(raw, prev_raw)
        line_no = idx + 1

        if scope in WALL_CLOCK_SCOPES and "wall-clock" not in allow:
            if WALL_CLOCK_RE.search(s):
                violations.append(Violation(
                    rel_path, line_no, "wall-clock",
                    "wall-clock time in a deterministic layer; use sim "
                    "time, or annotate overhead measurement with "
                    "// ursa-lint: allow(wall-clock)"))

        if not in_rng and "raw-rand" not in allow:
            if RAW_RAND_RE.search(s):
                violations.append(Violation(
                    rel_path, line_no, "raw-rand",
                    "unseeded/library randomness; draw from the owning "
                    "simulation's ursa::stats::Rng"))

        if scope in UNORDERED_SCOPES and "unordered-sim" not in allow:
            if UNORDERED_USE_RE.search(s):
                violations.append(Violation(
                    rel_path, line_no, "unordered-sim",
                    "unordered container in a deterministic kernel "
                    "layer; hash iteration order is nondeterministic — "
                    "use std::map/std::vector"))

        if (scope not in UNORDERED_SCOPES and schedules and iter_re is not None
                and "unordered-sched" not in allow):
            if iter_re.search(s):
                violations.append(Violation(
                    rel_path, line_no, "unordered-sched",
                    "iteration over an unordered container in a file "
                    "that schedules simulation events; order the "
                    "container or the iteration"))

        if not in_check and "bare-assert" not in allow:
            if BARE_ASSERT_RE.search(s):
                violations.append(Violation(
                    rel_path, line_no, "bare-assert",
                    "bare assert() compiles out of Release; use "
                    "URSA_CHECK(cond, component, msg) from "
                    "check/check.h"))

    return violations


def lint_tree(root):
    violations = []
    files = []
    for glob in SOURCE_GLOBS:
        files.extend(root.rglob(glob))
    for path in sorted(files):
        rel = path.relative_to(root)
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError as e:
            print(f"error: cannot read {path}: {e}", file=sys.stderr)
            return None
        violations.extend(lint_file(path, rel, text))
    return violations


# --- self-test -----------------------------------------------------------

# Each bait is (pseudo-path, source, rule expected to fire). The file
# contents are linted exactly like tree files, so a regex regression
# that stops a rule firing fails the self-test.
SELF_TEST_BAIT = [
    ("sim/bad_clock.cc",
     "auto t0 = std::chrono::steady_clock::now();\n", "wall-clock"),
    ("core/bad_time.cc",
     "long now = time(nullptr);\n", "wall-clock"),
    ("workload/bad_rand.cc",
     "int r = rand();\n", "raw-rand"),
    ("core/bad_device.cc",
     "std::random_device rd; std::mt19937 gen(rd());\n", "raw-rand"),
    ("sim/bad_unordered.cc",
     "#include <unordered_map>\n"
     "std::unordered_map<int, int> table;\n", "unordered-sim"),
    ("trace/bad_span_index.cc",
     "#include <unordered_map>\n"
     "std::unordered_map<std::uint64_t, int> openSpans;\n",
     "unordered-sim"),
    ("trace/bad_export_clock.cc",
     "auto t0 = std::chrono::system_clock::now();\n", "wall-clock"),
    ("core/bad_iter.cc",
     "std::unordered_map<int, double> rates;\n"
     "void go() {\n"
     "    for (auto &kv : rates)\n"
     "        queue.scheduleIn(10, [] {});\n"
     "}\n", "unordered-sched"),
    ("ml/bad_assert.cc",
     "void f(int n) { assert(n > 0); }\n", "bare-assert"),
]

# Clean snippets that must NOT fire: suppressions, the rng exemption,
# lookalike identifiers, and prose in comments.
SELF_TEST_CLEAN = [
    ("core/annotated.cc",
     "// control-plane overhead measurement (Table 6)\n"
     "auto t0 = std::chrono::steady_clock::now(); "
     "// ursa-lint: allow(wall-clock)\n"),
    ("stats/rng.cc",
     "std::uint64_t v = rand();  // exempt file\n"),
    ("sim/lookalikes.cc",
     "double exploreTime(int strand);\n"
     "// steady_clock mentioned in a comment is fine\n"
     "static_assert(sizeof(int) == 4, \"abi\");\n"),
    ("check/check.cc",
     "void f() { assert(true); }  // check layer may assert\n"),
]


def self_test():
    failures = []
    for pseudo_path, source, rule in SELF_TEST_BAIT:
        rel = Path(pseudo_path)
        found = lint_file(rel, rel, source)
        if not any(v.rule == rule for v in found):
            failures.append(f"bait {pseudo_path} did not trigger [{rule}]")
    for pseudo_path, source in SELF_TEST_CLEAN:
        rel = Path(pseudo_path)
        found = lint_file(rel, rel, source)
        for v in found:
            failures.append(f"clean {pseudo_path} wrongly triggered: {v}")
    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"self-test OK: {len(SELF_TEST_BAIT)} bait snippets fired, "
          f"{len(SELF_TEST_CLEAN)} clean snippets quiet")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path, default=None,
                    help="source root to lint (typically <repo>/src)")
    ap.add_argument("--self-test", action="store_true",
                    help="lint embedded bait snippets; fail unless every "
                         "rule fires")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.root is None:
        ap.error("--root is required unless --self-test is given")
    if not args.root.is_dir():
        print(f"error: {args.root} is not a directory", file=sys.stderr)
        return 2

    violations = lint_tree(args.root)
    if violations is None:
        return 2
    for v in violations:
        print(v)
    if violations:
        print(f"\nlint_determinism: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("lint_determinism: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
