# Docs/catalogue sync: the rule table in DESIGN.md is generated from
# `ursa-lint --list-rules --format=markdown` and lives between
# `<!-- rule-table:begin -->` / `<!-- rule-table:end -->` markers.
# This script regenerates the table and fails if the committed docs
# drifted from the binary's catalogue.
#
# Usage: cmake -DLINT_BIN=<ursa-lint> -DDOC=<DESIGN.md> -P this_file
if(NOT LINT_BIN OR NOT DOC)
  message(FATAL_ERROR "pass -DLINT_BIN=<ursa-lint> -DDOC=<DESIGN.md>")
endif()

execute_process(
  COMMAND ${LINT_BIN} --list-rules --format=markdown
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE table)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ursa-lint --list-rules failed (${rc})")
endif()

file(READ ${DOC} doc)
string(FIND "${doc}" "<!-- rule-table:begin -->" begin)
string(FIND "${doc}" "<!-- rule-table:end -->" end)
if(begin EQUAL -1 OR end EQUAL -1)
  message(FATAL_ERROR "${DOC} is missing the rule-table markers")
endif()

string(LENGTH "<!-- rule-table:begin -->" marker_len)
math(EXPR from "${begin} + ${marker_len}")
math(EXPR len "${end} - ${from}")
string(SUBSTRING "${doc}" ${from} ${len} committed)
string(STRIP "${committed}" committed)
string(STRIP "${table}" table)

if(NOT committed STREQUAL table)
  message(FATAL_ERROR
    "the rule table in ${DOC} drifted from `ursa-lint --list-rules "
    "--format=markdown`; paste the regenerated table between the "
    "rule-table markers:\n${table}")
endif()
message(STATUS "rule table in sync with the binary's catalogue")
