#!/usr/bin/env python3
"""CI smoke for the DES kernel bench + the ursa::trace overhead contract.

Wall-clock throughput is machine-dependent, so CI cannot compare ev/s
against the numbers in BENCH_kernel.json directly. What it CAN check,
bit-exactly and cheaply, is everything the tracing layer promises:

  1. determinism  — a tracer-disabled run reproduces the exact event
                    and request counts recorded in BENCH_kernel.json
                    (same app, seed, and simulated span);
  2. zero perturbation — a sampling=1.0 run executes the *same* events
                    as the disabled run (tracing observes, never
                    steers);
  3. bounded overhead — full-rate tracing keeps at least
                    --min-traced-ratio of the disabled run's
                    throughput, both runs measured back to back on the
                    same machine. The disabled run's overhead (the
                    one-branch-per-request gate) is below run-to-run
                    noise by construction and is bounded locally
                    against BENCH_kernel.json when baselines are
                    refreshed.

Usage:
  bench_smoke.py --bench build/bench/bench_kernel \
                 --reference BENCH_kernel.json [--min-traced-ratio 0.5]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def run_bench(bench, sampling, sim_minutes, out_path):
    env = dict(os.environ)
    env["URSA_BENCH_REPS"] = "1"
    env["URSA_BENCH_SIM_MIN"] = str(sim_minutes)
    env["URSA_BENCH_OUT"] = out_path
    env["URSA_TRACE_SAMPLING"] = repr(sampling)
    subprocess.run([bench], env=env, check=True,
                   stdout=subprocess.DEVNULL)
    with open(out_path) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", required=True,
                    help="path to the bench_kernel binary")
    ap.add_argument("--reference", required=True,
                    help="path to BENCH_kernel.json")
    ap.add_argument("--min-traced-ratio", type=float, default=0.5,
                    help="minimum (traced ev/s) / (untraced ev/s)")
    args = ap.parse_args()

    with open(args.reference) as f:
        ref = json.load(f)
    sim_minutes = ref["sim_minutes"]

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        off = run_bench(args.bench, 0.0, sim_minutes,
                        os.path.join(tmp, "off.json"))
        on = run_bench(args.bench, 1.0, sim_minutes,
                       os.path.join(tmp, "on.json"))

    # 1. Bit-determinism against the recorded baseline.
    for key in ("events", "requests"):
        if off[key] != ref[key]:
            failures.append(
                f"tracer-disabled run diverged from {args.reference}: "
                f"{key} {off[key]} != {ref[key]}")

    # 2. Tracing must not change what the simulation does.
    for key in ("events", "requests"):
        if on[key] != off[key]:
            failures.append(
                f"sampling=1.0 perturbed the simulation: {key} "
                f"{on[key]} != {off[key]}")

    # 3. Full-rate tracing overhead bound (same-machine comparison).
    ratio = on["events_per_sec"] / off["events_per_sec"]
    print(f"untraced: {off['events_per_sec'] / 1e6:.3f}M ev/s, "
          f"traced: {on['events_per_sec'] / 1e6:.3f}M ev/s "
          f"(ratio {ratio:.2f})")
    if ratio < args.min_traced_ratio:
        failures.append(
            f"full-rate tracing too slow: {ratio:.2f} < "
            f"{args.min_traced_ratio} of untraced throughput")

    if failures:
        for msg in failures:
            print(f"bench_smoke FAIL: {msg}", file=sys.stderr)
        return 1
    print(f"bench_smoke OK: counts match {args.reference} "
          f"(events={off['events']}, requests={off['requests']}), "
          "tracing is zero-perturbation and within the overhead bound")
    return 0


if __name__ == "__main__":
    sys.exit(main())
