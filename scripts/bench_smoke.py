#!/usr/bin/env python3
"""CI smoke for the DES kernel bench + the ursa::trace overhead contract.

BENCH_kernel.json is a *trajectory*: one entry per PR that moved the
kernel, each recording the headline sharded configuration and a
'single' block for the canonical single-simulation run. This smoke pins
the working tree against the LATEST trajectory entry:

  1. determinism  — a tracer-disabled run reproduces the exact single-
                    simulation event and request counts of the latest
                    entry (same app, seed, and simulated span), and the
                    sharded aggregate counts when the entry is sharded.
                    Counts are machine-independent, so this check is
                    bit-exact.
  2. zero perturbation — a sampling=1.0 run executes the *same* events
                    as the disabled run (tracing observes, never
                    steers);
  3. bounded overhead — full-rate tracing keeps at least
                    --min-traced-ratio of the disabled run's
                    throughput, both runs measured back to back on the
                    same machine.
  4. throughput floor — wall-clock throughput is machine-dependent, so
                    the pin is an explicit loose tolerance, not an
                    equality: the untraced single-run ev/s must reach
                    at least --tolerance of the latest entry's
                    single-run ev/s. This catches order-of-magnitude
                    regressions (a debug build, a broken fast path)
                    while tolerating slower CI machines.

Usage:
  bench_smoke.py --bench build/bench/bench_kernel \
                 --reference BENCH_kernel.json \
                 [--min-traced-ratio 0.5] [--tolerance 0.25]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def run_bench(bench, sampling, sim_minutes, shards, out_path):
    env = dict(os.environ)
    env["URSA_BENCH_REPS"] = "1"
    env["URSA_BENCH_SIM_MIN"] = str(sim_minutes)
    env["URSA_BENCH_SHARDS"] = str(shards)
    env["URSA_BENCH_OUT"] = out_path
    env["URSA_TRACE_SAMPLING"] = repr(sampling)
    subprocess.run([bench], env=env, check=True,
                   stdout=subprocess.DEVNULL)
    with open(out_path) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", required=True,
                    help="path to the bench_kernel binary")
    ap.add_argument("--reference", required=True,
                    help="path to BENCH_kernel.json")
    ap.add_argument("--min-traced-ratio", type=float, default=0.5,
                    help="minimum (traced ev/s) / (untraced ev/s)")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="minimum fraction of the recorded single-run "
                         "ev/s the untraced run must reach")
    args = ap.parse_args()

    with open(args.reference) as f:
        ref = json.load(f)
    latest = ref["trajectory"][-1]
    single_ref = latest["single"]
    sim_minutes = ref["sim_minutes"]
    shards = latest.get("shards", 1)

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        off = run_bench(args.bench, 0.0, sim_minutes, shards,
                        os.path.join(tmp, "off.json"))
        on = run_bench(args.bench, 1.0, sim_minutes, shards,
                       os.path.join(tmp, "on.json"))

    # 1. Bit-determinism against the latest recorded entry.
    for key in ("events", "requests"):
        if off[key] != single_ref[key]:
            failures.append(
                f"tracer-disabled run diverged from the latest entry of "
                f"{args.reference} ({latest['label']!r}): single {key} "
                f"{off[key]} != {single_ref[key]}")
        if shards > 1 and off["sharded"][key] != latest[key]:
            failures.append(
                f"sharded run diverged from the latest entry of "
                f"{args.reference}: {key} {off['sharded'][key]} != "
                f"{latest[key]}")

    # 2. Tracing must not change what the simulation does.
    for key in ("events", "requests"):
        if on[key] != off[key]:
            failures.append(
                f"sampling=1.0 perturbed the simulation: {key} "
                f"{on[key]} != {off[key]}")

    # 3. Full-rate tracing overhead bound (same-machine comparison).
    ratio = on["events_per_sec"] / off["events_per_sec"]
    print(f"untraced: {off['events_per_sec'] / 1e6:.3f}M ev/s, "
          f"traced: {on['events_per_sec'] / 1e6:.3f}M ev/s "
          f"(ratio {ratio:.2f})")
    if ratio < args.min_traced_ratio:
        failures.append(
            f"full-rate tracing too slow: {ratio:.2f} < "
            f"{args.min_traced_ratio} of untraced throughput")

    # 4. Loose throughput floor against the recorded single-run number.
    floor = args.tolerance * single_ref["events_per_sec"]
    print(f"recorded single-run: "
          f"{single_ref['events_per_sec'] / 1e6:.3f}M ev/s, "
          f"floor at tolerance {args.tolerance}: {floor / 1e6:.3f}M ev/s")
    if off["events_per_sec"] < floor:
        failures.append(
            f"single-run throughput collapsed: "
            f"{off['events_per_sec'] / 1e6:.3f}M ev/s < {floor / 1e6:.3f}M "
            f"({args.tolerance} of the recorded "
            f"{single_ref['events_per_sec'] / 1e6:.3f}M)")

    if failures:
        for msg in failures:
            print(f"bench_smoke FAIL: {msg}", file=sys.stderr)
        return 1
    print(f"bench_smoke OK: counts match the latest trajectory entry of "
          f"{args.reference} (events={off['events']}, "
          f"requests={off['requests']}, shards={shards}), tracing is "
          "zero-perturbation and within the overhead bound")
    return 0


if __name__ == "__main__":
    sys.exit(main())
