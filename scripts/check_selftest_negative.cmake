# Negative self-test: run ursa-lint --self-test against the
# deliberately broken fixtures in tools/lint_testdata_broken/ and
# assert that it (a) fails, and (b) names the right file:line for
# every planted defect — an unfired bait, an unsilenced suppression,
# and a fixture project whose cross-file violations have no
# directives. A self-test harness that cannot fail tests nothing.
#
# Usage: cmake -DLINT_BIN=<ursa-lint> -DTESTDATA=<dir> -P this_file
if(NOT LINT_BIN OR NOT TESTDATA)
  message(FATAL_ERROR "pass -DLINT_BIN=<ursa-lint> -DTESTDATA=<dir>")
endif()

execute_process(
  COMMAND ${LINT_BIN} --self-test --testdata ${TESTDATA}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
set(log "${out}${err}")

if(rc EQUAL 0)
  message(FATAL_ERROR
    "--self-test passed on the broken fixture tree; it must fail")
endif()
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
    "--self-test exited ${rc} on the broken fixture tree (want 1, the "
    "self-test-failure code, not a usage error):\n${log}")
endif()

# Each planted defect must be reported with its exact file:line.
set(expected
  "bait core/unfired_bait.cc:4 did not trigger [wall-clock]"
  "suppression core/unsilenced_suppression.cc:6 failed to silence [wall-clock]"
  "clean line projects/badcycle/trace/loop_a.h:4 wrongly triggered [layer-cycle]"
  "clean line projects/badcycle/trace/loop_b.h:2 wrongly triggered [layer-cycle]"
  "bait projects/quiet/sim/quiet.cc:9 did not trigger [sim-nondeterminism]"
  "bait projects/quiet/sim/quiet.cc:16 did not trigger [blocking-in-sim]"
  "bait projects/quiet/sim/quiet.cc:22 did not trigger [unbounded-recursion]")
foreach(msg IN LISTS expected)
  string(FIND "${log}" "${msg}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR
      "self-test output is missing \"${msg}\"; got:\n${log}")
  endif()
endforeach()
message(STATUS "negative self-test OK: all planted defects named")
