# --fix round-trip: copy the fixture tree aside, show that
# --fix-dry-run prints the deletion diff WITHOUT touching the file,
# then that --fix deletes exactly the dead include, and that the tree
# lints clean afterwards with the live include intact.
#
# Usage: cmake -DLINT_BIN=<ursa-lint> -DFIXDATA=<dir> -DWORKDIR=<dir>
#        -P this_file
if(NOT LINT_BIN OR NOT FIXDATA OR NOT WORKDIR)
  message(FATAL_ERROR
    "pass -DLINT_BIN=<ursa-lint> -DFIXDATA=<dir> -DWORKDIR=<dir>")
endif()

file(REMOVE_RECURSE ${WORKDIR})
file(COPY ${FIXDATA}/ DESTINATION ${WORKDIR})

# 1. Dry run: exits 1 (the finding is still reported), prints the diff
#    to stdout, and leaves the file byte-identical.
execute_process(
  COMMAND ${LINT_BIN} --root ${WORKDIR} --fix-dry-run
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
    "--fix-dry-run exited ${rc} (want 1: the finding stays):\n${out}${err}")
endif()
foreach(piece "--- a/solver/use.cc" "-#include \"solver/dep.h\"")
  string(FIND "${out}" "${piece}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR
      "dry-run diff is missing \"${piece}\"; got:\n${out}")
  endif()
endforeach()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${FIXDATA}/solver/use.cc ${WORKDIR}/solver/use.cc
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "--fix-dry-run modified the tree")
endif()

# 2. Apply: the fixed finding disappears from the report, so the run
#    exits clean.
execute_process(
  COMMAND ${LINT_BIN} --root ${WORKDIR} --fix
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--fix exited ${rc}:\n${out}${err}")
endif()

# 3. Round trip: a fresh lint of the fixed tree is clean, the dead
#    include is gone, and the live one survived.
execute_process(
  COMMAND ${LINT_BIN} --root ${WORKDIR}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "tree not clean after --fix (exit ${rc}):\n${out}${err}")
endif()
file(READ ${WORKDIR}/solver/use.cc fixed)
string(FIND "${fixed}" "solver/dep.h" at)
if(NOT at EQUAL -1)
  message(FATAL_ERROR "--fix left the dead include behind:\n${fixed}")
endif()
string(FIND "${fixed}" "#include \"solver/limits.h\"" at)
if(at EQUAL -1)
  message(FATAL_ERROR "--fix removed the live include:\n${fixed}")
endif()
message(STATUS "--fix round-trip OK: dead include removed, tree clean")
