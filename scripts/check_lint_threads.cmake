# Pass-1 lexing fans out over URSA_THREADS workers and passes 2/3 run
# over the merged model; the report (text and SARIF) must be
# byte-identical at any thread count or the analyzer leaks scheduling
# order into its output.
#
# Usage: cmake -DLINT_BIN=<ursa-lint> -DSRC=<dir> -P this_file
if(NOT LINT_BIN OR NOT SRC)
  message(FATAL_ERROR "pass -DLINT_BIN=<ursa-lint> -DSRC=<dir>")
endif()

foreach(fmt "text" "sarif")
  set(outs)
  foreach(threads 1 8)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E env URSA_THREADS=${threads}
              ${LINT_BIN} --root ${SRC} --format=${fmt}
      RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
    if(rc GREATER 1)
      message(FATAL_ERROR
        "ursa-lint --format=${fmt} failed under URSA_THREADS=${threads} "
        "(exit ${rc}):\n${err}")
    endif()
    list(APPEND outs "${out}")
  endforeach()
  list(GET outs 0 one)
  list(GET outs 1 eight)
  if(NOT one STREQUAL eight)
    message(FATAL_ERROR
      "--format=${fmt} output differs between URSA_THREADS=1 and 8")
  endif()
endforeach()
message(STATUS "thread-count determinism OK: text and SARIF byte-stable")
