/**
 * @file
 * Reproduces paper Fig. 14 (Sec. VII-G): adapting to a business-logic
 * update. The social network's object-detection service swaps its
 * model from a DETR-scale network to a lightweight MobileNet-scale one
 * (compute mean 1800 ms -> 400 ms). The exploration controller
 * re-explores ONLY the modified service (partial exploration), the
 * optimization engine recalculates the thresholds, and we compare the
 * end-to-end object-detect latency CDF before and after.
 *
 * Paper reference: the partial exploration collected 75 samples in
 * 1.25 h with a 5.3% violation rate; post-update SLA violation rates
 * were 0.62% (original) vs 0.50% (updated).
 */

#include "common.h"

#include "core/explorer.h"
#include "core/manager.h"
#include "sim/client.h"
#include "stats/quantile.h"
#include "workload/arrival.h"

#include <cstdio>

using namespace ursa;
using namespace ursa::bench;
using namespace ursa::sim;

namespace
{

struct RunResult
{
    stats::SampleSet latencies{0, 7};
    double violationRate = 0.0;
};

RunResult
deployAndMeasure(const apps::AppSpec &app, const core::AppProfile &profile,
                 std::uint64_t seed)
{
    Cluster cluster(seed);
    app.instantiate(cluster);
    core::UrsaManager manager(cluster, app, profile);
    if (!manager.deploy(app.nominalRps, app.exploreMix))
        throw std::runtime_error("infeasible");
    OpenLoopClient client(cluster, workload::constantRate(app.nominalRps),
                          fixedMix(app.exploreMix), seed + 1);
    client.start(0);
    cluster.run(35 * kMin);

    RunResult res;
    const int detect = app.classIndex("object-detect");
    res.latencies =
        cluster.metrics().endToEnd(detect).collect(5 * kMin, 35 * kMin);
    res.violationRate =
        cluster.metrics().slaViolationRate(detect, 5 * kMin, 35 * kMin);
    return res;
}

void
printCdf(const stats::SampleSet &samples, double slaMs)
{
    stats::EmpiricalCdf cdf(samples.samples());
    std::printf("    %8s %8s\n", "ms", "CDF");
    for (double q :
         {0.05, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99, 0.999}) {
        std::printf("    %8.0f %8.3f\n", cdf.quantile(q) / 1000.0, q);
    }
    std::printf("    SLA line: %.0f ms -> CDF %.4f\n", slaMs,
                cdf.at(slaMs * 1000.0));
}

} // namespace

int
main()
{
    std::printf("Fig. 14 reproduction: adapting to a service-logic "
                "update (object detection model\nDETR -> MobileNet, "
                "compute 1800 ms -> 400 ms), with partial "
                "re-exploration.\n\n");

    apps::AppSpec app = makeApp(AppId::Social);
    const double slaMs = sim::toMs(
        app.classes[app.classIndex("object-detect")].sla.targetUs);
    core::AppProfile profile = cachedProfile(app, "social", 2024);

    std::printf("== original service mesh (DETR-scale model)\n");
    const RunResult before = deployAndMeasure(app, profile, 811);
    printCdf(before.latencies, slaMs);
    std::printf("    SLA violation rate: %.2f%%\n\n",
                100.0 * before.violationRate);

    // The business-logic update.
    apps::AppSpec updated = app;
    const int detectSvc = updated.serviceIndex("object-detect");
    const int detectCls = updated.classIndex("object-detect");
    updated.services[detectSvc].behaviors[detectCls].computeMeanUs =
        400000.0;

    // Partial exploration: only the modified service is re-profiled.
    core::ExplorationController explorer(paperExploration(33));
    const int samplesBefore = profile.totalSamples();
    core::AppProfile updatedProfile = profile;
    explorer.reexploreService(updated, detectSvc, updatedProfile);
    const auto &svcProf = updatedProfile.services[detectSvc];
    std::printf("== partial re-exploration of object-detect only\n");
    std::printf("    samples: %d (whole-app exploration had %d), "
                "time: %.2f h, levels: %zu\n\n",
                svcProf.samples, samplesBefore,
                sim::toSec(svcProf.exploreTime) / 3600.0,
                svcProf.levels.size());

    std::printf("== updated service mesh (MobileNet-scale model)\n");
    const RunResult after = deployAndMeasure(updated, updatedProfile, 813);
    printCdf(after.latencies, slaMs);
    std::printf("    SLA violation rate: %.2f%%\n\n",
                100.0 * after.violationRate);

    std::printf("Paper reference: 75 samples / 1.25 h partial "
                "exploration; violation rates 0.62%%\n(original) vs "
                "0.50%% (updated). Shape to verify: the updated CDF "
                "shifts left and\nboth violation rates stay low.\n");
    return 0;
}
