#include "common.h"

#include "baselines/autoscaler.h"
#include "baselines/firm.h"
#include "core/manager.h"
#include "core/profile_io.h"
#include "exec/thread_pool.h"
#include "sim/client.h"
#include "workload/arrival.h"
#include "workload/generator.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

namespace ursa::bench
{

namespace
{

namespace fs = std::filesystem;

/** Make the mix/profile for a (app, load) cell measurement phase. */
struct CellLoad
{
    sim::RateProfile rate;
    std::vector<double> mix;
};

CellLoad
cellLoad(const apps::AppSpec &app, AppId id, LoadKind load,
         sim::SimTime measureStart, sim::SimTime measureLen)
{
    CellLoad out;
    out.mix = app.exploreMix;
    switch (load) {
      case LoadKind::Constant:
        out.rate = workload::constantRate(app.nominalRps);
        break;
      case LoadKind::Diurnal:
        out.rate = workload::shifted(
            workload::diurnalRate(app.nominalRps, 2.0 * app.nominalRps,
                                  measureLen),
            measureStart);
        break;
      case LoadKind::Burst:
        // Sharp +100% step for a fifth of the window (paper: +50-125%).
        out.rate = workload::burstRate(app.nominalRps, 1.0,
                                       measureStart + measureLen * 2 / 5,
                                       measureLen / 5);
        break;
      case LoadKind::SkewedUp:
        out.rate = workload::constantRate(app.nominalRps);
        out.mix = skewedMix(app, id, true);
        break;
      case LoadKind::SkewedDown:
        out.rate = workload::constantRate(app.nominalRps);
        out.mix = skewedMix(app, id, false);
        break;
    }
    return out;
}

/**
 * One mutex per cache path: concurrent grid cells needing the same
 * cached artifact wait for the first computation instead of racing on
 * the file (std::map keeps each mutex pinned in place).
 */
std::mutex &
cachePathMutex(const std::string &path)
{
    static std::mutex tableMu;
    static std::map<std::string, std::mutex> table;
    std::lock_guard<std::mutex> lock(tableMu);
    return table[path];
}

core::ExplorationOptions
explorationFor(const PerfHarnessOptions &opts)
{
    return opts.exploration ? *opts.exploration
                            : paperExploration(opts.seed);
}

/**
 * The mutually-exclusive system handles of one deployment cell, alive
 * until the cell's last cluster.run(). Firm's training client: even
 * stopped, its next-arrival callback stays queued capturing `this`,
 * so it must outlive every cluster.run() of the cell — it lives here,
 * not in its switch case.
 */
struct Deployment
{
    std::unique_ptr<core::UrsaManager> ursa;
    std::unique_ptr<baselines::Autoscaler> autoscaler;
    std::unique_ptr<baselines::SinanModel> sinanModel;
    std::unique_ptr<baselines::SinanScheduler> sinanScheduler;
    std::unique_ptr<baselines::FirmController> firm;
    std::unique_ptr<sim::OpenLoopClient> trainClient;
    sim::SimTime measureStart = 0;

    double decisionLatencyUs() const
    {
        if (ursa)
            return ursa->deployDecisionLatencyUs().mean();
        if (autoscaler)
            return autoscaler->decisionLatencyUs().mean();
        if (sinanScheduler)
            return sinanScheduler->decisionLatencyUs().mean();
        if (firm)
            return firm->decisionLatencyUs().mean();
        return 0.0;
    }
};

/**
 * Instantiate and prepare one system on an already-instantiated
 * cluster: exploration/training/convergence before the measured
 * window, under the canonical mix. `deployRps`/`deployMix` are the
 * expected load the one-shot planners (Ursa) size for; the measurement
 * client is the caller's.
 */
Deployment
prepareSystem(sim::Cluster &cluster, const apps::AppSpec &app,
              const std::string &tag, System system, double deployRps,
              const std::vector<double> &deployMix, std::uint64_t seed,
              const PerfHarnessOptions &opts)
{
    // Autoscalers start cold (1 replica) and converge from below — the
    // regime where step scaling settles just under its threshold. The
    // learned systems keep the configured defaults their training also
    // started from, and Ursa applies its plan at deploy() anyway.
    if (system == System::AutoA || system == System::AutoB) {
        for (sim::ServiceId s = 0; s < cluster.numServices(); ++s)
            cluster.service(s).setReplicas(1);
    }

    Deployment dep;
    switch (system) {
      case System::Ursa: {
        const auto profile = cachedProfile(app, tag, explorationFor(opts));
        dep.ursa =
            std::make_unique<core::UrsaManager>(cluster, app, profile);
        // Thresholds computed once at the start of the experiment
        // (Sec. VII-E), from the expected load of this cell.
        if (!dep.ursa->deploy(deployRps, deployMix))
            throw std::runtime_error(std::string("Ursa infeasible on ") +
                                     tag);
        dep.measureStart = opts.warmup;
        break;
      }
      case System::AutoA:
      case System::AutoB: {
        dep.autoscaler = std::make_unique<baselines::Autoscaler>(
            cluster, system == System::AutoA ? baselines::autoAConfig()
                                             : baselines::autoBConfig());
        dep.autoscaler->start(0);
        // Extra warmup lets step scaling converge from the cold start.
        dep.measureStart = opts.warmup + 10 * sim::kMin;
        break;
      }
      case System::Sinan: {
        const auto samples =
            cachedSinanSamples(app, tag, opts.sinanSamples, opts.seed);
        const auto cfg = benchSinanConfig(app, opts.seed);
        dep.sinanModel = std::make_unique<baselines::SinanModel>(app, cfg);
        dep.sinanModel->train(samples);
        dep.sinanScheduler = std::make_unique<baselines::SinanScheduler>(
            cluster, app, *dep.sinanModel, cfg);
        dep.sinanScheduler->start(0);
        dep.measureStart = opts.warmup + 5 * sim::kMin;
        break;
      }
      case System::Firm: {
        baselines::FirmConfig cfg;
        cfg.seed = opts.seed + 3;
        dep.firm = std::make_unique<baselines::FirmController>(cluster,
                                                               app, cfg);
        // Online training under the canonical mix, then deploy.
        dep.trainClient = std::make_unique<sim::OpenLoopClient>(
            cluster, workload::constantRate(deployRps),
            sim::fixedMix(app.exploreMix), seed + 11);
        dep.trainClient->start(0);
        dep.firm->trainOnline(opts.firmTrainSteps);
        dep.trainClient->stop();
        dep.firm->start(cluster.events().now());
        dep.measureStart = cluster.events().now() + opts.warmup;
        break;
      }
    }
    return dep;
}

/** Measured-window metrics of a finished cell. */
CellResult
collectResult(const sim::Cluster &cluster, const Deployment &dep,
              sim::SimTime measureStart, sim::SimTime measureEnd)
{
    CellResult result;
    result.violationRate =
        cluster.metrics().overallSlaViolationRate(measureStart,
                                                  measureEnd);
    result.cpuCores = 0.0;
    for (sim::ServiceId s = 0; s < cluster.numServices(); ++s)
        result.cpuCores +=
            cluster.metrics().meanAllocation(s, measureStart, measureEnd);
    result.decisionLatencyUs = dep.decisionLatencyUs();
    return result;
}

} // namespace

std::string
cacheDir()
{
    const char *env = std::getenv("URSA_CACHE_DIR");
    const std::string dir = env ? env : ".ursa_cache";
    std::error_code ec;
    fs::create_directories(dir, ec);
    return dir;
}

core::ExplorationOptions
paperExploration(std::uint64_t seed)
{
    core::ExplorationOptions opts;
    opts.window = sim::kMin;  // the paper samples once per minute
    opts.windowsPerLevel = 10; // 10 samples per LPR level (Sec. VII-C)
    opts.seed = seed;
    opts.bpOptions.stepDuration = 2 * sim::kMin;
    opts.bpOptions.sampleWindow = 10 * sim::kSec;
    opts.bpOptions.maxSteps = 12;
    return opts;
}

core::AppProfile
cachedProfile(const apps::AppSpec &app, const std::string &tag,
              std::uint64_t seed)
{
    return cachedProfile(app, tag, paperExploration(seed));
}

core::AppProfile
cachedProfile(const apps::AppSpec &app, const std::string &tag,
              const core::ExplorationOptions &explore)
{
    const std::string path = cacheDir() + "/profile_" + tag + ".txt";
    std::lock_guard<std::mutex> lock(cachePathMutex(path));
    bool ok = false;
    core::AppProfile profile = core::loadAppProfile(path, ok);
    if (ok && profile.services.size() == app.services.size())
        return profile;
    core::ExplorationController explorer(explore);
    profile = explorer.exploreApp(app);
    core::saveAppProfile(profile, path);
    return profile;
}

baselines::SinanConfig
benchSinanConfig(const apps::AppSpec &app, std::uint64_t seed)
{
    (void)app;
    baselines::SinanConfig cfg;
    cfg.interval = 30 * sim::kSec;
    cfg.seed = seed;
    return cfg;
}

std::vector<baselines::SinanSample>
cachedSinanSamples(const apps::AppSpec &app, const std::string &tag,
                   int count, std::uint64_t seed)
{
    const std::string path = cacheDir() + "/sinan_" + tag + ".txt";
    std::lock_guard<std::mutex> lock(cachePathMutex(path));
    // Try the cache.
    {
        std::ifstream in(path);
        if (in) {
            std::size_t n = 0, fdim = 0, cdim = 0;
            in >> n >> fdim >> cdim;
            std::vector<baselines::SinanSample> samples(n);
            bool good = static_cast<bool>(in);
            for (auto &s : samples) {
                s.features.resize(fdim);
                s.latencyRatios.resize(cdim);
                int viol = 0;
                for (double &v : s.features)
                    in >> v;
                for (double &v : s.latencyRatios)
                    in >> v;
                in >> viol;
                s.violation = viol != 0;
                if (!in) {
                    good = false;
                    break;
                }
            }
            if (good && n == static_cast<std::size_t>(count))
                return samples;
        }
    }
    // Collect on dedicated clusters under the canonical mix. The
    // collection is sharded into a FIXED number of independent
    // timelines (not a function of the thread count), so the sample
    // set is deterministic for any URSA_THREADS while the shards run
    // in parallel.
    const int shards = std::max(1, std::min(count, 8));
    const int base = count / shards;
    const int rem = count % shards;
    const auto parts =
        exec::parallelMap<std::vector<baselines::SinanSample>>(
            static_cast<std::size_t>(shards), [&](std::size_t k) {
                const int cnt =
                    base + (static_cast<int>(k) < rem ? 1 : 0);
                if (cnt == 0)
                    return std::vector<baselines::SinanSample>{};
                const std::uint64_t shardSeed =
                    (seed ^ 0x51a4) + 0x9e3779b9ULL * k;
                sim::Cluster cluster(shardSeed, 30 * sim::kSec);
                app.instantiate(cluster);
                sim::OpenLoopClient client(
                    cluster, workload::constantRate(app.nominalRps),
                    sim::fixedMix(app.exploreMix), shardSeed + 5);
                client.start(0);
                auto cfg = benchSinanConfig(app, seed);
                cfg.seed += 1000003ULL * k; // per-shard randomization
                baselines::SinanCollector collector(cluster, app, cfg);
                return collector.collect(cnt);
            });
    std::vector<baselines::SinanSample> samples;
    samples.reserve(count);
    for (const auto &part : parts)
        samples.insert(samples.end(), part.begin(), part.end());

    std::ofstream out(path);
    if (out && !samples.empty()) {
        out << samples.size() << ' ' << samples.front().features.size()
            << ' ' << samples.front().latencyRatios.size() << "\n";
        out.precision(17);
        for (const auto &s : samples) {
            for (double v : s.features)
                out << v << ' ';
            for (double v : s.latencyRatios)
                out << v << ' ';
            out << (s.violation ? 1 : 0) << "\n";
        }
    }
    return samples;
}

const char *
toString(System s)
{
    switch (s) {
      case System::Ursa:
        return "Ursa";
      case System::Sinan:
        return "Sinan";
      case System::Firm:
        return "Firm";
      case System::AutoA:
        return "Auto-a";
      case System::AutoB:
        return "Auto-b";
    }
    return "?";
}

const char *
toString(LoadKind l)
{
    switch (l) {
      case LoadKind::Constant:
        return "constant";
      case LoadKind::Diurnal:
        return "diurnal";
      case LoadKind::Burst:
        return "burst";
      case LoadKind::SkewedUp:
        return "skewed+";
      case LoadKind::SkewedDown:
        return "skewed-";
    }
    return "?";
}

const char *
toString(AppId a)
{
    switch (a) {
      case AppId::Social:
        return "social";
      case AppId::VanillaSocial:
        return "vanilla-social";
      case AppId::Media:
        return "media";
      case AppId::VideoPipeline:
        return "video-pipeline";
    }
    return "?";
}

apps::AppSpec
makeApp(AppId id)
{
    switch (id) {
      case AppId::Social:
        return apps::makeSocialNetwork(false);
      case AppId::VanillaSocial:
        return apps::makeSocialNetwork(true);
      case AppId::Media:
        return apps::makeMediaService();
      case AppId::VideoPipeline:
        return apps::makeVideoPipeline(0.25);
    }
    throw std::logic_error("bad app id");
}

std::vector<double>
skewedMix(const apps::AppSpec &app, AppId id, bool up)
{
    if (id == AppId::VideoPipeline) {
        // Paper: high:low ratios 40:60 and 60:40, unseen in exploration.
        return up ? std::vector<double>{0.6, 0.4}
                  : std::vector<double>{0.4, 0.6};
    }
    const char *cls = (id == AppId::Media) ? "upload-video"
                                           : "update-timeline";
    return apps::skewMix(app, app.exploreMix, cls, up ? 2.0 : 0.5);
}

CellResult
runCell(System system, AppId appId, LoadKind load,
        const PerfHarnessOptions &opts)
{
    const apps::AppSpec app = makeApp(appId);
    const std::string tag = toString(appId);
    const std::uint64_t seed =
        opts.seed + 131 * static_cast<int>(system) +
        17 * static_cast<int>(load) + 7 * static_cast<int>(appId);

    sim::Cluster cluster(seed);
    app.instantiate(cluster);

    // Prep phase: Ursa sizes its one-shot plan for this cell's mix at
    // the nominal rate.
    const auto deployMix = cellLoad(app, appId, load, 0, opts.measure).mix;
    const Deployment dep = prepareSystem(cluster, app, tag, system,
                                         app.nominalRps, deployMix,
                                         seed, opts);

    // Measurement phase.
    const CellLoad cell =
        cellLoad(app, appId, load, dep.measureStart, opts.measure);
    sim::OpenLoopClient client(cluster, cell.rate,
                               sim::fixedMix(cell.mix), seed + 23);
    client.start(cluster.events().now());
    const sim::SimTime measureEnd = dep.measureStart + opts.measure;
    cluster.run(measureEnd);
    return collectResult(cluster, dep, dep.measureStart, measureEnd);
}

CellResult
runTraceCell(System system, AppId appId,
             const workload::ArrivalTrace &trace,
             const PerfHarnessOptions &opts)
{
    if (trace.entries.empty())
        throw std::runtime_error("runTraceCell on an empty trace");

    const apps::AppSpec app = makeApp(appId);
    const std::string tag = toString(appId);
    const std::uint64_t seed = opts.seed +
                               131 * static_cast<int>(system) +
                               7 * static_cast<int>(appId) + 53;

    sim::Cluster cluster(seed);
    app.instantiate(cluster);

    // Deploy thresholds come from the trace itself: its realized mean
    // rate and class mix (classes it never exercises get weight 0).
    std::vector<double> mix = trace.classMix();
    if (mix.size() > static_cast<std::size_t>(cluster.numClasses()))
        throw std::runtime_error(
            std::string("trace uses request classes ") + tag +
            " does not define");
    mix.resize(static_cast<std::size_t>(cluster.numClasses()), 0.0);

    const Deployment dep = prepareSystem(cluster, app, tag, system,
                                         trace.meanRate(), mix, seed,
                                         opts);

    // Measurement phase: loop the trace so it covers warmup plus the
    // measured window regardless of its recorded duration.
    workload::TraceReplayClient client(cluster, trace, /*loop=*/true);
    client.start(cluster.events().now());
    const sim::SimTime measureEnd = dep.measureStart + opts.measure;
    cluster.run(measureEnd);
    return collectResult(cluster, dep, dep.measureStart, measureEnd);
}

std::vector<GridRow>
performanceGrid(const PerfHarnessOptions &opts)
{
    const std::string path =
        cacheDir() + "/perf_grid_" + std::to_string(opts.seed) + "_" +
        std::to_string(opts.measure / sim::kMin) + ".csv";

    std::vector<GridRow> grid;
    const std::vector<AppId> apps = {AppId::Social, AppId::VanillaSocial,
                                     AppId::Media, AppId::VideoPipeline};
    const std::vector<LoadKind> loads = {
        LoadKind::Constant, LoadKind::Diurnal, LoadKind::Burst,
        LoadKind::SkewedUp, LoadKind::SkewedDown};
    const std::vector<System> systems = {System::Ursa, System::Sinan,
                                         System::Firm, System::AutoA,
                                         System::AutoB};

    // Try the cache.
    {
        std::ifstream in(path);
        if (in) {
            std::string header;
            std::getline(in, header);
            std::string line;
            while (std::getline(in, line)) {
                std::istringstream ls(line);
                GridRow row;
                int a, l, s;
                char comma;
                ls >> a >> comma >> l >> comma >> s >> comma >>
                    row.result.violationRate >> comma >>
                    row.result.cpuCores >> comma >>
                    row.result.decisionLatencyUs;
                if (!ls)
                    break;
                row.app = static_cast<AppId>(a);
                row.load = static_cast<LoadKind>(l);
                row.system = static_cast<System>(s);
                grid.push_back(row);
            }
            if (grid.size() == apps.size() * loads.size() * systems.size())
                return grid;
            grid.clear();
        }
    }

    // Warm the per-app caches first (profile for Ursa, samples for
    // Sinan) so the grid cells below only read them; each app's two
    // artifacts are independent units of work.
    exec::parallelFor(apps.size() * 2, [&](std::size_t i) {
        const AppId id = apps[i / 2];
        const apps::AppSpec app = makeApp(id);
        if (i % 2 == 0)
            cachedProfile(app, toString(id), explorationFor(opts));
        else
            cachedSinanSamples(app, toString(id), opts.sinanSamples,
                               opts.seed);
    });

    // The 100 cells are independent simulations; fan them out. Each
    // cell owns its cluster and derives every seed from (system, app,
    // load), so the grid is bit-identical for any thread count.
    const std::size_t cells =
        apps.size() * loads.size() * systems.size();
    grid = exec::parallelMap<GridRow>(cells, [&](std::size_t idx) {
        const AppId a = apps[idx / (loads.size() * systems.size())];
        const LoadKind l =
            loads[idx / systems.size() % loads.size()];
        const System s = systems[idx % systems.size()];
        GridRow row;
        row.app = a;
        row.load = l;
        row.system = s;
        row.result = runCell(s, a, l, opts);
        std::fprintf(stderr,
                     "  [grid] %-14s %-9s %-7s viol=%5.1f%% cpu=%6.1f\n",
                     toString(a), toString(l), toString(s),
                     100.0 * row.result.violationRate,
                     row.result.cpuCores);
        return row;
    });

    std::ofstream out(path);
    if (out) {
        out << "app,load,system,violation,cpu,decision_us\n";
        out.precision(17);
        for (const GridRow &row : grid) {
            out << static_cast<int>(row.app) << ','
                << static_cast<int>(row.load) << ','
                << static_cast<int>(row.system) << ','
                << row.result.violationRate << ',' << row.result.cpuCores
                << ',' << row.result.decisionLatencyUs << "\n";
        }
    }
    return grid;
}

} // namespace ursa::bench
