/**
 * @file
 * Reproduces paper Fig. 10: estimated vs measured latency of the video
 * processing pipeline's two priorities over 150 minutes (5-minute
 * windows), with SLAs at p99 (high priority) and p50 (low priority).
 * The paper reports mean estimated/measured ratios of 1.00 (high) and
 * 0.96 (low). The estimation machinery is the same as Fig. 9's.
 */

#include "common.h"

#include "core/manager.h"
#include "core/theorem.h"
#include "sim/client.h"
#include "workload/arrival.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace ursa;
using namespace ursa::bench;
using namespace ursa::sim;

namespace
{

int
nearestLevel(const core::ServiceProfile &svc,
             const std::vector<double> &loads, int replicas)
{
    if (svc.levels.empty() || replicas <= 0)
        return -1;
    double current = 0.0;
    for (double l : loads)
        current += l / replicas;
    int best = 0;
    double bestDiff = 1e300;
    for (std::size_t l = 0; l < svc.levels.size(); ++l) {
        double total = 0.0;
        for (double v : svc.levels[l].loadPerReplica)
            total += v;
        const double diff = std::fabs(total - current);
        if (diff < bestDiff) {
            bestDiff = diff;
            best = static_cast<int>(l);
        }
    }
    return best;
}

} // namespace

int
main()
{
    std::printf("Fig. 10 reproduction: estimated vs measured latency, "
                "video pipeline (p99 of the\nhigh priority, p50 of the "
                "low priority), 150 minutes in 5-minute windows.\n\n");

    const apps::AppSpec app = makeApp(AppId::VideoPipeline);
    const auto profile = cachedProfile(app, "video_mix1", 2024);
    const auto slaVisits = core::computeSlaVisitCounts(app);

    Cluster cluster(777);
    app.instantiate(cluster);
    core::UrsaManager manager(cluster, app, profile);
    if (!manager.deploy(app.nominalRps, app.exploreMix)) {
        std::printf("model infeasible\n");
        return 1;
    }
    OpenLoopClient client(
        cluster,
        workload::diurnalRate(0.8 * app.nominalRps, 1.5 * app.nominalRps,
                              75 * kMin),
        fixedMix(app.exploreMix), 5);
    client.start(0);

    std::printf("%-5s %22s %22s\n", "min", "high est/meas (s)",
                "low est/meas (s)");

    std::vector<double> ratio(app.classes.size(), 1.0);
    std::vector<bool> seeded(app.classes.size(), false);
    std::vector<double> ratioSum(app.classes.size(), 0.0);
    std::vector<int> ratioCount(app.classes.size(), 0);

    const SimTime step = 5 * kMin;
    for (SimTime t = 0; t < 150 * kMin; t += step) {
        cluster.run(t + step);
        std::vector<int> level(app.services.size(), -1);
        for (std::size_t s = 0; s < app.services.size(); ++s) {
            std::vector<double> loads(app.classes.size(), 0.0);
            for (std::size_t c = 0; c < app.classes.size(); ++c)
                loads[c] = cluster.metrics().arrivalRate(
                    static_cast<ServiceId>(s), static_cast<int>(c), t,
                    t + step);
            level[s] = nearestLevel(
                profile.services[s], loads,
                cluster.service(static_cast<ServiceId>(s))
                    .activeReplicas());
        }

        std::printf("%-5lld", (long long)((t + step) / kMin));
        for (std::size_t c = 0; c < app.classes.size(); ++c) {
            std::vector<std::vector<double>> stages;
            for (std::size_t s = 0; s < app.services.size(); ++s) {
                const int repeats = static_cast<int>(
                    std::lround(slaVisits[s][c]));
                if (repeats <= 0 || level[s] < 0 ||
                    !profile.services[s].handlesClass(
                        static_cast<int>(c)))
                    continue;
                for (int r = 0; r < repeats; ++r)
                    stages.push_back(
                        profile.services[s].levels[level[s]].latency[c]);
            }
            const auto split = core::optimizePercentileSplit(
                stages, profile.grid, app.classes[c].sla.percentile);
            const double ub = split.feasible ? split.totalLatency : 0.0;
            const double est = ub * ratio[c];
            const auto meas = cluster.metrics()
                                  .endToEnd(static_cast<int>(c))
                                  .collect(t, t + step);
            const double measured =
                meas.empty() ? 0.0
                             : meas.percentile(
                                   app.classes[c].sla.percentile);
            std::printf("        %7.2f/%-7.2f", est / 1e6,
                        measured / 1e6);
            if (ub > 0.0 && measured > 0.0) {
                if (t >= 10 * kMin) {
                    ratioSum[c] += est / measured;
                    ++ratioCount[c];
                }
                const double r = measured / ub;
                ratio[c] = seeded[c] ? 0.5 * ratio[c] + 0.5 * r : r;
                seeded[c] = true;
            }
        }
        std::printf("\n");
    }

    std::printf("\naverage estimated/measured ratio (paper: high 1.00, "
                "low 0.96):\n");
    for (std::size_t c = 0; c < app.classes.size(); ++c) {
        std::printf("  %-14s %.3f\n", app.classes[c].name.c_str(),
                    ratioCount[c] ? ratioSum[c] / ratioCount[c] : 0.0);
    }
    return 0;
}
