/**
 * @file
 * Reproduces paper Fig. 11: SLA violation rates of Ursa, Sinan, Firm,
 * Auto-a and Auto-b across the four applications (social network,
 * vanilla social network, media service, video pipeline) under
 * constant, dynamic (diurnal + burst) and skewed loads.
 *
 * The full grid is simulated once and cached under .ursa_cache/, so
 * bench_fig12_cpu_allocation (the same experiment's resource view)
 * reuses it. Expected shape (Sec. VII-E): Ursa 0.1-8.5% under
 * constant/dynamic and 0.5-2% under skewed loads; ML systems 9-52%;
 * Auto-a worst; Auto-b close to Ursa on SLAs.
 */

#include "common.h"

#include <cstdio>

using namespace ursa::bench;

int
main()
{
    std::printf("Fig. 11 reproduction: SLA violation rate (%% of "
                "1-minute windows whose latency at the\nSLA percentile "
                "exceeds the target), per system / application / "
                "load.\n\n");
    PerfHarnessOptions opts;
    const auto grid = performanceGrid(opts);

    const System systems[] = {System::Ursa, System::Sinan, System::Firm,
                              System::AutoA, System::AutoB};
    std::printf("%-15s %-9s", "app", "load");
    for (System s : systems)
        std::printf(" %9s", toString(s));
    std::printf("\n");

    AppId lastApp = AppId::VideoPipeline;
    bool first = true;
    for (const GridRow &row : grid) {
        if (row.system != System::Ursa)
            continue; // one printed row per (app, load)
        if (!first && row.app != lastApp)
            std::printf("\n");
        first = false;
        lastApp = row.app;
        std::printf("%-15s %-9s", toString(row.app), toString(row.load));
        for (System s : systems) {
            for (const GridRow &cell : grid) {
                if (cell.app == row.app && cell.load == row.load &&
                    cell.system == s) {
                    std::printf(" %8.1f%%",
                                100.0 * cell.result.violationRate);
                }
            }
        }
        std::printf("\n");
    }

    // Aggregate summary in the paper's terms.
    auto meanViol = [&](System s, bool skewed) {
        double sum = 0.0;
        int n = 0;
        for (const GridRow &row : grid) {
            const bool isSkew = row.load == LoadKind::SkewedUp ||
                                row.load == LoadKind::SkewedDown;
            if (row.system == s && isSkew == skewed) {
                sum += row.result.violationRate;
                ++n;
            }
        }
        return 100.0 * sum / n;
    };
    std::printf("\nmean violation rate (constant+dynamic | skewed):\n");
    for (System s : systems) {
        std::printf("  %-7s %5.1f%% | %5.1f%%\n", toString(s),
                    meanViol(s, false), meanViol(s, true));
    }
    return 0;
}
