/**
 * @file
 * Trace-replay comparison: record a long low-rate diurnal arrival
 * trace, extract its arrival curve, compress it 100x with
 * scaleTrace() (WorkloadCompactor-style: a day-scale trace becomes a
 * minutes-scale stress replay at the social network's nominal rate),
 * and replay it through all five managed systems — the Fig. 11/12
 * harness driven by a recorded trace instead of a synthetic profile.
 */

#include "common.h"

#include "workload/arrival.h"
#include "workload/arrival_curve.h"
#include "workload/generator.h"

#include <cstdio>

using namespace ursa;
using namespace ursa::bench;
using namespace ursa::sim;

namespace
{

void
printCurve(const char *title, const workload::ArrivalCurve &curve)
{
    std::printf("%s\n", title);
    std::printf("  %-12s %12s %14s %10s\n", "window", "max arrivals",
                "r (req/s)", "b (req)");
    const auto rb = curve.rb();
    for (std::size_t i = 0; i < curve.points.size(); ++i) {
        const auto &p = curve.points[i];
        std::printf("  %9.3f s %12zu", toSec(p.window), p.maxArrivals);
        if (i < rb.size())
            std::printf(" %14.1f %10.1f", rb[i].ratePerSec, rb[i].burst);
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    const double kScale = 100.0;
    PerfHarnessOptions opts;
    opts.measure = 10 * kMin;

    const apps::AppSpec app = makeApp(AppId::Social);

    // Record at 1/100th of the nominal rate over 100x the measured
    // window, so the compressed replay spans one measurement window at
    // the nominal rate.
    const SimTime span = static_cast<SimTime>(kScale) * opts.measure;
    const double lowRps = app.nominalRps / kScale;
    workload::ProfileGenerator gen(
        workload::diurnalRate(lowRps, 2.0 * lowRps, span),
        fixedMix(app.exploreMix), 71);
    const auto trace = workload::recordTrace(gen, span);

    std::printf("Trace replay through the Fig. 11/12 harness (social "
                "network).\nRecorded %zu arrivals over %.1f h at %.1f "
                "rps mean; replayed at %.0fx.\n\n",
                trace.entries.size(), toSec(trace.duration()) / 3600.0,
                trace.meanRate(), kScale);

    printCurve("arrival curve of the recorded trace:",
               workload::extractCurve(trace));

    const auto scaled = workload::scaleTrace(trace, kScale);
    std::printf("\nscaled trace: %.1f rps mean over %.1f min "
                "(curve at window w maps to the\noriginal's at %.0fw)\n\n",
                scaled.meanRate(), toSec(scaled.duration()) / 60.0,
                kScale);

    const System systems[] = {System::Ursa, System::Sinan, System::Firm,
                              System::AutoA, System::AutoB};
    std::printf("%-8s %14s %12s %16s\n", "system", "SLA-viol rate",
                "CPU cores", "decision us");
    for (const System s : systems) {
        const CellResult r =
            runTraceCell(s, AppId::Social, scaled, opts);
        std::printf("%-8s %13.1f%% %12.1f %16.1f\n", toString(s),
                    100.0 * r.violationRate, r.cpuCores,
                    r.decisionLatencyUs);
    }

    std::printf("\nExpected shape (paper Sec. VII-E): Ursa holds the "
                "lowest violation rate at\nmoderate CPU; Auto-a "
                "under-provisions, Auto-b over-provisions.\n");
    return 0;
}
