/**
 * @file
 * Ablation A2 (DESIGN.md §5): the value of enforcing backpressure-free
 * CPU thresholds during exploration (paper Sec. III). With enforcement
 * disabled, Algorithm 1 keeps recording hotter LPR levels whose
 * measured latencies still look fine in isolation; the optimizer then
 * happily picks them, and in the real topology the hot RPC services
 * push queueing back into their callers. We explore the social
 * network both ways and compare the deployed behavior.
 */

#include "common.h"

#include "core/explorer.h"
#include "core/manager.h"
#include "sim/client.h"
#include "workload/arrival.h"

#include <cstdio>

using namespace ursa;
using namespace ursa::bench;
using namespace ursa::sim;

namespace
{

struct Outcome
{
    double violationRate = 0.0;
    double cpuCores = 0.0;
    int totalLevels = 0;
};

Outcome
runWith(bool enforce)
{
    const apps::AppSpec app = makeApp(AppId::Social);
    auto opts = paperExploration(4242);
    opts.enforceBpThreshold = enforce;
    if (!enforce) {
        // Let only raw SLA violations stop exploration (keep the
        // queue-stability guard: an unstable level helps nobody).
        opts.maxUtilization = 0.92;
    }
    core::ExplorationController explorer(opts);
    const core::AppProfile profile = explorer.exploreApp(app);

    Cluster cluster(777);
    app.instantiate(cluster);
    Outcome out;
    for (const auto &svc : profile.services)
        out.totalLevels += static_cast<int>(svc.levels.size());

    // Apply the plan's replica counts *statically* (no resource
    // controller), isolating the level choice itself: with hotter
    // levels there is no online scaling to paper over the tails.
    core::ModelInput input;
    input.profile = &profile;
    for (const auto &cls : app.classes)
        input.slas.push_back(cls.sla);
    input.slaVisits = core::computeSlaVisitCounts(app);
    const auto visits = core::computeVisitCounts(app);
    double total = 0.0;
    for (double w : app.exploreMix)
        total += w;
    input.loads.assign(app.services.size(),
                       std::vector<double>(app.classes.size(), 0.0));
    for (std::size_t s = 0; s < app.services.size(); ++s)
        for (std::size_t c = 0; c < app.classes.size(); ++c)
            input.loads[s][c] =
                app.nominalRps * app.exploreMix[c] / total * visits[s][c];
    const auto plan = core::UrsaOptimizer().solve(input);
    if (!plan.feasible) {
        out.violationRate = 1.0;
        return out;
    }
    for (std::size_t s = 0; s < app.services.size(); ++s)
        if (plan.replicas[s] > 0)
            cluster.service(static_cast<ServiceId>(s))
                .setReplicas(plan.replicas[s]);

    OpenLoopClient client(cluster,
                          workload::constantRate(1.1 * app.nominalRps),
                          fixedMix(app.exploreMix), 5);
    client.start(0);
    cluster.run(35 * kMin);
    out.violationRate =
        cluster.metrics().overallSlaViolationRate(5 * kMin, 35 * kMin);
    for (ServiceId s = 0; s < cluster.numServices(); ++s)
        out.cpuCores +=
            cluster.metrics().meanAllocation(s, 5 * kMin, 35 * kMin);
    return out;
}

} // namespace

int
main()
{
    std::printf("Ablation: backpressure-free threshold enforcement "
                "during exploration\n(social network, static plan "
                "allocations, load 10%% above plan).\n\n");
    const Outcome with = runWith(true);
    const Outcome without = runWith(false);
    std::printf("%-28s %12s %10s %8s\n", "exploration policy",
                "SLA-viol", "CPU cores", "levels");
    std::printf("%-28s %11.1f%% %10.1f %8d\n",
                "bp threshold enforced", 100.0 * with.violationRate,
                with.cpuCores, with.totalLevels);
    std::printf("%-28s %11.1f%% %10.1f %8d\n",
                "bp threshold ignored", 100.0 * without.violationRate,
                without.cpuCores, without.totalLevels);
    std::printf("\nReading: ignoring the threshold records more "
                "(hotter) LPR levels, letting the\noptimizer shave "
                "CPU; the enforced threshold is the safety margin that "
                "keeps every\nchosen operating point in the "
                "backpressure-free zone of Sec. III. In thread-\n"
                "constrained regimes (bench_fig2_backpressure) "
                "operating past it inflates callers'\nlatencies by an "
                "order of magnitude.\n");
    return 0;
}
