/**
 * @file
 * Shared infrastructure for the reproduction benchmarks: paper-scale
 * exploration settings, on-disk caching of exploration profiles and
 * Sinan training data (so the expensive offline phases run once across
 * bench binaries), the 5-system deployment harness behind Figs. 11-12,
 * and small table-printing helpers.
 *
 * Cache files live under ./.ursa_cache (override with URSA_CACHE_DIR).
 * Delete the directory to force full recomputation.
 */

#ifndef URSA_BENCH_COMMON_H
#define URSA_BENCH_COMMON_H

#include "apps/app.h"
#include "baselines/sinan.h"
#include "core/explorer.h"
#include "core/profile.h"
#include "workload/trace.h"

#include <optional>
#include <string>
#include <vector>

namespace ursa::bench
{

/** Directory for cached artifacts (created on demand). */
std::string cacheDir();

/** Paper-scale exploration settings (1-minute windows, 10 per level). */
core::ExplorationOptions paperExploration(std::uint64_t seed);

/**
 * Exploration profile for an app, loaded from cache or computed (and
 * cached). `tag` names the cache entry. Thread-safe: concurrent calls
 * for the same tag compute the profile once.
 */
core::AppProfile cachedProfile(const apps::AppSpec &app,
                               const std::string &tag, std::uint64_t seed);

/** Same, with explicit exploration settings instead of paper scale. */
core::AppProfile cachedProfile(const apps::AppSpec &app,
                               const std::string &tag,
                               const core::ExplorationOptions &explore);

/** Sinan config used across benches. */
baselines::SinanConfig benchSinanConfig(const apps::AppSpec &app,
                                        std::uint64_t seed);

/**
 * Sinan training samples for an app (collected on a dedicated cluster
 * under the canonical mix), cached on disk. `count` samples at the
 * config's interval.
 */
std::vector<baselines::SinanSample>
cachedSinanSamples(const apps::AppSpec &app, const std::string &tag,
                   int count, std::uint64_t seed);

// --- the Fig. 11/12 deployment harness ------------------------------

/** Managed systems under comparison (paper Sec. VII-B). */
enum class System
{
    Ursa,
    Sinan,
    Firm,
    AutoA,
    AutoB,
};

/** Evaluation loads (paper Sec. VII-E). */
enum class LoadKind
{
    Constant,
    Diurnal,
    Burst,
    SkewedUp,   ///< update-heavy / high-priority-heavy mix
    SkewedDown, ///< update-light / low-priority-heavy mix
};

const char *toString(System s);
const char *toString(LoadKind l);

/** Which of the four paper applications. */
enum class AppId
{
    Social,
    VanillaSocial,
    Media,
    VideoPipeline,
};

const char *toString(AppId a);
apps::AppSpec makeApp(AppId id);

/** Result of one (system, app, load) deployment cell. */
struct CellResult
{
    double violationRate = 0.0; ///< window-based SLA violation rate
    double cpuCores = 0.0;      ///< mean total allocated cores
    double decisionLatencyUs = 0.0; ///< mean control decision latency
};

/** Harness tuning. */
struct PerfHarnessOptions
{
    sim::SimTime warmup = 5 * sim::kMin;
    sim::SimTime measure = 30 * sim::kMin;
    /** Firm online-training decision steps before measurement. */
    int firmTrainSteps = 400;
    /** Sinan training samples (paper prescribes 10k; see Table V
     * bench for the prescription vs what we run here). */
    int sinanSamples = 500;
    std::uint64_t seed = 2024;
    /**
     * Exploration settings behind Ursa's cached profile; unset means
     * paperExploration(seed). The determinism regression test dials
     * this down to keep a full grid run cheap.
     */
    std::optional<core::ExplorationOptions> exploration;
};

/**
 * Run one deployment cell. Deterministic per (system, app, load,
 * opts.seed).
 */
CellResult runCell(System system, AppId app, LoadKind load,
                   const PerfHarnessOptions &opts);

/**
 * Run one deployment cell driven by a recorded arrival trace instead
 * of a synthetic load profile. The trace loops for warmup plus the
 * measured window; deploy-time thresholds come from the trace's own
 * mean rate and class mix (classes it never exercises get weight 0).
 * Throws if the trace is empty or uses classes the app lacks.
 * Deterministic per (system, app, trace, opts.seed).
 */
CellResult runTraceCell(System system, AppId app,
                        const workload::ArrivalTrace &trace,
                        const PerfHarnessOptions &opts);

/**
 * All cells of the Fig. 11/12 grid, cached on disk so the two bench
 * binaries don't re-simulate. Row order: app-major, then load, then
 * system. Cells are independent simulations and run on the ursa::exec
 * pool (URSA_THREADS ways); the result is bit-identical for any
 * thread count.
 */
struct GridRow
{
    AppId app;
    LoadKind load;
    System system;
    CellResult result;
};
std::vector<GridRow> performanceGrid(const PerfHarnessOptions &opts);

/** The skewed mix of an app (factor applied to its update class). */
std::vector<double> skewedMix(const apps::AppSpec &app, AppId id,
                              bool up);

} // namespace ursa::bench

#endif // URSA_BENCH_COMMON_H
