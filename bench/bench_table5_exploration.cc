/**
 * @file
 * Reproduces paper Table V: exploration overhead (samples collected and
 * exploration time) of Ursa vs the ML-driven systems on the three
 * benchmark applications.
 *
 * Ursa's numbers are *measured*: the full Algorithm-1 exploration (plus
 * Sec.-III backpressure profiling) actually runs here at the paper's
 * sampling frequency (one sample per minute, 10 per LPR level); the
 * wall-clock column is simulated time, with per-service explorations
 * running in parallel as in the paper. Sinan/Firm are charged their
 * papers' prescribed budget — 10,000 samples at the same once-per-
 * minute frequency = 166.7 hours — exactly as the paper charges them.
 * The video pipeline is explored under the paper's four priority
 * mixes (5:95, 25:75, 50:50, 75:25).
 */

#include "common.h"

#include "core/explorer.h"

#include <cstdio>
#include <vector>

using namespace ursa;
using namespace ursa::bench;

int
main()
{
    std::printf("Table V reproduction: exploration overheads\n\n");
    std::printf("%-10s %-12s %10s %10s %10s %10s\n", "App", "System",
                "Samples", "Time(h)", "ratio(S)", "ratio(T)");

    struct Row
    {
        const char *name;
        int samples;
        double hours;
    };
    std::vector<Row> rows;

    // Social network.
    {
        const auto app = makeApp(AppId::Social);
        const auto prof = cachedProfile(app, "social", 2024);
        rows.push_back({"Social", prof.totalSamples(),
                        sim::toSec(prof.wallClockExploreTime()) / 3600.0});
    }
    // Media service.
    {
        const auto app = makeApp(AppId::Media);
        const auto prof = cachedProfile(app, "media", 2024);
        rows.push_back({"Media", prof.totalSamples(),
                        sim::toSec(prof.wallClockExploreTime()) / 3600.0});
    }
    // Video pipeline: the paper explores four priority mixes; samples
    // accumulate, wall-clock time is the max (mixes explored one after
    // another per service, services in parallel).
    {
        int samples = 0;
        sim::SimTime serial = 0;
        const double fracs[] = {0.05, 0.25, 0.50, 0.75};
        int i = 0;
        for (double frac : fracs) {
            const auto app = apps::makeVideoPipeline(frac);
            const auto prof = cachedProfile(
                app, "video_mix" + std::to_string(i++), 2024);
            samples += prof.totalSamples();
            serial += prof.wallClockExploreTime();
        }
        rows.push_back({"Video", samples, sim::toSec(serial) / 3600.0});
    }

    const double mlSamples = 10000.0;
    const double mlHours = 10000.0 / 60.0; // one sample per minute
    for (const Row &row : rows) {
        std::printf("%-10s %-12s %10d %10.1f %10s %10s\n", row.name,
                    "Ursa", row.samples, row.hours, "", "");
        std::printf("%-10s %-12s %10.0f %10.1f %9.1fx %9.1fx\n", "",
                    "Sinan/Firm", mlSamples, mlHours,
                    mlSamples / row.samples, mlHours / row.hours);
    }

    std::printf("\nPaper reference: Ursa 390-600 samples / 0.8-1.2 h; "
                "sample-size reduction 16.7-25.6x,\nexploration-time "
                "reduction 128.2-208.4x.\n");
    return 0;
}
