/**
 * @file
 * Ablation A1 (DESIGN.md §5): the value of Theorem 1's freedom to pick
 * *uneven* percentile splits. The solver may give a flat-tailed stage
 * p99.9 and spend the saved residual on a steep-tailed stage; the
 * naive alternative gives every stage an equal share of the residual
 * budget. We compare (a) the achievable latency bound on synthetic
 * chains and (b) the CPU the full Ursa model needs on the social
 * network under both policies.
 */

#include "common.h"

#include "core/mip_model.h"
#include "core/theorem.h"
#include "stats/rng.h"

#include <cstdio>

using namespace ursa;
using namespace ursa::bench;

namespace
{

void
syntheticChains()
{
    std::printf("-- latency bound on random heterogeneous chains "
                "(p99 end-to-end)\n");
    std::printf("%8s %14s %14s %10s\n", "chain", "optimized(ms)",
                "even-split(ms)", "reduction");
    stats::Rng rng(5);
    const core::PercentileGrid grid = core::defaultGrid();
    double totalReduction = 0.0;
    int feasibleBoth = 0;
    for (int n : {2, 3, 4, 5}) {
        // Stages with diverse tail steepness.
        std::vector<std::vector<double>> stages;
        for (int s = 0; s < n; ++s) {
            const double base = rng.uniform(5.0, 40.0);
            const double steep = rng.uniform(0.1, 3.0);
            std::vector<double> row;
            for (std::size_t g = 0; g < grid.size(); ++g)
                row.push_back(base *
                              (1.0 + steep * g * g / 10.0) * 1000.0);
            stages.push_back(row);
        }
        const auto opt =
            core::optimizePercentileSplit(stages, grid, 99.0);
        // Even split: the largest grid percentile with residual <=
        // budget/n for every stage.
        const double share = 1.0 / n;
        int gidx = -1;
        for (std::size_t g = 0; g < grid.size(); ++g)
            if (100.0 - grid[g] <= share + 1e-12)
                gidx = static_cast<int>(g);
        double even = 0.0;
        bool evenFeasible = gidx >= 0;
        if (evenFeasible)
            for (const auto &row : stages)
                even += row[gidx];
        if (opt.feasible && evenFeasible) {
            ++feasibleBoth;
            totalReduction += 1.0 - opt.totalLatency / even;
            std::printf("%8d %14.1f %14.1f %9.1f%%\n", n,
                        opt.totalLatency / 1000.0, even / 1000.0,
                        100.0 * (1.0 - opt.totalLatency / even));
        } else {
            std::printf("%8d %14s %14s\n", n,
                        opt.feasible ? "ok" : "infeasible",
                        evenFeasible ? "ok" : "infeasible");
        }
    }
    if (feasibleBoth)
        std::printf("  mean bound reduction: %.1f%%\n\n",
                    100.0 * totalReduction / feasibleBoth);
}

void
socialNetworkCpu()
{
    std::printf("-- CPU needed by the full Ursa model on the social "
                "network\n");
    const apps::AppSpec app = makeApp(AppId::Social);
    const auto profile = cachedProfile(app, "social", 2024);

    core::ModelInput input;
    input.profile = &profile;
    for (const auto &cls : app.classes)
        input.slas.push_back(cls.sla);
    input.slaVisits = core::computeSlaVisitCounts(app);
    const auto visits = core::computeVisitCounts(app);
    double total = 0.0;
    for (double w : app.exploreMix)
        total += w;
    input.loads.assign(app.services.size(),
                       std::vector<double>(app.classes.size(), 0.0));
    for (std::size_t s = 0; s < app.services.size(); ++s)
        for (std::size_t c = 0; c < app.classes.size(); ++c)
            input.loads[s][c] =
                app.nominalRps * app.exploreMix[c] / total * visits[s][c];

    core::OptimizerOptions normal;
    core::OptimizerOptions even;
    even.evenSplit = true;
    const auto optOut = core::UrsaOptimizer(normal).solve(input);
    const auto evenOut = core::UrsaOptimizer(even).solve(input);

    auto show = [](const char *name, const core::ModelOutput &out) {
        if (out.feasible)
            std::printf("  %-22s feasible, %.1f cores\n", name,
                        out.totalCpuCores);
        else
            std::printf("  %-22s INFEASIBLE\n", name);
    };
    show("optimized split", optOut);
    show("naive even split", evenOut);
    if (optOut.feasible && evenOut.feasible) {
        std::printf("  -> the optimized split saves %.1f%% CPU\n",
                    100.0 * (1.0 - optOut.totalCpuCores /
                                       evenOut.totalCpuCores));
    }
}

} // namespace

int
main()
{
    std::printf("Ablation: Theorem-1 percentile-split optimization vs "
                "a naive even split.\n\n");
    syntheticChains();
    socialNetworkCpu();
    return 0;
}
