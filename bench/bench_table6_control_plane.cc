/**
 * @file
 * Reproduces paper Table VI: wall-clock control-plane latency of the
 * four approaches, for the two decision paths —
 *
 *   deployment: the periodic scaling decision
 *     Ursa   = per-service threshold check (Welch t-test on loads)
 *     Sinan  = NN + GBDT inference over the candidate allocations
 *     Firm   = per-service RL agent (Q-network) inference
 *     Auto   = a single utilization comparison
 *
 *   update: adapting the model to changed logic / load mixes
 *     Ursa   = one MIP solve (specialized exact solver)
 *     Sinan  = full retraining (the paper reports minutes / N/A)
 *     Firm   = one RL training iteration (thousands may be needed)
 *
 * Uses google-benchmark; absolute values depend on the host, but the
 * ordering (Auto < Ursa << Firm < Sinan for deployment; Ursa solving
 * once vs Firm needing many iterations for update) is the paper's
 * result.
 */

#include "common.h"

#include "baselines/firm.h"
#include "core/manager.h"
#include "ml/rl.h"
#include "sim/client.h"
#include "workload/arrival.h"

#include <benchmark/benchmark.h>

using namespace ursa;
using namespace ursa::bench;

namespace
{

/** Shared fixtures built once: a loaded social-network cluster with a
 * cached profile, a trained Sinan model, and Firm-style agents. */
struct Fixtures
{
    apps::AppSpec app = makeApp(AppId::Social);
    core::AppProfile profile;
    std::unique_ptr<sim::Cluster> cluster;
    std::unique_ptr<sim::OpenLoopClient> client;
    std::unique_ptr<core::UrsaManager> manager;
    std::unique_ptr<baselines::SinanModel> sinan;
    std::vector<double> sinanLoads;
    std::unique_ptr<ml::QAgent> firmAgent;
    core::ModelInput modelInput;

    Fixtures()
    {
        profile = cachedProfile(app, "social", 2024);
        cluster = std::make_unique<sim::Cluster>(42);
        app.instantiate(*cluster);
        manager = std::make_unique<core::UrsaManager>(*cluster, app,
                                                      profile);
        if (!manager->deploy(app.nominalRps, app.exploreMix))
            throw std::runtime_error("infeasible");
        client = std::make_unique<sim::OpenLoopClient>(
            *cluster, workload::constantRate(app.nominalRps),
            sim::fixedMix(app.exploreMix), 7);
        client->start(0);
        cluster->run(10 * sim::kMin); // populate metrics

        const auto samples = cachedSinanSamples(app, "social", 500, 2024);
        sinan = std::make_unique<baselines::SinanModel>(
            app, benchSinanConfig(app, 2024));
        sinan->train(samples);
        sinanLoads.assign(app.classes.size(), 0.0);
        for (std::size_t c = 0; c < app.classes.size(); ++c)
            sinanLoads[c] = app.nominalRps * app.exploreMix[c];

        baselines::FirmConfig firmCfg;
        firmAgent = std::make_unique<ml::QAgent>(firmCfg.agent, 7);
        for (int i = 0; i < 64; ++i)
            firmAgent->observe({{0.5, 0.2, 1.0, 0.1},
                                i % 5,
                                0.1,
                                {0.5, 0.2, 1.0, 0.1}});

        modelInput.profile = &profile;
        for (const auto &cls : app.classes)
            modelInput.slas.push_back(cls.sla);
        modelInput.slaVisits = core::computeSlaVisitCounts(app);
        const auto visits = core::computeVisitCounts(app);
        modelInput.loads.assign(
            app.services.size(),
            std::vector<double>(app.classes.size(), 0.0));
        double total = 0.0;
        for (double w : app.exploreMix)
            total += w;
        for (std::size_t s = 0; s < app.services.size(); ++s)
            for (std::size_t c = 0; c < app.classes.size(); ++c)
                modelInput.loads[s][c] = app.nominalRps *
                                         app.exploreMix[c] / total *
                                         visits[s][c];
    }
};

Fixtures &
fixtures()
{
    static Fixtures f;
    return f;
}

void
BM_Deploy_Ursa_ThresholdCheck(benchmark::State &state)
{
    // One full manager pass: a Welch-t-test threshold check per
    // service (the entire critical path of an Ursa scaling decision).
    Fixtures &f = fixtures();
    core::ResourceController ctl(*f.cluster, f.cluster->serviceId(
                                                 "post-storage"));
    ctl.setThresholds(f.manager->thresholds()[f.cluster->serviceId(
        "post-storage")]);
    for (auto _ : state)
        benchmark::DoNotOptimize(ctl.tick());
}

void
BM_Deploy_Sinan_ModelInference(benchmark::State &state)
{
    // Candidate sweep through the latency NN + violation GBDT, as one
    // scheduler tick performs.
    Fixtures &f = fixtures();
    std::vector<int> replicas(f.app.services.size(), 4);
    for (auto _ : state) {
        double acc = 0.0;
        for (std::size_t s = 0; s < replicas.size(); ++s) {
            for (int d : {-1, 0, 1}) {
                auto cand = replicas;
                cand[s] = std::max(1, cand[s] + d);
                const auto x = f.sinan->features(cand, f.sinanLoads);
                for (double v : f.sinan->predictRatios(x))
                    acc += v;
                acc += f.sinan->violationProbability(x);
            }
        }
        benchmark::DoNotOptimize(acc);
    }
}

void
BM_Deploy_Firm_AgentInference(benchmark::State &state)
{
    // Greedy Q-network inference, one per service.
    Fixtures &f = fixtures();
    const std::vector<double> s = {0.4, 0.3, 1.0, 0.2};
    for (auto _ : state) {
        int acc = 0;
        for (std::size_t i = 0; i < f.app.services.size(); ++i)
            acc += f.firmAgent->act(s, false);
        benchmark::DoNotOptimize(acc);
    }
}

void
BM_Deploy_Autoscaling_ThresholdCheck(benchmark::State &state)
{
    // A single utilization-vs-threshold comparison.
    double util = 0.57;
    for (auto _ : state) {
        benchmark::DoNotOptimize(util > 0.6 ? 1 : (util < 0.3 ? -1 : 0));
        util += 1e-9;
    }
}

void
BM_Update_Ursa_MipSolve(benchmark::State &state)
{
    // Full optimization-model recomputation (thresholds for every
    // service) — Ursa adapts to a changed mix in ONE such solve.
    Fixtures &f = fixtures();
    core::UrsaOptimizer optimizer;
    for (auto _ : state) {
        const auto out = optimizer.solve(f.modelInput);
        benchmark::DoNotOptimize(out.feasible);
    }
}

void
BM_Update_Firm_TrainIteration(benchmark::State &state)
{
    // One RL training iteration; Firm may need thousands to adapt.
    Fixtures &f = fixtures();
    for (auto _ : state)
        benchmark::DoNotOptimize(f.firmAgent->trainStep());
}

void
BM_Update_Sinan_FullRetrain(benchmark::State &state)
{
    // Sinan's update path is a full retrain over the dataset (the
    // paper lists it as N/A / minutes on a GPU).
    Fixtures &f = fixtures();
    const auto samples = cachedSinanSamples(f.app, "social", 500, 2024);
    for (auto _ : state) {
        baselines::SinanModel model(f.app,
                                    benchSinanConfig(f.app, 2024));
        model.train(samples);
        benchmark::DoNotOptimize(model.trained());
    }
}

BENCHMARK(BM_Deploy_Autoscaling_ThresholdCheck);
BENCHMARK(BM_Deploy_Ursa_ThresholdCheck);
BENCHMARK(BM_Deploy_Firm_AgentInference);
BENCHMARK(BM_Deploy_Sinan_ModelInference);
BENCHMARK(BM_Update_Ursa_MipSolve)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Update_Firm_TrainIteration)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Update_Sinan_FullRetrain)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Table VI reproduction: control-plane latency. The "
                "paper's ordering to verify:\n  deployment:  "
                "Autoscaling < Ursa << Firm < Sinan\n  update:      "
                "Ursa (one solve) vs Firm (per-iteration; needs many) "
                "vs Sinan (full retrain)\n\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
