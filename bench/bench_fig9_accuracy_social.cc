/**
 * @file
 * Reproduces paper Fig. 9: estimated vs measured p99 latency of four
 * representative social-network request types (post, update-timeline,
 * object-detect, sentiment-analysis) over 150 minutes in 5-minute
 * windows, with resource allocations changing dynamically (the Ursa
 * controller scales under a diurnal load).
 *
 * The estimate is the paper's calibrated bound: per window we locate
 * each service's current operating LPR in the exploration data, sum
 * per-stage latencies under the Theorem-1 percentile split, and scale
 * by the EWMA overestimation ratio observed so far (Sec. IV /
 * Sec. VII-D). The paper reports estimated/measured ratios of
 * 0.97-1.05.
 */

#include "common.h"

#include "core/manager.h"
#include "core/theorem.h"
#include "sim/client.h"
#include "workload/arrival.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace ursa;
using namespace ursa::bench;
using namespace ursa::sim;

namespace
{

/** Level of `svc` whose total LPR is nearest the current one. */
int
nearestLevel(const core::ServiceProfile &svc,
             const std::vector<double> &loads, int replicas)
{
    if (svc.levels.empty() || replicas <= 0)
        return -1;
    double current = 0.0;
    for (double l : loads)
        current += l / replicas;
    int best = 0;
    double bestDiff = 1e300;
    for (std::size_t l = 0; l < svc.levels.size(); ++l) {
        double total = 0.0;
        for (double v : svc.levels[l].loadPerReplica)
            total += v;
        const double diff = std::fabs(total - current);
        if (diff < bestDiff) {
            bestDiff = diff;
            best = static_cast<int>(l);
        }
    }
    return best;
}

} // namespace

int
main()
{
    std::printf("Fig. 9 reproduction: estimated vs measured p99 latency, "
                "social network, 5-minute\nwindows over 150 minutes "
                "under a diurnal load with live scaling.\n\n");

    const apps::AppSpec app = makeApp(AppId::Social);
    const auto profile = cachedProfile(app, "social", 2024);
    const auto slaVisits = core::computeSlaVisitCounts(app);

    Cluster cluster(555);
    app.instantiate(cluster);
    core::UrsaManager manager(cluster, app, profile);
    if (!manager.deploy(app.nominalRps, app.exploreMix)) {
        std::printf("model infeasible\n");
        return 1;
    }
    OpenLoopClient client(
        cluster,
        workload::diurnalRate(0.8 * app.nominalRps, 1.6 * app.nominalRps,
                              75 * kMin),
        fixedMix(app.exploreMix), 5);
    client.start(0);

    const std::vector<std::string> shown = {
        "post", "update-timeline", "object-detect", "sentiment-analysis"};
    std::vector<int> classIdx;
    for (const auto &name : shown)
        classIdx.push_back(app.classIndex(name));

    std::printf("%-5s", "min");
    for (const auto &name : shown)
        std::printf("  %13s est/meas(ms)", name.c_str());
    std::printf("\n");

    std::vector<double> ratio(app.classes.size(), 1.0);
    std::vector<bool> seeded(app.classes.size(), false);
    std::vector<double> ratioSum(app.classes.size(), 0.0);
    std::vector<int> ratioCount(app.classes.size(), 0);

    const SimTime step = 5 * kMin;
    for (SimTime t = 0; t < 150 * kMin; t += step) {
        cluster.run(t + step);

        // Current operating level per service.
        std::vector<int> level(app.services.size(), -1);
        for (std::size_t s = 0; s < app.services.size(); ++s) {
            std::vector<double> loads(app.classes.size(), 0.0);
            for (std::size_t c = 0; c < app.classes.size(); ++c)
                loads[c] = cluster.metrics().arrivalRate(
                    static_cast<ServiceId>(s), static_cast<int>(c), t,
                    t + step);
            level[s] = nearestLevel(
                profile.services[s], loads,
                cluster.service(static_cast<ServiceId>(s))
                    .activeReplicas());
        }

        std::printf("%-5lld", (long long)((t + step) / kMin));
        for (std::size_t k = 0; k < classIdx.size(); ++k) {
            const int c = classIdx[k];
            // Upper bound from the current operating levels.
            std::vector<std::vector<double>> stages;
            for (std::size_t s = 0; s < app.services.size(); ++s) {
                const int repeats = static_cast<int>(
                    std::lround(slaVisits[s][c]));
                if (repeats <= 0 || level[s] < 0)
                    continue;
                if (!profile.services[s].handlesClass(c))
                    continue;
                for (int r = 0; r < repeats; ++r)
                    stages.push_back(
                        profile.services[s].levels[level[s]].latency[c]);
            }
            const auto split = core::optimizePercentileSplit(
                stages, profile.grid, app.classes[c].sla.percentile);
            const double ub =
                split.feasible ? split.totalLatency : 0.0;
            const double est = ub * ratio[c];

            const auto meas =
                cluster.metrics().endToEnd(c).collect(t, t + step);
            const double measured =
                meas.empty() ? 0.0
                             : meas.percentile(
                                   app.classes[c].sla.percentile);
            std::printf("  %12.1f/%-12.1f", est / 1000.0,
                        measured / 1000.0);
            if (ub > 0.0 && measured > 0.0) {
                if (t >= 10 * kMin) { // causal ratio established
                    ratioSum[c] += est / measured;
                    ++ratioCount[c];
                }
                const double r = measured / ub;
                ratio[c] = seeded[c] ? 0.5 * ratio[c] + 0.5 * r : r;
                seeded[c] = true;
            }
        }
        std::printf("\n");
    }

    std::printf("\naverage estimated/measured ratio (paper: "
                "0.97-1.05):\n");
    for (std::size_t k = 0; k < classIdx.size(); ++k) {
        const int c = classIdx[k];
        std::printf("  %-20s %.3f\n", shown[k].c_str(),
                    ratioCount[c] ? ratioSum[c] / ratioCount[c] : 0.0);
    }
    return 0;
}
