/**
 * @file
 * Reproduces paper Fig. 2: backpressure propagation in 5-tier chains
 * connected by nested RPC, event-driven RPC, and message queues. A
 * closed-loop client drives each chain for 10 minutes; the leaf tier's
 * CPU is throttled during minutes 3-6. Each cell prints the per-tier
 * p99 response time (S0 - R0, excluding downstream waits) per minute —
 * the paper's heat map as numbers.
 *
 * Expected shape: nested and event-driven RPC show strong inflation at
 * tier 4 (the throttled tier's parent) that attenuates up the chain;
 * the MQ chain shows none above the culprit.
 */

#include "apps/app.h"
#include "sim/client.h"
#include "trace/export.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace ursa;
using namespace ursa::sim;

namespace
{

/** Print one tierBreakdown table (span-derived queue/service/blocked). */
void
printBreakdown(const std::vector<trace::TierBreakdown> &rows,
               const char *title)
{
    std::printf("  %s (span-derived, per hop, ms):\n", title);
    std::printf("    %-8s %8s %8s %8s %8s %9s\n", "tier", "spans",
                "queue", "service", "blocked", "p99 tier");
    for (const auto &r : rows) {
        const std::string name =
            r.serviceId < 0 ? "client"
                            : "tier" + std::to_string(r.serviceId + 1);
        std::printf("    %-8s %8llu %8.1f %8.1f %8.1f %9.1f\n",
                    name.c_str(),
                    static_cast<unsigned long long>(r.spans),
                    r.meanQueueUs / 1000.0, r.meanServiceUs / 1000.0,
                    r.meanBlockedUs / 1000.0, r.p99TierUs / 1000.0);
    }
}

void
runChain(CallKind kind, const char *label)
{
    const apps::AppSpec app = apps::makeStudyChain(kind, 5);
    Cluster cluster(1234);
    app.instantiate(cluster);
    // Full-rate tracing feeds the per-tier latency breakdown column;
    // the ring must hold both comparison windows' spans.
    cluster.tracer().setCapacity(1u << 19);
    cluster.tracer().setSampling(1.0);

    // Closed loop: bounded in-flight requests let the backlog settle at
    // the culprit's parent instead of growing without bound.
    ClosedLoopClient client(cluster, 48, 360 * kMsec, fixedMix({1.0}), 7);
    client.start(0);

    cluster.run(3 * kMin);
    cluster.service(4).setCpuFactor(0.12); // throttle tier 5
    cluster.run(6 * kMin);
    cluster.service(4).setCpuFactor(1.0);
    cluster.run(10 * kMin);

    std::printf("\n-- %s --\n", label);
    std::printf("tier\\min |");
    for (int m = 0; m < 10; ++m)
        std::printf(" %7d", m + 1);
    std::printf("   (p99 tier response time, ms; throttle: min 4-6)\n");
    for (ServiceId tier = 0; tier < 5; ++tier) {
        std::printf("  tier %d |", tier + 1);
        for (int m = 0; m < 10; ++m) {
            const auto samples = cluster.metrics()
                                     .tierLatency(tier, 0)
                                     .collect(m * kMin, (m + 1) * kMin);
            if (samples.empty())
                std::printf(" %7s", "-");
            else
                std::printf(" %7.1f", samples.percentile(99.0) / 1000.0);
        }
        std::printf("\n");
    }

    // Summary: inflation factor per tier (throttled vs baseline).
    std::printf("  inflation x baseline:");
    for (ServiceId tier = 0; tier < 5; ++tier) {
        const auto base =
            cluster.metrics().tierLatency(tier, 0).collect(kMin, 3 * kMin);
        const auto hot = cluster.metrics()
                             .tierLatency(tier, 0)
                             .collect(4 * kMin, 6 * kMin);
        if (base.empty() || hot.empty()) {
            std::printf("  t%d=-", tier + 1);
            continue;
        }
        std::printf("  t%d=%.1f", tier + 1,
                    hot.percentile(99.0) / base.percentile(99.0));
    }
    std::printf("\n");

    // Span-derived attribution: the same backpressure shape, but with
    // the tier time split into queue wait, own service, and blocked-on-
    // child — the MQ chain's "no inflation" shows up as flat queue
    // columns above the culprit.
    const auto spans = cluster.tracer().snapshot();
    if (cluster.tracer().dropped() > 0)
        std::printf("  [trace ring truncated: %llu spans dropped]\n",
                    static_cast<unsigned long long>(
                        cluster.tracer().dropped()));
    printBreakdown(trace::tierBreakdown(spans, kMin, 3 * kMin),
                   "baseline min 2-3");
    printBreakdown(trace::tierBreakdown(spans, 4 * kMin, 6 * kMin),
                   "throttled min 5-6");

    // Optional Chrome/Perfetto export of the raw spans.
    if (const char *dir = std::getenv("URSA_TRACE_DIR")) {
        std::vector<std::string> serviceNames, classNames;
        for (ServiceId s = 0; s < cluster.numServices(); ++s)
            serviceNames.push_back(cluster.metrics().serviceName(s));
        for (ClassId c = 0; c < cluster.numClasses(); ++c)
            classNames.push_back(cluster.metrics().className(c));
        const std::string path = std::string(dir) + "/fig2_chain" +
                                 std::to_string(static_cast<int>(kind)) +
                                 ".json";
        std::ofstream out(path);
        trace::writeChromeTrace(spans, serviceNames, classNames, out);
        std::printf("  [chrome trace written to %s]\n", path.c_str());
    }
}

} // namespace

int
main()
{
    std::printf("Fig. 2 reproduction: backpressure in 5-tier chains "
                "(leaf CPU throttled to 12%% during minutes 4-6)\n");
    runChain(CallKind::NestedRpc, "nested RPC (Fig. 2a)");
    runChain(CallKind::EventRpc, "event-driven RPC (Fig. 2b)");
    runChain(CallKind::MqPublish, "message queue (Fig. 2c)");
    std::printf("\nPaper shape: backpressure significant for both RPC "
                "kinds, strongest at tier 4,\nattenuating up the chain; "
                "negligible for the MQ chain.\n");
    return 0;
}
