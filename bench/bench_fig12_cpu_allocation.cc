/**
 * @file
 * Reproduces paper Fig. 12: mean total CPU allocation (cores) of the
 * five systems across applications and loads — the resource view of
 * the same deployment grid as bench_fig11_sla_violations (cached, so
 * whichever binary runs first pays for the simulation).
 *
 * Expected shape (Sec. VII-E): Auto-a allocates the least (but
 * violates SLAs); Ursa allocates up to 86% less than the ML systems
 * under constant/dynamic loads and well below Auto-b; under skewed
 * loads Ursa may use slightly more than the ML systems while keeping
 * violations low.
 */

#include "common.h"

#include <cstdio>

using namespace ursa::bench;

int
main()
{
    std::printf("Fig. 12 reproduction: mean CPU allocation (cores), "
                "per system / application / load.\n\n");
    PerfHarnessOptions opts;
    const auto grid = performanceGrid(opts);

    const System systems[] = {System::Ursa, System::Sinan, System::Firm,
                              System::AutoA, System::AutoB};
    std::printf("%-15s %-9s", "app", "load");
    for (System s : systems)
        std::printf(" %9s", toString(s));
    std::printf("\n");

    AppId lastApp = AppId::VideoPipeline;
    bool first = true;
    for (const GridRow &row : grid) {
        if (row.system != System::Ursa)
            continue;
        if (!first && row.app != lastApp)
            std::printf("\n");
        first = false;
        lastApp = row.app;
        std::printf("%-15s %-9s", toString(row.app), toString(row.load));
        for (System s : systems) {
            for (const GridRow &cell : grid) {
                if (cell.app == row.app && cell.load == row.load &&
                    cell.system == s)
                    std::printf(" %9.1f", cell.result.cpuCores);
            }
        }
        std::printf("\n");
    }

    // Ursa's savings vs each system (paper quotes up to 86.2% vs ML,
    // and Auto-b allocating 13.6-148% more than Ursa).
    std::printf("\nmean CPU relative to Ursa (>1: uses more):\n");
    for (System s : systems) {
        double ratioSum = 0.0;
        int n = 0;
        for (const GridRow &row : grid) {
            if (row.system != s)
                continue;
            for (const GridRow &u : grid) {
                if (u.system == System::Ursa && u.app == row.app &&
                    u.load == row.load) {
                    ratioSum += row.result.cpuCores / u.result.cpuCores;
                    ++n;
                }
            }
        }
        std::printf("  %-7s %5.2fx\n", toString(s), ratioSum / n);
    }
    return 0;
}
