/**
 * @file
 * Reproduces paper Fig. 13: Ursa's CPU allocation tracking a diurnal
 * load on the social network. For four representative microservices we
 * print, per 4-minute interval, the service-local request rate and the
 * allocated CPU cores — the two y-axes of the figure. Expected shape:
 * allocations scale out promptly as the load rises and back in as it
 * falls.
 */

#include "common.h"

#include "core/manager.h"
#include "sim/client.h"
#include "workload/arrival.h"

#include <cstdio>

using namespace ursa;
using namespace ursa::bench;
using namespace ursa::sim;

int
main()
{
    std::printf("Fig. 13 reproduction: Ursa under a diurnal load "
                "(social network, load doubles to\nthe midpoint peak "
                "and falls back over 80 minutes).\n\n");

    const apps::AppSpec app = makeApp(AppId::Social);
    const auto profile = cachedProfile(app, "social", 2024);

    Cluster cluster(99);
    app.instantiate(cluster);
    core::UrsaManager manager(cluster, app, profile);
    if (!manager.deploy(app.nominalRps, app.exploreMix)) {
        std::printf("model infeasible\n");
        return 1;
    }
    const SimTime horizon = 80 * kMin;
    OpenLoopClient client(
        cluster,
        workload::diurnalRate(app.nominalRps, 2.0 * app.nominalRps,
                              horizon),
        fixedMix(app.exploreMix), 5);
    client.start(0);

    std::printf("%-5s", "min");
    for (const auto &name : app.representative)
        std::printf("   %12s rps/cores", name.c_str());
    std::printf("\n");

    const SimTime step = 4 * kMin;
    for (SimTime t = 0; t < horizon; t += step) {
        cluster.run(t + step);
        std::printf("%-5lld", (long long)((t + step) / kMin));
        for (const auto &name : app.representative) {
            const ServiceId sid = cluster.serviceId(name);
            double rps = 0.0;
            for (int c = 0; c < cluster.numClasses(); ++c)
                rps += cluster.metrics().arrivalRate(sid, c, t, t + step);
            std::printf("   %11.0f/%-10.1f", rps,
                        cluster.metrics().meanAllocation(sid, t,
                                                         t + step));
        }
        std::printf("\n");
    }

    std::printf("\nSLA violation rate across the swing: %.2f%%  "
                "(paper: Ursa scales in and out promptly\nwhile keeping "
                "violations low)\n",
                100.0 * cluster.metrics().overallSlaViolationRate(
                            4 * kMin, horizon));
    return 0;
}
