/**
 * @file
 * Reproduces paper Fig. 4: the backpressure-free CPU-threshold
 * profiling process for two social-network services — the post service
 * (post-storage here) and the timeline-read service. For each CPU
 * limit of the sweep we print the proxy p99, the tested-service p99,
 * and the tested CPU utilization; the orange convergence line of the
 * figure corresponds to the reported threshold.
 */

#include "apps/app.h"
#include "core/bp_profiler.h"
#include "core/explorer.h"

#include <cstdio>

using namespace ursa;

namespace
{

void
profileService(const apps::AppSpec &app, const char *serviceName)
{
    const int idx = app.serviceIndex(serviceName);
    core::ExplorationController explorer(
        core::ExplorationOptions{}); // only used for localRates
    const auto rates = explorer.localRates(app, idx);

    core::BpProfilerOptions opts;
    opts.stepDuration = 2 * sim::kMin;
    opts.sampleWindow = 10 * sim::kSec;
    opts.maxSteps = 12;
    const auto res =
        core::profileBackpressureThreshold(app, idx, rates, 77, opts);

    std::printf("\n-- %s --\n", serviceName);
    std::printf("%10s %14s %14s %12s\n", "CPU limit", "proxy p99(ms)",
                "tested p99(ms)", "utilization");
    for (const auto &step : res.steps) {
        std::printf("%10.2f %14.2f %14.2f %11.1f%%\n", step.cpuLimit,
                    step.proxyP99Us / 1000.0, step.testedP99Us / 1000.0,
                    100.0 * step.utilization);
    }
    if (res.converged) {
        std::printf("=> proxy latency converged; backpressure-free "
                    "threshold = %.1f%% CPU utilization\n",
                    100.0 * res.threshold);
    } else {
        std::printf("=> no convergence within the sweep; conservative "
                    "threshold = %.1f%%\n",
                    100.0 * res.threshold);
    }
    std::printf("   profiling cost: %.1f sim-minutes\n",
                sim::toSec(res.timeSpent) / 60.0);
}

} // namespace

int
main()
{
    std::printf("Fig. 4 reproduction: backpressure-free threshold "
                "profiling (3-tier proxy harness,\nCPU limit swept "
                "upward until Welch's t-test reports proxy-latency "
                "convergence).\n");
    std::printf("Paper reference points: post service 46.2%%, "
                "timeline-read 60.0%% (absolute values\ndepend on the "
                "service profile; the mechanism and curve shape are "
                "the target).\n");

    const apps::AppSpec app = apps::makeSocialNetwork(false);
    profileService(app, "post-storage");
    profileService(app, "timeline-read");
    return 0;
}
