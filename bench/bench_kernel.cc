/**
 * @file
 * DES-kernel throughput microbenchmark: drives the canonical
 * social-network application with the open-loop Poisson client for a
 * fixed span of simulated time and reports raw kernel throughput —
 * events/sec and requests/sec of wall-clock time. This is the number
 * the event kernel (calendar queue, batched dispatch, SBO callbacks,
 * object pools) is judged by; the historical record lives in the
 * checked-in BENCH_kernel.json trajectory.
 *
 * Two measurements per invocation:
 *   - the canonical single-simulation run (the PR-1 baseline config:
 *     one cluster, one client, seed 2024), whose event/request counts
 *     are bit-stable and pinned by scripts/bench_smoke.py;
 *   - with URSA_BENCH_SHARDS > 1, the connected-mesh run: ONE logical
 *     social-network simulation whose default per-hop delays let
 *     computeShardPlan cut it into one shard per service, co-advanced
 *     with cross-shard event exchange (window = the plan lookahead).
 *     Counts are bit-identical for any URSA_THREADS; the co-advance
 *     window is fine (one hop delay), so this measures the
 *     synchronization-bound regime of conservative PDES, not the
 *     embarrassingly parallel disconnected fleet of PR 6.
 *
 * Results are written to build/bench_out/ by default so local runs
 * never clobber the checked-in reference; `--update-reference` appends
 * a new trajectory entry to the source-tree BENCH_kernel.json (this is
 * the only way the reference changes).
 *
 * Environment:
 *   URSA_BENCH_REPS       repetitions (default 5; best rep is reported)
 *   URSA_BENCH_SIM_MIN    simulated minutes per rep (default 10)
 *   URSA_BENCH_SHARDS     > 1 enables the connected-mesh measurement
 *                         (the actual shard count comes from the plan;
 *                         1 = only the single-simulation measurement)
 *   URSA_THREADS          worker threads for the sharded run
 *   URSA_EVENTQUEUE       kernel backend ("calendar" default, "heap")
 *   URSA_BENCH_OUT        output JSON path (default
 *                         <build>/bench_out/BENCH_kernel.json)
 *   URSA_BENCH_LABEL      trajectory-entry label for --update-reference
 *   URSA_BENCH_COMMIT     commit id for --update-reference (default:
 *                         git rev-parse --short HEAD)
 *   URSA_TRACE_SAMPLING   request-sampling rate of the span tracer
 *                         (default 0 = disabled; used by the CI smoke
 *                         to bound tracing overhead and verify the
 *                         zero-perturbation contract)
 */

#include "common.h"

#include "exec/thread_pool.h"
#include "sim/client.h"
#include "sim/shard.h"
#include "workload/arrival.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#ifndef URSA_BENCH_OUT_DIR
#define URSA_BENCH_OUT_DIR "bench_out"
#endif
#ifndef URSA_BENCH_REFERENCE
#define URSA_BENCH_REFERENCE "BENCH_kernel.json"
#endif

namespace
{

long
envLong(const char *name, long fallback)
{
    const char *v = std::getenv(name);
    return v ? std::atol(v) : fallback;
}

std::string
envStr(const char *name, const std::string &fallback)
{
    const char *v = std::getenv(name);
    return v ? v : fallback;
}

struct RunResult
{
    double wallSec = 0.0;
    std::uint64_t events = 0;
    std::uint64_t requests = 0;

    double eventsPerSec() const { return events / wallSec; }
    double requestsPerSec() const { return requests / wallSec; }
};

/** One shard: the canonical app cluster plus its open-loop client.
 * Shard 0 reproduces the PR-1 canonical run bit-exactly. */
struct Shard
{
    std::unique_ptr<ursa::sim::Cluster> cluster;
    std::unique_ptr<ursa::sim::OpenLoopClient> client;

    Shard(const ursa::apps::AppSpec &app, std::uint64_t seed)
    {
        using namespace ursa;
        cluster = std::make_unique<sim::Cluster>(seed);
        app.instantiate(*cluster);
        if (const char *s = std::getenv("URSA_TRACE_SAMPLING"))
            cluster->tracer().setSampling(std::atof(s));
        client = std::make_unique<sim::OpenLoopClient>(
            *cluster, workload::constantRate(app.nominalRps),
            sim::fixedMix(app.exploreMix), seed + 5);
        client->start(0);
    }
};

RunResult
runSingleOnce(const ursa::apps::AppSpec &app, ursa::sim::SimTime simSpan,
              std::uint64_t seed)
{
    Shard shard(app, seed);
    const auto t0 = std::chrono::steady_clock::now();
    shard.cluster->run(simSpan);
    const auto t1 = std::chrono::steady_clock::now();

    RunResult r;
    r.wallSec = std::chrono::duration<double>(t1 - t0).count();
    r.events = shard.cluster->events().processed();
    r.requests = shard.client->submitted();
    return r;
}

/**
 * The connected-mesh measurement: one logical canonical run, cut by
 * computeShardPlan (default per-hop delays make every service its own
 * shard group), client on the frontend's shard with the canonical
 * seeds — so the workload is the exact single-run workload, executed
 * across `plan.shards` co-advancing event queues.
 */
RunResult
runMeshOnce(const ursa::apps::AppSpec &app, ursa::sim::SimTime simSpan,
            std::uint64_t seed, int &planShards)
{
    using namespace ursa;
    std::vector<std::unique_ptr<sim::Cluster>> shards;
    shards.push_back(std::make_unique<sim::Cluster>(seed));
    app.instantiate(*shards[0]);
    const sim::ShardPlan plan = sim::computeShardPlan(*shards[0]);
    planShards = plan.shards;
    for (int k = 1; k < plan.shards; ++k) {
        shards.push_back(std::make_unique<sim::Cluster>(
            seed + 1000003ULL * static_cast<std::uint64_t>(k)));
        app.instantiate(*shards.back());
    }
    if (const char *s = std::getenv("URSA_TRACE_SAMPLING"))
        for (auto &shard : shards)
            shard->tracer().setSampling(std::atof(s));

    sim::ShardedSim mesh;
    for (auto &shard : shards)
        mesh.addShard(*shard);
    mesh.connectMesh(plan);

    const int front = plan.serviceGroup[static_cast<std::size_t>(
        shards[0]->serviceId("frontend"))];
    sim::OpenLoopClient client(*shards[static_cast<std::size_t>(front)],
                               workload::constantRate(app.nominalRps),
                               sim::fixedMix(app.exploreMix), seed + 5);
    client.start(0);

    const auto t0 = std::chrono::steady_clock::now();
    mesh.run(simSpan);
    const auto t1 = std::chrono::steady_clock::now();

    RunResult r;
    r.wallSec = std::chrono::duration<double>(t1 - t0).count();
    r.events = mesh.eventsProcessed();
    r.requests = client.submitted();
    return r;
}

RunResult
bestOf(const ursa::apps::AppSpec &app, ursa::sim::SimTime simSpan,
       long reps, bool meshMode, int &planShards)
{
    RunResult best;
    for (long i = 0; i < reps; ++i) {
        const RunResult r =
            meshMode ? runMeshOnce(app, simSpan, 2024, planShards)
                     : runSingleOnce(app, simSpan, 2024);
        std::printf(
            "  %-7s rep %ld: %8.3f s wall, %10llu events (%.3fM ev/s), "
            "%8llu requests (%.1fk req/s)\n",
            meshMode ? "mesh" : "single", i, r.wallSec,
            static_cast<unsigned long long>(r.events),
            r.eventsPerSec() / 1e6,
            static_cast<unsigned long long>(r.requests),
            r.requestsPerSec() / 1e3);
        if (best.wallSec == 0.0 || r.eventsPerSec() > best.eventsPerSec())
            best = r;
    }
    return best;
}

std::string
isoDate()
{
    if (const char *d = std::getenv("URSA_BENCH_DATE"))
        return d;
    const std::time_t t = std::time(nullptr);
    char buf[16];
    std::strftime(buf, sizeof buf, "%Y-%m-%d", std::localtime(&t));
    return buf;
}

std::string
gitCommit()
{
    if (const char *c = std::getenv("URSA_BENCH_COMMIT"))
        return c;
    const std::string cmd = "git -C \"" +
                            std::filesystem::path(URSA_BENCH_REFERENCE)
                                .parent_path()
                                .string() +
                            "\" rev-parse --short HEAD 2>/dev/null";
    if (FILE *p = popen(cmd.c_str(), "r")) {
        char buf[64] = {0};
        if (fgets(buf, sizeof buf, p) != nullptr)
            buf[std::strcspn(buf, "\n")] = '\0';
        pclose(p);
        if (buf[0] != '\0')
            return buf;
    }
    return "unknown";
}

/** Serialize one trajectory entry (the reference-file record). */
std::string
entryJson(const RunResult &single, const RunResult &sharded, int shards,
          int threads, const std::string &backend,
          const std::string &label, const std::string &indent)
{
    std::ostringstream os;
    os.precision(10);
    os << indent << "{\n"
       << indent << "  \"label\": \"" << label << "\",\n"
       << indent << "  \"date\": \"" << isoDate() << "\",\n"
       << indent << "  \"commit\": \"" << gitCommit() << "\",\n"
       << indent << "  \"backend\": \"" << backend << "\",\n"
       << indent << "  \"shards\": " << shards << ",\n"
       << indent << "  \"threads\": " << threads << ",\n"
       << indent << "  \"events\": " << sharded.events << ",\n"
       << indent << "  \"requests\": " << sharded.requests << ",\n"
       << indent << "  \"wall_sec\": " << sharded.wallSec << ",\n"
       << indent << "  \"events_per_sec\": " << sharded.eventsPerSec()
       << ",\n"
       << indent << "  \"requests_per_sec\": " << sharded.requestsPerSec()
       << ",\n"
       << indent << "  \"single\": {\n"
       << indent << "    \"events\": " << single.events << ",\n"
       << indent << "    \"requests\": " << single.requests << ",\n"
       << indent << "    \"wall_sec\": " << single.wallSec << ",\n"
       << indent << "    \"events_per_sec\": " << single.eventsPerSec()
       << ",\n"
       << indent << "    \"requests_per_sec\": "
       << single.requestsPerSec() << "\n"
       << indent << "  }\n"
       << indent << "}";
    return os.str();
}

/**
 * Append `entry` to the "trajectory" array of the checked-in reference
 * (a file whose format this benchmark owns). Returns false when the
 * array cannot be located.
 */
bool
appendTrajectoryEntry(const std::string &path, const std::string &entry)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::stringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();

    const std::size_t arrayKey = text.find("\"trajectory\": [");
    if (arrayKey == std::string::npos)
        return false;
    const std::size_t open = text.find('[', arrayKey);
    int depth = 0;
    std::size_t close = std::string::npos;
    for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == '[')
            ++depth;
        else if (text[i] == ']' && --depth == 0) {
            close = i;
            break;
        }
    }
    if (close == std::string::npos)
        return false;

    // Trim trailing whitespace inside the array, then splice in
    // ",\n<entry>\n  " before the closing bracket.
    std::size_t end = close;
    while (end > open + 1 &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    const bool empty = end == open + 1;
    const std::string splice =
        (empty ? std::string("\n") : std::string(",\n")) + entry + "\n  ";
    text = text.substr(0, end) + splice + text.substr(close);

    std::ofstream out(path, std::ios::trunc);
    out << text;
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ursa;

    bool updateReference = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--update-reference") == 0) {
            updateReference = true;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 2;
        }
    }

    const long reps = std::max(1L, envLong("URSA_BENCH_REPS", 5));
    const long simMin = std::max(1L, envLong("URSA_BENCH_SIM_MIN", 10));
    const int shards =
        static_cast<int>(std::max(1L, envLong("URSA_BENCH_SHARDS", 8)));
    const std::string outPath = envStr(
        "URSA_BENCH_OUT",
        std::string(URSA_BENCH_OUT_DIR) + "/BENCH_kernel.json");

    const apps::AppSpec app = bench::makeApp(bench::AppId::Social);
    const sim::SimTime simSpan = simMin * sim::kMin;
    const sim::EventQueue queueProbe; // resolves URSA_EVENTQUEUE once
    const std::string backend =
        queueProbe.backend() == sim::EventQueue::Backend::Heap
            ? "heap"
            : "calendar";
    const int threads = exec::threadCount();

    std::printf("kernel bench: %s, %ld sim-min x %ld reps, %s backend, "
                "%d shard(s), %d thread(s)\n",
                app.name.c_str(), simMin, reps, backend.c_str(), shards,
                threads);

    int planShards = 1;
    const RunResult single = bestOf(app, simSpan, reps, false, planShards);
    const RunResult sharded =
        shards > 1 ? bestOf(app, simSpan, reps, true, planShards) : single;
    const int recordedShards = shards > 1 ? planShards : 1;

    std::printf("best single:  %.3fM events/s, %.1fk requests/s\n",
                single.eventsPerSec() / 1e6,
                single.requestsPerSec() / 1e3);
    if (shards > 1)
        std::printf("best mesh:    %.3fM events/s, %.1fk requests/s "
                    "(%d shards, %d threads)\n",
                    sharded.eventsPerSec() / 1e6,
                    sharded.requestsPerSec() / 1e3, recordedShards,
                    threads);

    const std::filesystem::path out(outPath);
    if (out.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(out.parent_path(), ec);
    }
    std::ofstream os(outPath);
    os.precision(10);
    os << "{\n"
       << "  \"app\": \"" << app.name << "\",\n"
       << "  \"sim_minutes\": " << simMin << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"backend\": \"" << backend << "\",\n"
       << "  \"shards\": " << recordedShards << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"events\": " << single.events << ",\n"
       << "  \"requests\": " << single.requests << ",\n"
       << "  \"wall_sec\": " << single.wallSec << ",\n"
       << "  \"events_per_sec\": " << single.eventsPerSec() << ",\n"
       << "  \"requests_per_sec\": " << single.requestsPerSec() << ",\n"
       << "  \"sharded\": {\n"
       << "    \"events\": " << sharded.events << ",\n"
       << "    \"requests\": " << sharded.requests << ",\n"
       << "    \"wall_sec\": " << sharded.wallSec << ",\n"
       << "    \"events_per_sec\": " << sharded.eventsPerSec() << ",\n"
       << "    \"requests_per_sec\": " << sharded.requestsPerSec() << "\n"
       << "  }\n"
       << "}\n";
    if (os)
        std::printf("wrote %s\n", outPath.c_str());
    else
        std::fprintf(stderr, "failed to write %s\n", outPath.c_str());

    if (updateReference) {
        const std::string label =
            envStr("URSA_BENCH_LABEL", "local update");
        const std::string entry = entryJson(
            single, sharded, recordedShards, threads, backend, label,
            "    ");
        if (appendTrajectoryEntry(URSA_BENCH_REFERENCE, entry)) {
            std::printf("appended trajectory entry to %s\n",
                        URSA_BENCH_REFERENCE);
        } else {
            std::fprintf(stderr,
                         "failed to update reference %s (no trajectory "
                         "array?)\n",
                         URSA_BENCH_REFERENCE);
            return 1;
        }
    }
    return 0;
}
