/**
 * @file
 * DES-kernel throughput microbenchmark: drives the canonical
 * social-network application with the open-loop Poisson client for a
 * fixed span of simulated time and reports raw kernel throughput —
 * events/sec and requests/sec of wall-clock time. This is the number
 * the event-queue fast path (SBO callbacks, move-pop, object pools) is
 * judged by; results land in BENCH_kernel.json.
 *
 * Environment:
 *   URSA_BENCH_REPS       repetitions (default 5; best rep is reported)
 *   URSA_BENCH_SIM_MIN    simulated minutes per rep (default 10)
 *   URSA_BENCH_OUT        output JSON path (default BENCH_kernel.json)
 *   URSA_TRACE_SAMPLING   request-sampling rate of the span tracer
 *                         (default 0 = disabled; used by the CI smoke
 *                         to bound tracing overhead and verify the
 *                         zero-perturbation contract)
 */

#include "common.h"

#include "sim/client.h"
#include "workload/arrival.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace
{

long
envLong(const char *name, long fallback)
{
    const char *v = std::getenv(name);
    return v ? std::atol(v) : fallback;
}

struct RunResult
{
    double wallSec = 0.0;
    std::uint64_t events = 0;
    std::uint64_t requests = 0;

    double eventsPerSec() const { return events / wallSec; }
    double requestsPerSec() const { return requests / wallSec; }
};

RunResult
runOnce(const ursa::apps::AppSpec &app, ursa::sim::SimTime simSpan,
        std::uint64_t seed)
{
    using namespace ursa;
    sim::Cluster cluster(seed);
    app.instantiate(cluster);
    if (const char *s = std::getenv("URSA_TRACE_SAMPLING"))
        cluster.tracer().setSampling(std::atof(s));
    sim::OpenLoopClient client(cluster,
                               workload::constantRate(app.nominalRps),
                               sim::fixedMix(app.exploreMix), seed + 5);
    client.start(0);

    const auto t0 = std::chrono::steady_clock::now();
    cluster.run(simSpan);
    const auto t1 = std::chrono::steady_clock::now();

    RunResult r;
    r.wallSec = std::chrono::duration<double>(t1 - t0).count();
    r.events = cluster.events().processed();
    r.requests = client.submitted();
    return r;
}

} // namespace

int
main()
{
    using namespace ursa;

    const long reps = std::max(1L, envLong("URSA_BENCH_REPS", 5));
    const long simMin = std::max(1L, envLong("URSA_BENCH_SIM_MIN", 10));
    const char *outEnv = std::getenv("URSA_BENCH_OUT");
    const std::string outPath = outEnv ? outEnv : "BENCH_kernel.json";

    const apps::AppSpec app = bench::makeApp(bench::AppId::Social);
    const sim::SimTime simSpan = simMin * sim::kMin;

    std::printf("kernel bench: %s, %ld sim-min x %ld reps\n",
                app.name.c_str(), simMin, reps);

    RunResult best;
    for (long i = 0; i < reps; ++i) {
        const RunResult r = runOnce(app, simSpan, 2024);
        std::printf(
            "  rep %ld: %8.3f s wall, %10llu events (%.3fM ev/s), "
            "%8llu requests (%.1fk req/s)\n",
            i, r.wallSec, static_cast<unsigned long long>(r.events),
            r.eventsPerSec() / 1e6,
            static_cast<unsigned long long>(r.requests),
            r.requestsPerSec() / 1e3);
        if (best.wallSec == 0.0 || r.eventsPerSec() > best.eventsPerSec())
            best = r;
    }

    std::printf("best: %.3fM events/s, %.1fk requests/s\n",
                best.eventsPerSec() / 1e6, best.requestsPerSec() / 1e3);

    std::ofstream out(outPath);
    out.precision(10);
    out << "{\n"
        << "  \"app\": \"" << app.name << "\",\n"
        << "  \"sim_minutes\": " << simMin << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"events\": " << best.events << ",\n"
        << "  \"requests\": " << best.requests << ",\n"
        << "  \"wall_sec\": " << best.wallSec << ",\n"
        << "  \"events_per_sec\": " << best.eventsPerSec() << ",\n"
        << "  \"requests_per_sec\": " << best.requestsPerSec() << "\n"
        << "}\n";
    if (out)
        std::printf("wrote %s\n", outPath.c_str());
    else
        std::fprintf(stderr, "failed to write %s\n", outPath.c_str());
    return 0;
}
