// Clean: the check layer may assert about itself.
#include <cassert>

void
f()
{
    assert(true);
}
