// Clean: baselines legitimately measure wall time — controller
// inference cost is itself an evaluated quantity (paper Table 6) —
// so the wall-clock rule does not apply to this layer.
#include <chrono>

auto inferenceStart = std::chrono::steady_clock::now();
