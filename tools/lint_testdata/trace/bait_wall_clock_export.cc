// Bait: src/trace is a deterministic layer — span exports must be
// byte-identical across runs, so wall clocks are banned here too
// (ports trace/bad_export_clock.cc).
#include <chrono>

auto exportStamp = std::chrono::system_clock::now(); // ursa-lint-test: expect(wall-clock)
