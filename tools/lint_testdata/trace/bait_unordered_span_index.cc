// Bait: hash containers in src/trace — snapshot/export order is part
// of the determinism contract (ports trace/bad_span_index.cc).
#include <cstdint>
#include <unordered_map>

std::unordered_map<std::uint64_t, int> openSpans; // ursa-lint-test: expect(unordered-sim)
