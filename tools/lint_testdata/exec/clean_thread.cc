// Clean: src/exec is the one layer allowed to own raw threads (and it
// joins them — no detach).
#include <thread>
#include <vector>

std::vector<std::thread> workers;

void
joinAll()
{
    for (std::thread &t : workers)
        t.join();
}
