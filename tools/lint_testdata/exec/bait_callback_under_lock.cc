// Bait: invoking a callback while holding a lock — a re-entrant
// callback deadlocks, a slow one convoys every waiter.
#include "base/mutex.h"
#include "base/thread_annotations.h"

#include <functional>

struct Notifier
{
    ursa::base::Mutex mu_;
    std::function<void()> onDone_ URSA_GUARDED_BY(mu_);
    const std::function<void(int)> *body_ URSA_GUARDED_BY(mu_) = nullptr;

    void
    fire()
    {
        ursa::base::MutexLock lock(mu_);
        onDone_(); // ursa-lint-test: expect(callback-under-lock)
    }

    void
    fireThroughPointer()
    {
        ursa::base::MutexLock lock(mu_);
        (*body_)(1); // ursa-lint-test: expect(callback-under-lock)
    }
};

struct StdGuarded
{
    std::function<void()> cb_;

    void
    fire(std::mutex &raw) // ursa-lint-test: expect(missing-annotation)
    {
        std::lock_guard<std::mutex> lock(raw); // ursa-lint-test: expect(missing-annotation)
        cb_(); // ursa-lint-test: expect(callback-under-lock)
    }
};
