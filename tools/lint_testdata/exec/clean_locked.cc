// Clean: the worker-loop shape — dequeue under the lock, invoke after
// the guard's scope closes — must not fire callback-under-lock.
#include "base/mutex.h"
#include "base/thread_annotations.h"

#include <functional>
#include <utility>

struct Worker
{
    ursa::base::Mutex mu_;
    std::function<void()> queued_ URSA_GUARDED_BY(mu_);

    void
    runOne()
    {
        std::function<void()> task;
        {
            ursa::base::MutexLock lock(mu_);
            task = std::move(queued_); // a move is not an invocation
        }
        task(); // invoked outside the critical section
    }
};
