// Bait: concurrent state without a thread-safety contract in an
// annotated layer.
#include "base/mutex.h"

#include <atomic>
#include <mutex>

struct Racy
{
    std::mutex rawMu_;            // ursa-lint-test: expect(missing-annotation)
    std::condition_variable cv_;  // ursa-lint-test: expect(missing-annotation)
    ursa::base::Mutex unrefMu_;   // ursa-lint-test: expect(missing-annotation)
    std::atomic<int> counter_{0}; // ursa-lint-test: expect(missing-annotation)
};
