// Clean: the fully-annotated shape — wrapper Mutex referenced by an
// annotation, atomic with a sharing-rationale comment.
#include "base/mutex.h"
#include "base/thread_annotations.h"

#include <atomic>

struct Safe
{
    ursa::base::Mutex mu_;
    int value_ URSA_GUARDED_BY(mu_) = 0;
    /// atomic: relaxed tally bumped by every shard, read after join.
    std::atomic<int> hits_{0};
};
