// Clean: stats/rng.* is the one place allowed to touch raw generators
// (ports the Python lint's rng exemption snippet).
#include <cstdlib>
#include <random>

std::uint64_t v = rand();
std::mt19937_64 seeder(0x5eed);
