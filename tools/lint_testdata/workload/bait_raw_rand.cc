// Bait: unseeded/library randomness outside ursa::stats::Rng (ports
// workload/bad_rand.cc and core/bad_device.cc, plus the extended
// engine/distribution identifier set).
#include <cstdlib>
#include <random>

int f() { return rand(); }                        // ursa-lint-test: expect(raw-rand)
void g() { srand(7); }                            // ursa-lint-test: expect(raw-rand)
std::random_device rd;                            // ursa-lint-test: expect(raw-rand)
std::mt19937 gen(123);                            // ursa-lint-test: expect(raw-rand)
std::default_random_engine eng;                   // ursa-lint-test: expect(raw-rand)
std::uniform_int_distribution<int> dist(0, 9);    // ursa-lint-test: expect(raw-rand)
std::normal_distribution<double> gauss(0.0, 1.0); // ursa-lint-test: expect(raw-rand)
