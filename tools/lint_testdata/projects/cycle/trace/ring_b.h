// The other half of the ring_a.h cycle.
#include "trace/ring_a.h" // ursa-lint-test: expect(layer-cycle)

struct RingB
{
    RingA *prev = nullptr;
};
