// Bait: a two-file include cycle inside one layer (no layer-violation,
// both files are trace/ — but the include graph has an SCC).
#include "trace/ring_b.h" // ursa-lint-test: expect(layer-cycle)

struct RingA
{
    RingB *next = nullptr;
};
