// Sim hot-path functions: transitive file I/O (bait), the same call
// behind a reasoned allow (suppressed), a direct sleep (bait), and a
// pure helper call (clean).
#include "base/logio.h"

#include <string>

namespace sim
{

void
drain(const std::string &msg)
{
    base::flushLog(msg); // ursa-lint-test: expect(blocking-in-sim)
}

void
drainSanctioned(const std::string &msg)
{
    // ursa-lint: allow(blocking-in-sim) end-of-run flush runs after the event loop has drained
    base::flushLog(msg); // ursa-lint-test: suppressed(blocking-in-sim)
}

int
lookahead(int a, int b)
{
    return base::pureMax(a, b);
}

void
backoff()
{
    usleep(10); // ursa-lint-test: expect(blocking-in-sim)
}

} // namespace sim
