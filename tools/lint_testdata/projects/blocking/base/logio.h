// blocking-in-sim fixture, source side: file I/O is a blocking
// construct; the pure helper must stay clean.
#ifndef LINT_TESTDATA_BLOCKING_BASE_LOGIO_H
#define LINT_TESTDATA_BLOCKING_BASE_LOGIO_H

#include <fstream>
#include <string>

namespace base
{

inline void
flushLog(const std::string &line)
{
    std::ofstream out("ursa.log");
    out << line;
}

inline int
pureMax(int a, int b)
{
    return a > b ? a : b;
}

} // namespace base

#endif // LINT_TESTDATA_BLOCKING_BASE_LOGIO_H
