// Backslash-newline splices: a dead include spelled across a splice
// must still resolve (and still count as dead, reported at the
// directive's ENDING line); an identifier spliced mid-name must still
// bind to its provider, keeping that include alive.
#include \
    "solver/dep.h" // ursa-lint-test: expect(include-hygiene)
#include "solver/limits.h"

namespace solver
{

int
cap()
{
    return spli\
ceLimit + 1;
}

} // namespace solver
