// splice fixture: provides the constant that use.cc spells across a
// backslash-newline splice mid-identifier.
#ifndef LINT_TESTDATA_SPLICE_SOLVER_LIMITS_H
#define LINT_TESTDATA_SPLICE_SOLVER_LIMITS_H

namespace solver
{
constexpr int spliceLimit = 8;
}

#endif // LINT_TESTDATA_SPLICE_SOLVER_LIMITS_H
