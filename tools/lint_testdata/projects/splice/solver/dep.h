// splice fixture: this header is included through a backslash-newline
// splice and contributes nothing — the include must still be dead.
// (Deliberately NOT namespace solver: a shared namespace name alone
// counts as a contributed symbol and would keep the include alive.)
#ifndef LINT_TESTDATA_SPLICE_SOLVER_DEP_H
#define LINT_TESTDATA_SPLICE_SOLVER_DEP_H

namespace depths
{
constexpr int unusedDepth = 4;
}

#endif // LINT_TESTDATA_SPLICE_SOLVER_DEP_H
