// Bait x2: an include that contributes nothing, and a symbol reached
// only through a transitive include.
#include "solver/outer.h"
#include "solver/unused_dep.h" // ursa-lint-test: expect(include-hygiene)

OuterPlan
makePlan()
{
    OuterPlan plan;
    plan.table = InnerTable{3}; // ursa-lint-test: expect(include-hygiene)
    return plan;
}
