// Fixture: a header nobody actually uses.
struct UnusedDep
{
    int x = 0;
};
