// Fixture: the transitively-leaked provider.
struct InnerTable
{
    int rows = 0;
};
