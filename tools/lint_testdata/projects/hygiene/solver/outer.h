// Fixture: re-exports inner.h to its includers (who must still
// include inner.h themselves if they name InnerTable).
#include "solver/inner.h"

struct OuterPlan
{
    InnerTable table;
};
