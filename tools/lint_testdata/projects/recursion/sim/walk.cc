// unbounded-recursion fixture: an unguarded mutual cycle (bait), an
// URSA_CHECK-guarded self-recursion (clean), a sanctioned cycle
// (suppressed), and the two shapes that must NOT count as stack
// recursion — deferred lambda re-entry and receiver-unknown member
// calls.

namespace sim
{

void visitB(int d);

// Mutual recursion with no URSA_CHECK depth bound anywhere in the
// cycle; reported at the first member's definition.
void
visitA(int d)
{ // ursa-lint-test: expect(unbounded-recursion)
    if (d > 0)
        visitB(d - 1);
}

void
visitB(int d)
{
    visitA(d);
}

// Self-recursion with an URSA_CHECK-guarded depth bound: clean.
void
descend(int d)
{
    URSA_CHECK(d < 64, "sim.walk", "recursion depth bound");
    if (d >= 0)
        descend(d + 1);
}

// A sanctioned cycle: the reasoned allow silences the report.
// ursa-lint: allow(unbounded-recursion) depth tracks the service chain, which the spec builder caps
void spin(int d) { // ursa-lint-test: suppressed(unbounded-recursion)
    if (d > 0)
        spin(d - 1);
}

// Deferred self-invocation through a scheduled lambda is event-driven
// re-entry, not stack recursion: no report.
void
pump(int d)
{
    schedule([d] { pump(d - 1); });
}

// A member call through an unknown receiver (a linked-list walk) may
// union back to the caller's own class; receiver-unknown edges must
// not count as provable stack recursion either.
struct Hop
{
    Hop *next = nullptr;

    void
    fire()
    {
        if (next != nullptr)
            next->fire();
    }
};

} // namespace sim
