// Call-graph corner-case fixture, macro side: DEFINE_PROBE(name)
// expands to a function header, so the scanner must take the macro's
// single identifier argument as the defined function's name.
#ifndef LINT_TESTDATA_CALLGRAPH_BASE_HOOKS_H
#define LINT_TESTDATA_CALLGRAPH_BASE_HOOKS_H

#include <ctime>

#define DEFINE_PROBE(fn) inline long fn()

namespace base
{

long clockProbe();

DEFINE_PROBE(clockProbe)
{
    return static_cast<long>(time(nullptr));
}

} // namespace base

#endif // LINT_TESTDATA_CALLGRAPH_BASE_HOOKS_H
