// Call-graph corner-case fixture, wall-clock side: an overload set in
// which only one member reaches the clock (callers must collapse to
// the union), a helper for unqualified tier-3 resolution, and a pure
// function that must stay untainted.
#ifndef LINT_TESTDATA_CALLGRAPH_BASE_CLOCKUTIL_H
#define LINT_TESTDATA_CALLGRAPH_BASE_CLOCKUTIL_H

#include <chrono>
#include <ctime>

namespace base
{

inline long
nowUs()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

/// Overload set: only the int overload reaches the clock; a call to
/// `stamp` conservatively resolves to both.
inline long
stamp(int tag)
{
    return nowUs() + tag;
}

inline long
stamp(double scale)
{
    return static_cast<long>(scale * 1000.0);
}

inline long
readClock()
{
    return static_cast<long>(time(nullptr));
}

inline int
pureAdd(int a, int b)
{
    return a + b;
}

} // namespace base

#endif // LINT_TESTDATA_CALLGRAPH_BASE_CLOCKUTIL_H
