// Call-graph corner-case fixture, iteration side: range-for over an
// unordered container is a nondeterminism source; base/ is outside
// the per-file unordered-sim scopes, so only the interprocedural rule
// can see it from a sim caller.
#ifndef LINT_TESTDATA_CALLGRAPH_BASE_AGG_H
#define LINT_TESTDATA_CALLGRAPH_BASE_AGG_H

#include <unordered_map>

namespace base
{

struct Agg
{
    std::unordered_map<int, long> cells;

    long
    total() const
    {
        long sum = 0;
        for (const auto &kv : cells)
            sum += kv.second;
        return sum;
    }
};

} // namespace base

#endif // LINT_TESTDATA_CALLGRAPH_BASE_AGG_H
