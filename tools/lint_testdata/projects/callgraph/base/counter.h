// Call-graph corner-case fixture, member side: a member call with an
// unknown receiver resolves against the class (tier 3), and the
// callee's own `this->` hop (tier 2) completes the taint chain
// bump -> raw -> steady_clock.
#ifndef LINT_TESTDATA_CALLGRAPH_BASE_COUNTER_H
#define LINT_TESTDATA_CALLGRAPH_BASE_COUNTER_H

#include <chrono>

namespace base
{

class Counter
{
  public:
    long
    bump()
    {
        return this->raw() + 1;
    }

    long
    pure() const
    {
        return 7;
    }

  private:
    long
    raw() const
    {
        return std::chrono::steady_clock::now().time_since_epoch().count();
    }
};

} // namespace base

#endif // LINT_TESTDATA_CALLGRAPH_BASE_COUNTER_H
