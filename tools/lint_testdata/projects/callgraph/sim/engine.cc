// Sim-context roots exercising the call-graph corner cases: overload
// sets, qualified vs unqualified calls, member calls through `this`,
// calls sited in lambda bodies, and macro-generated function names.
#include "base/agg.h"
#include "base/clockutil.h"
#include "base/counter.h"
#include "base/hooks.h"

namespace sim
{

class Engine
{
  public:
    long tick();
    long settle();
    long audit(const base::Agg &agg);
    long probe();

  private:
    long last_ = 0;
};

// Qualified call (tier 1) into an overload set: base::stamp(int)
// reaches the clock, base::stamp(double) does not — the call must
// collapse to the union and taint.
long
Engine::tick()
{
    return base::stamp(3); // ursa-lint-test: expect(sim-nondeterminism)
}

// Unqualified call into a visible include (tier 3), plus a member
// call through `this` (tier 2) whose target is itself a sim root —
// root-to-root edges are never reported.
long
Engine::settle()
{
    using namespace base;
    const long clean = pureAdd(1, 2);
    const long dirty = readClock(); // ursa-lint-test: expect(sim-nondeterminism)
    return clean + dirty + this->tick();
}

// Member call with an unknown receiver (tier 3 against the class),
// completed by the callee's `this->raw()` hop; and a call sited
// inside a lambda body, which still taints.
long
Engine::audit(const base::Agg &agg)
{
    base::Counter c;
    const long viaMember = c.bump(); // ursa-lint-test: expect(sim-nondeterminism)
    auto fold = [&agg] {
        return agg.total(); // ursa-lint-test: expect(sim-nondeterminism)
    };
    return viaMember + fold() + c.pure();
}

// Macro-generated name: DEFINE_PROBE(clockProbe) defines
// base::clockProbe, resolved through the spelled qualifier.
long
Engine::probe()
{
    last_ = base::clockProbe(); // ursa-lint-test: expect(sim-nondeterminism)
    return last_;
}

} // namespace sim
