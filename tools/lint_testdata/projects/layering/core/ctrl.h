// Clean: core (level 5) may depend on sim (level 3) — the DAG only
// forbids upward includes.
#include "sim/kernel.h"

struct Controller
{
    Kernel kernel;
};
