// Bait: sim (level 3) reaching up into apps (level 6).
#include "apps/topology.h" // ursa-lint-test: expect(layer-violation)

struct Kernel
{
    Topology topo;
};
