// Suppressed: an upward include sanctioned with a reasoned allow().
#include "core/ctrl.h" // ursa-lint: allow(layer-violation) display-only probe of controller state ursa-lint-test: suppressed(layer-violation)

struct Probe
{
    Controller *ctrl = nullptr;
};
