// Fixture: the application-topology type that sits at the top of the
// layer DAG. Anything below apps/ that includes this file reaches
// upward.
struct Topology
{
    int services = 0;
};
