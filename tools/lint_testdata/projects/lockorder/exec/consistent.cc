// Clean: gC -> gD is acquired in the same order everywhere, and a
// CondVar wait re-acquiring the lock it already holds is not an
// ordering event. No line here may flag.
#include "base/sync.h"

void
lockCD1()
{
    MutexLock lc(&gC);
    MutexLock ld(&gD);
}

void
lockCD2()
{
    MutexLock lc(&gC);
    MutexLock ld(&gD);
}

void
waitC()
{
    MutexLock lc(&gC);
    cv.wait(&gC);
}
