// Bait (half 2): the reverse acquisition order of ab.cc.
#include "base/sync.h"

void
lockBA()
{
    MutexLock lb(&gB);
    MutexLock la(&gA); // ursa-lint-test: expect(lock-order)
}
