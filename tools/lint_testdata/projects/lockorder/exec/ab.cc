// Bait (half 1): this TU acquires gA then gB; ba.cc acquires them in
// the opposite order. Neither file is wrong in isolation — only the
// whole-project lock graph sees the AB/BA inversion.
#include "base/sync.h"

void
lockAB()
{
    MutexLock la(&gA);
    MutexLock lb(&gB); // ursa-lint-test: expect(lock-order)
}
