// Fixture stand-ins for base/mutex.h: the lock-order scanner keys on
// the guard type names, not on the real base:: types.
struct Mutex
{
};

struct MutexLock
{
    explicit MutexLock(Mutex *m);
};

struct CondVar
{
    void wait(Mutex *m);
};

Mutex gA;
Mutex gB;
Mutex gC;
Mutex gD;
CondVar cv;
