// Bait: bare assert outside src/check (ports ml/bad_assert.cc).
#include <cassert>

void
f(int n)
{
    assert(n > 0); // ursa-lint-test: expect(bare-assert)
}
