// Bait: a .cc must include its own header first (self-containment).
#include <vector>
#include "sim/bait_include_order.h" // ursa-lint-test: expect(include-order)
