// Clean: <ostream> (not <iostream>) is the right way for a header to
// name stream types.
#ifndef CLEAN_HEADER_H
#define CLEAN_HEADER_H

#include <ostream>

void print(std::ostream &os);

#endif
