// Bait: std shared ownership of the kernel's hot-path objects. Request
// and Invocation are owned by the pool-backed non-atomic RefPtr
// (sim/pool.h); a shared_ptr control block puts two lock-prefixed RMWs
// on every hop.
#include <memory>
#include <vector>

struct Request;
struct Invocation;

std::shared_ptr<Request> held;            // ursa-lint-test: expect(atomic-refcount)
std::weak_ptr<Invocation> watcher;        // ursa-lint-test: expect(atomic-refcount)

void
leak(Request *r)
{
    auto inv = std::make_shared<Invocation>();  // ursa-lint-test: expect(atomic-refcount)
    (void)inv;
    std::vector<std::shared_ptr<Request>> all; // ursa-lint-test: expect(atomic-refcount)
    (void)r;
}

// The one sanctioned escape hatch: an explicit suppression with a
// reason keeps an interop shim compilable.
// ursa-lint: allow(atomic-refcount) interop shim with an external tracing API
std::shared_ptr<Request> exported;        // ursa-lint-test: suppressed(atomic-refcount)
