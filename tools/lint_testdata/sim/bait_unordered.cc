// Bait: hash containers in the sim kernel (ports sim/bad_unordered.cc).
#include <unordered_map>
#include <unordered_set>

std::unordered_map<int, int> table;       // ursa-lint-test: expect(unordered-sim)
std::unordered_set<long> seen;            // ursa-lint-test: expect(unordered-sim)
