// Clean: lookalike identifiers, prose in comments, and literals must
// not fire. The raw-string case is exactly the false-positive class
// that killed the regex lint: a real tokenizer skips literal bodies.
#include <map>

double exploreTime(int strand);
// steady_clock mentioned in a comment is fine
static_assert(sizeof(int) == 4, "abi");

const char *kDoc =
    R"doc(call rand() or steady_clock::now() at will — this is prose)doc";
const char *kPlain = "assert(rand()) inside a plain string is also fine";
const char kTick = '\'';

std::map<int, double> ordered; // ordered containers are always fine
