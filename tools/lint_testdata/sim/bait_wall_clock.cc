// Bait: wall clocks in the deterministic sim layer (ports the Python
// lint's sim/bad_clock.cc snippet). Fixtures are linted, never built.
#include <chrono>

auto t0 = std::chrono::steady_clock::now(); // ursa-lint-test: expect(wall-clock)
auto t1 = std::chrono::high_resolution_clock::now(); // ursa-lint-test: expect(wall-clock)
