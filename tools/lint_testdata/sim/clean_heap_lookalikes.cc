// Clean: heap lookalikes that must not fire banned-heap — member
// fields named after heaps, prose in comments and strings, and the
// EventQueue API itself.
#include <cstddef>
#include <vector>

// std::priority_queue mentioned in a comment is fine.
const char *kHeapDoc = "call std::make_heap at will — this is prose";

struct MiniQueue
{
    // A hand-rolled heap under EventQueue's (time, seq) order is the
    // sanctioned implementation; only std heap primitives are banned.
    std::vector<int> heap_;
    std::size_t priority_queue_depth = 0; // lookalike identifier

    void heapPush(int v) { heap_.push_back(v); }
};
