// Clean: shared ownership of types that are NOT Request/Invocation, and
// Request/Invocation owned through the sanctioned pool-backed RefPtr.
// None of these may flag atomic-refcount.
#include <memory>
#include <vector>

struct Topology;
struct RequestLog; // identifier contains "Request" but is its own token
struct Request;

template <typename T> struct RefPtr
{
    T *p = nullptr;
};

std::shared_ptr<Topology> topo;
std::weak_ptr<RequestLog> logWatcher;
std::unique_ptr<Request> scratch; // unique ownership carries no refcount

void
ok()
{
    auto t = std::make_shared<Topology>();
    (void)t;
    RefPtr<Request> req; // the sanctioned non-atomic owner
    (void)req;
    std::vector<RefPtr<Request>> held;
    (void)held;
}
