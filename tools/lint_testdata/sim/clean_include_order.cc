// Clean: own header first, then everything else.
#include "sim/clean_include_order.h"

#include <vector>
