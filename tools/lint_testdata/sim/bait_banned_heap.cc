// Bait: ad-hoc priority ordering inside the sim kernel. All event
// ordering must go through EventQueue's strict (time, seq) total order.
#include <algorithm>
#include <queue>
#include <vector>

std::priority_queue<int> backlog;         // ursa-lint-test: expect(banned-heap)

void
reorder(std::vector<long> &v)
{
    std::make_heap(v.begin(), v.end());   // ursa-lint-test: expect(banned-heap)
    std::push_heap(v.begin(), v.end());   // ursa-lint-test: expect(banned-heap)
    std::pop_heap(v.begin(), v.end());    // ursa-lint-test: expect(banned-heap)
}

// The differential-oracle escape hatch: an explicit suppression keeps
// the one sanctioned comparison baseline compilable.
// ursa-lint: allow(banned-heap) differential oracle vs EventQueue order
std::priority_queue<long> oracle;         // ursa-lint-test: suppressed(banned-heap)
