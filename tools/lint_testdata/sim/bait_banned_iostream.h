// Bait: <iostream> in a header injects its static initializer into
// every includer; use <ostream> or <iosfwd>.
#ifndef BAIT_BANNED_IOSTREAM_H
#define BAIT_BANNED_IOSTREAM_H

#include <iostream> // ursa-lint-test: expect(banned-include)

#endif
