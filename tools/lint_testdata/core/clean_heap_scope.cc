// Clean: banned-heap is scoped to src/sim — the control plane may use
// std heap primitives (e.g. top-k candidate selection in the explorer).
#include <queue>

std::priority_queue<double> topCandidates;
