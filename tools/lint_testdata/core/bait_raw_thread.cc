// Bait: raw threads outside src/exec — parallelism must route through
// ursa::exec so joining, shutdown and URSA_THREADS stay centralized.
#include <thread>

void
spawn()
{
    std::thread worker([] {}); // ursa-lint-test: expect(raw-thread)
    worker.detach();           // ursa-lint-test: expect(raw-thread)
}

std::jthread background([] {}); // ursa-lint-test: expect(raw-thread)
