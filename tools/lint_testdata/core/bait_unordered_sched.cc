// Bait: iterating a hash container in a file that schedules events —
// iteration order feeds the event queue (ports core/bad_iter.cc).
#include <unordered_map>

std::unordered_map<int, double> rates;

void
go()
{
    for (auto &kv : rates) // ursa-lint-test: expect(unordered-sched)
        queue.scheduleIn(10, [] {});
}
