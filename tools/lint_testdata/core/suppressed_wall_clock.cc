// Suppression round-trip: the allow() comment must silence the rule,
// on the offending line and on the line directly above.
#include <chrono>
#include <ctime>

// control-plane overhead measurement (paper Table 6)
auto t0 = std::chrono::steady_clock::now(); // ursa-lint: allow(wall-clock) ursa-lint-test: suppressed(wall-clock)

// ursa-lint: allow(wall-clock) overhead probe, annotated above
long t1 = time(nullptr); // ursa-lint-test: suppressed(wall-clock)

// Multi-rule allow lists parse item by item.
std::mt19937 gen(7); // ursa-lint: allow(raw-rand, wall-clock) ursa-lint-test: suppressed(raw-rand)
