// Clean: an unordered container may exist in a scheduling file as
// long as nothing range-iterates it; the ordered map iteration that
// feeds the scheduler is fine.
#include <map>
#include <unordered_map>

std::unordered_map<int, double> cache;
std::map<int, double> rates;

void
go()
{
    for (auto &kv : rates)
        queue.scheduleIn(10, kv.second);
}
