// Bait: the suppression contract itself. A reasonless allow()
// suppresses nothing and flags; an allow() naming an unknown rule
// flags.
#include <ctime>

// ursa-lint-test: expect(suppression-reason) ursa-lint: allow(wall-clock)
long probe = time(nullptr); // ursa-lint-test: expect(wall-clock)

int typo = 0; // ursa-lint: allow(no-such-rule) guards a typo ursa-lint-test: expect(suppression-reason)
