// Bait: the everything-header is banned everywhere.
#include <bits/stdc++.h> // ursa-lint-test: expect(banned-include)
