// Bait: C wall-clock reads in a deterministic layer (ports the Python
// lint's core/bad_time.cc snippet), every accepted argument form.
#include <ctime>

long a = time(nullptr); // ursa-lint-test: expect(wall-clock)
long b = time(NULL);    // ursa-lint-test: expect(wall-clock)
long c = time(0);       // ursa-lint-test: expect(wall-clock)
long d = time();        // ursa-lint-test: expect(wall-clock)
