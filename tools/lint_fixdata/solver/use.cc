// --fix round-trip fixture: exactly one dead include. After
// `ursa-lint --fix` deletes it the tree must lint clean, and the
// surviving include must be untouched.
#include "solver/dep.h"
#include "solver/limits.h"

namespace solver
{

int
cap(int d)
{
    return d > depthLimit ? depthLimit : d;
}

} // namespace solver
