// --fix round-trip fixture: dead dependency whose include in use.cc
// must be deleted by `ursa-lint --fix`.
#ifndef LINT_FIXDATA_SOLVER_DEP_H
#define LINT_FIXDATA_SOLVER_DEP_H

namespace depths
{
constexpr int unusedDepth = 4;
}

#endif // LINT_FIXDATA_SOLVER_DEP_H
