// --fix round-trip fixture: the live include that must survive --fix.
#ifndef LINT_FIXDATA_SOLVER_LIMITS_H
#define LINT_FIXDATA_SOLVER_LIMITS_H

namespace solver
{
constexpr int depthLimit = 8;
}

#endif // LINT_FIXDATA_SOLVER_LIMITS_H
