// The other half of the loop_a.h cycle. Line 2 must be named by the
#include "trace/loop_a.h"
// self-test failure for this project.

struct LoopB
{
    LoopA *prev = nullptr;
};
