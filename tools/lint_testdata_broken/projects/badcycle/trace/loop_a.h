// Deliberately broken fixture project: a real include cycle with no
// expect() directives, so --self-test must fail with "clean line ...
// wrongly triggered [layer-cycle]" naming this file and line 4.
#include "trace/loop_b.h"

struct LoopA
{
    LoopB *next = nullptr;
};
