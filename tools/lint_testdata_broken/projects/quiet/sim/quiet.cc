// Broken on purpose: none of these interprocedural baits can fire —
// the negative harness asserts the self-test names each one.
namespace sim
{

int
pureTwice(int v)
{
    return v + v; // ursa-lint-test: expect(sim-nondeterminism)
}

void
noop()
{
    int x = 0;
    x = x + 1; // ursa-lint-test: expect(blocking-in-sim)
}

int
once(int v)
{
    return v > 0 ? v - 1 : 0; // ursa-lint-test: expect(unbounded-recursion)
}

} // namespace sim
