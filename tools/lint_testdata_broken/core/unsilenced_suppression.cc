// Deliberately broken fixture: the directive claims the violation is
// suppressed, but there is no allow() comment, so --self-test must
// fail with "suppression ... failed to silence".
#include <ctime>

long loud = time(nullptr); // ursa-lint-test: suppressed(wall-clock)
