// Deliberately broken fixture: the directive claims a wall-clock
// violation on a line that has none, so --self-test must fail with
// "bait ... did not trigger".
int calm = 0; // ursa-lint-test: expect(wall-clock)
