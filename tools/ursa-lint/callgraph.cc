#include "callgraph.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace ursa::lint
{

namespace
{

std::string
qualName(const FuncDef &fd)
{
    return fd.qual.empty() ? fd.name : fd.qual + "::" + fd.name;
}

/** True iff `qual` equals `spelled` or ends with `::spelled`. */
bool
qualMatches(const std::string &qual, const std::string &spelled)
{
    if (qual == spelled)
        return true;
    if (qual.size() <= spelled.size() + 2)
        return false;
    return qual.compare(qual.size() - spelled.size(), spelled.size(),
                        spelled) == 0 &&
           qual.compare(qual.size() - spelled.size() - 2, 2, "::") == 0;
}

/** `sim/shard.cc` <-> `sim/shard.h`: the header/impl sibling, or "". */
std::string
siblingPath(const std::string &path)
{
    const std::size_t dot = path.rfind('.');
    if (dot == std::string::npos)
        return "";
    const std::string ext = path.substr(dot);
    if (ext == ".h" || ext == ".hpp")
        return path.substr(0, dot) + ".cc";
    if (ext == ".cc" || ext == ".cpp")
        return path.substr(0, dot) + ".h";
    return "";
}

} // namespace

CallGraph
buildCallGraph(const ProjectModel &pm)
{
    CallGraph cg;
    // Node table + name indexes. File order is sorted (pass 1), func
    // order is token order: node ids are deterministic.
    std::map<std::string, std::vector<int>> byName;
    std::map<std::pair<std::string, std::string>, std::vector<int>>
        byClassAndName;
    for (int f = 0; f < static_cast<int>(pm.files.size()); ++f) {
        const FileModel &fm = pm.files[static_cast<std::size_t>(f)];
        for (int i = 0; i < static_cast<int>(fm.funcs.size()); ++i) {
            const int id = static_cast<int>(cg.nodes.size());
            cg.nodes.push_back({f, i, {}, {}, {}});
            const FuncDef &fd = fm.funcs[static_cast<std::size_t>(i)];
            byName[fd.name].push_back(id);
            if (!fd.klass.empty())
                byClassAndName[{fd.klass, fd.name}].push_back(id);
        }
    }

    // Visibility: a caller sees definitions in its own file, its
    // header/impl sibling, its direct project includes, and *their*
    // siblings (a class declared in foo.h is implemented in foo.cc).
    std::vector<std::set<int>> visible(pm.files.size());
    for (int f = 0; f < static_cast<int>(pm.files.size()); ++f) {
        const FileModel &fm = pm.files[static_cast<std::size_t>(f)];
        std::set<int> &vis = visible[static_cast<std::size_t>(f)];
        auto add = [&](int t) {
            if (t < 0)
                return;
            vis.insert(t);
            const int sib = pm.fileIndex(
                siblingPath(pm.files[static_cast<std::size_t>(t)].path));
            if (sib >= 0)
                vis.insert(sib);
        };
        add(f);
        for (const ResolvedInclude &inc : fm.includes)
            add(inc.target);
    }

    auto addEdge = [&](CgNode &n, int callee, int line, bool strong) {
        for (std::size_t k = 0; k < n.callees.size(); ++k)
            if (n.callees[k] == callee) {
                // Keep the first site per callee; any strong site
                // upgrades the edge.
                n.calleeStrong[k] =
                    static_cast<unsigned char>(n.calleeStrong[k] || strong);
                return;
            }
        n.callees.push_back(callee);
        n.calleeLine.push_back(line);
        n.calleeStrong.push_back(strong ? 1 : 0);
    };

    for (int id = 0; id < static_cast<int>(cg.nodes.size()); ++id) {
        CgNode &n = cg.nodes[static_cast<std::size_t>(id)];
        const FuncDef &fd = cg.def(pm, id);
        for (const CallSite &cs : fd.calls) {
            const auto it = byName.find(cs.name);
            if (it == byName.end())
                continue;
            const std::vector<int> &named = it->second;
            std::vector<int> cands;
            if (!cs.qual.empty()) {
                // Tier 1: spelled qualifier suffix-matches the
                // definition's scope chain.
                for (int c : named)
                    if (qualMatches(cg.def(pm, c).qual, cs.qual))
                        cands.push_back(c);
            } else {
                // Tier 2: implicit/explicit `this` — same-class
                // members anywhere in the project.
                if (!fd.klass.empty() && (cs.viaThis || !cs.member)) {
                    const auto jt =
                        byClassAndName.find({fd.klass, cs.name});
                    if (jt != byClassAndName.end())
                        cands = jt->second;
                }
                // Tier 3: definitions visible through the caller's
                // include set. Overload sets and virtual overrides
                // collapse to the union of candidates.
                if (cands.empty()) {
                    const std::set<int> &vis =
                        visible[static_cast<std::size_t>(n.file)];
                    for (int c : named) {
                        if (!vis.count(cg.nodes
                                           [static_cast<std::size_t>(c)]
                                               .file))
                            continue;
                        if (cs.member && cg.def(pm, c).klass.empty())
                            continue; // `x.f(...)` needs a member f
                        cands.push_back(c);
                    }
                }
                // Tier 4: a project-unique free function.
                if (cands.empty() && !cs.member && named.size() == 1)
                    cands = named;
            }
            const bool strong = !cs.member && !cs.inLambda;
            for (int c : cands)
                addEdge(n, c, cs.line, strong);
        }
    }
    return cg;
}

namespace
{

/// Reverse-BFS taint state: for each tainted node, the next hop toward
/// a source and (for sources) which mark seeded it.
struct Taint
{
    std::vector<char> tainted;
    std::vector<int> nextHop; ///< -1 at a source node
};

bool
kindIn(TaintKind k, const std::vector<TaintKind> &kinds)
{
    return std::find(kinds.begin(), kinds.end(), k) != kinds.end();
}

const SourceMark *
firstMark(const FuncDef &fd, const std::vector<TaintKind> &kinds)
{
    for (const SourceMark &m : fd.sources)
        if (kindIn(m.kind, kinds))
            return &m;
    return nullptr;
}

/** Files whose taint sources are sanctioned and never seed the BFS:
 * the deterministic stats::Rng wrapper owns the engine the rest of
 * the tree must use, and the check layer's thread-local capture state
 * exists only to build crash diagnostics. */
bool
exemptSource(const FileModel &fm)
{
    return fm.path.rfind("stats/rng.", 0) == 0 || fm.layer == "check";
}

Taint
taintReach(const ProjectModel &pm, const CallGraph &cg,
           const std::vector<TaintKind> &kinds)
{
    const std::size_t n = cg.nodes.size();
    std::vector<std::vector<int>> rev(n);
    for (std::size_t i = 0; i < n; ++i)
        for (int c : cg.nodes[i].callees)
            rev[static_cast<std::size_t>(c)].push_back(
                static_cast<int>(i));
    Taint t;
    t.tainted.assign(n, 0);
    t.nextHop.assign(n, -1);
    std::deque<int> queue;
    for (std::size_t i = 0; i < n; ++i) {
        if (exemptSource(
                pm.files[static_cast<std::size_t>(cg.nodes[i].file)]))
            continue;
        if (firstMark(cg.def(pm, static_cast<int>(i)), kinds)) {
            t.tainted[i] = 1;
            queue.push_back(static_cast<int>(i));
        }
    }
    while (!queue.empty()) {
        const int c = queue.front();
        queue.pop_front();
        for (int p : rev[static_cast<std::size_t>(c)]) {
            if (t.tainted[static_cast<std::size_t>(p)])
                continue;
            t.tainted[static_cast<std::size_t>(p)] = 1;
            t.nextHop[static_cast<std::size_t>(p)] = c;
            queue.push_back(p);
        }
    }
    return t;
}

/** Line of the (first-recorded) call edge from `from` to `to`. */
int
edgeLine(const CgNode &from, int to)
{
    for (std::size_t k = 0; k < from.callees.size(); ++k)
        if (from.callees[k] == to)
            return from.calleeLine[k];
    return 0;
}

/** Witness chain from the call site in `root` into `first` and on to
 * the taint source, as RelatedSite steps. */
std::vector<RelatedSite>
witness(const ProjectModel &pm, const CallGraph &cg, const Taint &t,
        int root, int first, const std::vector<TaintKind> &kinds)
{
    std::vector<RelatedSite> chain;
    int at = root, next = first;
    while (next >= 0) {
        chain.push_back(
            {cg.path(pm, at),
             edgeLine(cg.nodes[static_cast<std::size_t>(at)], next),
             "calls '" + qualName(cg.def(pm, next)) + "'"});
        at = next;
        next = t.nextHop[static_cast<std::size_t>(at)];
    }
    const SourceMark *m = firstMark(cg.def(pm, at), kinds);
    if (m)
        chain.push_back({cg.path(pm, at), m->line, "source: " + m->what});
    return chain;
}

std::string
describeSource(const ProjectModel &pm, const CallGraph &cg,
               const Taint &t, int first,
               const std::vector<TaintKind> &kinds)
{
    int at = first;
    while (t.nextHop[static_cast<std::size_t>(at)] >= 0)
        at = t.nextHop[static_cast<std::size_t>(at)];
    const SourceMark *m = firstMark(cg.def(pm, at), kinds);
    if (!m)
        return "a flagged source";
    return "'" + m->what + "' in '" + qualName(cg.def(pm, at)) + "' (" +
           cg.path(pm, at) + ":" + std::to_string(m->line) + ")";
}

} // namespace

std::vector<Violation>
lintCallGraph(const ProjectModel &pm, const CallGraph &cg)
{
    std::vector<Violation> out;
    std::set<std::pair<std::string, std::pair<int, std::string>>> seen;
    auto report = [&](const std::string &path, int line,
                      const std::string &rule, std::string message,
                      std::vector<RelatedSite> related) {
        if (!seen.insert({path, {line, rule}}).second)
            return;
        const int fi = pm.fileIndex(path);
        if (fi >= 0 &&
            suppressedAt(pm.files[static_cast<std::size_t>(fi)].lx, line,
                         rule))
            return;
        out.push_back(
            {path, line, rule, std::move(message), std::move(related)});
    };

    auto layerOf = [&](int n) -> const std::string & {
        return pm.files[static_cast<std::size_t>(
                            cg.nodes[static_cast<std::size_t>(n)].file)]
            .layer;
    };
    auto simLayer = [&](int n) {
        const std::string &l = layerOf(n);
        return l == "sim" || l == "solver";
    };
    auto nondetRoot = [&](int n) {
        return simLayer(n) || (layerOf(n) == "workload" &&
                               cg.def(pm, n).name == "next");
    };

    const std::vector<TaintKind> nondetKinds = {
        TaintKind::WallClock, TaintKind::Randomness, TaintKind::ThreadId,
        TaintKind::UnorderedIter};
    const std::vector<TaintKind> blockKinds = {TaintKind::Blocking};
    const Taint nondet = taintReach(pm, cg, nondetKinds);
    const Taint block = taintReach(pm, cg, blockKinds);

    for (int r = 0; r < static_cast<int>(cg.nodes.size()); ++r) {
        const CgNode &node = cg.nodes[static_cast<std::size_t>(r)];
        const FuncDef &fd = cg.def(pm, r);

        // sim-nondeterminism: report where a sim-context root calls
        // into a tainted function *outside* the sim context (sources
        // directly inside sim files are the per-file rules' ground).
        if (nondetRoot(r)) {
            for (std::size_t k = 0; k < node.callees.size(); ++k) {
                const int c = node.callees[k];
                if (!nondet.tainted[static_cast<std::size_t>(c)] ||
                    nondetRoot(c))
                    continue;
                report(cg.path(pm, r), node.calleeLine[k],
                       "sim-nondeterminism",
                       "sim-context function '" + qualName(fd) +
                           "' calls '" + qualName(cg.def(pm, c)) +
                           "', which reaches nondeterminism source " +
                           describeSource(pm, cg, nondet, c,
                                          nondetKinds),
                       witness(pm, cg, nondet, r, c, nondetKinds));
            }
        }

        if (!simLayer(r))
            continue;

        // blocking-in-sim: direct blocking constructs in the hot path…
        if (!exemptSource(pm.files[static_cast<std::size_t>(node.file)]))
            for (const SourceMark &m : fd.sources)
                if (m.kind == TaintKind::Blocking)
                    report(cg.path(pm, r), m.line, "blocking-in-sim",
                           "blocking construct '" + m.what +
                               "' in sim hot-path function '" +
                               qualName(fd) + "'",
                           {});
        // …and calls that transitively block.
        for (std::size_t k = 0; k < node.callees.size(); ++k) {
            const int c = node.callees[k];
            if (!block.tainted[static_cast<std::size_t>(c)] || simLayer(c))
                continue;
            report(cg.path(pm, r), node.calleeLine[k], "blocking-in-sim",
                   "sim hot-path function '" + qualName(fd) + "' calls '" +
                       qualName(cg.def(pm, c)) +
                       "', which reaches blocking construct " +
                       describeSource(pm, cg, block, c, blockKinds),
                   witness(pm, cg, block, r, c, blockKinds));
        }
    }

    // unbounded-recursion: Tarjan SCCs over the sim/solver subgraph;
    // a cycle none of whose members carries an URSA_CHECK guard has no
    // enforced depth bound. Only *strong* edges participate: a member
    // call with an unknown receiver or a call sited inside a lambda
    // body (deferred through the event loop, not the stack) cannot
    // prove stack recursion. Iterative Tarjan, nodes in id order, so
    // component ids and reporting order are deterministic.
    {
        const int n = static_cast<int>(cg.nodes.size());
        std::vector<int> index(static_cast<std::size_t>(n), -1),
            low(static_cast<std::size_t>(n), 0);
        std::vector<char> onStack(static_cast<std::size_t>(n), 0);
        std::vector<int> stack, sccOf(static_cast<std::size_t>(n), -1);
        int nextIndex = 0, nextScc = 0;
        std::vector<std::vector<int>> sccs;
        struct Frame
        {
            int v;
            std::size_t child;
        };
        for (int s = 0; s < n; ++s) {
            if (index[static_cast<std::size_t>(s)] != -1 || !simLayer(s))
                continue;
            std::vector<Frame> dfs{{s, 0}};
            index[static_cast<std::size_t>(s)] =
                low[static_cast<std::size_t>(s)] = nextIndex++;
            stack.push_back(s);
            onStack[static_cast<std::size_t>(s)] = 1;
            while (!dfs.empty()) {
                Frame &f = dfs.back();
                const CgNode &node =
                    cg.nodes[static_cast<std::size_t>(f.v)];
                if (f.child < node.callees.size()) {
                    const std::size_t k = f.child++;
                    const int w = node.callees[k];
                    if (!node.calleeStrong[k] || !simLayer(w))
                        continue;
                    if (index[static_cast<std::size_t>(w)] == -1) {
                        index[static_cast<std::size_t>(w)] =
                            low[static_cast<std::size_t>(w)] =
                                nextIndex++;
                        stack.push_back(w);
                        onStack[static_cast<std::size_t>(w)] = 1;
                        dfs.push_back({w, 0});
                    } else if (onStack[static_cast<std::size_t>(w)]) {
                        low[static_cast<std::size_t>(f.v)] = std::min(
                            low[static_cast<std::size_t>(f.v)],
                            index[static_cast<std::size_t>(w)]);
                    }
                    continue;
                }
                if (low[static_cast<std::size_t>(f.v)] ==
                    index[static_cast<std::size_t>(f.v)]) {
                    std::vector<int> comp;
                    for (;;) {
                        const int w = stack.back();
                        stack.pop_back();
                        onStack[static_cast<std::size_t>(w)] = 0;
                        sccOf[static_cast<std::size_t>(w)] = nextScc;
                        comp.push_back(w);
                        if (w == f.v)
                            break;
                    }
                    std::sort(comp.begin(), comp.end());
                    sccs.push_back(std::move(comp));
                    ++nextScc;
                }
                const int v = f.v;
                dfs.pop_back();
                if (!dfs.empty())
                    low[static_cast<std::size_t>(dfs.back().v)] = std::min(
                        low[static_cast<std::size_t>(dfs.back().v)],
                        low[static_cast<std::size_t>(v)]);
            }
        }
        for (const std::vector<int> &comp : sccs) {
            bool cyclic = comp.size() > 1;
            if (!cyclic) {
                const CgNode &only =
                    cg.nodes[static_cast<std::size_t>(comp[0])];
                for (std::size_t k = 0; k < only.callees.size(); ++k)
                    cyclic = cyclic || (only.callees[k] == comp[0] &&
                                        only.calleeStrong[k]);
            }
            if (!cyclic)
                continue;
            bool guarded = false;
            for (int m : comp)
                guarded = guarded || cg.def(pm, m).checkGuard;
            if (guarded)
                continue;
            // Report at the member with the smallest (path, line).
            int head = comp[0];
            for (int m : comp)
                if (std::make_pair(cg.path(pm, m), cg.def(pm, m).line) <
                    std::make_pair(cg.path(pm, head),
                                   cg.def(pm, head).line))
                    head = m;
            std::string cycle;
            std::vector<RelatedSite> related;
            for (int m : comp) {
                if (!cycle.empty())
                    cycle += " -> ";
                cycle += "'" + qualName(cg.def(pm, m)) + "'";
                related.push_back({cg.path(pm, m), cg.def(pm, m).line,
                                   "cycle member '" +
                                       qualName(cg.def(pm, m)) + "'"});
            }
            report(cg.path(pm, head), cg.def(pm, head).line,
                   "unbounded-recursion",
                   "recursion cycle in the sim/solver layers with no "
                   "URSA_CHECK-guarded depth bound: " +
                       cycle,
                   std::move(related));
        }
    }

    sortViolations(out);
    return out;
}

} // namespace ursa::lint
