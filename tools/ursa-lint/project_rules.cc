#include "project_rules.h"

#include "callgraph.h"
#include "graph.h"

#include <algorithm>
#include <iterator>
#include <map>

namespace ursa::lint
{

namespace
{

struct ProjectCtx
{
    const ProjectModel &pm;
    std::vector<Violation> out;

    void
    report(const FileModel &fm, int line, const char *rule,
           const std::string &message)
    {
        if (!suppressedAt(fm.lx, line, rule))
            out.push_back({fm.path, line, rule, message, {}});
    }
};

std::string
joinPath(const std::vector<std::string> &names)
{
    std::string s;
    for (const std::string &n : names) {
        if (!s.empty())
            s += " -> ";
        s += n;
    }
    return s;
}

/** `dir/stem.h` for `dir/stem.cc` — the file's own header, if any. */
std::string
ownHeaderPath(const std::string &path)
{
    const std::size_t dot = path.rfind('.');
    if (dot == std::string::npos)
        return "";
    const std::string ext = path.substr(dot);
    if (ext != ".cc" && ext != ".cpp")
        return "";
    return path.substr(0, dot) + ".h";
}

// --- layer-violation -----------------------------------------------------

void
ruleLayerViolation(ProjectCtx &ctx)
{
    for (const FileModel &fm : ctx.pm.files) {
        const int from = layerLevel(fm.layer);
        if (from < 0)
            continue;
        for (const ResolvedInclude &inc : fm.includes) {
            if (inc.target < 0)
                continue;
            const FileModel &tgt = ctx.pm.files[inc.target];
            const int to = layerLevel(tgt.layer);
            if (to < 0 || to <= from)
                continue;
            ctx.report(fm, inc.line, "layer-violation",
                       "layer '" + fm.layer + "' may not include '" +
                           tgt.path + "': '" + tgt.layer +
                           "' sits above it in the layer DAG (base -> "
                           "check/stats -> exec -> sim/trace/workload -> "
                           "spec -> solver/ml -> baselines/core -> apps)");
        }
    }
}

// --- layer-cycle ---------------------------------------------------------

void
ruleLayerCycle(ProjectCtx &ctx)
{
    Digraph g;
    for (const FileModel &fm : ctx.pm.files)
        g.node(fm.path);
    for (const FileModel &fm : ctx.pm.files)
        for (const ResolvedInclude &inc : fm.includes)
            if (inc.target >= 0)
                g.addEdge(g.find(fm.path),
                          g.find(ctx.pm.files[inc.target].path));
    const std::vector<int> ids = g.sccIds();
    const std::vector<int> sizes = Digraph::sccSizes(ids);
    for (const FileModel &fm : ctx.pm.files) {
        const int from = g.find(fm.path);
        for (const ResolvedInclude &inc : fm.includes) {
            if (inc.target < 0)
                continue;
            const int to = g.find(ctx.pm.files[inc.target].path);
            if (!g.edgeOnCycle(ids, sizes, from, to))
                continue;
            ctx.report(fm, inc.line, "layer-cycle",
                       "include cycle: " +
                           joinPath(g.cycleThrough(from, to)) +
                           " — break it with a forward declaration or an "
                           "interface split");
        }
    }
}

// --- lock-order ----------------------------------------------------------

struct LockSite
{
    int file; ///< index into pm.files
    int line;
    std::string function;
};

void
ruleLockOrder(ProjectCtx &ctx)
{
    Digraph g;
    std::map<std::pair<int, int>, std::vector<LockSite>> sites;
    for (std::size_t fi = 0; fi < ctx.pm.files.size(); ++fi)
        for (const LockEdge &e : ctx.pm.files[fi].lockEdges) {
            const int a = g.node(e.held);
            const int b = g.node(e.acquired);
            g.addEdge(a, b);
            sites[{a, b}].push_back(
                {static_cast<int>(fi), e.line, e.function});
        }
    if (g.size() == 0)
        return;
    const std::vector<int> ids = g.sccIds();
    const std::vector<int> sizes = Digraph::sccSizes(ids);
    for (const auto &[edge, where] : sites) {
        const auto [a, b] = edge;
        if (!g.edgeOnCycle(ids, sizes, a, b))
            continue;
        const std::vector<std::string> cycle = g.cycleThrough(a, b);
        // Cite the next edge of the cycle so the AB site points at the
        // BA site (and vice versa) even across translation units.
        std::string witness;
        if (cycle.size() >= 3) {
            const int wa = g.find(cycle[1]), wb = g.find(cycle[2]);
            const auto it = sites.find({wa, wb});
            if (it != sites.end() && !it->second.empty()) {
                const LockSite &s = it->second.front();
                witness = "; reverse order at " +
                          ctx.pm.files[s.file].path + ":" +
                          std::to_string(s.line) +
                          (s.function.empty() ? ""
                                              : " (" + s.function + ")");
            }
        }
        for (const LockSite &s : where) {
            const FileModel &fm = ctx.pm.files[s.file];
            ctx.report(fm, s.line, "lock-order",
                       "acquiring '" + g.name(b) + "' while holding '" +
                           g.name(a) +
                           "' joins a lock-order cycle: " + joinPath(cycle) +
                           witness + " — potential AB/BA deadlock");
        }
    }
}

// --- include-hygiene -----------------------------------------------------

void
ruleIncludeHygiene(ProjectCtx &ctx)
{
    for (const FileModel &fm : ctx.pm.files) {
        const std::string own = ownHeaderPath(fm.path);
        const int ownIdx = own.empty() ? -1 : ctx.pm.fileIndex(own);

        // (a) Dead includes: a project-internal include whose file
        // defines symbols, none of which this file mentions.
        std::vector<int> direct;
        for (const ResolvedInclude &inc : fm.includes) {
            if (inc.target < 0)
                continue;
            direct.push_back(inc.target);
            if (inc.target == ownIdx)
                continue; // a .cc always keeps its own header
            const FileModel &tgt = ctx.pm.files[inc.target];
            if (tgt.provides.empty())
                continue; // nothing indexable — cannot judge
            const bool used = std::any_of(
                tgt.provides.begin(), tgt.provides.end(),
                [&](const std::string &s) { return fm.idents.count(s); });
            if (!used)
                ctx.report(fm, inc.line, "include-hygiene",
                           "include \"" + tgt.path +
                               "\" contributes no symbol used by this "
                               "file; drop it (or include what you "
                               "actually use)");
        }

        // (b) Transitive leaks: a symbol used here whose only
        // providers are files reached through other headers. BFS in
        // include order gives nearest-provider attribution.
        std::vector<int> reach;
        {
            std::vector<bool> seen(ctx.pm.files.size(), false);
            seen[ctx.pm.fileIndex(fm.path)] = true;
            std::vector<int> queue = direct;
            for (const int d : direct)
                seen[d] = true;
            for (std::size_t q = 0; q < queue.size(); ++q) {
                reach.push_back(queue[q]);
                for (const ResolvedInclude &inc :
                     ctx.pm.files[queue[q]].includes)
                    if (inc.target >= 0 && !seen[inc.target]) {
                        seen[inc.target] = true;
                        queue.push_back(inc.target);
                    }
            }
        }
        std::set<std::string> satisfied = fm.provides;
        for (const int d : direct)
            satisfied.insert(ctx.pm.files[d].provides.begin(),
                             ctx.pm.files[d].provides.end());
        std::set<std::string> claimed;
        for (const int gi : reach) {
            if (std::find(direct.begin(), direct.end(), gi) !=
                direct.end())
                continue;
            const FileModel &g = ctx.pm.files[gi];
            std::vector<std::string> syms;
            for (const std::string &s : g.anchors)
                if (fm.idents.count(s) && !satisfied.count(s) &&
                    !claimed.count(s))
                    syms.push_back(s);
            if (syms.empty())
                continue;
            claimed.insert(syms.begin(), syms.end());
            // Anchor the report where the first leaked symbol is used.
            int line = 1;
            for (const Token &t : fm.lx.tokens)
                if (t.kind == TokenKind::Identifier && t.text == syms[0]) {
                    line = t.line;
                    break;
                }
            std::string list = "'" + syms[0] + "'";
            if (syms.size() > 1)
                list += " (+" + std::to_string(syms.size() - 1) + " more)";
            ctx.report(fm, line, "include-hygiene",
                       "uses " + list + " from \"" + g.path +
                           "\" but reaches it only through transitive "
                           "includes; include \"" + g.path + "\" directly");
        }
    }
}

} // namespace

std::vector<Violation>
lintProject(const ProjectModel &pm)
{
    ProjectCtx ctx{pm, {}};
    ruleLayerViolation(ctx);
    ruleLayerCycle(ctx);
    ruleLockOrder(ctx);
    ruleIncludeHygiene(ctx);
    // Pass 3: the interprocedural rules over the project call graph
    // (already suppression-filtered and ordered; see callgraph.cc).
    const CallGraph cg = buildCallGraph(pm);
    std::vector<Violation> inter = lintCallGraph(pm, cg);
    ctx.out.insert(ctx.out.end(),
                   std::make_move_iterator(inter.begin()),
                   std::make_move_iterator(inter.end()));
    sortViolations(ctx.out);
    return std::move(ctx.out);
}

} // namespace ursa::lint
