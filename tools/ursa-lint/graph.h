/**
 * @file
 * Small directed-graph utility for the whole-project lint pass.
 *
 * Both cross-file analyses reduce to cycle questions on a digraph:
 * `layer-cycle` asks whether the file include graph has a strongly
 * connected component larger than one file, and `lock-order` asks the
 * same of the global lock-acquisition-order graph. Nodes are interned
 * strings (file paths, normalized lock expressions); Tarjan's
 * algorithm yields the SCC decomposition in one pass, and
 * `cycleThrough` reconstructs a concrete witness path for the
 * diagnostic message.
 */

#ifndef URSA_TOOLS_LINT_GRAPH_H
#define URSA_TOOLS_LINT_GRAPH_H

#include <map>
#include <string>
#include <vector>

namespace ursa::lint
{

class Digraph
{
  public:
    /** Intern `name`, returning its stable node id. */
    int node(const std::string &name);

    /** Node id for `name`, or -1 if never interned. */
    int find(const std::string &name) const;

    /** Add edge from -> to (parallel edges are deduplicated). */
    void addEdge(int from, int to);

    const std::string &name(int id) const { return names_[id]; }
    int size() const { return static_cast<int>(names_.size()); }
    const std::vector<int> &successors(int id) const { return adj_[id]; }

    /**
     * Strongly connected components (Tarjan). Returns one component id
     * per node; nodes sharing an id are mutually reachable. A node is
     * *cyclic* iff its component has >= 2 members or it has a
     * self-edge.
     */
    std::vector<int> sccIds() const;

    /** Component sizes indexed by component id from sccIds(). */
    static std::vector<int> sccSizes(const std::vector<int> &ids);

    /** True iff `from`->`to` lies on a cycle (same non-trivial SCC). */
    bool edgeOnCycle(const std::vector<int> &ids,
                     const std::vector<int> &sizes, int from, int to) const;

    /**
     * A concrete cycle that starts by following `from` -> `to` and
     * returns to `from` inside their shared SCC, as node names
     * ["from", "to", ..., "from"]. Empty if the edge is not on a
     * cycle.
     */
    std::vector<std::string> cycleThrough(int from, int to) const;

  private:
    std::map<std::string, int> ids_;
    std::vector<std::string> names_;
    std::vector<std::vector<int>> adj_;
};

} // namespace ursa::lint

#endif // URSA_TOOLS_LINT_GRAPH_H
