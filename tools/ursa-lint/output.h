/**
 * @file
 * Violation emitters for ursa-lint.
 *
 * Text is the developer/ctest format (one `file:line:rule: message`
 * per line, root-joined paths). SARIF 2.1.0 is for CI: the lint leg
 * uploads the report as an artifact and to GitHub code scanning, so
 * findings annotate the PR diff instead of scrolling past in a log.
 * The markdown rule table backs `--list-rules --format=markdown`,
 * which DESIGN.md's catalogue section is generated from (a ctest
 * pins the two together so docs and catalogue cannot drift).
 */

#ifndef URSA_TOOLS_LINT_OUTPUT_H
#define URSA_TOOLS_LINT_OUTPUT_H

#include "rules.h"

#include <string>
#include <vector>

namespace ursa::lint
{

/**
 * Join `root` and `rel` into a normalized display path: root "src/",
 * rel "sim/a.cc" -> "src/sim/a.cc" (never "src//sim/a.cc"); root "."
 * collapses away entirely.
 */
std::string displayPath(const std::string &root, const std::string &rel);

/** One `path:line:rule: message` line per violation. */
std::string formatText(const std::vector<Violation> &vs,
                       const std::string &root);

/** A complete SARIF 2.1.0 document (uris are root-joined paths). */
std::string formatSarif(const std::vector<Violation> &vs,
                        const std::string &root);

/** The rule catalogue as a markdown table (for the generated docs). */
std::string formatRuleTableMarkdown();

} // namespace ursa::lint

#endif // URSA_TOOLS_LINT_OUTPUT_H
