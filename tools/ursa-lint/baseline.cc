#include "baseline.h"

#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

namespace ursa::lint
{

namespace
{

std::string
trim(const std::string &s)
{
    const std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    const std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

} // namespace

bool
loadBaseline(const std::string &file, std::vector<BaselineEntry> &entries,
             std::string &error)
{
    std::ifstream in(file);
    if (!in) {
        error = "cannot read baseline file " + file;
        return false;
    }
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        // <path>:<line>:<rule>  # reason
        const std::size_t hash = t.find('#');
        const std::string key = trim(hash == std::string::npos
                                         ? t
                                         : t.substr(0, hash));
        const std::string reason =
            hash == std::string::npos ? "" : trim(t.substr(hash + 1));
        const std::size_t c2 = key.rfind(':');
        const std::size_t c1 =
            c2 == std::string::npos ? std::string::npos
                                    : key.rfind(':', c2 - 1);
        BaselineEntry e;
        if (c1 == std::string::npos || c2 == std::string::npos ||
            c1 == 0 || c2 == c1 + 1) {
            error = file + ":" + std::to_string(lineno) +
                    ": malformed baseline entry (want "
                    "path:line:rule  # reason): " + t;
            return false;
        }
        e.path = key.substr(0, c1);
        e.rule = key.substr(c2 + 1);
        e.reason = reason;
        try {
            e.line = std::stoi(key.substr(c1 + 1, c2 - c1 - 1));
        } catch (...) {
            error = file + ":" + std::to_string(lineno) +
                    ": non-numeric line in baseline entry: " + t;
            return false;
        }
        if (!knownRule(e.rule)) {
            error = file + ":" + std::to_string(lineno) +
                    ": baseline entry names unknown rule '" + e.rule + "'";
            return false;
        }
        if (e.reason.empty()) {
            error = file + ":" + std::to_string(lineno) +
                    ": baseline entry without a reason (a baseline is a "
                    "suppression; justify it after '#'): " + t;
            return false;
        }
        entries.push_back(std::move(e));
    }
    return true;
}

void
applyBaseline(const std::vector<BaselineEntry> &entries,
              const std::vector<Violation> &all,
              std::vector<Violation> &kept,
              std::vector<Violation> &baselined,
              std::vector<BaselineEntry> &stale)
{
    std::map<std::tuple<std::string, int, std::string>, int> hits;
    for (const BaselineEntry &e : entries)
        hits[{e.path, e.line, e.rule}] = 0;
    for (const Violation &v : all) {
        const auto it = hits.find({v.path, v.line, v.rule});
        if (it != hits.end()) {
            ++it->second;
            baselined.push_back(v);
        } else {
            kept.push_back(v);
        }
    }
    for (const BaselineEntry &e : entries)
        if (hits[{e.path, e.line, e.rule}] == 0)
            stale.push_back(e);
}

std::string
formatBaseline(const std::vector<Violation> &vs)
{
    std::ostringstream out;
    out << "# ursa-lint baseline: reviewed, grandfathered violations.\n"
           "# Format: <path>:<line>:<rule>  # <reason>\n"
           "# A reason is mandatory — a baseline entry is a suppression.\n";
    for (const Violation &v : vs)
        out << v.path << ':' << v.line << ':' << v.rule
            << "  # TODO(justify): " << v.message.substr(0, 60) << '\n';
    return out.str();
}

} // namespace ursa::lint
