#include "output.h"

#include <cstdio>
#include <filesystem>

namespace ursa::lint
{

namespace
{

/** Minimal JSON string escaping (SARIF payloads are ASCII-ish). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
displayPath(const std::string &root, const std::string &rel)
{
    namespace fs = std::filesystem;
    return (fs::path(root) / rel).lexically_normal().generic_string();
}

std::string
formatText(const std::vector<Violation> &vs, const std::string &root)
{
    std::string out;
    for (const Violation &v : vs) {
        out += displayPath(root, v.path);
        out += ':';
        out += std::to_string(v.line);
        out += ':';
        out += v.rule;
        out += ": ";
        out += v.message;
        out += '\n';
        for (const RelatedSite &s : v.related) {
            out += "    via ";
            out += displayPath(root, s.path);
            out += ':';
            out += std::to_string(s.line);
            out += ": ";
            out += s.note;
            out += '\n';
        }
    }
    return out;
}

std::string
formatSarif(const std::vector<Violation> &vs, const std::string &root)
{
    std::string out;
    out += "{\n"
           "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
           "  \"version\": \"2.1.0\",\n"
           "  \"runs\": [\n"
           "    {\n"
           "      \"tool\": {\n"
           "        \"driver\": {\n"
           "          \"name\": \"ursa-lint\",\n"
           "          \"informationUri\": "
           "\"https://example.invalid/ursa-lint\",\n"
           "          \"rules\": [\n";
    const auto &rules = ruleCatalogue();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        out += "            {\"id\": \"";
        out += jsonEscape(rules[i].id);
        out += "\", \"shortDescription\": {\"text\": \"";
        out += jsonEscape(rules[i].summary);
        out += "\"}}";
        out += i + 1 < rules.size() ? ",\n" : "\n";
    }
    out += "          ]\n"
           "        }\n"
           "      },\n"
           "      \"results\": [\n";
    for (std::size_t i = 0; i < vs.size(); ++i) {
        const Violation &v = vs[i];
        out += "        {\"ruleId\": \"";
        out += jsonEscape(v.rule);
        out += "\", \"level\": \"error\", \"message\": {\"text\": \"";
        out += jsonEscape(v.message);
        out += "\"}, \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \"";
        out += jsonEscape(displayPath(root, v.path));
        out += "\"}, \"region\": {\"startLine\": ";
        out += std::to_string(v.line);
        out += "}}}]";
        if (!v.related.empty()) {
            // Witness chains (interprocedural findings) ride along as
            // SARIF relatedLocations, one per call-chain step.
            out += ", \"relatedLocations\": [";
            for (std::size_t r = 0; r < v.related.size(); ++r) {
                const RelatedSite &s = v.related[r];
                out += "{\"physicalLocation\": {\"artifactLocation\": "
                       "{\"uri\": \"";
                out += jsonEscape(displayPath(root, s.path));
                out += "\"}, \"region\": {\"startLine\": ";
                out += std::to_string(s.line);
                out += "}}, \"message\": {\"text\": \"";
                out += jsonEscape(s.note);
                out += "\"}}";
                if (r + 1 < v.related.size())
                    out += ", ";
            }
            out += "]";
        }
        out += "}";
        out += i + 1 < vs.size() ? ",\n" : "\n";
    }
    out += "      ]\n"
           "    }\n"
           "  ]\n"
           "}\n";
    return out;
}

std::string
formatRuleTableMarkdown()
{
    std::string out = "| Rule | What it catches |\n| --- | --- |\n";
    for (const RuleInfo &r : ruleCatalogue()) {
        out += "| `";
        out += r.id;
        out += "` | ";
        out += r.summary;
        out += " |\n";
    }
    return out;
}

} // namespace ursa::lint
