/**
 * @file
 * ursa-lint rule engine: the determinism rules ported from
 * scripts/lint_determinism.py plus the concurrency/hygiene rule
 * classes that needed a real tokenizer, and (since the whole-project
 * pass) the catalogue entries for the cross-file rules implemented in
 * project_rules.cc. See RULES in rules.cc for the catalogue;
 * DESIGN.md §9/§11 document scope and suppression policy.
 */

#ifndef URSA_TOOLS_LINT_RULES_H
#define URSA_TOOLS_LINT_RULES_H

#include "lexer.h"

#include <string>
#include <vector>

namespace ursa::lint
{

/**
 * One step of an interprocedural witness (pass 3): a call site or
 * taint source on the path that explains a finding. Rendered as
 * indented `via` lines in text output and as SARIF relatedLocations.
 */
struct RelatedSite
{
    std::string path; ///< repo-relative, '/'-separated
    int line;
    std::string note; ///< "calls sim::Shard::run", "source: steady_clock"
};

struct Violation
{
    std::string path; ///< repo-relative, '/'-separated
    int line;
    std::string rule;
    std::string message;
    /// Witness chain for interprocedural findings (empty otherwise).
    std::vector<RelatedSite> related;
};

/** One catalogue entry (for --list-rules and the docs). */
struct RuleInfo
{
    const char *id;
    const char *summary;
};

/** The rule catalogue, in reporting order. */
const std::vector<RuleInfo> &ruleCatalogue();

/** True iff `rule` is a known rule id. */
bool knownRule(const std::string &rule);

/** Catalogue summary for `rule` ("" if unknown). */
const char *ruleSummary(const std::string &rule);

/**
 * True iff a `// ursa-lint: allow(<rule>[, ...]) <reason>` comment on
 * `line` or the line above names `rule` *and* carries a non-empty
 * reason after the paren group. A reasonless allow() suppresses
 * nothing (and additionally fires the suppression-reason rule).
 */
bool suppressedAt(const LexedFile &lx, int line, const std::string &rule);

/**
 * Lint one file. `relPath` is the path relative to the lint root
 * ('/'-separated) — its first component selects the layer scope (sim,
 * core, exec, ...) several rules key on. Suppressed violations
 * (`// ursa-lint: allow(rule) reason` on the line or the line above)
 * are already filtered out.
 */
std::vector<Violation> lintFile(const std::string &relPath,
                                const std::string &source);

/** Same, over an already-lexed file (the parallel pass lexes once). */
std::vector<Violation> lintFileLexed(const std::string &relPath,
                                     const LexedFile &lx);

/** Canonical ordering: path, then line, then rule. */
void sortViolations(std::vector<Violation> &vs);

} // namespace ursa::lint

#endif // URSA_TOOLS_LINT_RULES_H
