/**
 * @file
 * ursa-lint rule engine: the determinism rules ported from
 * scripts/lint_determinism.py plus the concurrency/hygiene rule
 * classes that needed a real tokenizer. See RULES in rules.cc for the
 * catalogue; DESIGN.md §9 documents scope and suppression policy.
 */

#ifndef URSA_TOOLS_LINT_RULES_H
#define URSA_TOOLS_LINT_RULES_H

#include "lexer.h"

#include <string>
#include <vector>

namespace ursa::lint
{

struct Violation
{
    std::string path; ///< repo-relative, '/'-separated
    int line;
    std::string rule;
    std::string message;
};

/** One catalogue entry (for --list-rules and the docs). */
struct RuleInfo
{
    const char *id;
    const char *summary;
};

/** The rule catalogue, in reporting order. */
const std::vector<RuleInfo> &ruleCatalogue();

/** True iff `rule` is a known rule id. */
bool knownRule(const std::string &rule);

/**
 * Lint one file. `relPath` is the path relative to the lint root
 * ('/'-separated) — its first component selects the layer scope (sim,
 * core, exec, ...) several rules key on. Suppressed violations
 * (`// ursa-lint: allow(rule)` on the line or the line above) are
 * already filtered out.
 */
std::vector<Violation> lintFile(const std::string &relPath,
                                const std::string &source);

} // namespace ursa::lint

#endif // URSA_TOOLS_LINT_RULES_H
