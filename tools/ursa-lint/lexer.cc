#include "lexer.h"

#include <cctype>

namespace ursa::lint
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer
{
  public:
    explicit Lexer(const std::string &src) : src_(src) {}

    LexedFile
    run()
    {
        while (i_ < src_.size())
            step();
        out_.lineCount = line_;
        comment(line_); // ensure the comments vector spans every line
        return std::move(out_);
    }

  private:
    /**
     * Length of a backslash-newline line splice at `i` (2, or 3 with a
     * CR), else 0. Splices are consumed wherever they occur — between
     * tokens, inside identifiers, inside directives — so a spliced
     * `#include` or a spliced keyword reforms exactly as the
     * preprocessor would see it.
     */
    std::size_t
    spliceLen(std::size_t i) const
    {
        if (i + 1 >= src_.size() || src_[i] != '\\')
            return 0;
        if (src_[i + 1] == '\n')
            return 2;
        if (src_[i + 1] == '\r' && i + 2 < src_.size() && src_[i + 2] == '\n')
            return 3;
        return 0;
    }

    /** Consume any splices at the cursor; returns true if any. */
    bool
    skipSplices()
    {
        bool any = false;
        for (std::size_t n = spliceLen(i_); n != 0; n = spliceLen(i_)) {
            i_ += n;
            ++line_;
            any = true;
        }
        return any;
    }

    void
    step()
    {
        if (skipSplices())
            return; // a splice continues the logical line: keep state
        const char c = src_[i_];
        const char n = i_ + 1 < src_.size() ? src_[i_ + 1] : '\0';

        if (c == '\n') {
            ++line_;
            atLineStart_ = true;
            ++i_;
            return;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
            ++i_;
            return;
        }
        if (c == '/' && n == '/') {
            lineComment();
            return;
        }
        if (c == '/' && n == '*') {
            blockComment();
            return;
        }
        if (c == '#' && atLineStart_) {
            hashDirective();
            return;
        }
        atLineStart_ = false;
        if (identStart(c)) {
            identifierOrLiteral();
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(n)))) {
            number();
            return;
        }
        if (c == '"') {
            stringLiteral();
            return;
        }
        if (c == '\'') {
            charLiteral();
            return;
        }
        out_.tokens.push_back({TokenKind::Punct, std::string(1, c), line_});
        ++i_;
    }

    void
    lineComment()
    {
        const int startLine = line_;
        const std::size_t start = i_;
        while (i_ < src_.size() && src_[i_] != '\n') {
            // A line comment whose last character is a backslash
            // continues onto the next physical line ([lex.phases] p2).
            const std::size_t n = spliceLen(i_);
            if (n != 0) {
                i_ += n;
                ++line_;
                continue;
            }
            ++i_;
        }
        comment(startLine) += src_.substr(start, i_ - start);
    }

    void
    blockComment()
    {
        const int startLine = line_;
        const std::size_t start = i_;
        i_ += 2;
        while (i_ < src_.size() &&
               !(src_[i_] == '*' && i_ + 1 < src_.size() &&
                 src_[i_ + 1] == '/')) {
            if (src_[i_] == '\n')
                ++line_;
            ++i_;
        }
        if (i_ < src_.size())
            i_ += 2; // past */
        comment(startLine) += src_.substr(start, i_ - start);
    }

    /**
     * A `#` that opens a line. `#include` directives are parsed into
     * IncludeDirective records and emit no tokens (their `<path>` form
     * would otherwise shred into misleading punctuation); every other
     * directive falls through to ordinary tokenization.
     */
    void
    hashDirective()
    {
        // Scan the directive keyword with splice-awareness: both
        // `#include \<newline> "x.h"` and the pathological
        // `#inc\<newline>lude "x.h"` must index as an include.
        // `lines` counts splices consumed so the cursor/line state can
        // be restored when this is not an include after all.
        std::size_t j = i_ + 1;
        int lines = 0;
        auto skip = [&](std::size_t &at) {
            for (std::size_t n = spliceLen(at); n != 0; n = spliceLen(at)) {
                at += n;
                ++lines;
            }
        };
        std::string keyword;
        for (skip(j); j < src_.size(); skip(j)) {
            if (keyword.empty() && (src_[j] == ' ' || src_[j] == '\t')) {
                ++j;
                continue;
            }
            if (!identChar(src_[j]))
                break;
            keyword += src_[j++];
        }
        if (keyword != "include") {
            atLineStart_ = false;
            out_.tokens.push_back({TokenKind::Punct, "#", line_});
            ++i_;
            return;
        }
        line_ += lines;
        i_ = j;
        // Whitespace and splices interleave freely between the keyword
        // and the header (`#include \<newline>   "x.h"`).
        for (;;) {
            if (spliceLen(i_) != 0 && skipSplices())
                continue;
            if (i_ < src_.size() && (src_[i_] == ' ' || src_[i_] == '\t')) {
                ++i_;
                continue;
            }
            break;
        }
        if (i_ < src_.size() && (src_[i_] == '<' || src_[i_] == '"')) {
            const char close = src_[i_] == '<' ? '>' : '"';
            const bool angled = src_[i_] == '<';
            std::string header;
            ++i_;
            while (i_ < src_.size() && src_[i_] != close &&
                   src_[i_] != '\n') {
                if (spliceLen(i_) != 0 && skipSplices())
                    continue;
                header += src_[i_++];
            }
            // Reported at the line the header path ends on, so a
            // trailing same-line comment (suppressions, test
            // directives) matches even when the directive is spliced.
            out_.includes.push_back({header, angled, line_});
            if (i_ < src_.size() && src_[i_] == close)
                ++i_;
        }
        atLineStart_ = false;
    }

    void
    identifierOrLiteral()
    {
        std::string word;
        while (i_ < src_.size()) {
            if (identChar(src_[i_])) {
                word += src_[i_++];
                continue;
            }
            // An identifier spliced across lines (`ass\<newline>ert`)
            // reforms into one token, reported at its ending line.
            if (spliceLen(i_) != 0 && i_ + spliceLen(i_) < src_.size() &&
                identChar(src_[i_ + spliceLen(i_)])) {
                skipSplices();
                continue;
            }
            break;
        }
        // String/char literal encoding prefixes, incl. raw strings.
        if (i_ < src_.size() &&
            (word == "R" || word == "u8R" || word == "uR" || word == "UR" ||
             word == "LR") &&
            src_[i_] == '"') {
            rawString();
            return;
        }
        if (i_ < src_.size() && src_[i_] == '"' &&
            (word == "u8" || word == "u" || word == "U" || word == "L")) {
            stringLiteral();
            return;
        }
        if (i_ < src_.size() && src_[i_] == '\'' &&
            (word == "u8" || word == "u" || word == "U" || word == "L")) {
            charLiteral();
            return;
        }
        out_.tokens.push_back({TokenKind::Identifier, word, line_});
    }

    void
    number()
    {
        const std::size_t start = i_;
        // pp-number: digits, identifier chars, digit separators, dots,
        // and sign characters after an exponent (1e+5, 0x1p-3).
        while (i_ < src_.size()) {
            const char c = src_[i_];
            if (identChar(c) || c == '.') {
                ++i_;
            } else if (c == '\'' && i_ + 1 < src_.size() &&
                       identChar(src_[i_ + 1])) {
                i_ += 2; // digit separator
            } else if ((c == '+' || c == '-') && i_ > start &&
                       (src_[i_ - 1] == 'e' || src_[i_ - 1] == 'E' ||
                        src_[i_ - 1] == 'p' || src_[i_ - 1] == 'P')) {
                ++i_;
            } else {
                break;
            }
        }
        out_.tokens.push_back(
            {TokenKind::Number, src_.substr(start, i_ - start), line_});
    }

    void
    stringLiteral()
    {
        out_.tokens.push_back({TokenKind::String, "", line_});
        ++i_; // opening quote
        while (i_ < src_.size() && src_[i_] != '"' && src_[i_] != '\n') {
            if (src_[i_] == '\\' && i_ + 1 < src_.size())
                ++i_;
            ++i_;
        }
        if (i_ < src_.size() && src_[i_] == '"')
            ++i_;
    }

    void
    rawString()
    {
        out_.tokens.push_back({TokenKind::String, "", line_});
        ++i_; // opening quote
        std::string delim;
        while (i_ < src_.size() && src_[i_] != '(' && src_[i_] != '\n')
            delim += src_[i_++];
        if (i_ < src_.size())
            ++i_; // past (
        const std::string closer = ")" + delim + "\"";
        const std::size_t end = src_.find(closer, i_);
        const std::size_t stop =
            end == std::string::npos ? src_.size() : end + closer.size();
        for (; i_ < stop; ++i_)
            if (src_[i_] == '\n')
                ++line_;
    }

    void
    charLiteral()
    {
        out_.tokens.push_back({TokenKind::Char, "", line_});
        ++i_; // opening quote
        while (i_ < src_.size() && src_[i_] != '\'' && src_[i_] != '\n') {
            if (src_[i_] == '\\' && i_ + 1 < src_.size())
                ++i_;
            ++i_;
        }
        if (i_ < src_.size() && src_[i_] == '\'')
            ++i_;
    }

    std::string &
    comment(int line)
    {
        if (static_cast<int>(out_.comments.size()) <= line)
            out_.comments.resize(line + 1);
        return out_.comments[line];
    }

    const std::string &src_;
    std::size_t i_ = 0;
    int line_ = 1;
    bool atLineStart_ = true;
    LexedFile out_;
};

} // namespace

LexedFile
lex(const std::string &source)
{
    return Lexer(source).run();
}

} // namespace ursa::lint
