#include "lexer.h"

#include <cctype>

namespace ursa::lint
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer
{
  public:
    explicit Lexer(const std::string &src) : src_(src) {}

    LexedFile
    run()
    {
        while (i_ < src_.size())
            step();
        out_.lineCount = line_;
        comment(line_); // ensure the comments vector spans every line
        return std::move(out_);
    }

  private:
    void
    step()
    {
        const char c = src_[i_];
        const char n = i_ + 1 < src_.size() ? src_[i_ + 1] : '\0';

        if (c == '\n') {
            ++line_;
            atLineStart_ = true;
            ++i_;
            return;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
            ++i_;
            return;
        }
        if (c == '/' && n == '/') {
            lineComment();
            return;
        }
        if (c == '/' && n == '*') {
            blockComment();
            return;
        }
        if (c == '#' && atLineStart_) {
            hashDirective();
            return;
        }
        atLineStart_ = false;
        if (identStart(c)) {
            identifierOrLiteral();
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(n)))) {
            number();
            return;
        }
        if (c == '"') {
            stringLiteral();
            return;
        }
        if (c == '\'') {
            charLiteral();
            return;
        }
        out_.tokens.push_back({TokenKind::Punct, std::string(1, c), line_});
        ++i_;
    }

    void
    lineComment()
    {
        const std::size_t start = i_;
        while (i_ < src_.size() && src_[i_] != '\n')
            ++i_;
        comment(line_) += src_.substr(start, i_ - start);
    }

    void
    blockComment()
    {
        const int startLine = line_;
        const std::size_t start = i_;
        i_ += 2;
        while (i_ < src_.size() &&
               !(src_[i_] == '*' && i_ + 1 < src_.size() &&
                 src_[i_ + 1] == '/')) {
            if (src_[i_] == '\n')
                ++line_;
            ++i_;
        }
        if (i_ < src_.size())
            i_ += 2; // past */
        comment(startLine) += src_.substr(start, i_ - start);
    }

    /**
     * A `#` that opens a line. `#include` directives are parsed into
     * IncludeDirective records and emit no tokens (their `<path>` form
     * would otherwise shred into misleading punctuation); every other
     * directive falls through to ordinary tokenization.
     */
    void
    hashDirective()
    {
        std::size_t j = i_ + 1;
        while (j < src_.size() && (src_[j] == ' ' || src_[j] == '\t'))
            ++j;
        if (src_.compare(j, 7, "include") != 0) {
            atLineStart_ = false;
            out_.tokens.push_back({TokenKind::Punct, "#", line_});
            ++i_;
            return;
        }
        j += 7;
        while (j < src_.size() && (src_[j] == ' ' || src_[j] == '\t'))
            ++j;
        if (j < src_.size() && (src_[j] == '<' || src_[j] == '"')) {
            const char close = src_[j] == '<' ? '>' : '"';
            const bool angled = src_[j] == '<';
            const std::size_t nameStart = ++j;
            while (j < src_.size() && src_[j] != close && src_[j] != '\n')
                ++j;
            out_.includes.push_back(
                {src_.substr(nameStart, j - nameStart), angled, line_});
            if (j < src_.size() && src_[j] == close)
                ++j;
        }
        atLineStart_ = false;
        i_ = j;
    }

    void
    identifierOrLiteral()
    {
        const std::size_t start = i_;
        while (i_ < src_.size() && identChar(src_[i_]))
            ++i_;
        const std::string word = src_.substr(start, i_ - start);
        // String/char literal encoding prefixes, incl. raw strings.
        if (i_ < src_.size() &&
            (word == "R" || word == "u8R" || word == "uR" || word == "UR" ||
             word == "LR") &&
            src_[i_] == '"') {
            rawString();
            return;
        }
        if (i_ < src_.size() && src_[i_] == '"' &&
            (word == "u8" || word == "u" || word == "U" || word == "L")) {
            stringLiteral();
            return;
        }
        if (i_ < src_.size() && src_[i_] == '\'' &&
            (word == "u8" || word == "u" || word == "U" || word == "L")) {
            charLiteral();
            return;
        }
        out_.tokens.push_back({TokenKind::Identifier, word, line_});
    }

    void
    number()
    {
        const std::size_t start = i_;
        // pp-number: digits, identifier chars, digit separators, dots,
        // and sign characters after an exponent (1e+5, 0x1p-3).
        while (i_ < src_.size()) {
            const char c = src_[i_];
            if (identChar(c) || c == '.') {
                ++i_;
            } else if (c == '\'' && i_ + 1 < src_.size() &&
                       identChar(src_[i_ + 1])) {
                i_ += 2; // digit separator
            } else if ((c == '+' || c == '-') && i_ > start &&
                       (src_[i_ - 1] == 'e' || src_[i_ - 1] == 'E' ||
                        src_[i_ - 1] == 'p' || src_[i_ - 1] == 'P')) {
                ++i_;
            } else {
                break;
            }
        }
        out_.tokens.push_back(
            {TokenKind::Number, src_.substr(start, i_ - start), line_});
    }

    void
    stringLiteral()
    {
        out_.tokens.push_back({TokenKind::String, "", line_});
        ++i_; // opening quote
        while (i_ < src_.size() && src_[i_] != '"' && src_[i_] != '\n') {
            if (src_[i_] == '\\' && i_ + 1 < src_.size())
                ++i_;
            ++i_;
        }
        if (i_ < src_.size() && src_[i_] == '"')
            ++i_;
    }

    void
    rawString()
    {
        out_.tokens.push_back({TokenKind::String, "", line_});
        ++i_; // opening quote
        std::string delim;
        while (i_ < src_.size() && src_[i_] != '(' && src_[i_] != '\n')
            delim += src_[i_++];
        if (i_ < src_.size())
            ++i_; // past (
        const std::string closer = ")" + delim + "\"";
        const std::size_t end = src_.find(closer, i_);
        const std::size_t stop =
            end == std::string::npos ? src_.size() : end + closer.size();
        for (; i_ < stop; ++i_)
            if (src_[i_] == '\n')
                ++line_;
    }

    void
    charLiteral()
    {
        out_.tokens.push_back({TokenKind::Char, "", line_});
        ++i_; // opening quote
        while (i_ < src_.size() && src_[i_] != '\'' && src_[i_] != '\n') {
            if (src_[i_] == '\\' && i_ + 1 < src_.size())
                ++i_;
            ++i_;
        }
        if (i_ < src_.size() && src_[i_] == '\'')
            ++i_;
    }

    std::string &
    comment(int line)
    {
        if (static_cast<int>(out_.comments.size()) <= line)
            out_.comments.resize(line + 1);
        return out_.comments[line];
    }

    const std::string &src_;
    std::size_t i_ = 0;
    int line_ = 1;
    bool atLineStart_ = true;
    LexedFile out_;
};

} // namespace

LexedFile
lex(const std::string &source)
{
    return Lexer(source).run();
}

} // namespace ursa::lint
