/**
 * @file
 * Pass 2 of ursa-lint: cross-file rules over the ProjectModel.
 *
 *   layer-violation  an include that crosses the declared layer DAG
 *                    upward (see layerLevel() in model.h)
 *   layer-cycle      a strongly connected component in the project
 *                    include graph
 *   lock-order       a cycle in the global lock-acquisition-order
 *                    graph assembled from every TU's nested
 *                    MutexLock / CondVar::wait scopes (AB/BA
 *                    inversions across translation units)
 *   include-hygiene  IWYU-lite — includes that contribute no used
 *                    symbol, and symbols used but only reachable
 *                    through transitive includes
 *
 * Per-file rules (rules.h) see one file at a time; these see the
 * program. Suppressions (`// ursa-lint: allow(rule) reason`) are
 * honoured at the reported line of the reporting file.
 */

#ifndef URSA_TOOLS_LINT_PROJECT_RULES_H
#define URSA_TOOLS_LINT_PROJECT_RULES_H

#include "model.h"
#include "rules.h"

namespace ursa::lint
{

/** Run every cross-file rule; returns violations in canonical order. */
std::vector<Violation> lintProject(const ProjectModel &pm);

} // namespace ursa::lint

#endif // URSA_TOOLS_LINT_PROJECT_RULES_H
