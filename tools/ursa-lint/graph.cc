#include "graph.h"

#include <algorithm>

namespace ursa::lint
{

int
Digraph::node(const std::string &name)
{
    auto [it, inserted] = ids_.emplace(name, static_cast<int>(names_.size()));
    if (inserted) {
        names_.push_back(name);
        adj_.emplace_back();
    }
    return it->second;
}

int
Digraph::find(const std::string &name) const
{
    const auto it = ids_.find(name);
    return it == ids_.end() ? -1 : it->second;
}

void
Digraph::addEdge(int from, int to)
{
    auto &succ = adj_[from];
    if (std::find(succ.begin(), succ.end(), to) == succ.end())
        succ.push_back(to);
}

std::vector<int>
Digraph::sccIds() const
{
    const int n = size();
    std::vector<int> comp(n, -1), index(n, -1), low(n, 0), stack;
    std::vector<bool> onStack(n, false);
    int nextIndex = 0, nextComp = 0;

    // Iterative Tarjan: frame = (node, next-successor position), so
    // fixture projects and 1000-file trees alike cannot overflow the
    // call stack.
    struct Frame
    {
        int v;
        std::size_t pos;
    };
    std::vector<Frame> frames;
    for (int root = 0; root < n; ++root) {
        if (index[root] != -1)
            continue;
        frames.push_back({root, 0});
        index[root] = low[root] = nextIndex++;
        stack.push_back(root);
        onStack[root] = true;
        while (!frames.empty()) {
            Frame &f = frames.back();
            if (f.pos < adj_[f.v].size()) {
                const int w = adj_[f.v][f.pos++];
                if (index[w] == -1) {
                    index[w] = low[w] = nextIndex++;
                    stack.push_back(w);
                    onStack[w] = true;
                    frames.push_back({w, 0});
                } else if (onStack[w]) {
                    low[f.v] = std::min(low[f.v], index[w]);
                }
                continue;
            }
            if (low[f.v] == index[f.v]) {
                int w;
                do {
                    w = stack.back();
                    stack.pop_back();
                    onStack[w] = false;
                    comp[w] = nextComp;
                } while (w != f.v);
                ++nextComp;
            }
            const int v = f.v;
            frames.pop_back();
            if (!frames.empty())
                low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
    }
    return comp;
}

std::vector<int>
Digraph::sccSizes(const std::vector<int> &ids)
{
    std::vector<int> sizes;
    for (const int id : ids) {
        if (id >= static_cast<int>(sizes.size()))
            sizes.resize(id + 1, 0);
        ++sizes[id];
    }
    return sizes;
}

bool
Digraph::edgeOnCycle(const std::vector<int> &ids,
                     const std::vector<int> &sizes, int from, int to) const
{
    if (ids[from] != ids[to])
        return false;
    if (from == to)
        return true; // self-edge
    return sizes[ids[from]] >= 2;
}

std::vector<std::string>
Digraph::cycleThrough(int from, int to) const
{
    // BFS from `to` back to `from`; restricting to the shared SCC is
    // unnecessary for correctness (any path back closes the cycle).
    std::vector<int> prev(size(), -1);
    std::vector<int> queue{to};
    prev[to] = to;
    for (std::size_t q = 0; q < queue.size(); ++q) {
        const int v = queue[q];
        if (v == from)
            break;
        for (const int w : successors(v))
            if (prev[w] == -1) {
                prev[w] = v;
                queue.push_back(w);
            }
    }
    if (prev[from] == -1 && from != to)
        return {};
    std::vector<std::string> path;
    for (int v = from; v != to; v = prev[v])
        path.push_back(name(v));
    path.push_back(name(to));
    std::reverse(path.begin(), path.end());
    path.insert(path.begin(), name(from));
    return path;
}

} // namespace ursa::lint
