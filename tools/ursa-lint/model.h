/**
 * @file
 * Whole-project model for ursa-lint's cross-file pass.
 *
 * Pass 1 of the analyzer lexes every file under the lint root and
 * distills each into a `FileModel`: the resolved project-internal
 * include edges, a heuristic symbol index (what the file *provides*
 * to includers and which identifiers it *uses*), and the lock
 * acquisition sequences extracted from nested `base::MutexLock` /
 * `CondVar::wait` scopes. `ProjectModel` stitches the per-file models
 * together (include resolution by root-relative path) so pass 2's
 * rules — layer-violation, layer-cycle, lock-order, include-hygiene —
 * can reason about the program as one graph instead of one file at a
 * time.
 *
 * The symbol index is a token-level approximation, not a compiler
 * front end: it tracks namespace/class/enum/function brace scopes and
 * records type names, macros, enumerators, namespace-scope
 * functions/constants, and class member names. That is deliberately
 * conservative in the direction that matters — include-hygiene only
 * *flags* an include when the included file contributes no detectable
 * symbol at all, so indexer misses produce silence, not noise.
 */

#ifndef URSA_TOOLS_LINT_MODEL_H
#define URSA_TOOLS_LINT_MODEL_H

#include "lexer.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace ursa::lint
{

/** What a nondeterminism/blocking taint source does (pass 3). */
enum class TaintKind
{
    WallClock,     ///< system/steady/high_resolution clock, time(NULL)
    Randomness,    ///< std::random_device, mt19937 & friends, rand()
    ThreadId,      ///< this_thread / get_id() / thread_local state
    UnorderedIter, ///< range-for over an unordered container
    Blocking,      ///< lock acquisition, CondVar::wait, sleep, file/socket I/O
};

/** One taint source spotted inside a function body. */
struct SourceMark
{
    TaintKind kind;
    int line;
    std::string what; ///< the offending spelling ("steady_clock", ...)
};

/** One call site inside a function body. */
struct CallSite
{
    std::string qual; ///< explicit qualifier as spelled ("exec", "a::b"), "" if none
    std::string name; ///< callee name (last identifier)
    bool member = false;   ///< obj.name(...) / obj->name(...) — receiver unknown
    bool viaThis = false;  ///< this->name(...) — receiver is the enclosing class
    bool inLambda = false; ///< sited inside a lambda body (deferred work)
    int line = 0;
};

/**
 * One function definition (pass 1 unit of the call graph): where it
 * is, what it calls, which taint sources its body touches directly,
 * and whether it carries an URSA_CHECK guard (the recursion rule's
 * depth-bound heuristic).
 */
struct FuncDef
{
    std::string name;
    std::string qual;  ///< enclosing scope chain ("ursa::sim::Cluster")
    std::string klass; ///< innermost enclosing class ("" = free function)
    int line;          ///< line of the definition's opening brace
    std::vector<CallSite> calls;
    std::vector<SourceMark> sources;
    bool checkGuard = false; ///< body invokes an URSA_CHECK* macro
};

/** One lock acquired while another is held, with its source site. */
struct LockEdge
{
    std::string held;     ///< normalized expression of the outer lock
    std::string acquired; ///< normalized expression of the inner lock
    int line;             ///< acquisition site (inner lock)
    std::string function; ///< best-effort enclosing function ("" unknown)
};

/** A quoted include resolved against the project file set. */
struct ResolvedInclude
{
    std::string header; ///< spelled path between the delimiters
    int line;           ///< 1-based
    int target;         ///< index into ProjectModel::files, -1 external
    bool angled;        ///< <...> includes are never project-internal
};

struct FileModel
{
    std::string path;  ///< root-relative, '/'-separated
    std::string layer; ///< first path component ("" for root files)
    LexedFile lx;
    std::vector<ResolvedInclude> includes;
    /// Every symbol the file defines for includers: types, macros,
    /// enumerators, namespace-scope functions/constants, class member
    /// names. Drives the "include contributes nothing" check.
    std::set<std::string> provides;
    /// Distinctive subset of `provides` — types, macros, enumerators,
    /// namespace-scope functions/constants, but *not* class members —
    /// used for the transitive-use check, where a match must identify
    /// the providing file rather than merely fail to rule it out.
    std::set<std::string> anchors;
    /// Every identifier spelled anywhere in the file.
    std::set<std::string> idents;
    std::vector<LockEdge> lockEdges;
    /// Function definitions in token order (pass 3's call-graph input).
    std::vector<FuncDef> funcs;
};

struct ProjectModel
{
    std::vector<FileModel> files;    ///< sorted by path
    std::map<std::string, int> byPath;

    int
    fileIndex(const std::string &path) const
    {
        const auto it = byPath.find(path);
        return it == byPath.end() ? -1 : it->second;
    }
};

/**
 * The declared layer DAG, bottom-up:
 *
 *   base -> check/stats -> exec -> sim/trace/workload -> spec
 *        -> solver/ml -> baselines/core -> apps
 *
 * Returns the layer's level (0 = base), or -1 for a layer the DAG
 * does not know (such files are exempt from layer rules). A file may
 * include files of its own or any *lower* level; same-level sibling
 * layers may include each other (the file-granularity layer-cycle
 * rule still forbids genuine cycles between them).
 */
int layerLevel(const std::string &layer);

/** Lex + index one file (pass 1 unit of work; pure, parallel-safe). */
FileModel buildFileModel(const std::string &relPath,
                         const std::string &source);

/** Link per-file models: sorts by path and resolves includes. */
ProjectModel buildProjectModel(std::vector<FileModel> files);

} // namespace ursa::lint

#endif // URSA_TOOLS_LINT_MODEL_H
