/**
 * @file
 * A small C++ lexer for ursa-lint.
 *
 * The predecessor of this tool (scripts/lint_determinism.py) matched
 * regexes against comment-scrubbed lines; its false-positive class —
 * raw strings, multi-line literals, string contents that look like
 * code — all stemmed from never actually tokenizing the input. This
 * lexer does the real thing: it understands line and block comments,
 * string/char literals with escapes, raw string literals
 * (`R"delim(...)delim"`, including multi-line bodies), and
 * preprocessor include directives, and emits a token stream rules can
 * pattern-match structurally.
 *
 * Comments are not discarded: the per-line comment text is retained so
 * rules can honor `// ursa-lint: allow(rule)` suppressions, rationale
 * annotations (`atomic: ...`) and the self-test's expectation
 * directives.
 */

#ifndef URSA_TOOLS_LINT_LEXER_H
#define URSA_TOOLS_LINT_LEXER_H

#include <string>
#include <vector>

namespace ursa::lint
{

enum class TokenKind
{
    Identifier, ///< identifiers and keywords
    Number,     ///< numeric literals (incl. pp-numbers)
    Punct,      ///< one punctuation character per token
    String,     ///< any string literal (content dropped)
    Char,       ///< any character literal (content dropped)
};

struct Token
{
    TokenKind kind;
    std::string text; ///< identifier/number spelling; punct character
    int line;         ///< 1-based
};

/** One `#include` directive. */
struct IncludeDirective
{
    std::string header; ///< path between the delimiters
    bool angled;        ///< <...> vs "..."
    int line;           ///< 1-based
};

/** Lexed view of one source file. */
struct LexedFile
{
    std::vector<Token> tokens;
    std::vector<IncludeDirective> includes;
    /// Comment text per line, 1-based (index 0 unused). A line's entry
    /// concatenates every comment that *starts* on it (a block
    /// comment's body belongs to its opening line).
    std::vector<std::string> comments;
    int lineCount = 0;
};

/** Tokenize `source`. Never fails: unterminated constructs lex as-is. */
LexedFile lex(const std::string &source);

} // namespace ursa::lint

#endif // URSA_TOOLS_LINT_LEXER_H
