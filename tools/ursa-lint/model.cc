#include "model.h"

#include <algorithm>

namespace ursa::lint
{

namespace
{

/// Keywords and contextual words the symbol indexer must never record
/// as a defined name.
const std::set<std::string> kKeywords = {
    "alignas",      "alignof",      "asm",          "auto",
    "bool",         "break",        "case",         "catch",
    "char",         "char8_t",      "char16_t",     "char32_t",
    "class",        "concept",      "const",        "consteval",
    "constexpr",    "constinit",    "const_cast",   "continue",
    "co_await",     "co_return",    "co_yield",     "decltype",
    "default",      "delete",       "do",           "double",
    "dynamic_cast", "else",         "enum",         "explicit",
    "export",       "extern",       "false",        "final",
    "float",        "for",          "friend",       "goto",
    "if",           "inline",       "int",          "long",
    "mutable",      "namespace",    "new",          "noexcept",
    "nullptr",      "operator",     "override",     "private",
    "protected",    "public",       "register",     "reinterpret_cast",
    "requires",     "return",       "short",        "signed",
    "sizeof",       "static",       "static_assert","static_cast",
    "struct",       "switch",       "template",     "this",
    "thread_local", "throw",        "true",         "try",
    "typedef",      "typeid",       "typename",     "union",
    "unsigned",     "using",        "virtual",      "void",
    "volatile",     "wchar_t",      "while"};

bool
isKeyword(const std::string &s)
{
    return kKeywords.count(s) > 0;
}

// --- scope-aware symbol indexing ----------------------------------------

enum class ScopeKind
{
    Namespace, ///< namespace body (or the top level)
    Type,      ///< class/struct/union body
    Enum,      ///< enum body: bare identifiers are enumerators
    Function,  ///< function/lambda body: declarations are locals
    Other      ///< initializer lists, extern "C", unknown braces
};

class SymbolIndexer
{
  public:
    SymbolIndexer(const LexedFile &lx, FileModel &out) : t_(lx.tokens),
                                                         out_(out) {}

    void
    run()
    {
        for (std::size_t i = 0; i < t_.size(); ++i) {
            if (punct(i, '{')) {
                scopes_.push_back(classifyBrace(i));
                continue;
            }
            if (punct(i, '}')) {
                if (!scopes_.empty())
                    scopes_.pop_back();
                continue;
            }
            if (punct(i, '('))
                ++paren_;
            else if (punct(i, ')') && paren_ > 0)
                --paren_;
            if (t_[i].kind == TokenKind::Identifier)
                out_.idents.insert(t_[i].text);
            // #define NAME — visible to includers regardless of scope.
            if (punct(i, '#') && ident(i + 1, "define") &&
                isName(i + 2)) {
                record(t_[i + 2].text, /*anchor=*/true);
                i += 2;
                continue;
            }
            // Inside a paren group (parameter list, call arguments,
            // macro invocation) nothing introduces a scope-visible
            // name — skips `opts` in `f(const Options &opts = {})`.
            if (paren_ > 0 || !recording())
                continue;
            if (t_[i].kind != TokenKind::Identifier)
                continue;
            const std::string &w = t_[i].text;
            if (w == "class" || w == "struct" || w == "union" ||
                w == "enum") {
                recordTagName(i);
                continue;
            }
            if (w == "using" && isName(i + 1) && punct(i + 2, '=')) {
                record(t_[i + 1].text, /*anchor=*/true);
                continue;
            }
            if (w == "typedef") {
                recordBeforeSemi(i + 1);
                continue;
            }
            if (isKeyword(w))
                continue;
            recordDeclarator(i);
        }
    }

  private:
    bool
    punct(std::size_t i, char c) const
    {
        return i < t_.size() && t_[i].kind == TokenKind::Punct &&
               t_[i].text[0] == c;
    }

    bool
    ident(std::size_t i, const char *text) const
    {
        return i < t_.size() && t_[i].kind == TokenKind::Identifier &&
               t_[i].text == text;
    }

    bool
    isName(std::size_t i) const
    {
        return i < t_.size() && t_[i].kind == TokenKind::Identifier &&
               !isKeyword(t_[i].text);
    }

    ScopeKind
    scope() const
    {
        return scopes_.empty() ? ScopeKind::Namespace : scopes_.back();
    }

    bool
    recording() const
    {
        const ScopeKind s = scope();
        return s == ScopeKind::Namespace || s == ScopeKind::Type ||
               s == ScopeKind::Enum;
    }

    void
    record(const std::string &name, bool anchor)
    {
        out_.provides.insert(name);
        if (anchor)
            out_.anchors.insert(name);
    }

    /**
     * Classify the brace opening at `at` by scanning the tokens of
     * its introducing "statement" (back to the previous ;/{/}).
     */
    ScopeKind
    classifyBrace(std::size_t at) const
    {
        if (!recording())
            return scope() == ScopeKind::Function ? ScopeKind::Function
                                                  : ScopeKind::Other;
        bool sawEnum = false, sawTag = false, sawNamespace = false,
             sawAssign = false;
        std::size_t begin = at;
        while (begin > 0) {
            const Token &p = t_[begin - 1];
            if (p.kind == TokenKind::Punct &&
                (p.text[0] == ';' || p.text[0] == '{' || p.text[0] == '}'))
                break;
            --begin;
        }
        for (std::size_t j = begin; j < at; ++j) {
            if (t_[j].kind == TokenKind::Identifier) {
                if (t_[j].text == "enum")
                    sawEnum = true;
                else if (t_[j].text == "class" || t_[j].text == "struct" ||
                         t_[j].text == "union")
                    sawTag = true;
                else if (t_[j].text == "namespace")
                    sawNamespace = true;
            } else if (punct(j, '=')) {
                sawAssign = true;
            }
        }
        if (sawEnum)
            return ScopeKind::Enum;
        if (sawNamespace)
            return ScopeKind::Namespace;
        if (sawAssign)
            return ScopeKind::Other; // braced initializer
        if (sawTag)
            return ScopeKind::Type;
        if (at == begin)
            return ScopeKind::Other; // `{` opening a bare block
        // `...) [qualifiers] {` is a function body.
        for (std::size_t j = at; j > begin; --j) {
            const Token &p = t_[j - 1];
            if (p.kind == TokenKind::Punct) {
                if (p.text[0] == ')')
                    return ScopeKind::Function;
                continue; // e.g. the > of a trailing return type
            }
            if (p.kind == TokenKind::Identifier &&
                (p.text == "const" || p.text == "noexcept" ||
                 p.text == "override" || p.text == "final" ||
                 p.text == "mutable" || p.text == "try" ||
                 p.text.rfind("URSA_", 0) == 0))
                continue;
            break;
        }
        return ScopeKind::Other;
    }

    /** `class|struct|union|enum ... Name [:{;]` — record Name. */
    void
    recordTagName(std::size_t kw)
    {
        std::size_t j = kw + 1;
        const Token *last = nullptr;
        for (; j < t_.size(); ++j) {
            if (t_[j].kind == TokenKind::Punct &&
                (t_[j].text[0] == '{' || t_[j].text[0] == ';' ||
                 t_[j].text[0] == ':' || t_[j].text[0] == '<'))
                break;
            if (isName(j))
                last = &t_[j];
        }
        if (last)
            record(last->text, /*anchor=*/true);
    }

    /** `typedef ... Name ;` — record the identifier before `;`. */
    void
    recordBeforeSemi(std::size_t from)
    {
        const Token *last = nullptr;
        for (std::size_t j = from; j < t_.size(); ++j) {
            if (punct(j, ';') || punct(j, '{'))
                break;
            if (isName(j))
                last = &t_[j];
        }
        if (last)
            record(last->text, /*anchor=*/true);
    }

    /**
     * A non-keyword identifier at namespace/type/enum scope. Record it
     * when its following token makes it a plausible declared name:
     * `(` (function/method), `=`/`;`/`[`/`{` after another name-ish
     * token (variable/field), `,`/`=`/`}` inside an enum body
     * (enumerator), or a trailing URSA_* annotation macro (annotated
     * field).
     */
    void
    recordDeclarator(std::size_t i)
    {
        const bool nsScope = scope() == ScopeKind::Namespace;
        if (scope() == ScopeKind::Enum) {
            if (punct(i + 1, ',') || punct(i + 1, '=') || punct(i + 1, '}'))
                record(t_[i].text, /*anchor=*/true);
            return;
        }
        if (punct(i + 1, '(')) {
            record(t_[i].text, /*anchor=*/nsScope);
            return;
        }
        const bool afterTypeish =
            i > 0 && (t_[i - 1].kind == TokenKind::Identifier ||
                      punct(i - 1, '>') || punct(i - 1, '*') ||
                      punct(i - 1, '&'));
        if (!afterTypeish)
            return;
        if (punct(i + 1, ';') || punct(i + 1, '=') || punct(i + 1, '{') ||
            punct(i + 1, '[') ||
            (i + 1 < t_.size() && t_[i + 1].kind == TokenKind::Identifier &&
             t_[i + 1].text.rfind("URSA_", 0) == 0))
            record(t_[i].text, /*anchor=*/nsScope);
    }

    const std::vector<Token> &t_;
    FileModel &out_;
    std::vector<ScopeKind> scopes_;
    int paren_ = 0;
};

// --- lock acquisition extraction ----------------------------------------

/// RAII guard types whose construction acquires a lock.
const std::set<std::string> kGuardTypes = {"MutexLock", "lock_guard",
                                           "unique_lock", "scoped_lock",
                                           "shared_lock"};

class LockScanner
{
  public:
    LockScanner(const LexedFile &lx, FileModel &out) : t_(lx.tokens),
                                                       out_(out) {}

    void
    run()
    {
        for (std::size_t i = 0; i < t_.size(); ++i) {
            if (punct(i, '{')) {
                maybeEnterFunction(i);
                ++depth_;
                continue;
            }
            if (punct(i, '}')) {
                --depth_;
                while (!held_.empty() && held_.back().depth > depth_)
                    held_.pop_back();
                while (!fnStack_.empty() && fnStack_.back().depth > depth_)
                    fnStack_.pop_back();
                continue;
            }
            if (isGuardDecl(i))
                i = guardDecl(i);
            else if (isCondVarWait(i))
                i = condVarWait(i);
        }
    }

  private:
    struct Held
    {
        std::string expr;
        int depth;
    };
    struct Fn
    {
        std::string name;
        int depth; ///< brace depth of the function *body*
    };

    bool
    punct(std::size_t i, char c) const
    {
        return i < t_.size() && t_[i].kind == TokenKind::Punct &&
               t_[i].text[0] == c;
    }

    /** Index of the `(` matching the `)` at `close`, or npos. */
    std::size_t
    openParenBefore(std::size_t close) const
    {
        int d = 0;
        for (std::size_t j = close + 1; j-- > 0;) {
            if (punct(j, ')'))
                ++d;
            else if (punct(j, '(') && --d == 0)
                return j;
        }
        return std::string::npos;
    }

    /**
     * Called on each `{`: if it opens a function body — preceded by a
     * `(...)` parameter list modulo trailing qualifiers and URSA_*
     * annotation macros — push the function's name for diagnostics.
     */
    void
    maybeEnterFunction(std::size_t brace)
    {
        std::size_t j = brace;
        while (j > 0) {
            const Token &p = t_[j - 1];
            if (p.kind == TokenKind::Identifier &&
                (p.text == "const" || p.text == "noexcept" ||
                 p.text == "override" || p.text == "final" ||
                 p.text == "mutable" || p.text == "try"))
                --j;
            else
                break;
        }
        while (j > 0 && punct(j - 1, ')')) {
            const std::size_t open = openParenBefore(j - 1);
            if (open == std::string::npos || open == 0 ||
                t_[open - 1].kind != TokenKind::Identifier)
                return;
            const std::string &name = t_[open - 1].text;
            if (name.rfind("URSA_", 0) == 0 || name == "noexcept") {
                j = open - 1; // annotation/noexcept(...) — keep looking
                continue;
            }
            if (isKeyword(name))
                return; // if/for/while/switch/catch (...) { ... }
            fnStack_.push_back({name, depth_ + 1});
            return;
        }
    }

    /** `[base::] GuardType [<...>] name (` — a guard declaration. */
    bool
    isGuardDecl(std::size_t i) const
    {
        if (i >= t_.size() || t_[i].kind != TokenKind::Identifier ||
            !kGuardTypes.count(t_[i].text))
            return false;
        std::size_t j = i + 1;
        if (punct(j, '<')) {
            int d = 0;
            for (; j < t_.size(); ++j) {
                if (punct(j, '<'))
                    ++d;
                else if (punct(j, '>') && --d == 0) {
                    ++j;
                    break;
                } else if (punct(j, ';'))
                    return false;
            }
        }
        return j < t_.size() && t_[j].kind == TokenKind::Identifier &&
               punct(j + 1, '(');
    }

    /** `x.wait(mu)` / `x->wait(mu)` on a CondVar. */
    bool
    isCondVarWait(std::size_t i) const
    {
        if (!(i > 0 && t_[i].kind == TokenKind::Identifier &&
              t_[i].text == "wait" && punct(i + 1, '(')))
            return false;
        return punct(i - 1, '.') ||
               (punct(i - 1, '>') && i > 1 && punct(i - 2, '-'));
    }

    /**
     * Normalize the lock expression spelled by tokens [from, to):
     * concatenated spellings with `this->` stripped and subscript
     * bodies blanked (`shards_[i].mu` and `shards_[j].mu` are the same
     * lock *order class* even when i != j).
     */
    std::string
    normalize(std::size_t from, std::size_t to) const
    {
        std::string s;
        int bracket = 0;
        for (std::size_t j = from; j < to; ++j) {
            const std::string &x = t_[j].text;
            if (punct(j, '[')) {
                if (bracket++ == 0)
                    s += "[";
                continue;
            }
            if (punct(j, ']')) {
                if (--bracket == 0)
                    s += "]";
                continue;
            }
            if (bracket > 0)
                continue;
            s += x;
        }
        if (s.rfind("this->", 0) == 0)
            s = s.substr(6);
        return s;
    }

    /** Matching `)` for the `(` at `open`, or npos. */
    std::size_t
    closeParen(std::size_t open) const
    {
        int d = 0;
        for (std::size_t j = open; j < t_.size(); ++j) {
            if (punct(j, '('))
                ++d;
            else if (punct(j, ')') && --d == 0)
                return j;
        }
        return std::string::npos;
    }

    void
    acquire(const std::string &expr, int line)
    {
        if (expr.empty())
            return;
        for (const Held &h : held_)
            if (h.expr != expr)
                out_.lockEdges.push_back(
                    {h.expr, expr, line,
                     fnStack_.empty() ? "" : fnStack_.back().name});
    }

    std::size_t
    guardDecl(std::size_t i)
    {
        // Advance to the guard variable name, then its '(' arg list.
        std::size_t j = i + 1;
        if (punct(j, '<')) {
            int d = 0;
            for (; j < t_.size(); ++j) {
                if (punct(j, '<'))
                    ++d;
                else if (punct(j, '>') && --d == 0) {
                    ++j;
                    break;
                }
            }
        }
        const std::size_t open = j + 1;
        const std::size_t close = closeParen(open);
        if (close == std::string::npos)
            return i;
        // std::scoped_lock(a, b, ...) acquires its arguments
        // atomically: edges flow from already-held locks to each
        // argument, never between the arguments themselves.
        std::size_t argStart = open + 1;
        int d = 0;
        std::vector<std::string> acquired;
        for (std::size_t k = open + 1; k <= close; ++k) {
            if (punct(k, '(') || punct(k, '[') || punct(k, '<'))
                ++d;
            else if ((punct(k, ')') && k != close) || punct(k, ']'))
                --d;
            else if (punct(k, '>') && !(k > 0 && punct(k - 1, '-')))
                --d; // a real closing angle, not the tail of ->
            if (k == close || (punct(k, ',') && d == 0)) {
                acquired.push_back(normalize(argStart, k));
                argStart = k + 1;
            }
        }
        const int line = t_[i].line;
        for (const std::string &expr : acquired)
            acquire(expr, line);
        for (const std::string &expr : acquired)
            if (!expr.empty())
                held_.push_back({expr, depth_});
        return close;
    }

    std::size_t
    condVarWait(std::size_t i)
    {
        const std::size_t open = i + 1;
        const std::size_t close = closeParen(open);
        if (close == std::string::npos)
            return i;
        // wait(mu) re-acquires mu while every *other* held lock stays
        // held — the same ordering event as a fresh acquisition.
        const std::string expr = normalize(open + 1, close);
        acquire(expr, t_[i].line);
        return close;
    }

    const std::vector<Token> &t_;
    FileModel &out_;
    int depth_ = 0;
    std::vector<Held> held_;
    std::vector<Fn> fnStack_;
};

} // namespace

int
layerLevel(const std::string &layer)
{
    static const std::map<std::string, int> kLevels = {
        {"base", 0},      {"check", 1},  {"stats", 1},
        {"exec", 2},      {"sim", 3},    {"trace", 3},
        {"workload", 3},  {"solver", 4}, {"ml", 4},
        {"baselines", 5}, {"core", 5},   {"apps", 6}};
    const auto it = kLevels.find(layer);
    return it == kLevels.end() ? -1 : it->second;
}

FileModel
buildFileModel(const std::string &relPath, const std::string &source)
{
    FileModel fm;
    fm.path = relPath;
    const std::size_t slash = relPath.find('/');
    fm.layer = slash == std::string::npos ? "" : relPath.substr(0, slash);
    fm.lx = lex(source);
    for (const IncludeDirective &inc : fm.lx.includes)
        fm.includes.push_back({inc.header, inc.line, -1, inc.angled});
    SymbolIndexer(fm.lx, fm).run();
    LockScanner(fm.lx, fm).run();
    return fm;
}

ProjectModel
buildProjectModel(std::vector<FileModel> files)
{
    ProjectModel pm;
    pm.files = std::move(files);
    std::sort(pm.files.begin(), pm.files.end(),
              [](const FileModel &a, const FileModel &b) {
                  return a.path < b.path;
              });
    for (std::size_t i = 0; i < pm.files.size(); ++i)
        pm.byPath[pm.files[i].path] = static_cast<int>(i);
    for (FileModel &fm : pm.files) {
        const std::size_t lastSlash = fm.path.rfind('/');
        const std::string dir =
            lastSlash == std::string::npos ? ""
                                           : fm.path.substr(0, lastSlash + 1);
        for (ResolvedInclude &inc : fm.includes) {
            if (inc.angled)
                continue;
            // Quoted includes are spelled root-relative in this tree;
            // fall back to includer-relative for projects that spell
            // sibling includes bare.
            inc.target = pm.fileIndex(inc.header);
            if (inc.target == -1 && !dir.empty())
                inc.target = pm.fileIndex(dir + inc.header);
        }
    }
    return pm;
}

} // namespace ursa::lint
