#include "model.h"

#include <algorithm>

namespace ursa::lint
{

namespace
{

/// Keywords and contextual words the symbol indexer must never record
/// as a defined name.
const std::set<std::string> kKeywords = {
    "alignas",      "alignof",      "asm",          "auto",
    "bool",         "break",        "case",         "catch",
    "char",         "char8_t",      "char16_t",     "char32_t",
    "class",        "concept",      "const",        "consteval",
    "constexpr",    "constinit",    "const_cast",   "continue",
    "co_await",     "co_return",    "co_yield",     "decltype",
    "default",      "delete",       "do",           "double",
    "dynamic_cast", "else",         "enum",         "explicit",
    "export",       "extern",       "false",        "final",
    "float",        "for",          "friend",       "goto",
    "if",           "inline",       "int",          "long",
    "mutable",      "namespace",    "new",          "noexcept",
    "nullptr",      "operator",     "override",     "private",
    "protected",    "public",       "register",     "reinterpret_cast",
    "requires",     "return",       "short",        "signed",
    "sizeof",       "static",       "static_assert","static_cast",
    "struct",       "switch",       "template",     "this",
    "thread_local", "throw",        "true",         "try",
    "typedef",      "typeid",       "typename",     "union",
    "unsigned",     "using",        "virtual",      "void",
    "volatile",     "wchar_t",      "while"};

bool
isKeyword(const std::string &s)
{
    return kKeywords.count(s) > 0;
}

// --- scope-aware symbol indexing ----------------------------------------

enum class ScopeKind
{
    Namespace, ///< namespace body (or the top level)
    Type,      ///< class/struct/union body
    Enum,      ///< enum body: bare identifiers are enumerators
    Function,  ///< function/lambda body: declarations are locals
    Other      ///< initializer lists, extern "C", unknown braces
};

class SymbolIndexer
{
  public:
    SymbolIndexer(const LexedFile &lx, FileModel &out) : t_(lx.tokens),
                                                         out_(out) {}

    void
    run()
    {
        for (std::size_t i = 0; i < t_.size(); ++i) {
            if (punct(i, '{')) {
                scopes_.push_back(classifyBrace(i));
                continue;
            }
            if (punct(i, '}')) {
                if (!scopes_.empty())
                    scopes_.pop_back();
                continue;
            }
            if (punct(i, '('))
                ++paren_;
            else if (punct(i, ')') && paren_ > 0)
                --paren_;
            if (t_[i].kind == TokenKind::Identifier)
                out_.idents.insert(t_[i].text);
            // #define NAME — visible to includers regardless of scope.
            if (punct(i, '#') && ident(i + 1, "define") &&
                isName(i + 2)) {
                record(t_[i + 2].text, /*anchor=*/true);
                i += 2;
                continue;
            }
            // Inside a paren group (parameter list, call arguments,
            // macro invocation) nothing introduces a scope-visible
            // name — skips `opts` in `f(const Options &opts = {})`.
            if (paren_ > 0 || !recording())
                continue;
            if (t_[i].kind != TokenKind::Identifier)
                continue;
            const std::string &w = t_[i].text;
            if (w == "class" || w == "struct" || w == "union" ||
                w == "enum") {
                recordTagName(i);
                continue;
            }
            if (w == "using" && isName(i + 1) && punct(i + 2, '=')) {
                record(t_[i + 1].text, /*anchor=*/true);
                continue;
            }
            if (w == "typedef") {
                recordBeforeSemi(i + 1);
                continue;
            }
            if (isKeyword(w))
                continue;
            recordDeclarator(i);
        }
    }

  private:
    bool
    punct(std::size_t i, char c) const
    {
        return i < t_.size() && t_[i].kind == TokenKind::Punct &&
               t_[i].text[0] == c;
    }

    bool
    ident(std::size_t i, const char *text) const
    {
        return i < t_.size() && t_[i].kind == TokenKind::Identifier &&
               t_[i].text == text;
    }

    bool
    isName(std::size_t i) const
    {
        return i < t_.size() && t_[i].kind == TokenKind::Identifier &&
               !isKeyword(t_[i].text);
    }

    ScopeKind
    scope() const
    {
        return scopes_.empty() ? ScopeKind::Namespace : scopes_.back();
    }

    bool
    recording() const
    {
        const ScopeKind s = scope();
        return s == ScopeKind::Namespace || s == ScopeKind::Type ||
               s == ScopeKind::Enum;
    }

    void
    record(const std::string &name, bool anchor)
    {
        out_.provides.insert(name);
        if (anchor)
            out_.anchors.insert(name);
    }

    /**
     * Classify the brace opening at `at` by scanning the tokens of
     * its introducing "statement" (back to the previous ;/{/}).
     */
    ScopeKind
    classifyBrace(std::size_t at) const
    {
        if (!recording())
            return scope() == ScopeKind::Function ? ScopeKind::Function
                                                  : ScopeKind::Other;
        bool sawEnum = false, sawTag = false, sawNamespace = false,
             sawAssign = false;
        std::size_t begin = at;
        while (begin > 0) {
            const Token &p = t_[begin - 1];
            if (p.kind == TokenKind::Punct &&
                (p.text[0] == ';' || p.text[0] == '{' || p.text[0] == '}'))
                break;
            --begin;
        }
        for (std::size_t j = begin; j < at; ++j) {
            if (t_[j].kind == TokenKind::Identifier) {
                if (t_[j].text == "enum")
                    sawEnum = true;
                else if (t_[j].text == "class" || t_[j].text == "struct" ||
                         t_[j].text == "union")
                    sawTag = true;
                else if (t_[j].text == "namespace")
                    sawNamespace = true;
            } else if (punct(j, '=')) {
                sawAssign = true;
            }
        }
        if (sawEnum)
            return ScopeKind::Enum;
        if (sawNamespace)
            return ScopeKind::Namespace;
        if (sawAssign)
            return ScopeKind::Other; // braced initializer
        if (sawTag)
            return ScopeKind::Type;
        if (at == begin)
            return ScopeKind::Other; // `{` opening a bare block
        // `...) [qualifiers] {` is a function body.
        for (std::size_t j = at; j > begin; --j) {
            const Token &p = t_[j - 1];
            if (p.kind == TokenKind::Punct) {
                if (p.text[0] == ')')
                    return ScopeKind::Function;
                continue; // e.g. the > of a trailing return type
            }
            if (p.kind == TokenKind::Identifier &&
                (p.text == "const" || p.text == "noexcept" ||
                 p.text == "override" || p.text == "final" ||
                 p.text == "mutable" || p.text == "try" ||
                 p.text.rfind("URSA_", 0) == 0))
                continue;
            break;
        }
        return ScopeKind::Other;
    }

    /** `class|struct|union|enum ... Name [:{;]` — record Name. */
    void
    recordTagName(std::size_t kw)
    {
        std::size_t j = kw + 1;
        const Token *last = nullptr;
        for (; j < t_.size(); ++j) {
            if (t_[j].kind == TokenKind::Punct &&
                (t_[j].text[0] == '{' || t_[j].text[0] == ';' ||
                 t_[j].text[0] == ':' || t_[j].text[0] == '<'))
                break;
            if (isName(j))
                last = &t_[j];
        }
        if (last)
            record(last->text, /*anchor=*/true);
    }

    /** `typedef ... Name ;` — record the identifier before `;`. */
    void
    recordBeforeSemi(std::size_t from)
    {
        const Token *last = nullptr;
        for (std::size_t j = from; j < t_.size(); ++j) {
            if (punct(j, ';') || punct(j, '{'))
                break;
            if (isName(j))
                last = &t_[j];
        }
        if (last)
            record(last->text, /*anchor=*/true);
    }

    /**
     * A non-keyword identifier at namespace/type/enum scope. Record it
     * when its following token makes it a plausible declared name:
     * `(` (function/method), `=`/`;`/`[`/`{` after another name-ish
     * token (variable/field), `,`/`=`/`}` inside an enum body
     * (enumerator), or a trailing URSA_* annotation macro (annotated
     * field).
     */
    void
    recordDeclarator(std::size_t i)
    {
        const bool nsScope = scope() == ScopeKind::Namespace;
        if (scope() == ScopeKind::Enum) {
            if (punct(i + 1, ',') || punct(i + 1, '=') || punct(i + 1, '}'))
                record(t_[i].text, /*anchor=*/true);
            return;
        }
        if (punct(i + 1, '(')) {
            record(t_[i].text, /*anchor=*/nsScope);
            return;
        }
        const bool afterTypeish =
            i > 0 && (t_[i - 1].kind == TokenKind::Identifier ||
                      punct(i - 1, '>') || punct(i - 1, '*') ||
                      punct(i - 1, '&'));
        if (!afterTypeish)
            return;
        if (punct(i + 1, ';') || punct(i + 1, '=') || punct(i + 1, '{') ||
            punct(i + 1, '[') ||
            (i + 1 < t_.size() && t_[i + 1].kind == TokenKind::Identifier &&
             t_[i + 1].text.rfind("URSA_", 0) == 0))
            record(t_[i].text, /*anchor=*/nsScope);
    }

    const std::vector<Token> &t_;
    FileModel &out_;
    std::vector<ScopeKind> scopes_;
    int paren_ = 0;
};

// --- lock acquisition extraction ----------------------------------------

/// RAII guard types whose construction acquires a lock.
const std::set<std::string> kGuardTypes = {"MutexLock", "lock_guard",
                                           "unique_lock", "scoped_lock",
                                           "shared_lock"};

class LockScanner
{
  public:
    LockScanner(const LexedFile &lx, FileModel &out) : t_(lx.tokens),
                                                       out_(out) {}

    void
    run()
    {
        for (std::size_t i = 0; i < t_.size(); ++i) {
            if (punct(i, '{')) {
                maybeEnterFunction(i);
                ++depth_;
                continue;
            }
            if (punct(i, '}')) {
                --depth_;
                while (!held_.empty() && held_.back().depth > depth_)
                    held_.pop_back();
                while (!fnStack_.empty() && fnStack_.back().depth > depth_)
                    fnStack_.pop_back();
                continue;
            }
            if (isGuardDecl(i))
                i = guardDecl(i);
            else if (isCondVarWait(i))
                i = condVarWait(i);
        }
    }

  private:
    struct Held
    {
        std::string expr;
        int depth;
    };
    struct Fn
    {
        std::string name;
        int depth; ///< brace depth of the function *body*
    };

    bool
    punct(std::size_t i, char c) const
    {
        return i < t_.size() && t_[i].kind == TokenKind::Punct &&
               t_[i].text[0] == c;
    }

    /** Index of the `(` matching the `)` at `close`, or npos. */
    std::size_t
    openParenBefore(std::size_t close) const
    {
        int d = 0;
        for (std::size_t j = close + 1; j-- > 0;) {
            if (punct(j, ')'))
                ++d;
            else if (punct(j, '(') && --d == 0)
                return j;
        }
        return std::string::npos;
    }

    /**
     * Called on each `{`: if it opens a function body — preceded by a
     * `(...)` parameter list modulo trailing qualifiers and URSA_*
     * annotation macros — push the function's name for diagnostics.
     */
    void
    maybeEnterFunction(std::size_t brace)
    {
        std::size_t j = brace;
        while (j > 0) {
            const Token &p = t_[j - 1];
            if (p.kind == TokenKind::Identifier &&
                (p.text == "const" || p.text == "noexcept" ||
                 p.text == "override" || p.text == "final" ||
                 p.text == "mutable" || p.text == "try"))
                --j;
            else
                break;
        }
        while (j > 0 && punct(j - 1, ')')) {
            const std::size_t open = openParenBefore(j - 1);
            if (open == std::string::npos || open == 0 ||
                t_[open - 1].kind != TokenKind::Identifier)
                return;
            const std::string &name = t_[open - 1].text;
            if (name.rfind("URSA_", 0) == 0 || name == "noexcept") {
                j = open - 1; // annotation/noexcept(...) — keep looking
                continue;
            }
            if (isKeyword(name))
                return; // if/for/while/switch/catch (...) { ... }
            fnStack_.push_back({name, depth_ + 1});
            return;
        }
    }

    /** `[base::] GuardType [<...>] name (` — a guard declaration. */
    bool
    isGuardDecl(std::size_t i) const
    {
        if (i >= t_.size() || t_[i].kind != TokenKind::Identifier ||
            !kGuardTypes.count(t_[i].text))
            return false;
        std::size_t j = i + 1;
        if (punct(j, '<')) {
            int d = 0;
            for (; j < t_.size(); ++j) {
                if (punct(j, '<'))
                    ++d;
                else if (punct(j, '>') && --d == 0) {
                    ++j;
                    break;
                } else if (punct(j, ';'))
                    return false;
            }
        }
        return j < t_.size() && t_[j].kind == TokenKind::Identifier &&
               punct(j + 1, '(');
    }

    /** `x.wait(mu)` / `x->wait(mu)` on a CondVar. */
    bool
    isCondVarWait(std::size_t i) const
    {
        if (!(i > 0 && t_[i].kind == TokenKind::Identifier &&
              t_[i].text == "wait" && punct(i + 1, '(')))
            return false;
        return punct(i - 1, '.') ||
               (punct(i - 1, '>') && i > 1 && punct(i - 2, '-'));
    }

    /**
     * Normalize the lock expression spelled by tokens [from, to):
     * concatenated spellings with `this->` stripped and subscript
     * bodies blanked (`shards_[i].mu` and `shards_[j].mu` are the same
     * lock *order class* even when i != j).
     */
    std::string
    normalize(std::size_t from, std::size_t to) const
    {
        std::string s;
        int bracket = 0;
        for (std::size_t j = from; j < to; ++j) {
            const std::string &x = t_[j].text;
            if (punct(j, '[')) {
                if (bracket++ == 0)
                    s += "[";
                continue;
            }
            if (punct(j, ']')) {
                if (--bracket == 0)
                    s += "]";
                continue;
            }
            if (bracket > 0)
                continue;
            s += x;
        }
        if (s.rfind("this->", 0) == 0)
            s = s.substr(6);
        return s;
    }

    /** Matching `)` for the `(` at `open`, or npos. */
    std::size_t
    closeParen(std::size_t open) const
    {
        int d = 0;
        for (std::size_t j = open; j < t_.size(); ++j) {
            if (punct(j, '('))
                ++d;
            else if (punct(j, ')') && --d == 0)
                return j;
        }
        return std::string::npos;
    }

    void
    acquire(const std::string &expr, int line)
    {
        if (expr.empty())
            return;
        for (const Held &h : held_)
            if (h.expr != expr)
                out_.lockEdges.push_back(
                    {h.expr, expr, line,
                     fnStack_.empty() ? "" : fnStack_.back().name});
    }

    std::size_t
    guardDecl(std::size_t i)
    {
        // Advance to the guard variable name, then its '(' arg list.
        std::size_t j = i + 1;
        if (punct(j, '<')) {
            int d = 0;
            for (; j < t_.size(); ++j) {
                if (punct(j, '<'))
                    ++d;
                else if (punct(j, '>') && --d == 0) {
                    ++j;
                    break;
                }
            }
        }
        const std::size_t open = j + 1;
        const std::size_t close = closeParen(open);
        if (close == std::string::npos)
            return i;
        // std::scoped_lock(a, b, ...) acquires its arguments
        // atomically: edges flow from already-held locks to each
        // argument, never between the arguments themselves.
        std::size_t argStart = open + 1;
        int d = 0;
        std::vector<std::string> acquired;
        for (std::size_t k = open + 1; k <= close; ++k) {
            if (punct(k, '(') || punct(k, '[') || punct(k, '<'))
                ++d;
            else if ((punct(k, ')') && k != close) || punct(k, ']'))
                --d;
            else if (punct(k, '>') && !(k > 0 && punct(k - 1, '-')))
                --d; // a real closing angle, not the tail of ->
            if (k == close || (punct(k, ',') && d == 0)) {
                acquired.push_back(normalize(argStart, k));
                argStart = k + 1;
            }
        }
        const int line = t_[i].line;
        for (const std::string &expr : acquired)
            acquire(expr, line);
        for (const std::string &expr : acquired)
            if (!expr.empty())
                held_.push_back({expr, depth_});
        return close;
    }

    std::size_t
    condVarWait(std::size_t i)
    {
        const std::size_t open = i + 1;
        const std::size_t close = closeParen(open);
        if (close == std::string::npos)
            return i;
        // wait(mu) re-acquires mu while every *other* held lock stays
        // held — the same ordering event as a fresh acquisition.
        const std::string expr = normalize(open + 1, close);
        acquire(expr, t_[i].line);
        return close;
    }

    const std::vector<Token> &t_;
    FileModel &out_;
    int depth_ = 0;
    std::vector<Held> held_;
    std::vector<Fn> fnStack_;
};

// --- function definitions, call sites, taint sources (pass 3 input) -----

/// Identifiers whose mere mention reads a wall clock.
const std::set<std::string> kClockIdents = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "gettimeofday", "clock_gettime", "timespec_get", "localtime",
    "gmtime"};

/// Identifiers that name a raw randomness source or engine.
const std::set<std::string> kRandSources = {
    "random_device", "mt19937",     "mt19937_64",
    "minstd_rand",   "minstd_rand0", "default_random_engine",
    "ranlux24_base", "ranlux48_base"};

/// Calls that put the thread to sleep.
const std::set<std::string> kSleepCalls = {"sleep_for", "sleep_until",
                                           "usleep", "nanosleep", "sleep"};

/// Types whose construction opens a file; calls that touch the OS.
const std::set<std::string> kIoTypes = {"ifstream", "ofstream", "fstream"};
const std::set<std::string> kIoCalls = {"fopen", "freopen", "popen",
                                        "system"};

const std::set<std::string> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/**
 * Extracts every function definition with its enclosing scope chain,
 * then records, inside each body: call sites (with any spelled
 * qualifier, member/this-receiver flags), direct taint sources
 * (wall clock, randomness, thread identity, unordered-container
 * iteration, blocking constructs), and URSA_CHECK usage. This is the
 * per-file half of pass 3; callgraph.cc links the results project-wide.
 */
class FuncScanner
{
  public:
    FuncScanner(const LexedFile &lx, FileModel &out) : t_(lx.tokens),
                                                       out_(out)
    {
        // Names declared as unordered containers anywhere in the file —
        // the range-for source check keys on them.
        for (std::size_t i = 0; i + 1 < t_.size(); ++i) {
            if (t_[i].kind != TokenKind::Identifier ||
                !kUnorderedContainers.count(t_[i].text))
                continue;
            std::size_t j = i + 1;
            if (punct(j, '<')) { // skip balanced template arguments
                int d = 0;
                for (; j < t_.size(); ++j) {
                    if (punct(j, '<'))
                        ++d;
                    else if (punct(j, '>') && --d == 0) {
                        ++j;
                        break;
                    } else if (punct(j, ';'))
                        break;
                }
            }
            if (j < t_.size() && t_[j].kind == TokenKind::Identifier &&
                !isKeyword(t_[j].text))
                unorderedNames_.insert(t_[j].text);
        }
    }

    void
    run()
    {
        for (std::size_t i = 0; i < t_.size(); ++i) {
            if (punct(i, '{')) {
                scopes_.push_back(classify(i));
                continue;
            }
            if (punct(i, '}')) {
                if (!scopes_.empty())
                    scopes_.pop_back();
                continue;
            }
            const int f = scopes_.empty() ? -1 : scopes_.back().func;
            if (f >= 0 && t_[i].kind == TokenKind::Identifier)
                bodyToken(i, out_.funcs[static_cast<std::size_t>(f)],
                          scopes_.back().lambda);
        }
    }

  private:
    struct Scope
    {
        ScopeKind kind;
        std::string name; ///< namespace/class name ("" otherwise)
        int func;         ///< enclosing FuncDef index, -1 outside bodies
        /// Cumulative: this scope, or any enclosing scope up to the
        /// function, is a lambda body. Calls here are deferred work —
        /// they taint but cannot prove stack recursion.
        bool lambda = false;
    };

    bool
    punct(std::size_t i, char c) const
    {
        return i < t_.size() && t_[i].kind == TokenKind::Punct &&
               t_[i].text[0] == c;
    }

    bool
    isName(std::size_t i) const
    {
        return i < t_.size() && t_[i].kind == TokenKind::Identifier &&
               !isKeyword(t_[i].text);
    }

    /** A `::` separator is two adjacent single-colon punct tokens. */
    bool
    doubleColon(std::size_t i) const
    {
        return punct(i, ':') && punct(i + 1, ':');
    }

    bool
    singleColon(std::size_t i) const
    {
        return punct(i, ':') && !punct(i + 1, ':') &&
               !(i > 0 && punct(i - 1, ':'));
    }

    std::size_t
    closeParen(std::size_t open) const
    {
        int d = 0;
        for (std::size_t j = open; j < t_.size(); ++j) {
            if (punct(j, '('))
                ++d;
            else if (punct(j, ')') && --d == 0)
                return j;
        }
        return std::string::npos;
    }

    static bool
    macroish(const std::string &s)
    {
        if (s.size() < 2)
            return false;
        for (char c : s)
            if (std::islower(static_cast<unsigned char>(c)))
                return false;
        return true;
    }

    static bool
    isQual(const Token &p)
    {
        return p.kind == TokenKind::Identifier &&
               (p.text == "const" || p.text == "noexcept" ||
                p.text == "override" || p.text == "final" ||
                p.text == "mutable" || p.text == "try" ||
                p.text.rfind("URSA_", 0) == 0);
    }

    /**
     * Statement start for the brace at `at`: back to the previous
     * `;`/`{`/`}` — except that a `}` closing a brace-init entry of a
     * constructor initializer list (`: a_{0}, b_{1} {`) is skipped, so
     * the constructor's header stays in view for the body brace.
     */
    std::size_t
    stmtBegin(std::size_t at) const
    {
        std::size_t begin = at;
        while (begin > 0) {
            const Token &p = t_[begin - 1];
            if (p.kind != TokenKind::Punct ||
                (p.text[0] != ';' && p.text[0] != '{' && p.text[0] != '}')) {
                --begin;
                continue;
            }
            if (p.text[0] != '}')
                break;
            // `}`: skip it iff it closes an init-list entry brace.
            int d = 0;
            std::size_t open = std::string::npos;
            for (std::size_t j = begin; j-- > 0;) {
                if (punct(j, '}'))
                    ++d;
                else if (punct(j, '{') && --d == 0) {
                    open = j;
                    break;
                }
            }
            if (open == std::string::npos || open == 0 ||
                !isName(open - 1))
                break;
            std::size_t k = open - 1; // back over the entry's name chain
            while (k >= 2 && doubleColon(k - 2) && k >= 3 && isName(k - 3))
                k -= 3;
            if (k == 0 || !(singleColon(k - 1) || punct(k - 1, ',')))
                break;
            begin = k; // resume scanning before the init-list entry
        }
        return begin;
    }

    /** Dotted name of a `namespace a::b {` header ("" if anonymous). */
    std::string
    namespaceName(std::size_t begin, std::size_t at) const
    {
        std::string name;
        bool seen = false;
        for (std::size_t j = begin; j < at; ++j) {
            if (t_[j].kind == TokenKind::Identifier &&
                t_[j].text == "namespace") {
                seen = true;
                continue;
            }
            if (!seen || !isName(j) || t_[j].text == "inline")
                continue;
            if (!name.empty())
                name += "::";
            name += t_[j].text;
        }
        return name;
    }

    /** Tag name of a `class/struct/union Foo ... {` header. */
    std::string
    tagName(std::size_t begin, std::size_t at) const
    {
        std::string name;
        bool seen = false;
        for (std::size_t j = begin; j < at; ++j) {
            if (t_[j].kind == TokenKind::Identifier &&
                (t_[j].text == "class" || t_[j].text == "struct" ||
                 t_[j].text == "union")) {
                seen = true;
                continue;
            }
            if (seen && singleColon(j))
                break; // base-clause: the tag name is already behind us
            if (punct(j, '<'))
                break; // template argument list of a specialization
            if (seen && isName(j))
                name = t_[j].text;
        }
        return name;
    }

    /** Scope chain of the current stack joined with `::`. */
    std::string
    chain() const
    {
        std::string q;
        for (const Scope &s : scopes_) {
            if (s.name.empty())
                continue;
            if (!q.empty())
                q += "::";
            q += s.name;
        }
        return q;
    }

    /**
     * Try to read `[spelledQual::]name ( params ) [quals] [: init] {`
     * out of [begin, at). On success fills name/spelledQual and
     * returns true. Handles trailing return types (`-> T`), trailing
     * `noexcept(...)` / URSA_* annotation groups, constructor
     * initializer lists, and the macro-generated-name idiom
     * `DEFINE_THING(realName) {` (an all-caps macro whose single
     * identifier argument is taken as the function name).
     */
    bool
    functionHeader(std::size_t begin, std::size_t at, std::string &name,
                   std::string &spelledQual) const
    {
        // Region of interest ends at the init-list colon if present.
        // An access specifier's colon (`public:` before the first
        // inline member) is not one.
        std::size_t end = at;
        for (std::size_t j = begin; j < at; ++j) {
            if (punct(j, '(')) {
                const std::size_t close = closeParen(j);
                if (close == std::string::npos || close >= at)
                    return false;
                j = close;
                continue;
            }
            if (t_[j].kind == TokenKind::Identifier &&
                (t_[j].text == "public" || t_[j].text == "protected" ||
                 t_[j].text == "private") &&
                punct(j + 1, ':')) {
                ++j;
                continue;
            }
            if (singleColon(j)) {
                end = j;
                break;
            }
        }
        // Top-level paren groups inside the region, last to first.
        std::vector<std::size_t> opens;
        for (std::size_t j = begin; j < end; ++j) {
            if (punct(j, '(')) {
                opens.push_back(j);
                j = closeParen(j);
            }
        }
        for (std::size_t g = opens.size(); g-- > 0;) {
            const std::size_t open = opens[g];
            if (open == begin || !isName(open - 1))
                continue; // `(...)` with no name before it — casts etc.
            const std::string &cand = t_[open - 1].text;
            if (cand == "noexcept" || cand == "decltype")
                continue; // trailing noexcept(...) / decltype group
            if (cand.rfind("URSA_", 0) == 0 || macroish(cand)) {
                // Annotation macro after the parameter list — keep
                // looking left. If *no* group further left qualifies,
                // fall back to the macro-generated-name idiom below.
                if (g > 0)
                    continue;
                const std::size_t close = closeParen(open);
                std::string inner;
                for (std::size_t k = open + 1; k < close; ++k) {
                    if (t_[k].kind != TokenKind::Identifier)
                        return false;
                    if (!inner.empty())
                        return false; // more than one argument token
                    inner = t_[k].text;
                }
                if (inner.empty())
                    return false;
                name = inner;
                spelledQual.clear();
                return true;
            }
            name = cand;
            std::size_t k = open - 1; // the name's index
            while (k >= 3 && doubleColon(k - 2) && isName(k - 3)) {
                spelledQual = t_[k - 3].text +
                              (spelledQual.empty() ? "" : "::") +
                              spelledQual;
                k -= 3;
            }
            return true;
        }
        return false;
    }

    /**
     * Does the brace at `at` open a lambda body? Walk back over a
     * trailing-return/qualifier tail to `](...)` or a bare `]`. Only
     * consulted inside function bodies, where the main ambiguity —
     * subscripted array initializers — errs toward `lambda`, which
     * merely weakens those call sites for the recursion rule.
     */
    bool
    isLambdaBrace(std::size_t at) const
    {
        std::size_t j = at;
        while (j > 0) {
            const Token &p = t_[j - 1];
            if (p.kind == TokenKind::Identifier ||
                (p.kind == TokenKind::Punct &&
                 (p.text[0] == '>' || p.text[0] == '-' ||
                  p.text[0] == '*' || p.text[0] == '&' ||
                  p.text[0] == ':' || p.text[0] == '<')))
                --j;
            else
                break;
        }
        if (j == 0)
            return false;
        if (punct(j - 1, ']'))
            return true;
        if (!punct(j - 1, ')'))
            return false;
        int d = 0;
        for (std::size_t k = j; k-- > 0;) {
            if (punct(k, ')'))
                ++d;
            else if (punct(k, '(') && --d == 0)
                return k > 0 && punct(k - 1, ']');
        }
        return false;
    }

    /** Classify the brace at `at`, creating a FuncDef when it opens a
     * function body. */
    Scope
    classify(std::size_t at)
    {
        if (!scopes_.empty() && (scopes_.back().kind == ScopeKind::Function ||
                                 scopes_.back().kind == ScopeKind::Other)) {
            // Inside a body (or unknown brace): nested blocks, lambdas,
            // local classes — attribute everything to the enclosing
            // function, if any.
            return {ScopeKind::Other, "", scopes_.back().func,
                    scopes_.back().lambda || isLambdaBrace(at)};
        }
        const std::size_t begin = stmtBegin(at);
        bool sawEnum = false, sawTag = false, sawNamespace = false,
             sawAssign = false;
        for (std::size_t j = begin; j < at; ++j) {
            if (punct(j, '(')) { // ignore parameter/argument lists
                const std::size_t close = closeParen(j);
                if (close != std::string::npos && close < at)
                    j = close;
                continue;
            }
            if (t_[j].kind == TokenKind::Identifier) {
                if (t_[j].text == "enum")
                    sawEnum = true;
                else if (t_[j].text == "class" || t_[j].text == "struct" ||
                         t_[j].text == "union")
                    sawTag = true;
                else if (t_[j].text == "namespace")
                    sawNamespace = true;
            } else if (punct(j, '=')) {
                sawAssign = true;
            }
        }
        if (sawEnum)
            return {ScopeKind::Enum, "", -1};
        if (sawNamespace)
            return {ScopeKind::Namespace, namespaceName(begin, at), -1};
        if (sawTag && !sawAssign)
            return {ScopeKind::Type, tagName(begin, at), -1};
        if (sawAssign || at == begin)
            return {ScopeKind::Other, "", -1};
        std::string name, spelledQual;
        if (!functionHeader(begin, at, name, spelledQual))
            return {ScopeKind::Other, "", -1};
        // An initializer-list *entry* brace (`: a_{0}`) also sees the
        // constructor header; only the brace *after* all entries is the
        // body. Walk the entries: if `at` is one of their braces, it is
        // not the body.
        for (std::size_t j = begin; j < at; ++j) {
            if (punct(j, '(')) {
                j = closeParen(j);
                continue;
            }
            if (t_[j].kind == TokenKind::Identifier &&
                (t_[j].text == "public" || t_[j].text == "protected" ||
                 t_[j].text == "private") &&
                punct(j + 1, ':')) {
                ++j; // access specifier, not an initializer list
                continue;
            }
            if (!singleColon(j))
                continue;
            for (std::size_t k = j + 1; k < at;) {
                if (!isName(k))
                    return {ScopeKind::Other, "", -1};
                while (k + 1 < at && doubleColon(k + 1) && isName(k + 3))
                    k += 3;
                ++k;
                if (punct(k, '<')) { // templated base in a ctor-init
                    int d = 0;
                    for (; k < at; ++k) {
                        if (punct(k, '<'))
                            ++d;
                        else if (punct(k, '>') && --d == 0) {
                            ++k;
                            break;
                        }
                    }
                }
                if (punct(k, '{')) {
                    if (k == at)
                        return {ScopeKind::Other, "", -1}; // entry brace
                    int d = 0;
                    for (; k < at; ++k) {
                        if (punct(k, '{'))
                            ++d;
                        else if (punct(k, '}') && --d == 0) {
                            ++k;
                            break;
                        }
                    }
                } else if (punct(k, '(')) {
                    const std::size_t close = closeParen(k);
                    if (close == std::string::npos || close >= at)
                        return {ScopeKind::Other, "", -1};
                    k = close + 1;
                } else {
                    return {ScopeKind::Other, "", -1};
                }
                if (punct(k, ','))
                    ++k;
            }
            break;
        }
        FuncDef fd;
        fd.name = name;
        fd.line = t_[at].line;
        const std::string outer = chain();
        fd.qual = outer;
        if (!spelledQual.empty())
            fd.qual += (fd.qual.empty() ? "" : "::") + spelledQual;
        if (!scopes_.empty() && scopes_.back().kind == ScopeKind::Type)
            fd.klass = scopes_.back().name;
        else if (!spelledQual.empty()) {
            const std::size_t pos = spelledQual.rfind("::");
            fd.klass = pos == std::string::npos ? spelledQual
                                                : spelledQual.substr(pos + 2);
        }
        out_.funcs.push_back(std::move(fd));
        return {ScopeKind::Function, "",
                static_cast<int>(out_.funcs.size()) - 1};
    }

    /** One identifier token inside a function body. */
    void
    bodyToken(std::size_t i, FuncDef &fd, bool inLambda)
    {
        const std::string &w = t_[i].text;
        const int line = t_[i].line;

        if (w.rfind("URSA_CHECK", 0) == 0 || w.rfind("URSA_DCHECK", 0) == 0)
            fd.checkGuard = true;
        if (w == "thread_local")
            fd.sources.push_back({TaintKind::ThreadId, line, w});
        if (kClockIdents.count(w))
            fd.sources.push_back({TaintKind::WallClock, line, w});
        if (kRandSources.count(w))
            fd.sources.push_back({TaintKind::Randomness, line, w});
        if (kIoTypes.count(w))
            fd.sources.push_back({TaintKind::Blocking, line, w});
        if (t_[i].kind != TokenKind::Identifier)
            return;

        const bool call = punct(i + 1, '(');
        const bool dotMember = i > 0 && punct(i - 1, '.');
        const bool arrowMember = i > 1 && punct(i - 1, '>') &&
                                 punct(i - 2, '-');
        const bool member = dotMember || arrowMember;
        if (call) {
            if ((w == "time" || w == "clock") && !member) {
                // time(nullptr) / time(NULL) / time(0) / clock()
                const std::size_t a = i + 2;
                if (punct(a, ')') ||
                    (t_.size() > a && (t_[a].text == "nullptr" ||
                                       t_[a].text == "NULL" ||
                                       t_[a].text == "0") &&
                     punct(a + 1, ')')))
                    fd.sources.push_back({TaintKind::WallClock, line, w});
            }
            if ((w == "rand" || w == "srand") && !member)
                fd.sources.push_back({TaintKind::Randomness, line, w});
            if (w == "get_id" && member)
                fd.sources.push_back({TaintKind::ThreadId, line, w});
            if (kSleepCalls.count(w))
                fd.sources.push_back({TaintKind::Blocking, line, w});
            if (kIoCalls.count(w) && !member)
                fd.sources.push_back({TaintKind::Blocking, line, w});
            if (w == "wait" && member)
                fd.sources.push_back(
                    {TaintKind::Blocking, line, "CondVar::wait"});
        }
        // A lock-guard declaration acquires a lock even without a
        // directly following '(': MutexLock l(mu), lock_guard<M> l(mu).
        if (kGuardTypes.count(w) && isName(i + 1) && !member)
            fd.sources.push_back({TaintKind::Blocking, line, w});
        if (kGuardTypes.count(w) && punct(i + 1, '<'))
            fd.sources.push_back({TaintKind::Blocking, line, w});

        // Range-for over an unordered container: for (decl : name).
        if (w == "for" && punct(i + 1, '(')) {
            const std::size_t close = closeParen(i + 1);
            if (close != std::string::npos) {
                std::size_t colon = std::string::npos;
                for (std::size_t j = i + 2; j < close; ++j)
                    if (singleColon(j)) {
                        colon = j;
                        break;
                    }
                for (std::size_t j = colon + 1;
                     colon != std::string::npos && j < close; ++j)
                    if (t_[j].kind == TokenKind::Identifier &&
                        unorderedNames_.count(t_[j].text)) {
                        fd.sources.push_back(
                            {TaintKind::UnorderedIter, t_[j].line,
                             t_[j].text});
                        break;
                    }
            }
        }

        // --- call-site recording ---
        if (!call || isKeyword(w))
            return;
        if (w.rfind("URSA_", 0) == 0 || macroish(w))
            return; // macros are not call-graph edges
        if (kGuardTypes.count(w))
            return;
        CallSite cs;
        cs.name = w;
        cs.line = line;
        cs.member = member;
        cs.inLambda = inLambda;
        if (arrowMember && i > 2 && t_[i - 3].kind == TokenKind::Identifier &&
            t_[i - 3].text == "this") {
            cs.member = false;
            cs.viaThis = true;
        }
        if (!member) {
            // Collect any spelled qualifier: a::b::name(...).
            std::size_t k = i;
            while (k >= 3 && doubleColon(k - 2) && isName(k - 3)) {
                cs.qual = t_[k - 3].text +
                          (cs.qual.empty() ? "" : "::") + cs.qual;
                k -= 3;
            }
            if (cs.qual.empty() && !cs.viaThis && i > 0) {
                // `Type name(...)` is a declaration, not a call.
                const Token &p = t_[i - 1];
                if ((p.kind == TokenKind::Identifier &&
                     !isKeyword(p.text)) ||
                    punct(i - 1, '>') || punct(i - 1, '*') ||
                    punct(i - 1, '&'))
                    return;
            }
        }
        fd.calls.push_back(std::move(cs));
    }

    const std::vector<Token> &t_;
    FileModel &out_;
    std::vector<Scope> scopes_;
    std::set<std::string> unorderedNames_;
};

} // namespace

int
layerLevel(const std::string &layer)
{
    static const std::map<std::string, int> kLevels = {
        {"base", 0},      {"check", 1},  {"stats", 1},
        {"exec", 2},      {"sim", 3},    {"trace", 3},
        {"workload", 3},  {"spec", 4},   {"solver", 5},
        {"ml", 5},        {"baselines", 6}, {"core", 6},
        {"apps", 7}};
    const auto it = kLevels.find(layer);
    return it == kLevels.end() ? -1 : it->second;
}

FileModel
buildFileModel(const std::string &relPath, const std::string &source)
{
    FileModel fm;
    fm.path = relPath;
    const std::size_t slash = relPath.find('/');
    fm.layer = slash == std::string::npos ? "" : relPath.substr(0, slash);
    fm.lx = lex(source);
    for (const IncludeDirective &inc : fm.lx.includes)
        fm.includes.push_back({inc.header, inc.line, -1, inc.angled});
    SymbolIndexer(fm.lx, fm).run();
    LockScanner(fm.lx, fm).run();
    FuncScanner(fm.lx, fm).run();
    return fm;
}

ProjectModel
buildProjectModel(std::vector<FileModel> files)
{
    ProjectModel pm;
    pm.files = std::move(files);
    std::sort(pm.files.begin(), pm.files.end(),
              [](const FileModel &a, const FileModel &b) {
                  return a.path < b.path;
              });
    for (std::size_t i = 0; i < pm.files.size(); ++i)
        pm.byPath[pm.files[i].path] = static_cast<int>(i);
    for (FileModel &fm : pm.files) {
        const std::size_t lastSlash = fm.path.rfind('/');
        const std::string dir =
            lastSlash == std::string::npos ? ""
                                           : fm.path.substr(0, lastSlash + 1);
        for (ResolvedInclude &inc : fm.includes) {
            if (inc.angled)
                continue;
            // Quoted includes are spelled root-relative in this tree;
            // fall back to includer-relative for projects that spell
            // sibling includes bare.
            inc.target = pm.fileIndex(inc.header);
            if (inc.target == -1 && !dir.empty())
                inc.target = pm.fileIndex(dir + inc.header);
        }
    }
    return pm;
}

} // namespace ursa::lint
