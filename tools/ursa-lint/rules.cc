#include "rules.h"

#include <algorithm>
#include <set>

namespace ursa::lint
{

namespace
{

// --- layer scopes --------------------------------------------------------

/// Deterministic layers where wall clocks are banned. Baselines and
/// the exec thread pool legitimately measure wall time (controller
/// inference cost is itself an evaluated quantity, paper Table 6).
const std::set<std::string> kWallClockScopes = {"sim", "core", "stats",
                                                "workload", "trace"};

/// Layers whose containers must iterate deterministically: the sim
/// kernel schedules events off them, and trace snapshots/exports are
/// part of the bit-identical determinism contract.
const std::set<std::string> kUnorderedScopes = {"sim", "trace"};

/// Layers under the thread-safety annotation contract: raw std::mutex
/// is invisible to clang's analysis (use base::Mutex), every Mutex
/// member must be referenced by an annotation, and every atomic needs
/// a sharing-rationale comment.
const std::set<std::string> kAnnotatedScopes = {"exec", "check", "trace",
                                                "sim", "core", "baselines"};

const std::set<std::string> kClockIdents = {"system_clock", "steady_clock",
                                            "high_resolution_clock"};

const std::set<std::string> kRandIdents = {
    "random_device",        "mt19937",
    "mt19937_64",           "uniform_int_distribution",
    "uniform_real_distribution", "normal_distribution",
    "bernoulli_distribution",    "poisson_distribution",
    "exponential_distribution",  "discrete_distribution",
    "default_random_engine",     "minstd_rand",
    "minstd_rand0",              "knuth_b",
    "ranlux24",                  "ranlux48",
    "ranlux24_base",             "ranlux48_base"};

const std::set<std::string> kUnorderedIdents = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/// Heap primitives banned in src/sim: ad-hoc priority ordering competes
/// with EventQueue's strict (time, seq) total order.
const std::set<std::string> kHeapIdents = {"priority_queue", "make_heap",
                                           "push_heap", "pop_heap",
                                           "sort_heap"};

const std::set<std::string> kSchedulerIdents = {
    "schedule", "scheduleIn", "submit", "invoke", "publish", "publishTo"};

const std::set<std::string> kLockGuardIdents = {
    "MutexLock", "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};

const std::set<std::string> kAnnotationIdents = {
    "URSA_GUARDED_BY",  "URSA_PT_GUARDED_BY",     "URSA_REQUIRES",
    "URSA_EXCLUDES",    "URSA_ACQUIRE",           "URSA_RELEASE",
    "URSA_TRY_ACQUIRE", "URSA_ASSERT_CAPABILITY", "URSA_RETURN_CAPABILITY"};

const std::vector<RuleInfo> kRules = {
    {"wall-clock",
     "wall-clock time in a deterministic layer; use sim time, or annotate "
     "overhead measurement with // ursa-lint: allow(wall-clock)"},
    {"raw-rand",
     "unseeded/library randomness; draw from the owning simulation's "
     "ursa::stats::Rng"},
    {"unordered-sim",
     "unordered container in a deterministic kernel layer; hash iteration "
     "order is nondeterministic — use std::map/std::vector"},
    {"unordered-sched",
     "iteration over an unordered container in a file that schedules "
     "simulation events; order the container or the iteration"},
    {"bare-assert",
     "bare assert() compiles out of Release; use URSA_CHECK(cond, "
     "component, msg) from check/check.h"},
    {"callback-under-lock",
     "callback invoked while a lock is held; move the call outside the "
     "critical section (a re-entrant callback deadlocks, a slow one "
     "convoys every waiter)"},
    {"raw-thread",
     "raw std::thread/.detach() outside src/exec; route parallelism "
     "through ursa::exec so shutdown, joining and URSA_THREADS stay "
     "centralized"},
    {"include-order",
     "a .cc file must include its own header first (proves the header is "
     "self-contained)"},
    {"banned-include",
     "banned header (bits/stdc++.h anywhere; <iostream> in headers — use "
     "<ostream>/<iosfwd>)"},
    {"missing-annotation",
     "concurrent state without a thread-safety contract: use base::Mutex "
     "over std::mutex, reference every Mutex member in a URSA_* "
     "annotation, and give each std::atomic an `atomic:` rationale "
     "comment"},
    {"banned-heap",
     "std::priority_queue / heap algorithms in src/sim; all event "
     "ordering must go through EventQueue's strict (time, seq) total "
     "order"},
    {"suppression-reason",
     "// ursa-lint: allow(rule) must carry a non-empty reason after the "
     "paren group (and name only known rules); a reasonless allow "
     "suppresses nothing"},
    {"layer-violation",
     "include crosses the layer DAG upward (base -> check/stats -> exec "
     "-> sim/trace/workload -> spec -> solver/ml -> baselines/core -> "
     "apps); a layer may depend only on its own or lower levels"},
    {"layer-cycle",
     "include cycle between project files (strongly connected component "
     "in the include graph); break the cycle with a forward declaration "
     "or an interface split"},
    {"lock-order",
     "lock acquired in an order that cycles with another translation "
     "unit's acquisition order (AB/BA inversion) — potential deadlock; "
     "acquire locks in one global order"},
    {"include-hygiene",
     "include-what-you-use: an include that contributes no symbol used "
     "by this file, or a symbol used here but reachable only through "
     "transitive includes"},
    {"sim-nondeterminism",
     "a simulation-context function (src/sim, src/solver, workload "
     "generator next()) transitively reaches a nondeterminism source — "
     "wall clock, raw randomness engine, thread identity, or "
     "unordered-container iteration; the finding carries the witness "
     "call chain root -> ... -> source"},
    {"blocking-in-sim",
     "the single-threaded sim/solver hot path transitively acquires a "
     "base::Mutex, waits on a CondVar, sleeps, or performs file I/O; "
     "blocking stalls the event loop — hoist the work out of the "
     "deterministic path"},
    {"unbounded-recursion",
     "recursion cycle within the sim/solver layers in which no member "
     "carries an URSA_CHECK-guarded depth bound; deep topologies or "
     "adversarial inputs can overflow the stack"},
    {"atomic-refcount",
     "std::shared_ptr/weak_ptr ownership of Request or Invocation in "
     "src/sim; the kernel owns them through pool-backed non-atomic "
     "RefPtr/makeRef (sim/pool.h) — shared_ptr control blocks and "
     "atomic refcount traffic are a measured hot-path regression"},
};

// --- context -------------------------------------------------------------

/**
 * Parsed form of one `// ursa-lint: allow(a, b) reason` comment: the
 * listed rule ids and whether a non-empty reason follows the parens.
 */
struct AllowComment
{
    std::vector<std::string> rules;
    bool hasReason = false;
};

/** Parse the allow() group in comment text `c`, if any. */
bool
parseAllow(const std::string &c, AllowComment &out)
{
    std::size_t at = c.find("ursa-lint:");
    if (at == std::string::npos)
        return false;
    at = c.find("allow(", at);
    if (at == std::string::npos)
        return false;
    const std::size_t close = c.find(')', at);
    if (close == std::string::npos)
        return false;
    const std::string list = c.substr(at + 6, close - (at + 6));
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string item = list.substr(pos, comma - pos);
        const auto b = item.find_first_not_of(" \t");
        const auto e = item.find_last_not_of(" \t");
        if (b != std::string::npos)
            out.rules.push_back(item.substr(b, e - b + 1));
        pos = comma + 1;
    }
    out.hasReason =
        c.find_first_not_of(" \t\r", close + 1) != std::string::npos;
    return true;
}

const std::string &
commentOn(const LexedFile &lx, int line)
{
    static const std::string empty;
    if (line < 1 || line >= static_cast<int>(lx.comments.size()))
        return empty;
    return lx.comments[line];
}

struct Ctx
{
    std::string path;
    std::string scope;    ///< first path component ("" if none)
    std::string fileName; ///< last path component
    std::string stem;     ///< fileName without extension
    std::string dir;      ///< path minus fileName ("" if none)
    bool isHeader = false;
    const LexedFile *lxp = nullptr;
    std::vector<Violation> out;

    const LexedFile &
    lxRef() const
    {
        return *lxp;
    }

    const std::string &
    commentAt(int line) const
    {
        return commentOn(*lxp, line);
    }

    void
    report(int line, const std::string &rule, const std::string &message)
    {
        if (!suppressedAt(*lxp, line, rule))
            out.push_back({path, line, rule, message, {}});
    }

    // --- token helpers ---------------------------------------------------

    const std::vector<Token> &
    toks() const
    {
        return lxp->tokens;
    }

    bool
    ident(std::size_t i, const char *text) const
    {
        return i < toks().size() && toks()[i].kind == TokenKind::Identifier &&
               toks()[i].text == text;
    }

    bool
    punct(std::size_t i, char c) const
    {
        return i < toks().size() && toks()[i].kind == TokenKind::Punct &&
               toks()[i].text[0] == c;
    }

    /** tokens[i..] spell `first::second`. */
    bool
    qualified(std::size_t i, const char *first, const char *second) const
    {
        return ident(i, first) && punct(i + 1, ':') && punct(i + 2, ':') &&
               i + 3 < toks().size() &&
               toks()[i + 3].kind == TokenKind::Identifier &&
               toks()[i + 3].text == second;
    }

    /** tokens[i..] spell `first::` followed by an ident in `set`. */
    bool
    qualifiedIn(std::size_t i, const char *first,
                const std::set<std::string> &set) const
    {
        return ident(i, first) && punct(i + 1, ':') && punct(i + 2, ':') &&
               i + 3 < toks().size() &&
               toks()[i + 3].kind == TokenKind::Identifier &&
               set.count(toks()[i + 3].text) > 0;
    }

    /**
     * With tokens[i] == '<', return the index one past the matching
     * '>' (angle depth balanced), or npos when unbalanced. `>>` lexes
     * as two '>' tokens, so nested template args balance naturally.
     */
    std::size_t
    skipAngles(std::size_t i) const
    {
        if (!punct(i, '<'))
            return std::string::npos;
        int depth = 0;
        for (; i < toks().size(); ++i) {
            if (punct(i, '<'))
                ++depth;
            else if (punct(i, '>') && --depth == 0)
                return i + 1;
            else if (punct(i, ';') || punct(i, '}'))
                break; // not template args after all
        }
        return std::string::npos;
    }
};

// --- rules ---------------------------------------------------------------

void
ruleWallClock(Ctx &ctx)
{
    if (!kWallClockScopes.count(ctx.scope))
        return;
    const auto &t = ctx.toks();
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokenKind::Identifier)
            continue;
        if (kClockIdents.count(t[i].text)) {
            ctx.report(t[i].line, "wall-clock", kRules[0].summary);
            continue;
        }
        // time() / time(NULL) / time(nullptr) / time(0)
        if (t[i].text == "time" && ctx.punct(i + 1, '(')) {
            const bool nullary = ctx.punct(i + 2, ')');
            const bool nullArg =
                (ctx.ident(i + 2, "NULL") || ctx.ident(i + 2, "nullptr") ||
                 (i + 2 < t.size() && t[i + 2].kind == TokenKind::Number &&
                  t[i + 2].text == "0")) &&
                ctx.punct(i + 3, ')');
            if (nullary || nullArg)
                ctx.report(t[i].line, "wall-clock", kRules[0].summary);
        }
    }
}

void
ruleRawRand(Ctx &ctx)
{
    if (ctx.scope == "stats" && ctx.fileName.rfind("rng.", 0) == 0)
        return; // the one place allowed to touch raw generators
    const auto &t = ctx.toks();
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokenKind::Identifier)
            continue;
        if (kRandIdents.count(t[i].text) ||
            ((t[i].text == "rand" || t[i].text == "srand") &&
             ctx.punct(i + 1, '(')))
            ctx.report(t[i].line, "raw-rand", kRules[1].summary);
    }
}

void
ruleUnorderedSim(Ctx &ctx)
{
    if (!kUnorderedScopes.count(ctx.scope))
        return;
    const auto &t = ctx.toks();
    for (std::size_t i = 0; i < t.size(); ++i)
        if (ctx.qualifiedIn(i, "std", kUnorderedIdents))
            ctx.report(t[i].line, "unordered-sim", kRules[2].summary);
}

/** Names declared as `std::unordered_*<...> [&] name [;={(]`. */
std::set<std::string>
unorderedDeclNames(const Ctx &ctx)
{
    std::set<std::string> names;
    const auto &t = ctx.toks();
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!ctx.qualifiedIn(i, "std", kUnorderedIdents))
            continue;
        std::size_t j = ctx.skipAngles(i + 4);
        if (j == std::string::npos)
            continue;
        if (ctx.punct(j, '&'))
            ++j;
        if (j < t.size() && t[j].kind == TokenKind::Identifier &&
            (ctx.punct(j + 1, ';') || ctx.punct(j + 1, '=') ||
             ctx.punct(j + 1, '{') || ctx.punct(j + 1, '(')))
            names.insert(t[j].text);
    }
    return names;
}

void
ruleUnorderedSched(Ctx &ctx)
{
    if (kUnorderedScopes.count(ctx.scope))
        return; // unordered-sim already bans the container outright
    const auto &t = ctx.toks();
    bool schedules = false;
    for (std::size_t i = 0; i < t.size() && !schedules; ++i)
        if (t[i].kind == TokenKind::Identifier &&
            kSchedulerIdents.count(t[i].text) && ctx.punct(i + 1, '('))
            schedules = true;
    if (!schedules)
        return;
    const std::set<std::string> names = unorderedDeclNames(ctx);
    if (names.empty())
        return;
    // for ( ... : ... name )  — range-for whose sequence ends in one of
    // the unordered names (possibly behind an object path).
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!ctx.ident(i, "for") || !ctx.punct(i + 1, '('))
            continue;
        int depth = 0;
        bool sawColon = false;
        const Token *lastIdent = nullptr;
        for (std::size_t j = i + 1; j < t.size(); ++j) {
            if (ctx.punct(j, '('))
                ++depth;
            else if (ctx.punct(j, ')')) {
                if (--depth == 0)
                    break;
            } else if (ctx.punct(j, ':') && depth == 1 &&
                       !ctx.punct(j + 1, ':') && !ctx.punct(j - 1, ':'))
                sawColon = true;
            else if (t[j].kind == TokenKind::Identifier && sawColon)
                lastIdent = &t[j];
            else if (ctx.punct(j, ';'))
                break; // classic for loop, not a range-for
        }
        if (sawColon && lastIdent && names.count(lastIdent->text))
            ctx.report(t[i].line, "unordered-sched", kRules[3].summary);
    }
}

void
ruleBareAssert(Ctx &ctx)
{
    if (ctx.scope == "check")
        return; // the check layer may assert about itself
    const auto &t = ctx.toks();
    for (std::size_t i = 0; i < t.size(); ++i)
        if (ctx.ident(i, "assert") && ctx.punct(i + 1, '('))
            ctx.report(t[i].line, "bare-assert", kRules[4].summary);
}

/** Names declared as `std::function<...> [*&const] name`. */
std::set<std::string>
functionDeclNames(const Ctx &ctx)
{
    std::set<std::string> names;
    const auto &t = ctx.toks();
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!ctx.qualified(i, "std", "function"))
            continue;
        std::size_t j = ctx.skipAngles(i + 4);
        if (j == std::string::npos)
            continue;
        while (ctx.punct(j, '*') || ctx.punct(j, '&') || ctx.ident(j, "const"))
            ++j;
        if (j < t.size() && t[j].kind == TokenKind::Identifier)
            names.insert(t[j].text);
    }
    return names;
}

void
ruleCallbackUnderLock(Ctx &ctx)
{
    const std::set<std::string> fns = functionDeclNames(ctx);
    if (fns.empty())
        return;
    const auto &t = ctx.toks();
    int depth = 0;
    std::vector<int> guardDepths; // brace depth at each active guard
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (ctx.punct(i, '{')) {
            ++depth;
            continue;
        }
        if (ctx.punct(i, '}')) {
            --depth;
            while (!guardDepths.empty() && guardDepths.back() > depth)
                guardDepths.pop_back();
            continue;
        }
        // Guard declaration: [std::|base::] GuardType [<...>] name ( | {
        if (t[i].kind == TokenKind::Identifier &&
            kLockGuardIdents.count(t[i].text)) {
            std::size_t j = i + 1;
            if (ctx.punct(j, '<')) {
                j = ctx.skipAngles(j);
                if (j == std::string::npos)
                    continue;
            }
            if (j < t.size() && t[j].kind == TokenKind::Identifier &&
                (ctx.punct(j + 1, '(') || ctx.punct(j + 1, '{')))
                guardDepths.push_back(depth);
            continue;
        }
        if (guardDepths.empty())
            continue;
        // Direct invocation of a declared std::function: `name(` not
        // preceded by ./->/:: (those are member/qualified lookups of
        // something else), or `(*name)(` through a pointer.
        if (t[i].kind == TokenKind::Identifier && fns.count(t[i].text) &&
            ctx.punct(i + 1, '(')) {
            const bool memberish =
                i > 0 && (ctx.punct(i - 1, '.') || ctx.punct(i - 1, ':') ||
                          (ctx.punct(i - 1, '>') && ctx.punct(i - 2, '-')));
            if (!memberish)
                ctx.report(t[i].line, "callback-under-lock",
                           kRules[5].summary);
        }
        if (ctx.punct(i, '(') && ctx.punct(i + 1, '*') && i + 2 < t.size() &&
            t[i + 2].kind == TokenKind::Identifier &&
            fns.count(t[i + 2].text) && ctx.punct(i + 3, ')') &&
            ctx.punct(i + 4, '('))
            ctx.report(t[i].line, "callback-under-lock", kRules[5].summary);
    }
}

void
ruleRawThread(Ctx &ctx)
{
    if (ctx.scope == "exec")
        return; // the one layer allowed to own threads
    const auto &t = ctx.toks();
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (ctx.qualified(i, "std", "thread") ||
            ctx.qualified(i, "std", "jthread")) {
            ctx.report(t[i].line, "raw-thread", kRules[6].summary);
            continue;
        }
        if (ctx.ident(i, "detach") && ctx.punct(i + 1, '(') && i > 0 &&
            (ctx.punct(i - 1, '.') ||
             (ctx.punct(i - 1, '>') && ctx.punct(i - 2, '-'))))
            ctx.report(t[i].line, "raw-thread", kRules[6].summary);
    }
}

void
ruleIncludeOrder(Ctx &ctx)
{
    if (ctx.isHeader || ctx.lxRef().includes.empty())
        return;
    const std::string own = ctx.stem + ".h";
    const std::string ownQualified =
        ctx.dir.empty() ? own : ctx.dir + "/" + own;
    for (std::size_t i = 0; i < ctx.lxRef().includes.size(); ++i) {
        const IncludeDirective &inc = ctx.lxRef().includes[i];
        if (inc.angled || (inc.header != own && inc.header != ownQualified))
            continue;
        if (i != 0)
            ctx.report(inc.line, "include-order", kRules[7].summary);
        return;
    }
}

void
ruleBannedInclude(Ctx &ctx)
{
    for (const IncludeDirective &inc : ctx.lxRef().includes) {
        if (inc.header == "bits/stdc++.h")
            ctx.report(inc.line, "banned-include", kRules[8].summary);
        else if (ctx.isHeader && inc.angled && inc.header == "iostream")
            ctx.report(inc.line, "banned-include", kRules[8].summary);
    }
}

void
ruleMissingAnnotation(Ctx &ctx)
{
    if (!kAnnotatedScopes.count(ctx.scope))
        return;
    const auto &t = ctx.toks();

    // Names referenced by any URSA_* annotation in this file.
    std::set<std::string> annotated;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokenKind::Identifier ||
            !kAnnotationIdents.count(t[i].text) || !ctx.punct(i + 1, '('))
            continue;
        int depth = 0;
        for (std::size_t j = i + 1; j < t.size(); ++j) {
            if (ctx.punct(j, '('))
                ++depth;
            else if (ctx.punct(j, ')')) {
                if (--depth == 0)
                    break;
            } else if (t[j].kind == TokenKind::Identifier)
                annotated.insert(t[j].text);
        }
    }

    auto atomicRationaleNear = [&](int line) {
        if (ctx.commentAt(line).find("atomic:") != std::string::npos)
            return true;
        // Walk the contiguous comment block directly above the decl.
        for (int l = line - 1; l >= 1 && !ctx.commentAt(l).empty(); --l)
            if (ctx.commentAt(l).find("atomic:") != std::string::npos)
                return true;
        return false;
    };

    for (std::size_t i = 0; i < t.size(); ++i) {
        // Raw std primitives the analysis cannot see.
        if (ctx.qualified(i, "std", "mutex") ||
            ctx.qualified(i, "std", "condition_variable") ||
            ctx.qualified(i, "std", "condition_variable_any") ||
            ctx.qualified(i, "std", "shared_mutex") ||
            ctx.qualified(i, "std", "recursive_mutex")) {
            ctx.report(t[i].line, "missing-annotation", kRules[9].summary);
            continue;
        }
        // base::Mutex member/local declarations must be referenced by
        // at least one URSA_* annotation somewhere in the file.
        if (ctx.qualified(i, "base", "Mutex") &&
            i + 4 < t.size() && t[i + 4].kind == TokenKind::Identifier &&
            (ctx.punct(i + 5, ';') || ctx.punct(i + 5, '{'))) {
            if (!annotated.count(t[i + 4].text))
                ctx.report(t[i + 4].line, "missing-annotation",
                           kRules[9].summary);
            continue;
        }
        // std::atomic<...> declarations need an `atomic:` rationale in
        // the declaration's comment block.
        if (ctx.qualified(i, "std", "atomic") && ctx.punct(i + 4, '<')) {
            const std::size_t j = ctx.skipAngles(i + 4);
            if (j != std::string::npos && j < t.size() &&
                t[j].kind == TokenKind::Identifier &&
                (ctx.punct(j + 1, ';') || ctx.punct(j + 1, '=') ||
                 ctx.punct(j + 1, '{')) &&
                !atomicRationaleNear(t[j].line))
                ctx.report(t[j].line, "missing-annotation",
                           kRules[9].summary);
        }
    }
}

void
ruleBannedHeap(Ctx &ctx)
{
    if (ctx.scope != "sim")
        return;
    const auto &t = ctx.toks();
    for (std::size_t i = 0; i < t.size(); ++i)
        if (ctx.qualifiedIn(i, "std", kHeapIdents))
            ctx.report(t[i].line, "banned-heap", kRules[10].summary);
}

const std::set<std::string> kSharedOwnerIdents = {
    "shared_ptr", "weak_ptr", "make_shared", "allocate_shared"};

/**
 * The atomic-refcount regression guard: Request and Invocation flow
 * through the kernel's hottest path and are owned by the pool-backed
 * non-atomic RefPtr; any std shared-ownership of them in src/sim
 * reintroduces a control block + lock-prefixed RMWs per hop. Other
 * types may still use shared_ptr freely.
 */
void
ruleAtomicRefcount(Ctx &ctx)
{
    if (ctx.scope != "sim")
        return;
    const auto &t = ctx.toks();
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!ctx.qualifiedIn(i, "std", kSharedOwnerIdents))
            continue;
        const std::size_t open = i + 4;
        const std::size_t end = ctx.skipAngles(open);
        if (end == std::string::npos)
            continue;
        for (std::size_t j = open + 1; j + 1 < end; ++j) {
            if (t[j].kind == TokenKind::Identifier &&
                (t[j].text == "Invocation" || t[j].text == "Request")) {
                ctx.report(t[i].line, "atomic-refcount",
                           kRules[19].summary);
                break;
            }
        }
    }
}

/**
 * Enforce the suppression contract itself: every allow() must carry a
 * trailing reason and may only name rules that exist. Reported
 * directly (not via ctx.report) — a reasonless suppression must not
 * be able to silence its own diagnostic.
 */
void
ruleSuppressionReason(Ctx &ctx)
{
    const auto &comments = ctx.lxRef().comments;
    for (int line = 1; line < static_cast<int>(comments.size()); ++line) {
        AllowComment allow;
        if (!parseAllow(comments[line], allow))
            continue;
        if (!allow.hasReason)
            ctx.out.push_back(
                {ctx.path, line, "suppression-reason",
                 "allow() without a reason; write `// ursa-lint: "
                 "allow(rule) <why this is sanctioned>`",
                 {}});
        for (const std::string &r : allow.rules)
            if (!knownRule(r))
                ctx.out.push_back({ctx.path, line, "suppression-reason",
                                   "allow() names unknown rule '" + r +
                                       "'",
                                    {}});
    }
}

} // namespace

const std::vector<RuleInfo> &
ruleCatalogue()
{
    return kRules;
}

bool
knownRule(const std::string &rule)
{
    return std::any_of(kRules.begin(), kRules.end(),
                       [&](const RuleInfo &r) { return rule == r.id; });
}

const char *
ruleSummary(const std::string &rule)
{
    for (const RuleInfo &r : kRules)
        if (rule == r.id)
            return r.summary;
    return "";
}

bool
suppressedAt(const LexedFile &lx, int line, const std::string &rule)
{
    for (int l = line; l >= line - 1 && l >= 1; --l) {
        AllowComment allow;
        if (!parseAllow(commentOn(lx, l), allow) || !allow.hasReason)
            continue;
        if (std::find(allow.rules.begin(), allow.rules.end(), rule) !=
            allow.rules.end())
            return true;
    }
    return false;
}

std::vector<Violation>
lintFileLexed(const std::string &relPath, const LexedFile &lx)
{
    Ctx ctx;
    ctx.path = relPath;
    const std::size_t slash = relPath.find('/');
    ctx.scope = slash == std::string::npos ? "" : relPath.substr(0, slash);
    const std::size_t lastSlash = relPath.rfind('/');
    ctx.fileName = lastSlash == std::string::npos
                       ? relPath
                       : relPath.substr(lastSlash + 1);
    ctx.dir = lastSlash == std::string::npos ? ""
                                             : relPath.substr(0, lastSlash);
    const std::size_t dot = ctx.fileName.rfind('.');
    ctx.stem = dot == std::string::npos ? ctx.fileName
                                        : ctx.fileName.substr(0, dot);
    const std::string ext =
        dot == std::string::npos ? "" : ctx.fileName.substr(dot);
    ctx.isHeader = ext == ".h" || ext == ".hpp";
    ctx.lxp = &lx;

    ruleWallClock(ctx);
    ruleRawRand(ctx);
    ruleUnorderedSim(ctx);
    ruleUnorderedSched(ctx);
    ruleBareAssert(ctx);
    ruleCallbackUnderLock(ctx);
    ruleRawThread(ctx);
    ruleIncludeOrder(ctx);
    ruleBannedInclude(ctx);
    ruleMissingAnnotation(ctx);
    ruleBannedHeap(ctx);
    ruleAtomicRefcount(ctx);
    ruleSuppressionReason(ctx);

    sortViolations(ctx.out);
    return std::move(ctx.out);
}

std::vector<Violation>
lintFile(const std::string &relPath, const std::string &source)
{
    const LexedFile lx = lex(source);
    return lintFileLexed(relPath, lx);
}

void
sortViolations(std::vector<Violation> &vs)
{
    std::sort(vs.begin(), vs.end(),
              [](const Violation &a, const Violation &b) {
                  if (a.path != b.path)
                      return a.path < b.path;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
}

} // namespace ursa::lint
