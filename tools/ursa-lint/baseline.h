/**
 * @file
 * Baseline support: adopt a new cross-file rule without boiling the
 * ocean in one PR. A baseline file records known, reviewed violations
 * as `<path>:<line>:<rule>  # reason` lines; `--baseline <file>`
 * filters exactly those from the report (so the tree stays red for
 * any NEW violation — same file, new line, or new rule — while the
 * grandfathered ones are tracked, reasoned about, and burned down
 * over time). Stale entries (baselined violations that no longer
 * fire) are surfaced on stderr so the file shrinks with the debt.
 *
 * `--write-baseline <file>` emits the current violation set in
 * baseline format with placeholder reasons, as a starting point.
 */

#ifndef URSA_TOOLS_LINT_BASELINE_H
#define URSA_TOOLS_LINT_BASELINE_H

#include "rules.h"

#include <string>
#include <vector>

namespace ursa::lint
{

struct BaselineEntry
{
    std::string path;
    int line;
    std::string rule;
    std::string reason;
};

/**
 * Parse a baseline file. Returns false (with `error` set) on an
 * unreadable file or a malformed/reasonless entry — a baseline entry
 * is a suppression and inherits the suppression contract.
 */
bool loadBaseline(const std::string &file,
                  std::vector<BaselineEntry> &entries, std::string &error);

/**
 * Split `all` into kept (reported) and baselined violations; entries
 * that matched nothing are returned through `stale`.
 */
void applyBaseline(const std::vector<BaselineEntry> &entries,
                   const std::vector<Violation> &all,
                   std::vector<Violation> &kept,
                   std::vector<Violation> &baselined,
                   std::vector<BaselineEntry> &stale);

/** Serialize violations as baseline lines with TODO reasons. */
std::string formatBaseline(const std::vector<Violation> &vs);

} // namespace ursa::lint

#endif // URSA_TOOLS_LINT_BASELINE_H
