/**
 * @file
 * ursa-lint — the project's native determinism / concurrency-hygiene
 * analyzer (successor of scripts/lint_determinism.py; see DESIGN.md
 * §9/§11 for the rule catalogue and suppression policy).
 *
 * Modes:
 *   ursa-lint --root <dir> [--baseline <file>] [--format text|sarif]
 *       lint a source tree: pass 1 lexes and indexes every file in
 *       parallel (ursa::exec::parallelMap, URSA_THREADS), pass 2 runs
 *       the cross-file rules (layer graph, lock order, include
 *       hygiene) over the assembled project model, pass 3 links the
 *       per-file function tables into a project call graph and runs
 *       the interprocedural rules (sim-nondeterminism,
 *       blocking-in-sim, unbounded-recursion) with witness chains
 *   ursa-lint --root <dir> --fix | --fix-dry-run
 *       mechanically delete dead includes flagged by include-hygiene
 *       (--fix rewrites the files; --fix-dry-run prints the diff)
 *   ursa-lint --root <dir> --write-baseline <file>
 *       emit the current violations in baseline format
 *   ursa-lint --self-test --testdata <dir>
 *       run the bait/clean fixtures, including the multi-file fixture
 *       projects under <dir>/projects/
 *   ursa-lint --list-rules [--format markdown]
 *       print the rule catalogue
 *
 * Output is machine-readable, one violation per line:
 *
 *   <root-joined file>:<line>:<rule>: <message>
 *
 * Suppression: append `// ursa-lint: allow(<rule>) <reason>` to the
 * offending line (or the line directly above). The reason is
 * mandatory; a reasonless allow() suppresses nothing and itself
 * violates suppression-reason.
 *
 * Self-test fixtures under tools/lint_testdata/ carry expectations in
 * comments: `// ursa-lint-test: expect(<rule>)` marks a line that MUST
 * flag, `// ursa-lint-test: suppressed(<rule>)` marks a line whose
 * suppression comment MUST win. Any violation on an unmarked fixture
 * line fails the self-test, so both false negatives and false
 * positives are pinned. Each directory under <testdata>/projects/ is
 * one fixture *project*: its files are linted together through the
 * whole-project pass, so cross-file baits (an include cycle, an AB/BA
 * lock inversion split across two TUs) can be pinned the same way.
 *
 * Exit status: 0 clean, 1 violations/self-test failure, 2 usage error.
 */

#include "baseline.h"
#include "model.h"
#include "output.h"
#include "project_rules.h"
#include "rules.h"

#include "exec/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using ursa::lint::FileModel;
using ursa::lint::ProjectModel;
using ursa::lint::Violation;

namespace
{

bool
lintableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

/**
 * Files under `root` in sorted relative-path order. Build trees
 * (any "build*" directory), VCS metadata (.git) and hidden
 * directories are skipped so a repo-root scan lints the sources, not
 * the generated forest.
 */
std::vector<std::string>
collectFiles(const fs::path &root)
{
    std::vector<std::string> rel;
    auto it = fs::recursive_directory_iterator(root);
    const auto end = fs::recursive_directory_iterator();
    for (; it != end; ++it) {
        const fs::directory_entry &entry = *it;
        if (entry.is_directory()) {
            const std::string name = entry.path().filename().string();
            if (name == ".git" || name.rfind("build", 0) == 0 ||
                (!name.empty() && name[0] == '.'))
                it.disable_recursion_pending();
            continue;
        }
        if (entry.is_regular_file() && lintableExtension(entry.path()))
            rel.push_back(
                entry.path().lexically_relative(root).generic_string());
    }
    std::sort(rel.begin(), rel.end());
    return rel;
}

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Result of pass 1 for one file (parallel unit; index-ordered). */
struct ScannedFile
{
    FileModel model;
    std::vector<Violation> violations; ///< per-file rules only
    bool readError = false;
};

/**
 * Pass 1: read + lex + index + per-file lint every file, in parallel.
 * Each index owns its slot, so results are position-stable and the
 * merged output is byte-identical to a sequential scan for any
 * URSA_THREADS.
 */
std::vector<ScannedFile>
scanFiles(const fs::path &root, const std::vector<std::string> &files)
{
    return ursa::exec::parallelMap<ScannedFile>(
        files.size(), [&](std::size_t i) {
            ScannedFile sf;
            std::string source;
            if (!readFile(root / files[i], source)) {
                sf.readError = true;
                return sf;
            }
            sf.model = ursa::lint::buildFileModel(files[i], source);
            sf.violations =
                ursa::lint::lintFileLexed(files[i], sf.model.lx);
            return sf;
        });
}

/**
 * The mechanically fixable subset of `kept`: include-hygiene dead
 * includes (flavor (a) — the message starts `include "`). Transitive
 * leaks need a new include line whose placement is a judgement call,
 * so they stay manual.
 */
std::map<std::string, std::vector<int>>
fixableDeadIncludes(const std::vector<Violation> &kept)
{
    std::map<std::string, std::vector<int>> byFile;
    for (const Violation &v : kept)
        if (v.rule == "include-hygiene" &&
            v.message.rfind("include \"", 0) == 0)
            byFile[v.path].push_back(v.line);
    for (auto &[path, lines] : byFile) {
        std::sort(lines.begin(), lines.end());
        lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    }
    return byFile;
}

/** Split keeping no terminators; `hadFinalNewline` restores the tail. */
std::vector<std::string>
splitLines(const std::string &s, bool &hadFinalNewline)
{
    std::vector<std::string> lines;
    std::string cur;
    for (const char c : s) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    hadFinalNewline = cur.empty() && !s.empty();
    if (!hadFinalNewline)
        lines.push_back(cur);
    return lines;
}

/**
 * Delete dead-include lines. In dry-run mode print a minimal unified
 * diff of what --fix would do; otherwise rewrite the files in place.
 * Returns the number of lines removed (0 on I/O trouble, reported).
 */
std::size_t
applyIncludeFixes(const fs::path &root,
                  const std::map<std::string, std::vector<int>> &byFile,
                  bool dryRun)
{
    std::size_t removed = 0;
    for (const auto &[rel, lines] : byFile) {
        std::string source;
        if (!readFile(root / rel, source)) {
            std::fprintf(stderr, "error: cannot re-read %s for --fix\n",
                         rel.c_str());
            continue;
        }
        bool finalNl = false;
        std::vector<std::string> text = splitLines(source, finalNl);
        if (dryRun) {
            std::printf("--- a/%s\n+++ b/%s\n", rel.c_str(), rel.c_str());
            for (const int line : lines) {
                if (line < 1 || line > static_cast<int>(text.size()))
                    continue;
                std::printf("@@ -%d,1 +%d,0 @@\n-%s\n", line, line - 1,
                            text[static_cast<std::size_t>(line - 1)]
                                .c_str());
                ++removed;
            }
            continue;
        }
        for (auto it = lines.rbegin(); it != lines.rend(); ++it) {
            if (*it < 1 || *it > static_cast<int>(text.size()))
                continue;
            text.erase(text.begin() + (*it - 1));
            ++removed;
        }
        std::ofstream out(root / rel, std::ios::binary | std::ios::trunc);
        for (std::size_t i = 0; i < text.size(); ++i) {
            out << text[i];
            if (i + 1 < text.size() || finalNl)
                out << '\n';
        }
    }
    return removed;
}

int
lintTree(const std::string &rootArg, const std::string &baselineArg,
         const std::string &writeBaselineArg, const std::string &format,
         bool fix, bool fixDryRun)
{
    const fs::path root(rootArg);
    if (!fs::is_directory(root)) {
        std::fprintf(stderr, "error: %s is not a directory\n",
                     rootArg.c_str());
        return 2;
    }
    const std::vector<std::string> files = collectFiles(root);
    std::vector<ScannedFile> scanned = scanFiles(root, files);

    std::vector<Violation> all;
    std::vector<FileModel> models;
    models.reserve(scanned.size());
    for (std::size_t i = 0; i < scanned.size(); ++i) {
        if (scanned[i].readError) {
            std::fprintf(stderr, "error: cannot read %s\n",
                         files[i].c_str());
            return 2;
        }
        all.insert(all.end(), scanned[i].violations.begin(),
                   scanned[i].violations.end());
        models.push_back(std::move(scanned[i].model));
    }

    // Pass 2: cross-file rules over the whole-project model.
    const ProjectModel pm =
        ursa::lint::buildProjectModel(std::move(models));
    const std::vector<Violation> cross = ursa::lint::lintProject(pm);
    all.insert(all.end(), cross.begin(), cross.end());
    ursa::lint::sortViolations(all);

    if (!writeBaselineArg.empty()) {
        std::ofstream out(writeBaselineArg);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         writeBaselineArg.c_str());
            return 2;
        }
        std::vector<Violation> joined = all;
        for (Violation &v : joined)
            v.path = ursa::lint::displayPath(rootArg, v.path);
        out << ursa::lint::formatBaseline(joined);
        std::fprintf(stderr,
                     "ursa-lint: wrote %zu baseline entr%s to %s\n",
                     all.size(), all.size() == 1 ? "y" : "ies",
                     writeBaselineArg.c_str());
        return 0;
    }

    std::vector<Violation> kept = all;
    if (!baselineArg.empty()) {
        std::vector<ursa::lint::BaselineEntry> entries, stale;
        std::vector<Violation> baselined;
        std::string error;
        if (!ursa::lint::loadBaseline(baselineArg, entries, error)) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 2;
        }
        // Baseline entries are spelled as they appeared in some
        // report (root-joined — "src/sim/a.cc", or absolute when CI
        // lints with an absolute --root); violations carry
        // root-relative paths internally. Resolve each entry to the
        // unique scanned file it names, whatever root spelling either
        // side used: exact relative match first, then the longest
        // scanned path the entry ends with as a "/"-separated suffix.
        const std::set<std::string> known(files.begin(), files.end());
        for (auto &e : entries) {
            if (known.count(e.path))
                continue;
            std::string best;
            for (const std::string &r : files)
                if (e.path.size() > r.size() &&
                    e.path.compare(e.path.size() - r.size(), r.size(), r) ==
                        0 &&
                    e.path[e.path.size() - r.size() - 1] == '/' &&
                    r.size() > best.size())
                    best = r;
            if (!best.empty())
                e.path = best;
        }
        kept.clear();
        ursa::lint::applyBaseline(entries, all, kept, baselined, stale);
        for (const auto &e : stale)
            std::fprintf(stderr,
                         "ursa-lint: stale baseline entry %s:%d:%s no "
                         "longer fires — delete it\n",
                         ursa::lint::displayPath(rootArg, e.path).c_str(),
                         e.line, e.rule.c_str());
        if (!baselined.empty())
            std::fprintf(stderr,
                         "ursa-lint: %zu baselined violation(s) "
                         "suppressed via %s\n",
                         baselined.size(), baselineArg.c_str());
    }

    if (fix || fixDryRun) {
        const std::map<std::string, std::vector<int>> byFile =
            fixableDeadIncludes(kept);
        const std::size_t removed =
            applyIncludeFixes(root, byFile, /*dryRun=*/fixDryRun);
        if (fixDryRun) {
            std::fprintf(stderr,
                         "ursa-lint: --fix would remove %zu dead "
                         "include(s) in %zu file(s)\n",
                         removed, byFile.size());
        } else {
            std::fprintf(stderr,
                         "ursa-lint: removed %zu dead include(s) in %zu "
                         "file(s)\n",
                         removed, byFile.size());
            // The fixed findings are gone from disk; report the rest.
            kept.erase(std::remove_if(
                           kept.begin(), kept.end(),
                           [&](const Violation &v) {
                               const auto it = byFile.find(v.path);
                               return it != byFile.end() &&
                                      v.rule == "include-hygiene" &&
                                      v.message.rfind("include \"", 0) ==
                                          0 &&
                                      std::find(it->second.begin(),
                                                it->second.end(),
                                                v.line) !=
                                          it->second.end();
                           }),
                       kept.end());
        }
    }

    if (format == "sarif") {
        std::fputs(ursa::lint::formatSarif(kept, rootArg).c_str(), stdout);
    } else {
        std::fputs(ursa::lint::formatText(kept, rootArg).c_str(), stdout);
        if (kept.empty())
            std::printf("ursa-lint: clean (%zu files, %zu cross-file "
                        "edges checked)\n",
                        files.size(), pm.files.size());
    }
    if (!kept.empty()) {
        std::fprintf(stderr, "ursa-lint: %zu violation(s)\n", kept.size());
        return 1;
    }
    return 0;
}

// --- self-test -----------------------------------------------------------

struct Expectation
{
    int line;
    std::string rule;
    bool mustFire; ///< expect(...) vs suppressed(...)
};

/** Parse `ursa-lint-test: expect(r)` / `suppressed(r)` directives. */
std::vector<Expectation>
parseDirectives(const std::string &rel,
                const std::vector<std::string> &comments,
                std::vector<std::string> &errors)
{
    std::vector<Expectation> out;
    for (int line = 1; line < static_cast<int>(comments.size()); ++line) {
        const std::string &c = comments[line];
        std::size_t at = c.find("ursa-lint-test:");
        if (at == std::string::npos)
            continue;
        at += 15;
        while (at < c.size()) {
            const std::size_t open = c.find('(', at);
            if (open == std::string::npos)
                break;
            std::size_t kw = c.find_last_not_of(" \t", open - 1);
            std::size_t kwStart = c.find_last_of(" \t,)", kw);
            kwStart = kwStart == std::string::npos ? at : kwStart + 1;
            const std::string keyword = c.substr(kwStart, kw - kwStart + 1);
            const std::size_t close = c.find(')', open);
            if (close == std::string::npos)
                break;
            const std::string rule = c.substr(open + 1, close - open - 1);
            if (keyword == "expect" || keyword == "suppressed") {
                if (!ursa::lint::knownRule(rule))
                    errors.push_back(rel + ":" + std::to_string(line) +
                                     ": directive names unknown rule '" +
                                     rule + "'");
                else
                    out.push_back({line, rule, keyword == "expect"});
            }
            at = close + 1;
        }
    }
    return out;
}

/**
 * Check one fixture unit: `got` violations (paths relative to the
 * fixture root, `prefix` restores testdata-relative naming) against
 * the per-file expectations.
 */
void
checkExpectations(const std::string &prefix,
                  const std::map<std::string, std::vector<Expectation>>
                      &expectsByFile,
                  const std::vector<Violation> &got,
                  std::size_t &fired, std::size_t &suppressedQuiet,
                  std::vector<std::string> &failures)
{
    auto found = [&](const std::string &path, const Expectation &e) {
        return std::any_of(got.begin(), got.end(), [&](const Violation &v) {
            return v.path == path && v.line == e.line && v.rule == e.rule;
        });
    };
    for (const auto &[path, expects] : expectsByFile)
        for (const Expectation &e : expects) {
            if (e.mustFire && !found(path, e))
                failures.push_back("bait " + prefix + path + ":" +
                                   std::to_string(e.line) +
                                   " did not trigger [" + e.rule + "]");
            else if (!e.mustFire && found(path, e))
                failures.push_back("suppression " + prefix + path + ":" +
                                   std::to_string(e.line) +
                                   " failed to silence [" + e.rule + "]");
            else
                ++(e.mustFire ? fired : suppressedQuiet);
        }
    for (const Violation &v : got) {
        const auto it = expectsByFile.find(v.path);
        const bool expected =
            it != expectsByFile.end() &&
            std::any_of(it->second.begin(), it->second.end(),
                        [&](const Expectation &e) {
                            return e.mustFire && e.line == v.line &&
                                   e.rule == v.rule;
                        });
        if (!expected)
            failures.push_back("clean line " + prefix + v.path + ":" +
                               std::to_string(v.line) +
                               " wrongly triggered [" + v.rule + "]");
    }
}

int
selfTest(const std::string &testdataArg)
{
    const fs::path root(testdataArg);
    if (!fs::is_directory(root)) {
        std::fprintf(stderr, "error: testdata dir %s not found\n",
                     testdataArg.c_str());
        return 2;
    }
    std::vector<std::string> failures;
    std::size_t fired = 0, suppressedQuiet = 0, files = 0, projects = 0;

    // Partition: projects/<name>/... are whole-project fixtures, the
    // rest are single-file fixtures.
    std::map<std::string, std::vector<std::string>> projectFiles;
    std::vector<std::string> singles;
    for (const std::string &rel : collectFiles(root)) {
        if (rel.rfind("projects/", 0) == 0) {
            const std::size_t slash = rel.find('/', 9);
            if (slash != std::string::npos) {
                projectFiles[rel.substr(9, slash - 9)].push_back(
                    rel.substr(slash + 1));
                continue;
            }
        }
        singles.push_back(rel);
    }

    for (const std::string &rel : singles) {
        std::string source;
        if (!readFile(root / rel, source)) {
            std::fprintf(stderr, "error: cannot read %s\n", rel.c_str());
            return 2;
        }
        ++files;
        const ursa::lint::LexedFile lx = ursa::lint::lex(source);
        std::map<std::string, std::vector<Expectation>> expects;
        expects[rel] = parseDirectives(rel, lx.comments, failures);
        checkExpectations("", expects,
                          ursa::lint::lintFileLexed(rel, lx), fired,
                          suppressedQuiet, failures);
    }

    for (const auto &[name, rels] : projectFiles) {
        const std::string prefix = "projects/" + name + "/";
        std::vector<FileModel> models;
        std::map<std::string, std::vector<Expectation>> expects;
        std::vector<Violation> got;
        for (const std::string &rel : rels) {
            std::string source;
            if (!readFile(root / (prefix + rel), source)) {
                std::fprintf(stderr, "error: cannot read %s%s\n",
                             prefix.c_str(), rel.c_str());
                return 2;
            }
            ++files;
            FileModel fm = ursa::lint::buildFileModel(rel, source);
            expects[rel] =
                parseDirectives(prefix + rel, fm.lx.comments, failures);
            const std::vector<Violation> perFile =
                ursa::lint::lintFileLexed(rel, fm.lx);
            got.insert(got.end(), perFile.begin(), perFile.end());
            models.push_back(std::move(fm));
        }
        ++projects;
        const ProjectModel pm =
            ursa::lint::buildProjectModel(std::move(models));
        const std::vector<Violation> cross = ursa::lint::lintProject(pm);
        got.insert(got.end(), cross.begin(), cross.end());
        checkExpectations(prefix, expects, got, fired, suppressedQuiet,
                          failures);
    }

    if (files == 0)
        failures.push_back("no fixture files under " + testdataArg);
    if (!failures.empty()) {
        std::sort(failures.begin(), failures.end());
        for (const std::string &f : failures)
            std::fprintf(stderr, "self-test FAIL: %s\n", f.c_str());
        return 1;
    }
    std::printf("self-test OK: %zu bait expectations fired, %zu "
                "suppressions quiet, %zu fixture files (%zu fixture "
                "projects)\n",
                fired, suppressedQuiet, files, projects);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root, testdata, baseline, writeBaseline, format = "text";
    bool selfTestMode = false, listRules = false;
    bool fix = false, fixDryRun = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc)
            root = argv[++i];
        else if (arg == "--testdata" && i + 1 < argc)
            testdata = argv[++i];
        else if (arg == "--baseline" && i + 1 < argc)
            baseline = argv[++i];
        else if (arg == "--write-baseline" && i + 1 < argc)
            writeBaseline = argv[++i];
        else if (arg == "--format" && i + 1 < argc)
            format = argv[++i];
        else if (arg.rfind("--format=", 0) == 0)
            format = arg.substr(9);
        else if (arg == "--fix")
            fix = true;
        else if (arg == "--fix-dry-run")
            fixDryRun = true;
        else if (arg == "--self-test")
            selfTestMode = true;
        else if (arg == "--list-rules")
            listRules = true;
        else {
            std::fprintf(
                stderr,
                "usage: ursa-lint --root <dir> [--baseline <file>] "
                "[--write-baseline <file>] [--format text|sarif]\n"
                "                 [--fix | --fix-dry-run]\n"
                "     | ursa-lint --self-test --testdata <dir>\n"
                "     | ursa-lint --list-rules [--format markdown]\n");
            return 2;
        }
    }
    if (listRules) {
        if (format == "markdown") {
            std::fputs(ursa::lint::formatRuleTableMarkdown().c_str(),
                       stdout);
        } else {
            for (const ursa::lint::RuleInfo &r :
                 ursa::lint::ruleCatalogue())
                std::printf("%-20s %s\n", r.id, r.summary);
        }
        return 0;
    }
    if (selfTestMode) {
        if (testdata.empty()) {
            std::fprintf(stderr,
                         "error: --self-test requires --testdata <dir>\n");
            return 2;
        }
        return selfTest(testdata);
    }
    if (format != "text" && format != "sarif") {
        std::fprintf(stderr, "error: unknown --format %s\n",
                     format.c_str());
        return 2;
    }
    if (root.empty()) {
        std::fprintf(stderr, "error: --root is required (or --self-test)\n");
        return 2;
    }
    return lintTree(root, baseline, writeBaseline, format, fix,
                    fixDryRun);
}
