/**
 * @file
 * ursa-lint — the project's native determinism / concurrency-hygiene
 * analyzer (successor of scripts/lint_determinism.py; see DESIGN.md
 * §9 for the rule catalogue and suppression policy).
 *
 * Modes:
 *   ursa-lint --root <dir>                  lint a source tree
 *   ursa-lint --self-test --testdata <dir>  run the bait/clean fixtures
 *   ursa-lint --list-rules                  print the rule catalogue
 *
 * Output is machine-readable, one violation per line:
 *
 *   <file>:<line>:<rule>: <message>
 *
 * Suppression: append `// ursa-lint: allow(<rule>)` to the offending
 * line (or the line directly above) with a reason.
 *
 * Self-test fixtures under tools/lint_testdata/ carry expectations in
 * comments: `// ursa-lint-test: expect(<rule>)` marks a line that MUST
 * flag, `// ursa-lint-test: suppressed(<rule>)` marks a line whose
 * suppression comment MUST win. Any violation on an unmarked fixture
 * line fails the self-test, so both false negatives and false
 * positives are pinned.
 *
 * Exit status: 0 clean, 1 violations/self-test failure, 2 usage error.
 */

#include "rules.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using ursa::lint::Violation;

namespace
{

bool
lintableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

/** Files under `root` in sorted relative-path order. */
std::vector<std::string>
collectFiles(const fs::path &root)
{
    std::vector<std::string> rel;
    for (const auto &entry : fs::recursive_directory_iterator(root))
        if (entry.is_regular_file() && lintableExtension(entry.path()))
            rel.push_back(
                entry.path().lexically_relative(root).generic_string());
    std::sort(rel.begin(), rel.end());
    return rel;
}

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

int
lintTree(const std::string &rootArg)
{
    const fs::path root(rootArg);
    if (!fs::is_directory(root)) {
        std::fprintf(stderr, "error: %s is not a directory\n",
                     rootArg.c_str());
        return 2;
    }
    std::size_t count = 0;
    for (const std::string &rel : collectFiles(root)) {
        std::string source;
        if (!readFile(root / rel, source)) {
            std::fprintf(stderr, "error: cannot read %s\n", rel.c_str());
            return 2;
        }
        for (const Violation &v : ursa::lint::lintFile(rel, source)) {
            std::printf("%s/%s:%d:%s: %s\n", rootArg.c_str(),
                        v.path.c_str(), v.line, v.rule.c_str(),
                        v.message.c_str());
            ++count;
        }
    }
    if (count > 0) {
        std::fprintf(stderr, "ursa-lint: %zu violation(s)\n", count);
        return 1;
    }
    std::printf("ursa-lint: clean\n");
    return 0;
}

// --- self-test -----------------------------------------------------------

struct Expectation
{
    int line;
    std::string rule;
    bool mustFire; ///< expect(...) vs suppressed(...)
};

/** Parse `ursa-lint-test: expect(r)` / `suppressed(r)` directives. */
std::vector<Expectation>
parseDirectives(const std::string &rel,
                const std::vector<std::string> &comments,
                std::vector<std::string> &errors)
{
    std::vector<Expectation> out;
    for (int line = 1; line < static_cast<int>(comments.size()); ++line) {
        const std::string &c = comments[line];
        std::size_t at = c.find("ursa-lint-test:");
        if (at == std::string::npos)
            continue;
        at += 15;
        while (at < c.size()) {
            const std::size_t open = c.find('(', at);
            if (open == std::string::npos)
                break;
            std::size_t kw = c.find_last_not_of(" \t", open - 1);
            std::size_t kwStart = c.find_last_of(" \t,)", kw);
            kwStart = kwStart == std::string::npos ? at : kwStart + 1;
            const std::string keyword = c.substr(kwStart, kw - kwStart + 1);
            const std::size_t close = c.find(')', open);
            if (close == std::string::npos)
                break;
            const std::string rule = c.substr(open + 1, close - open - 1);
            if (keyword == "expect" || keyword == "suppressed") {
                if (!ursa::lint::knownRule(rule))
                    errors.push_back(rel + ":" + std::to_string(line) +
                                     ": directive names unknown rule '" +
                                     rule + "'");
                else
                    out.push_back({line, rule, keyword == "expect"});
            }
            at = close + 1;
        }
    }
    return out;
}

int
selfTest(const std::string &testdataArg)
{
    const fs::path root(testdataArg);
    if (!fs::is_directory(root)) {
        std::fprintf(stderr, "error: testdata dir %s not found\n",
                     testdataArg.c_str());
        return 2;
    }
    std::vector<std::string> failures;
    std::size_t fired = 0, suppressedQuiet = 0, files = 0;
    for (const std::string &rel : collectFiles(root)) {
        std::string source;
        if (!readFile(root / rel, source)) {
            std::fprintf(stderr, "error: cannot read %s\n", rel.c_str());
            return 2;
        }
        ++files;
        const ursa::lint::LexedFile lx = ursa::lint::lex(source);
        const std::vector<Expectation> expects =
            parseDirectives(rel, lx.comments, failures);
        const std::vector<Violation> got =
            ursa::lint::lintFile(rel, source);

        auto found = [&](const Expectation &e) {
            return std::any_of(got.begin(), got.end(),
                               [&](const Violation &v) {
                                   return v.line == e.line &&
                                          v.rule == e.rule;
                               });
        };
        for (const Expectation &e : expects) {
            if (e.mustFire && !found(e))
                failures.push_back("bait " + rel + ":" +
                                   std::to_string(e.line) +
                                   " did not trigger [" + e.rule + "]");
            else if (!e.mustFire && found(e))
                failures.push_back("suppression " + rel + ":" +
                                   std::to_string(e.line) +
                                   " failed to silence [" + e.rule + "]");
            else
                ++(e.mustFire ? fired : suppressedQuiet);
        }
        for (const Violation &v : got) {
            const bool expected = std::any_of(
                expects.begin(), expects.end(), [&](const Expectation &e) {
                    return e.mustFire && e.line == v.line && e.rule == v.rule;
                });
            if (!expected)
                failures.push_back("clean line " + rel + ":" +
                                   std::to_string(v.line) +
                                   " wrongly triggered [" + v.rule + "]");
        }
    }
    if (files == 0)
        failures.push_back("no fixture files under " + testdataArg);
    if (!failures.empty()) {
        for (const std::string &f : failures)
            std::fprintf(stderr, "self-test FAIL: %s\n", f.c_str());
        return 1;
    }
    std::printf("self-test OK: %zu bait expectations fired, %zu "
                "suppressions quiet, %zu fixture files\n",
                fired, suppressedQuiet, files);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root, testdata;
    bool selfTestMode = false, listRules = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc)
            root = argv[++i];
        else if (arg == "--testdata" && i + 1 < argc)
            testdata = argv[++i];
        else if (arg == "--self-test")
            selfTestMode = true;
        else if (arg == "--list-rules")
            listRules = true;
        else {
            std::fprintf(stderr,
                         "usage: ursa-lint --root <dir> | --self-test "
                         "--testdata <dir> | --list-rules\n");
            return 2;
        }
    }
    if (listRules) {
        for (const ursa::lint::RuleInfo &r : ursa::lint::ruleCatalogue())
            std::printf("%-20s %s\n", r.id, r.summary);
        return 0;
    }
    if (selfTestMode) {
        if (testdata.empty()) {
            std::fprintf(stderr,
                         "error: --self-test requires --testdata <dir>\n");
            return 2;
        }
        return selfTest(testdata);
    }
    if (root.empty()) {
        std::fprintf(stderr, "error: --root is required (or --self-test)\n");
        return 2;
    }
    return lintTree(root);
}
