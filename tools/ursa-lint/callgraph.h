/**
 * @file
 * Pass 3 of ursa-lint: a project-wide, scope-aware function-level call
 * graph assembled from the per-file FuncDef tables of pass 1, and the
 * interprocedural rules that run over it:
 *
 *   sim-nondeterminism  a function reachable from a simulation-context
 *                       root (src/sim, src/solver hot paths, workload
 *                       generator next()) transitively reaches a
 *                       nondeterminism source — wall clock, raw
 *                       randomness engine, thread identity, or
 *                       unordered-container iteration. Reported at the
 *                       root's call site with the full witness chain
 *                       root -> ... -> source.
 *   blocking-in-sim     the single-threaded sim/solver hot path
 *                       transitively acquires a base::Mutex, waits on
 *                       a CondVar, sleeps, or opens a file — blocking
 *                       constructs that stall the event loop.
 *   unbounded-recursion recursion cycles (Tarjan SCCs restricted to
 *                       the sim/solver layers) in which no member
 *                       function carries an URSA_CHECK-guarded depth
 *                       bound.
 *
 * Call-site resolution is deliberately conservative in the quiet
 * direction: a qualified call (`exec::parallelFor`) matches any
 * definition whose scope chain ends with the spelled qualifier; an
 * unqualified or member call resolves against same-class members, then
 * definitions visible through the caller's own file, its direct
 * includes, and their header/impl siblings; overload sets and virtual
 * overrides collapse to the union of the candidates. Unresolvable
 * calls produce no edge (silence, not noise).
 */

#ifndef URSA_TOOLS_LINT_CALLGRAPH_H
#define URSA_TOOLS_LINT_CALLGRAPH_H

#include "model.h"
#include "rules.h"

#include <string>
#include <vector>

namespace ursa::lint
{

/** One function node in the project call graph. */
struct CgNode
{
    int file; ///< index into ProjectModel::files
    int func; ///< index into that file's FileModel::funcs
    /// Resolved callees as node ids, parallel with the source line of
    /// the call site that produced each edge and with its strength.
    /// A *strong* edge comes from a direct or `this`-qualified call
    /// outside any lambda body: the only edges that can prove stack
    /// recursion. Weak edges (unknown receiver, deferred lambda work)
    /// still propagate taint.
    std::vector<int> callees;
    std::vector<int> calleeLine;
    std::vector<unsigned char> calleeStrong;
};

struct CallGraph
{
    /// Global function table in deterministic order: files are sorted
    /// by path (pass 1) and definitions appear in token order, so node
    /// ids — and everything derived from them — are byte-stable at any
    /// URSA_THREADS.
    std::vector<CgNode> nodes;

    const FuncDef &
    def(const ProjectModel &pm, int n) const
    {
        const CgNode &node = nodes[static_cast<std::size_t>(n)];
        return pm.files[static_cast<std::size_t>(node.file)]
            .funcs[static_cast<std::size_t>(node.func)];
    }

    const std::string &
    path(const ProjectModel &pm, int n) const
    {
        return pm.files[static_cast<std::size_t>(
                            nodes[static_cast<std::size_t>(n)].file)]
            .path;
    }
};

/** Link the per-file FuncDef tables into one resolved call graph. */
CallGraph buildCallGraph(const ProjectModel &pm);

/** Run the three interprocedural rules; violations carry witness
 * chains in Violation::related and are already suppression-filtered
 * and canonically ordered. */
std::vector<Violation> lintCallGraph(const ProjectModel &pm,
                                     const CallGraph &cg);

} // namespace ursa::lint

#endif // URSA_TOOLS_LINT_CALLGRAPH_H
