file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_control_plane.dir/bench_table6_control_plane.cc.o"
  "CMakeFiles/bench_table6_control_plane.dir/bench_table6_control_plane.cc.o.d"
  "bench_table6_control_plane"
  "bench_table6_control_plane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_control_plane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
