# Empty dependencies file for bench_table6_control_plane.
# This may be replaced when dependencies are built.
