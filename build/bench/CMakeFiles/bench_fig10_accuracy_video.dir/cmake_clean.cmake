file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_accuracy_video.dir/bench_fig10_accuracy_video.cc.o"
  "CMakeFiles/bench_fig10_accuracy_video.dir/bench_fig10_accuracy_video.cc.o.d"
  "bench_fig10_accuracy_video"
  "bench_fig10_accuracy_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_accuracy_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
