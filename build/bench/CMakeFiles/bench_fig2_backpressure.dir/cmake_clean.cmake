file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_backpressure.dir/bench_fig2_backpressure.cc.o"
  "CMakeFiles/bench_fig2_backpressure.dir/bench_fig2_backpressure.cc.o.d"
  "bench_fig2_backpressure"
  "bench_fig2_backpressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_backpressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
