file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_profiling.dir/bench_fig4_profiling.cc.o"
  "CMakeFiles/bench_fig4_profiling.dir/bench_fig4_profiling.cc.o.d"
  "bench_fig4_profiling"
  "bench_fig4_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
