# Empty dependencies file for bench_fig9_accuracy_social.
# This may be replaced when dependencies are built.
