file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_accuracy_social.dir/bench_fig9_accuracy_social.cc.o"
  "CMakeFiles/bench_fig9_accuracy_social.dir/bench_fig9_accuracy_social.cc.o.d"
  "bench_fig9_accuracy_social"
  "bench_fig9_accuracy_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_accuracy_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
