file(REMOVE_RECURSE
  "../lib/libursa_bench_common.a"
  "../lib/libursa_bench_common.pdb"
  "CMakeFiles/ursa_bench_common.dir/common.cc.o"
  "CMakeFiles/ursa_bench_common.dir/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
