# Empty dependencies file for ursa_bench_common.
# This may be replaced when dependencies are built.
