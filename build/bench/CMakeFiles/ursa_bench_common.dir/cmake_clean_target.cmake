file(REMOVE_RECURSE
  "../lib/libursa_bench_common.a"
)
