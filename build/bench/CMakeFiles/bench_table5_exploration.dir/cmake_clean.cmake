file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_exploration.dir/bench_table5_exploration.cc.o"
  "CMakeFiles/bench_table5_exploration.dir/bench_table5_exploration.cc.o.d"
  "bench_table5_exploration"
  "bench_table5_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
