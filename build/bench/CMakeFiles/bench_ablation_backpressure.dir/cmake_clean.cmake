file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_backpressure.dir/bench_ablation_backpressure.cc.o"
  "CMakeFiles/bench_ablation_backpressure.dir/bench_ablation_backpressure.cc.o.d"
  "bench_ablation_backpressure"
  "bench_ablation_backpressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_backpressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
