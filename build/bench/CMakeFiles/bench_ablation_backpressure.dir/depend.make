# Empty dependencies file for bench_ablation_backpressure.
# This may be replaced when dependencies are built.
