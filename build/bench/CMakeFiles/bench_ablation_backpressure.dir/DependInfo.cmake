
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_backpressure.cc" "bench/CMakeFiles/bench_ablation_backpressure.dir/bench_ablation_backpressure.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_backpressure.dir/bench_ablation_backpressure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ursa_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ursa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/ursa_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ursa_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ursa_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ursa_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ursa_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ursa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ursa_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
