# Empty dependencies file for bench_fig11_sla_violations.
# This may be replaced when dependencies are built.
