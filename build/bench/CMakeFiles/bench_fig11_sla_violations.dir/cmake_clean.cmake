file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_sla_violations.dir/bench_fig11_sla_violations.cc.o"
  "CMakeFiles/bench_fig11_sla_violations.dir/bench_fig11_sla_violations.cc.o.d"
  "bench_fig11_sla_violations"
  "bench_fig11_sla_violations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_sla_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
