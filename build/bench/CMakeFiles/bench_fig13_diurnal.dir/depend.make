# Empty dependencies file for bench_fig13_diurnal.
# This may be replaced when dependencies are built.
