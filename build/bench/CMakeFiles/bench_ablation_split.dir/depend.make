# Empty dependencies file for bench_ablation_split.
# This may be replaced when dependencies are built.
