file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_split.dir/bench_ablation_split.cc.o"
  "CMakeFiles/bench_ablation_split.dir/bench_ablation_split.cc.o.d"
  "bench_ablation_split"
  "bench_ablation_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
