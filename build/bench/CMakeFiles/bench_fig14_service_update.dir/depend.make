# Empty dependencies file for bench_fig14_service_update.
# This may be replaced when dependencies are built.
