file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_service_update.dir/bench_fig14_service_update.cc.o"
  "CMakeFiles/bench_fig14_service_update.dir/bench_fig14_service_update.cc.o.d"
  "bench_fig14_service_update"
  "bench_fig14_service_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_service_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
