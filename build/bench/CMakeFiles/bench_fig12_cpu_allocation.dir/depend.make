# Empty dependencies file for bench_fig12_cpu_allocation.
# This may be replaced when dependencies are built.
