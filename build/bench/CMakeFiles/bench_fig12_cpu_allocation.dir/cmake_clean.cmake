file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_cpu_allocation.dir/bench_fig12_cpu_allocation.cc.o"
  "CMakeFiles/bench_fig12_cpu_allocation.dir/bench_fig12_cpu_allocation.cc.o.d"
  "bench_fig12_cpu_allocation"
  "bench_fig12_cpu_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_cpu_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
