# Empty compiler generated dependencies file for social_network_diurnal.
# This may be replaced when dependencies are built.
