file(REMOVE_RECURSE
  "CMakeFiles/social_network_diurnal.dir/social_network_diurnal.cpp.o"
  "CMakeFiles/social_network_diurnal.dir/social_network_diurnal.cpp.o.d"
  "social_network_diurnal"
  "social_network_diurnal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_network_diurnal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
