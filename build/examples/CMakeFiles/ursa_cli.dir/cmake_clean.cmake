file(REMOVE_RECURSE
  "CMakeFiles/ursa_cli.dir/ursa_cli.cpp.o"
  "CMakeFiles/ursa_cli.dir/ursa_cli.cpp.o.d"
  "ursa_cli"
  "ursa_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
