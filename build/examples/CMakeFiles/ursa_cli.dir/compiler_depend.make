# Empty compiler generated dependencies file for ursa_cli.
# This may be replaced when dependencies are built.
