file(REMOVE_RECURSE
  "CMakeFiles/compare_managers.dir/compare_managers.cpp.o"
  "CMakeFiles/compare_managers.dir/compare_managers.cpp.o.d"
  "compare_managers"
  "compare_managers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_managers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
