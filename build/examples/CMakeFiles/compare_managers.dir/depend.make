# Empty dependencies file for compare_managers.
# This may be replaced when dependencies are built.
