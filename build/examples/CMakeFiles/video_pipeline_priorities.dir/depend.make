# Empty dependencies file for video_pipeline_priorities.
# This may be replaced when dependencies are built.
