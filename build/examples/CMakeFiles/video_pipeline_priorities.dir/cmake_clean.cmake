file(REMOVE_RECURSE
  "CMakeFiles/video_pipeline_priorities.dir/video_pipeline_priorities.cpp.o"
  "CMakeFiles/video_pipeline_priorities.dir/video_pipeline_priorities.cpp.o.d"
  "video_pipeline_priorities"
  "video_pipeline_priorities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_pipeline_priorities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
