file(REMOVE_RECURSE
  "CMakeFiles/test_workload_trace.dir/workload/test_trace.cc.o"
  "CMakeFiles/test_workload_trace.dir/workload/test_trace.cc.o.d"
  "test_workload_trace"
  "test_workload_trace.pdb"
  "test_workload_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
