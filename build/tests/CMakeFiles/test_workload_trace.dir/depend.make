# Empty dependencies file for test_workload_trace.
# This may be replaced when dependencies are built.
