file(REMOVE_RECURSE
  "CMakeFiles/test_core_theorem.dir/core/test_theorem.cc.o"
  "CMakeFiles/test_core_theorem.dir/core/test_theorem.cc.o.d"
  "test_core_theorem"
  "test_core_theorem.pdb"
  "test_core_theorem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_theorem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
