# Empty compiler generated dependencies file for test_core_theorem.
# This may be replaced when dependencies are built.
