file(REMOVE_RECURSE
  "CMakeFiles/test_workload_arrival.dir/workload/test_arrival.cc.o"
  "CMakeFiles/test_workload_arrival.dir/workload/test_arrival.cc.o.d"
  "test_workload_arrival"
  "test_workload_arrival.pdb"
  "test_workload_arrival[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_arrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
