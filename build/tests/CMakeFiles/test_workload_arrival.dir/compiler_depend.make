# Empty compiler generated dependencies file for test_workload_arrival.
# This may be replaced when dependencies are built.
