# Empty dependencies file for test_baselines_firm.
# This may be replaced when dependencies are built.
