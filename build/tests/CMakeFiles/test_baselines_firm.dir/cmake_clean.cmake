file(REMOVE_RECURSE
  "CMakeFiles/test_baselines_firm.dir/baselines/test_firm.cc.o"
  "CMakeFiles/test_baselines_firm.dir/baselines/test_firm.cc.o.d"
  "test_baselines_firm"
  "test_baselines_firm.pdb"
  "test_baselines_firm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines_firm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
