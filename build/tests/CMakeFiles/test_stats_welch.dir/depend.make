# Empty dependencies file for test_stats_welch.
# This may be replaced when dependencies are built.
