file(REMOVE_RECURSE
  "CMakeFiles/test_stats_welch.dir/stats/test_welch.cc.o"
  "CMakeFiles/test_stats_welch.dir/stats/test_welch.cc.o.d"
  "test_stats_welch"
  "test_stats_welch.pdb"
  "test_stats_welch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_welch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
