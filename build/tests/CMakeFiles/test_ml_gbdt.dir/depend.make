# Empty dependencies file for test_ml_gbdt.
# This may be replaced when dependencies are built.
