file(REMOVE_RECURSE
  "CMakeFiles/test_ml_gbdt.dir/ml/test_gbdt.cc.o"
  "CMakeFiles/test_ml_gbdt.dir/ml/test_gbdt.cc.o.d"
  "test_ml_gbdt"
  "test_ml_gbdt.pdb"
  "test_ml_gbdt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_gbdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
