# Empty compiler generated dependencies file for test_core_auto_reexplorer.
# This may be replaced when dependencies are built.
