file(REMOVE_RECURSE
  "CMakeFiles/test_core_auto_reexplorer.dir/core/test_auto_reexplorer.cc.o"
  "CMakeFiles/test_core_auto_reexplorer.dir/core/test_auto_reexplorer.cc.o.d"
  "test_core_auto_reexplorer"
  "test_core_auto_reexplorer.pdb"
  "test_core_auto_reexplorer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_auto_reexplorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
