file(REMOVE_RECURSE
  "CMakeFiles/test_sim_event_queue.dir/sim/test_event_queue.cc.o"
  "CMakeFiles/test_sim_event_queue.dir/sim/test_event_queue.cc.o.d"
  "test_sim_event_queue"
  "test_sim_event_queue.pdb"
  "test_sim_event_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_event_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
