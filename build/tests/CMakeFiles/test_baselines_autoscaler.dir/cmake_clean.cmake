file(REMOVE_RECURSE
  "CMakeFiles/test_baselines_autoscaler.dir/baselines/test_autoscaler.cc.o"
  "CMakeFiles/test_baselines_autoscaler.dir/baselines/test_autoscaler.cc.o.d"
  "test_baselines_autoscaler"
  "test_baselines_autoscaler.pdb"
  "test_baselines_autoscaler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines_autoscaler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
