# Empty dependencies file for test_baselines_autoscaler.
# This may be replaced when dependencies are built.
