# Empty compiler generated dependencies file for test_ml_mlp.
# This may be replaced when dependencies are built.
