file(REMOVE_RECURSE
  "CMakeFiles/test_ml_mlp.dir/ml/test_mlp.cc.o"
  "CMakeFiles/test_ml_mlp.dir/ml/test_mlp.cc.o.d"
  "test_ml_mlp"
  "test_ml_mlp.pdb"
  "test_ml_mlp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
