file(REMOVE_RECURSE
  "CMakeFiles/test_sim_cluster_basic.dir/sim/test_cluster_basic.cc.o"
  "CMakeFiles/test_sim_cluster_basic.dir/sim/test_cluster_basic.cc.o.d"
  "test_sim_cluster_basic"
  "test_sim_cluster_basic.pdb"
  "test_sim_cluster_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_cluster_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
