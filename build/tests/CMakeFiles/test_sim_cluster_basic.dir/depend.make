# Empty dependencies file for test_sim_cluster_basic.
# This may be replaced when dependencies are built.
