# Empty dependencies file for test_core_resource_controller.
# This may be replaced when dependencies are built.
