file(REMOVE_RECURSE
  "CMakeFiles/test_core_resource_controller.dir/core/test_resource_controller.cc.o"
  "CMakeFiles/test_core_resource_controller.dir/core/test_resource_controller.cc.o.d"
  "test_core_resource_controller"
  "test_core_resource_controller.pdb"
  "test_core_resource_controller[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_resource_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
