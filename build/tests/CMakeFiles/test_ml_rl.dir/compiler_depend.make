# Empty compiler generated dependencies file for test_ml_rl.
# This may be replaced when dependencies are built.
