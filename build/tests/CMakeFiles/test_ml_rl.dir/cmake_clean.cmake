file(REMOVE_RECURSE
  "CMakeFiles/test_ml_rl.dir/ml/test_rl.cc.o"
  "CMakeFiles/test_ml_rl.dir/ml/test_rl.cc.o.d"
  "test_ml_rl"
  "test_ml_rl.pdb"
  "test_ml_rl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
