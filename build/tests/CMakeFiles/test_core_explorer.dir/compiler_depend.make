# Empty compiler generated dependencies file for test_core_explorer.
# This may be replaced when dependencies are built.
