file(REMOVE_RECURSE
  "CMakeFiles/test_core_explorer.dir/core/test_explorer.cc.o"
  "CMakeFiles/test_core_explorer.dir/core/test_explorer.cc.o.d"
  "test_core_explorer"
  "test_core_explorer.pdb"
  "test_core_explorer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
