# Empty dependencies file for test_core_estimator.
# This may be replaced when dependencies are built.
