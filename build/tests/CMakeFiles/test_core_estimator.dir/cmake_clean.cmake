file(REMOVE_RECURSE
  "CMakeFiles/test_core_estimator.dir/core/test_estimator.cc.o"
  "CMakeFiles/test_core_estimator.dir/core/test_estimator.cc.o.d"
  "test_core_estimator"
  "test_core_estimator.pdb"
  "test_core_estimator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
