file(REMOVE_RECURSE
  "CMakeFiles/test_sim_chains.dir/sim/test_chains.cc.o"
  "CMakeFiles/test_sim_chains.dir/sim/test_chains.cc.o.d"
  "test_sim_chains"
  "test_sim_chains.pdb"
  "test_sim_chains[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
