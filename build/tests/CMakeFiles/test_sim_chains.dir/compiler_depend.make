# Empty compiler generated dependencies file for test_sim_chains.
# This may be replaced when dependencies are built.
