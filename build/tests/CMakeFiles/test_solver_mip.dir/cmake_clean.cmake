file(REMOVE_RECURSE
  "CMakeFiles/test_solver_mip.dir/solver/test_mip.cc.o"
  "CMakeFiles/test_solver_mip.dir/solver/test_mip.cc.o.d"
  "test_solver_mip"
  "test_solver_mip.pdb"
  "test_solver_mip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_mip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
