# Empty dependencies file for test_solver_mip.
# This may be replaced when dependencies are built.
