file(REMOVE_RECURSE
  "CMakeFiles/test_core_mip_model.dir/core/test_mip_model.cc.o"
  "CMakeFiles/test_core_mip_model.dir/core/test_mip_model.cc.o.d"
  "test_core_mip_model"
  "test_core_mip_model.pdb"
  "test_core_mip_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_mip_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
