file(REMOVE_RECURSE
  "CMakeFiles/test_baselines_sinan.dir/baselines/test_sinan.cc.o"
  "CMakeFiles/test_baselines_sinan.dir/baselines/test_sinan.cc.o.d"
  "test_baselines_sinan"
  "test_baselines_sinan.pdb"
  "test_baselines_sinan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines_sinan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
