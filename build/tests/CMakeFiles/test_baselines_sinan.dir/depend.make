# Empty dependencies file for test_baselines_sinan.
# This may be replaced when dependencies are built.
