# Empty dependencies file for test_stats_timeseries.
# This may be replaced when dependencies are built.
