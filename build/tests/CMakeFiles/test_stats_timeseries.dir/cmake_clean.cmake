file(REMOVE_RECURSE
  "CMakeFiles/test_stats_timeseries.dir/stats/test_timeseries.cc.o"
  "CMakeFiles/test_stats_timeseries.dir/stats/test_timeseries.cc.o.d"
  "test_stats_timeseries"
  "test_stats_timeseries.pdb"
  "test_stats_timeseries[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
