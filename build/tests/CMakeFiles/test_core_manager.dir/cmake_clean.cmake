file(REMOVE_RECURSE
  "CMakeFiles/test_core_manager.dir/core/test_manager.cc.o"
  "CMakeFiles/test_core_manager.dir/core/test_manager.cc.o.d"
  "test_core_manager"
  "test_core_manager.pdb"
  "test_core_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
