# Empty compiler generated dependencies file for test_core_manager.
# This may be replaced when dependencies are built.
