file(REMOVE_RECURSE
  "CMakeFiles/test_core_profile.dir/core/test_profile.cc.o"
  "CMakeFiles/test_core_profile.dir/core/test_profile.cc.o.d"
  "test_core_profile"
  "test_core_profile.pdb"
  "test_core_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
