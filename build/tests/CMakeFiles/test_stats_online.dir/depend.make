# Empty dependencies file for test_stats_online.
# This may be replaced when dependencies are built.
