file(REMOVE_RECURSE
  "CMakeFiles/test_stats_online.dir/stats/test_online.cc.o"
  "CMakeFiles/test_stats_online.dir/stats/test_online.cc.o.d"
  "test_stats_online"
  "test_stats_online.pdb"
  "test_stats_online[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
