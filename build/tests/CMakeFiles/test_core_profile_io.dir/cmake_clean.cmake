file(REMOVE_RECURSE
  "CMakeFiles/test_core_profile_io.dir/core/test_profile_io.cc.o"
  "CMakeFiles/test_core_profile_io.dir/core/test_profile_io.cc.o.d"
  "test_core_profile_io"
  "test_core_profile_io.pdb"
  "test_core_profile_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_profile_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
