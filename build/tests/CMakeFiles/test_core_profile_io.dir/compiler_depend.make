# Empty compiler generated dependencies file for test_core_profile_io.
# This may be replaced when dependencies are built.
