file(REMOVE_RECURSE
  "CMakeFiles/test_solver_lp.dir/solver/test_lp.cc.o"
  "CMakeFiles/test_solver_lp.dir/solver/test_lp.cc.o.d"
  "test_solver_lp"
  "test_solver_lp.pdb"
  "test_solver_lp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
