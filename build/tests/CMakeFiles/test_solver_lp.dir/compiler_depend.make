# Empty compiler generated dependencies file for test_solver_lp.
# This may be replaced when dependencies are built.
