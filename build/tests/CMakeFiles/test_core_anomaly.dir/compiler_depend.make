# Empty compiler generated dependencies file for test_core_anomaly.
# This may be replaced when dependencies are built.
