file(REMOVE_RECURSE
  "CMakeFiles/test_core_anomaly.dir/core/test_anomaly.cc.o"
  "CMakeFiles/test_core_anomaly.dir/core/test_anomaly.cc.o.d"
  "test_core_anomaly"
  "test_core_anomaly.pdb"
  "test_core_anomaly[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
