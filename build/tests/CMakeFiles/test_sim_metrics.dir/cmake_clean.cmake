file(REMOVE_RECURSE
  "CMakeFiles/test_sim_metrics.dir/sim/test_metrics.cc.o"
  "CMakeFiles/test_sim_metrics.dir/sim/test_metrics.cc.o.d"
  "test_sim_metrics"
  "test_sim_metrics.pdb"
  "test_sim_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
