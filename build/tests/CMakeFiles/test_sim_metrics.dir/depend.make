# Empty dependencies file for test_sim_metrics.
# This may be replaced when dependencies are built.
