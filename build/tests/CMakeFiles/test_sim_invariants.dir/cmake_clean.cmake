file(REMOVE_RECURSE
  "CMakeFiles/test_sim_invariants.dir/sim/test_invariants.cc.o"
  "CMakeFiles/test_sim_invariants.dir/sim/test_invariants.cc.o.d"
  "test_sim_invariants"
  "test_sim_invariants.pdb"
  "test_sim_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
