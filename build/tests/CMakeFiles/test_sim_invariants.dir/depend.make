# Empty dependencies file for test_sim_invariants.
# This may be replaced when dependencies are built.
