file(REMOVE_RECURSE
  "CMakeFiles/test_sim_clients.dir/sim/test_clients.cc.o"
  "CMakeFiles/test_sim_clients.dir/sim/test_clients.cc.o.d"
  "test_sim_clients"
  "test_sim_clients.pdb"
  "test_sim_clients[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
