# Empty dependencies file for test_sim_clients.
# This may be replaced when dependencies are built.
