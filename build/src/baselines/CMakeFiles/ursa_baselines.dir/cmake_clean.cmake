file(REMOVE_RECURSE
  "CMakeFiles/ursa_baselines.dir/autoscaler.cc.o"
  "CMakeFiles/ursa_baselines.dir/autoscaler.cc.o.d"
  "CMakeFiles/ursa_baselines.dir/firm.cc.o"
  "CMakeFiles/ursa_baselines.dir/firm.cc.o.d"
  "CMakeFiles/ursa_baselines.dir/sinan.cc.o"
  "CMakeFiles/ursa_baselines.dir/sinan.cc.o.d"
  "libursa_baselines.a"
  "libursa_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
