# Empty dependencies file for ursa_baselines.
# This may be replaced when dependencies are built.
