file(REMOVE_RECURSE
  "libursa_baselines.a"
)
