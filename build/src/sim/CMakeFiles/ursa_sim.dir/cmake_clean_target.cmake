file(REMOVE_RECURSE
  "libursa_sim.a"
)
