# Empty dependencies file for ursa_sim.
# This may be replaced when dependencies are built.
