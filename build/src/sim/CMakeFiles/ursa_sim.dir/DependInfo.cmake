
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/client.cc" "src/sim/CMakeFiles/ursa_sim.dir/client.cc.o" "gcc" "src/sim/CMakeFiles/ursa_sim.dir/client.cc.o.d"
  "/root/repo/src/sim/cluster.cc" "src/sim/CMakeFiles/ursa_sim.dir/cluster.cc.o" "gcc" "src/sim/CMakeFiles/ursa_sim.dir/cluster.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/ursa_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/ursa_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/sim/CMakeFiles/ursa_sim.dir/metrics.cc.o" "gcc" "src/sim/CMakeFiles/ursa_sim.dir/metrics.cc.o.d"
  "/root/repo/src/sim/replica.cc" "src/sim/CMakeFiles/ursa_sim.dir/replica.cc.o" "gcc" "src/sim/CMakeFiles/ursa_sim.dir/replica.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/sim/CMakeFiles/ursa_sim.dir/report.cc.o" "gcc" "src/sim/CMakeFiles/ursa_sim.dir/report.cc.o.d"
  "/root/repo/src/sim/service.cc" "src/sim/CMakeFiles/ursa_sim.dir/service.cc.o" "gcc" "src/sim/CMakeFiles/ursa_sim.dir/service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/ursa_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
