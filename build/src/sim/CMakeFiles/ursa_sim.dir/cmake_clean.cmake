file(REMOVE_RECURSE
  "CMakeFiles/ursa_sim.dir/client.cc.o"
  "CMakeFiles/ursa_sim.dir/client.cc.o.d"
  "CMakeFiles/ursa_sim.dir/cluster.cc.o"
  "CMakeFiles/ursa_sim.dir/cluster.cc.o.d"
  "CMakeFiles/ursa_sim.dir/event_queue.cc.o"
  "CMakeFiles/ursa_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/ursa_sim.dir/metrics.cc.o"
  "CMakeFiles/ursa_sim.dir/metrics.cc.o.d"
  "CMakeFiles/ursa_sim.dir/replica.cc.o"
  "CMakeFiles/ursa_sim.dir/replica.cc.o.d"
  "CMakeFiles/ursa_sim.dir/report.cc.o"
  "CMakeFiles/ursa_sim.dir/report.cc.o.d"
  "CMakeFiles/ursa_sim.dir/service.cc.o"
  "CMakeFiles/ursa_sim.dir/service.cc.o.d"
  "libursa_sim.a"
  "libursa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
