file(REMOVE_RECURSE
  "CMakeFiles/ursa_stats.dir/online.cc.o"
  "CMakeFiles/ursa_stats.dir/online.cc.o.d"
  "CMakeFiles/ursa_stats.dir/quantile.cc.o"
  "CMakeFiles/ursa_stats.dir/quantile.cc.o.d"
  "CMakeFiles/ursa_stats.dir/rng.cc.o"
  "CMakeFiles/ursa_stats.dir/rng.cc.o.d"
  "CMakeFiles/ursa_stats.dir/timeseries.cc.o"
  "CMakeFiles/ursa_stats.dir/timeseries.cc.o.d"
  "CMakeFiles/ursa_stats.dir/welch.cc.o"
  "CMakeFiles/ursa_stats.dir/welch.cc.o.d"
  "libursa_stats.a"
  "libursa_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
