file(REMOVE_RECURSE
  "libursa_stats.a"
)
