# Empty dependencies file for ursa_stats.
# This may be replaced when dependencies are built.
