
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/online.cc" "src/stats/CMakeFiles/ursa_stats.dir/online.cc.o" "gcc" "src/stats/CMakeFiles/ursa_stats.dir/online.cc.o.d"
  "/root/repo/src/stats/quantile.cc" "src/stats/CMakeFiles/ursa_stats.dir/quantile.cc.o" "gcc" "src/stats/CMakeFiles/ursa_stats.dir/quantile.cc.o.d"
  "/root/repo/src/stats/rng.cc" "src/stats/CMakeFiles/ursa_stats.dir/rng.cc.o" "gcc" "src/stats/CMakeFiles/ursa_stats.dir/rng.cc.o.d"
  "/root/repo/src/stats/timeseries.cc" "src/stats/CMakeFiles/ursa_stats.dir/timeseries.cc.o" "gcc" "src/stats/CMakeFiles/ursa_stats.dir/timeseries.cc.o.d"
  "/root/repo/src/stats/welch.cc" "src/stats/CMakeFiles/ursa_stats.dir/welch.cc.o" "gcc" "src/stats/CMakeFiles/ursa_stats.dir/welch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
