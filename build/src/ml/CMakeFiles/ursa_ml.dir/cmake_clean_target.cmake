file(REMOVE_RECURSE
  "libursa_ml.a"
)
