file(REMOVE_RECURSE
  "CMakeFiles/ursa_ml.dir/gbdt.cc.o"
  "CMakeFiles/ursa_ml.dir/gbdt.cc.o.d"
  "CMakeFiles/ursa_ml.dir/mlp.cc.o"
  "CMakeFiles/ursa_ml.dir/mlp.cc.o.d"
  "CMakeFiles/ursa_ml.dir/rl.cc.o"
  "CMakeFiles/ursa_ml.dir/rl.cc.o.d"
  "libursa_ml.a"
  "libursa_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
