
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/gbdt.cc" "src/ml/CMakeFiles/ursa_ml.dir/gbdt.cc.o" "gcc" "src/ml/CMakeFiles/ursa_ml.dir/gbdt.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/ursa_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/ursa_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/rl.cc" "src/ml/CMakeFiles/ursa_ml.dir/rl.cc.o" "gcc" "src/ml/CMakeFiles/ursa_ml.dir/rl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/ursa_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
