# Empty dependencies file for ursa_ml.
# This may be replaced when dependencies are built.
