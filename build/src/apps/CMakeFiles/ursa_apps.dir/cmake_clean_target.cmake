file(REMOVE_RECURSE
  "libursa_apps.a"
)
