file(REMOVE_RECURSE
  "CMakeFiles/ursa_apps.dir/app.cc.o"
  "CMakeFiles/ursa_apps.dir/app.cc.o.d"
  "CMakeFiles/ursa_apps.dir/chains.cc.o"
  "CMakeFiles/ursa_apps.dir/chains.cc.o.d"
  "CMakeFiles/ursa_apps.dir/media_service.cc.o"
  "CMakeFiles/ursa_apps.dir/media_service.cc.o.d"
  "CMakeFiles/ursa_apps.dir/social_network.cc.o"
  "CMakeFiles/ursa_apps.dir/social_network.cc.o.d"
  "CMakeFiles/ursa_apps.dir/video_pipeline.cc.o"
  "CMakeFiles/ursa_apps.dir/video_pipeline.cc.o.d"
  "libursa_apps.a"
  "libursa_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
