
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app.cc" "src/apps/CMakeFiles/ursa_apps.dir/app.cc.o" "gcc" "src/apps/CMakeFiles/ursa_apps.dir/app.cc.o.d"
  "/root/repo/src/apps/chains.cc" "src/apps/CMakeFiles/ursa_apps.dir/chains.cc.o" "gcc" "src/apps/CMakeFiles/ursa_apps.dir/chains.cc.o.d"
  "/root/repo/src/apps/media_service.cc" "src/apps/CMakeFiles/ursa_apps.dir/media_service.cc.o" "gcc" "src/apps/CMakeFiles/ursa_apps.dir/media_service.cc.o.d"
  "/root/repo/src/apps/social_network.cc" "src/apps/CMakeFiles/ursa_apps.dir/social_network.cc.o" "gcc" "src/apps/CMakeFiles/ursa_apps.dir/social_network.cc.o.d"
  "/root/repo/src/apps/video_pipeline.cc" "src/apps/CMakeFiles/ursa_apps.dir/video_pipeline.cc.o" "gcc" "src/apps/CMakeFiles/ursa_apps.dir/video_pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ursa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ursa_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
