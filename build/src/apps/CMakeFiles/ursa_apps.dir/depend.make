# Empty dependencies file for ursa_apps.
# This may be replaced when dependencies are built.
