file(REMOVE_RECURSE
  "CMakeFiles/ursa_core.dir/anomaly.cc.o"
  "CMakeFiles/ursa_core.dir/anomaly.cc.o.d"
  "CMakeFiles/ursa_core.dir/auto_reexplorer.cc.o"
  "CMakeFiles/ursa_core.dir/auto_reexplorer.cc.o.d"
  "CMakeFiles/ursa_core.dir/bp_profiler.cc.o"
  "CMakeFiles/ursa_core.dir/bp_profiler.cc.o.d"
  "CMakeFiles/ursa_core.dir/estimator.cc.o"
  "CMakeFiles/ursa_core.dir/estimator.cc.o.d"
  "CMakeFiles/ursa_core.dir/explorer.cc.o"
  "CMakeFiles/ursa_core.dir/explorer.cc.o.d"
  "CMakeFiles/ursa_core.dir/harness.cc.o"
  "CMakeFiles/ursa_core.dir/harness.cc.o.d"
  "CMakeFiles/ursa_core.dir/manager.cc.o"
  "CMakeFiles/ursa_core.dir/manager.cc.o.d"
  "CMakeFiles/ursa_core.dir/mip_model.cc.o"
  "CMakeFiles/ursa_core.dir/mip_model.cc.o.d"
  "CMakeFiles/ursa_core.dir/profile.cc.o"
  "CMakeFiles/ursa_core.dir/profile.cc.o.d"
  "CMakeFiles/ursa_core.dir/profile_io.cc.o"
  "CMakeFiles/ursa_core.dir/profile_io.cc.o.d"
  "CMakeFiles/ursa_core.dir/resource_controller.cc.o"
  "CMakeFiles/ursa_core.dir/resource_controller.cc.o.d"
  "CMakeFiles/ursa_core.dir/theorem.cc.o"
  "CMakeFiles/ursa_core.dir/theorem.cc.o.d"
  "libursa_core.a"
  "libursa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
