# Empty compiler generated dependencies file for ursa_core.
# This may be replaced when dependencies are built.
