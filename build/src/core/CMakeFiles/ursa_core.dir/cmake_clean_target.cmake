file(REMOVE_RECURSE
  "libursa_core.a"
)
