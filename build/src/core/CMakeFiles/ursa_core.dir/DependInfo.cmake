
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anomaly.cc" "src/core/CMakeFiles/ursa_core.dir/anomaly.cc.o" "gcc" "src/core/CMakeFiles/ursa_core.dir/anomaly.cc.o.d"
  "/root/repo/src/core/auto_reexplorer.cc" "src/core/CMakeFiles/ursa_core.dir/auto_reexplorer.cc.o" "gcc" "src/core/CMakeFiles/ursa_core.dir/auto_reexplorer.cc.o.d"
  "/root/repo/src/core/bp_profiler.cc" "src/core/CMakeFiles/ursa_core.dir/bp_profiler.cc.o" "gcc" "src/core/CMakeFiles/ursa_core.dir/bp_profiler.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/core/CMakeFiles/ursa_core.dir/estimator.cc.o" "gcc" "src/core/CMakeFiles/ursa_core.dir/estimator.cc.o.d"
  "/root/repo/src/core/explorer.cc" "src/core/CMakeFiles/ursa_core.dir/explorer.cc.o" "gcc" "src/core/CMakeFiles/ursa_core.dir/explorer.cc.o.d"
  "/root/repo/src/core/harness.cc" "src/core/CMakeFiles/ursa_core.dir/harness.cc.o" "gcc" "src/core/CMakeFiles/ursa_core.dir/harness.cc.o.d"
  "/root/repo/src/core/manager.cc" "src/core/CMakeFiles/ursa_core.dir/manager.cc.o" "gcc" "src/core/CMakeFiles/ursa_core.dir/manager.cc.o.d"
  "/root/repo/src/core/mip_model.cc" "src/core/CMakeFiles/ursa_core.dir/mip_model.cc.o" "gcc" "src/core/CMakeFiles/ursa_core.dir/mip_model.cc.o.d"
  "/root/repo/src/core/profile.cc" "src/core/CMakeFiles/ursa_core.dir/profile.cc.o" "gcc" "src/core/CMakeFiles/ursa_core.dir/profile.cc.o.d"
  "/root/repo/src/core/profile_io.cc" "src/core/CMakeFiles/ursa_core.dir/profile_io.cc.o" "gcc" "src/core/CMakeFiles/ursa_core.dir/profile_io.cc.o.d"
  "/root/repo/src/core/resource_controller.cc" "src/core/CMakeFiles/ursa_core.dir/resource_controller.cc.o" "gcc" "src/core/CMakeFiles/ursa_core.dir/resource_controller.cc.o.d"
  "/root/repo/src/core/theorem.cc" "src/core/CMakeFiles/ursa_core.dir/theorem.cc.o" "gcc" "src/core/CMakeFiles/ursa_core.dir/theorem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ursa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ursa_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/ursa_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ursa_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ursa_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
