# Empty compiler generated dependencies file for ursa_workload.
# This may be replaced when dependencies are built.
