file(REMOVE_RECURSE
  "libursa_workload.a"
)
