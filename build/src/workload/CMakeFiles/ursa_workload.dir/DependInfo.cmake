
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrival.cc" "src/workload/CMakeFiles/ursa_workload.dir/arrival.cc.o" "gcc" "src/workload/CMakeFiles/ursa_workload.dir/arrival.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/ursa_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/ursa_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ursa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ursa_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
