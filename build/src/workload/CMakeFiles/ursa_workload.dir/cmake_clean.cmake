file(REMOVE_RECURSE
  "CMakeFiles/ursa_workload.dir/arrival.cc.o"
  "CMakeFiles/ursa_workload.dir/arrival.cc.o.d"
  "CMakeFiles/ursa_workload.dir/trace.cc.o"
  "CMakeFiles/ursa_workload.dir/trace.cc.o.d"
  "libursa_workload.a"
  "libursa_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
