# Empty dependencies file for ursa_solver.
# This may be replaced when dependencies are built.
