file(REMOVE_RECURSE
  "CMakeFiles/ursa_solver.dir/lp.cc.o"
  "CMakeFiles/ursa_solver.dir/lp.cc.o.d"
  "CMakeFiles/ursa_solver.dir/mip.cc.o"
  "CMakeFiles/ursa_solver.dir/mip.cc.o.d"
  "libursa_solver.a"
  "libursa_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
