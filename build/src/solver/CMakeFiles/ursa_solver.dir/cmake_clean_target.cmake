file(REMOVE_RECURSE
  "libursa_solver.a"
)
