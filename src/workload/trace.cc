#include "workload/trace.h"

#include "check/check.h"
#include "sim/client.h"
#include "sim/cluster.h"
#include "sim/time.h"
#include "stats/rng.h"

namespace ursa::workload
{

std::size_t
ArrivalTrace::countOf(sim::ClassId c) const
{
    std::size_t n = 0;
    for (const TraceEntry &e : entries)
        if (e.classId == c)
            ++n;
    return n;
}

double
ArrivalTrace::meanRate() const
{
    if (entries.size() < 2 || duration() == 0)
        return 0.0;
    return static_cast<double>(entries.size()) / sim::toSec(duration());
}

ArrivalTrace
makePoissonTrace(stats::Rng &rng, sim::SimTime duration, double rps,
                 const std::vector<double> &classWeights)
{
    URSA_CHECK(rps > 0.0, "workload.trace",
               "Poisson trace with a non-positive rate");
    ArrivalTrace trace;
    const double meanGapUs = 1e6 / rps;
    sim::SimTime t = 0;
    while (true) {
        t += static_cast<sim::SimTime>(rng.exponential(meanGapUs)) + 1;
        if (t > duration)
            break;
        trace.entries.push_back(
            {t, static_cast<sim::ClassId>(rng.weightedChoice(classWeights))});
    }
    return trace;
}

TraceReplayClient::TraceReplayClient(sim::Cluster &cluster,
                                     ArrivalTrace trace, bool loop,
                                     double rateScale)
    : cluster_(cluster), trace_(std::move(trace)), loop_(loop),
      rateScale_(rateScale)
{
    URSA_CHECK(rateScale_ > 0.0, "workload.trace",
               "trace replay with a non-positive rate scale");
}

void
TraceReplayClient::start(sim::SimTime at)
{
    if (trace_.entries.empty())
        return;
    running_ = true;
    scheduleEntry(0, at);
}

void
TraceReplayClient::scheduleEntry(std::size_t idx, sim::SimTime base)
{
    const TraceEntry &e = trace_.entries[idx];
    const sim::SimTime when =
        base + static_cast<sim::SimTime>(
                   static_cast<double>(e.at) / rateScale_);
    cluster_.events().schedule(
        std::max(when, cluster_.events().now()), [this, idx, base] {
            if (!running_)
                return;
            cluster_.submit(trace_.entries[idx].classId);
            ++submitted_;
            if (idx + 1 < trace_.entries.size()) {
                scheduleEntry(idx + 1, base);
            } else if (loop_) {
                const sim::SimTime span = static_cast<sim::SimTime>(
                    static_cast<double>(trace_.duration()) / rateScale_);
                scheduleEntry(0, base + span);
            }
        });
}

} // namespace ursa::workload
