#include "workload/trace.h"

#include "check/check.h"
#include "sim/time.h"
#include "sim/types.h"
#include "stats/rng.h"

#include <algorithm>
#include <cmath>

namespace ursa::workload
{

std::size_t
ArrivalTrace::countOf(sim::ClassId c) const
{
    std::size_t n = 0;
    for (const TraceEntry &e : entries)
        if (e.classId == c)
            ++n;
    return n;
}

double
ArrivalTrace::meanRate() const
{
    // Guard exactly where the estimator is undefined: duration() == 0.
    // A single-entry trace with a positive timestamp has a well-defined
    // rate (1 arrival over its duration) and must not report 0.
    if (duration() == 0)
        return 0.0;
    return static_cast<double>(entries.size()) / sim::toSec(duration());
}

std::vector<double>
ArrivalTrace::classMix() const
{
    sim::ClassId maxClass = 0;
    for (const TraceEntry &e : entries)
        maxClass = std::max(maxClass, e.classId);
    std::vector<double> mix(entries.empty() ? 0 : maxClass + 1, 0.0);
    for (const TraceEntry &e : entries)
        mix[static_cast<std::size_t>(e.classId)] += 1.0;
    for (double &w : mix)
        w /= static_cast<double>(entries.size());
    return mix;
}

ArrivalTrace
makePoissonTrace(stats::Rng &rng, sim::SimTime duration, double rps,
                 const std::vector<double> &classWeights)
{
    URSA_CHECK(rps > 0.0, "workload.trace",
               "Poisson trace with a non-positive rate");
    ArrivalTrace trace;
    const double meanGapUs = 1e6 / rps;
    // Accumulate gaps in floating point and round once per arrival:
    // rounding errors do not compound, so the realized rate stays
    // unbiased. The strictly-increasing bump only fires when two
    // arrivals round onto the same microsecond, and the accumulator
    // (not the bumped clock) stays authoritative afterwards.
    double tExact = 0.0;
    sim::SimTime t = 0;
    while (true) {
        tExact += rng.exponential(meanGapUs);
        t = std::max(t + 1, static_cast<sim::SimTime>(std::llround(tExact)));
        if (t > duration)
            break;
        trace.entries.push_back(
            {t, static_cast<sim::ClassId>(rng.weightedChoice(classWeights))});
    }
    return trace;
}

ArrivalTrace
scaleTrace(const ArrivalTrace &trace, double factor)
{
    URSA_CHECK(factor > 0.0, "workload.trace",
               "trace scaling with a non-positive factor");
    ArrivalTrace out;
    out.entries.reserve(trace.entries.size());
    sim::SimTime prev = 0;
    for (const TraceEntry &e : trace.entries) {
        const sim::SimTime at = std::max(
            prev, static_cast<sim::SimTime>(
                      std::llround(static_cast<double>(e.at) / factor)));
        out.entries.push_back({at, e.classId});
        prev = at;
    }
    return out;
}

} // namespace ursa::workload
