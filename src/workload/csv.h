/**
 * @file
 * CSV trace files, WorkloadCompactor style: one arrival per line,
 * `arrival_time_us,class`. Real traces can be loaded, saved, and
 * round-tripped deterministically — a parsed trace written back out
 * is byte-identical. Parsing is strict: the first malformed line
 * stops the load and is reported with its line number, text, and a
 * reason, so a corrupt multi-gigabyte production trace fails loudly
 * at the bad byte instead of silently skewing an experiment.
 *
 * Schema:
 *   - optional header line, exactly "arrival_time_us,class";
 *   - blank lines and lines starting with '#' are skipped;
 *   - data lines are `<int64>,<int>` with no spaces: a nonnegative
 *     microsecond timestamp (nondecreasing across the file) and a
 *     nonnegative request-class id.
 */

#ifndef URSA_WORKLOAD_CSV_H
#define URSA_WORKLOAD_CSV_H

#include "workload/trace.h"

#include <iosfwd>
#include <optional>
#include <string>

namespace ursa::workload
{

/** Where and why a CSV load failed. */
struct CsvError
{
    std::size_t line = 0; ///< 1-based line number (0: file-level error)
    std::string text;     ///< offending line, verbatim (may be empty)
    std::string message;  ///< what was wrong

    /** "line 12: 'abc,0': arrival time is not an integer" */
    std::string format() const;
};

/** The canonical header line (written by writeTraceCsv). */
inline constexpr char kTraceCsvHeader[] = "arrival_time_us,class";

/**
 * Parse a CSV trace from a stream. On success returns the trace; on
 * the first malformed line returns nullopt and fills *error (when
 * non-null).
 */
std::optional<ArrivalTrace> parseTraceCsv(std::istream &in,
                                          CsvError *error = nullptr);

/** Parse a CSV trace held in a string. */
std::optional<ArrivalTrace> parseTraceCsvString(const std::string &text,
                                                CsvError *error = nullptr);

/**
 * Load a CSV trace from a file. A missing/unreadable file reports a
 * file-level error (line 0).
 */
std::optional<ArrivalTrace> loadTraceCsv(const std::string &path,
                                         CsvError *error = nullptr);

/** Write a trace as CSV (header + one line per arrival). */
void writeTraceCsv(std::ostream &out, const ArrivalTrace &trace);

/** Write a trace to a file; false (with *error filled) on I/O failure. */
bool saveTraceCsv(const std::string &path, const ArrivalTrace &trace,
                  CsvError *error = nullptr);

} // namespace ursa::workload

#endif // URSA_WORKLOAD_CSV_H
