#include "workload/arrival_curve.h"

#include "check/check.h"
#include "sim/time.h"
#include "sim/types.h"
#include "stats/rng.h"
#include "workload/trace.h"

#include <algorithm>
#include <limits>

namespace ursa::workload
{

std::vector<RbSegment>
ArrivalCurve::rb() const
{
    std::vector<RbSegment> segs;
    if (points.empty())
        return segs;
    if (points.size() == 1) {
        const double r = 1e6 * static_cast<double>(points[0].maxArrivals) /
                         static_cast<double>(points[0].window);
        segs.push_back({r, 0.0});
        return segs;
    }
    for (std::size_t i = 0; i + 1 < points.size(); ++i) {
        const double dw =
            static_cast<double>(points[i + 1].window - points[i].window);
        const double dc = static_cast<double>(points[i + 1].maxArrivals) -
                          static_cast<double>(points[i].maxArrivals);
        const double ratePerUs = dc / dw;
        const double b = static_cast<double>(points[i].maxArrivals) -
                         ratePerUs * static_cast<double>(points[i].window);
        segs.push_back({1e6 * ratePerUs, b});
    }
    return segs;
}

double
ArrivalCurve::sustainedRate() const
{
    const auto segs = rb();
    return segs.empty() ? 0.0 : segs.back().ratePerSec;
}

double
ArrivalCurve::maxBurst() const
{
    double b = 0.0;
    for (const RbSegment &s : rb())
        b = std::max(b, s.burst);
    return b;
}

std::vector<sim::SimTime>
defaultCurveWindows()
{
    return {sim::kMsec,      10 * sim::kMsec, 100 * sim::kMsec,
            sim::kSec,       10 * sim::kSec,  sim::kMin};
}

ArrivalCurve
extractCurve(const ArrivalTrace &trace,
             const std::vector<sim::SimTime> &windows)
{
    std::vector<sim::SimTime> ws = windows;
    std::sort(ws.begin(), ws.end());
    ws.erase(std::unique(ws.begin(), ws.end()), ws.end());
    URSA_CHECK(ws.empty() || ws.front() > 0, "workload.arrival_curve",
               "arrival-curve window must be positive");

    ArrivalCurve curve;
    curve.points.reserve(ws.size());
    const auto &es = trace.entries;
    for (const sim::SimTime w : ws) {
        // Max count in any half-open (t, t+w]: anchor the window's
        // right edge at each arrival j and slide the left pointer.
        std::uint64_t best = 0;
        std::size_t i = 0;
        for (std::size_t j = 0; j < es.size(); ++j) {
            while (es[i].at <= es[j].at - w)
                ++i;
            best = std::max(best, static_cast<std::uint64_t>(j - i + 1));
        }
        curve.points.push_back({w, best});
    }
    return curve;
}

ArrivalCurve
extractCurve(const ArrivalTrace &trace)
{
    return extractCurve(trace, defaultCurveWindows());
}

ArrivalTrace
synthesizeFromCurve(const ArrivalCurve &curve, sim::SimTime duration,
                    stats::Rng &rng,
                    const std::vector<double> &classWeights)
{
    URSA_CHECK(!curve.points.empty(), "workload.arrival_curve",
               "re-synthesis from an empty arrival curve");
    ArrivalTrace trace;
    for (const CurvePoint &p : curve.points)
        if (p.maxArrivals == 0)
            return trace; // some window admits no arrivals at all

    std::vector<sim::SimTime> times;
    sim::SimTime t = 0;
    while (true) {
        // Earliest strictly-later microsecond at which adding an
        // arrival keeps every (window, maxArrivals) constraint: the
        // c-th most recent arrival must have left the window, i.e.
        // t >= times[n - c] + w.
        sim::SimTime next = t + 1;
        const std::size_t n = times.size();
        for (const CurvePoint &p : curve.points) {
            if (n >= p.maxArrivals) {
                const sim::SimTime bound =
                    times[n - static_cast<std::size_t>(p.maxArrivals)] +
                    p.window;
                next = std::max(next, bound);
            }
        }
        if (next > duration)
            break;
        times.push_back(next);
        t = next;
    }
    trace.entries.reserve(times.size());
    for (const sim::SimTime at : times)
        trace.entries.push_back(
            {at,
             static_cast<sim::ClassId>(rng.weightedChoice(classWeights))});
    return trace;
}

} // namespace ursa::workload
