/**
 * @file
 * Empirical arrival curves, WorkloadCompactor style. An arrival curve
 * is the tight upper envelope of a trace's burstiness: for each
 * window size w, the maximum number of arrivals observed in any
 * half-open interval (t, t+w]. Consecutive points induce the (r, b)
 * rate-burst token-bucket segments that network calculus uses: over
 * any span the trace admits at most b + r*span arrivals. Curves are a
 * compact summary of a workload's burst structure — and enough to
 * re-synthesize a trace with the same structure (synthesizeFromCurve),
 * which together with scaleTrace makes "this trace, 100x" a one-liner.
 */

#ifndef URSA_WORKLOAD_ARRIVAL_CURVE_H
#define URSA_WORKLOAD_ARRIVAL_CURVE_H

#include "sim/time.h"
#include "stats/rng.h"
#include "workload/trace.h"

#include <cstdint>
#include <vector>

namespace ursa::workload
{

/** One curve point: at most `maxArrivals` in any window this long. */
struct CurvePoint
{
    sim::SimTime window;       ///< window length (us), > 0
    std::uint64_t maxArrivals; ///< max arrivals in any such window

    friend bool operator==(const CurvePoint &a, const CurvePoint &b)
    {
        return a.window == b.window && a.maxArrivals == b.maxArrivals;
    }
};

/** One (r, b) token-bucket segment of the envelope. */
struct RbSegment
{
    double ratePerSec; ///< r: sustained rate over this window range
    double burst;      ///< b: extrapolated burst allowance at w = 0
};

/**
 * The empirical arrival curve of a trace over a fixed set of windows.
 * Points are sorted by window; maxArrivals is nondecreasing in the
 * window length by construction.
 */
struct ArrivalCurve
{
    std::vector<CurvePoint> points;

    /**
     * (r, b) segments between consecutive points: segment i has
     * r = delta(maxArrivals) / delta(window) and b chosen so the line
     * passes through point i. A single-point curve yields one segment
     * with r = maxArrivals/window and b = 0.
     */
    std::vector<RbSegment> rb() const;

    /** Sustained rate (req/s) of the last (widest-window) segment. */
    double sustainedRate() const;

    /** Largest burst allowance over all segments. */
    double maxBurst() const;
};

/** Default window ladder: 1ms, 10ms, 100ms, 1s, 10s, 1min. */
std::vector<sim::SimTime> defaultCurveWindows();

/**
 * Extract the empirical curve of `trace` over the given windows
 * (deduplicated and sorted; each must be > 0). O(entries x windows)
 * by a sliding two-pointer per window.
 */
ArrivalCurve extractCurve(const ArrivalTrace &trace,
                          const std::vector<sim::SimTime> &windows);

/** Extract over defaultCurveWindows(). */
ArrivalCurve extractCurve(const ArrivalTrace &trace);

/**
 * Re-synthesize a trace from a curve: greedy earliest-feasible
 * placement emits each next arrival at the first microsecond that
 * violates no curve constraint, so the result saturates the envelope
 * — its own empirical curve matches the source curve from above
 * (never exceeds it) and from below (reaches it at every window the
 * greedy schedule can saturate). Timestamps are strictly increasing;
 * classes are drawn from `classWeights` with `rng` (pass the source
 * trace's classMix() to preserve the mix). Deterministic given the
 * rng seed.
 */
ArrivalTrace synthesizeFromCurve(const ArrivalCurve &curve,
                                 sim::SimTime duration, stats::Rng &rng,
                                 const std::vector<double> &classWeights);

} // namespace ursa::workload

#endif // URSA_WORKLOAD_ARRIVAL_CURVE_H
