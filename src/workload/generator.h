/**
 * @file
 * Pluggable workload generators: one interface, many generators, in
 * the style of codes-workload. A Generator is a pull-based stream of
 * arrivals (time + request class); GeneratorClient drives any of them
 * into a cluster. The synthetic profiles of workload/arrival.h plug in
 * through ProfileGenerator, recorded traces through TraceGenerator,
 * and arrival-curve re-synthesis through workload/arrival_curve.h —
 * all replayable by the same client, and all recordable into an
 * ArrivalTrace with recordTrace().
 */

#ifndef URSA_WORKLOAD_GENERATOR_H
#define URSA_WORKLOAD_GENERATOR_H

#include "sim/client.h"
#include "sim/cluster.h"
#include "sim/time.h"
#include "sim/types.h"
#include "stats/rng.h"
#include "workload/trace.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

namespace ursa::workload
{

/**
 * A deterministic arrival stream. Implementations yield arrivals with
 * nondecreasing absolute times (us from the replay origin); nullopt
 * marks the end of a finite stream. reset() rewinds to the first
 * arrival and must reproduce the identical stream — replay is how the
 * whole reproduction stays bit-for-bit deterministic.
 */
class Generator
{
  public:
    virtual ~Generator() = default;

    /** Generator kind, for logs and demos (e.g. "poisson-profile"). */
    virtual const char *name() const = 0;

    /** Rewind to the first arrival (idempotent, deterministic). */
    virtual void reset() = 0;

    /** Next arrival, or nullopt once the stream is exhausted. */
    virtual std::optional<TraceEntry> next() = 0;
};

/**
 * Poisson arrivals whose rate follows a RateProfile (constant,
 * diurnal, burst, ... — workload/arrival.h) and whose classes follow
 * a ClassPicker. The stream is infinite unless the profile stays at
 * zero for kMaxIdleScan of simulated time, which ends it. Gaps are
 * accumulated in floating point before rounding to the microsecond
 * clock, so the realized rate is unbiased; like OpenLoopClient, a
 * time-varying rate is sampled at the previous arrival (exact for
 * piecewise-constant profiles, a first-order approximation for
 * continuously varying ones).
 */
class ProfileGenerator final : public Generator
{
  public:
    ProfileGenerator(sim::RateProfile rate, sim::ClassPicker picker,
                     std::uint64_t seed);

    const char *name() const override { return "poisson-profile"; }
    void reset() override;
    std::optional<TraceEntry> next() override;

    /** Idle span after which a zero-rate profile counts as ended. */
    static constexpr sim::SimTime kMaxIdleScan = 30L * 24 * sim::kHour;

  private:
    sim::RateProfile rate_;
    sim::ClassPicker picker_;
    std::uint64_t seed_;
    stats::Rng rng_;
    double tExact_ = 0.0;
    sim::SimTime t_ = 0;
};

/**
 * Replays a recorded ArrivalTrace, optionally looping and rate
 * scaling (rateScale > 1 compresses time). When looping, cycle k
 * starts at k * span where span is the scaled trace duration, so a
 * trace whose first arrival sits one mean gap from the origin loops
 * with no rate glitch at the seam.
 */
class TraceGenerator final : public Generator
{
  public:
    TraceGenerator(ArrivalTrace trace, bool loop = false,
                   double rateScale = 1.0);

    const char *name() const override { return "trace-replay"; }
    void reset() override;
    std::optional<TraceEntry> next() override;

    const ArrivalTrace &trace() const { return trace_; }

  private:
    ArrivalTrace trace_;
    bool loop_;
    double rateScale_;
    sim::SimTime span_;
    std::size_t idx_ = 0;
    std::uint64_t cycle_ = 0;
};

/**
 * Materialize a generator's stream up to `until` (inclusive) into an
 * ArrivalTrace. Resets the generator first.
 */
ArrivalTrace recordTrace(Generator &gen, sim::SimTime until);

/**
 * Drives any Generator into a cluster. start() resets the generator
 * and begins submitting its arrivals relative to the start time;
 * stop() halts; start() again replays from the beginning. Callbacks
 * from a superseded run are invalidated by a generation counter, so
 * stop()+start() never double-submits (the scheduled callback of the
 * old chain still fires, sees a stale generation, and dies).
 */
class GeneratorClient
{
  public:
    GeneratorClient(sim::Cluster &cluster, std::unique_ptr<Generator> gen);

    /** Begin replay at absolute time `at`. */
    void start(sim::SimTime at = 0);

    /** Stop issuing new arrivals. */
    void stop() { running_ = false; }

    /** Requests submitted so far (across all starts). */
    std::uint64_t submitted() const { return submitted_; }

    Generator &generator() { return *gen_; }

  private:
    void scheduleNext(sim::SimTime base);

    sim::Cluster &cluster_;
    std::unique_ptr<Generator> gen_;
    bool running_ = false;
    std::uint64_t generation_ = 0;
    std::uint64_t submitted_ = 0;
};

/**
 * Replays a trace into a cluster: a GeneratorClient over a
 * TraceGenerator, kept as a named convenience for the common case.
 */
class TraceReplayClient
{
  public:
    /**
     * @param loop When true, the trace restarts after its last entry.
     * @param rateScale >1 compresses time (higher load), <1 stretches.
     */
    TraceReplayClient(sim::Cluster &cluster, ArrivalTrace trace,
                      bool loop = false, double rateScale = 1.0)
        : client_(cluster, std::make_unique<TraceGenerator>(
                               std::move(trace), loop, rateScale))
    {
    }

    /** Begin replay at absolute time `at`. */
    void start(sim::SimTime at = 0) { client_.start(at); }

    /** Stop issuing new arrivals. */
    void stop() { client_.stop(); }

    /** Requests submitted so far. */
    std::uint64_t submitted() const { return client_.submitted(); }

  private:
    GeneratorClient client_;
};

} // namespace ursa::workload

#endif // URSA_WORKLOAD_GENERATOR_H
