#include "workload/generator.h"

#include "check/check.h"
#include "sim/client.h"
#include "sim/cluster.h"
#include "sim/time.h"
#include "stats/rng.h"
#include "workload/trace.h"

#include <algorithm>
#include <cmath>

namespace ursa::workload
{

ProfileGenerator::ProfileGenerator(sim::RateProfile rate,
                                   sim::ClassPicker picker,
                                   std::uint64_t seed)
    : rate_(std::move(rate)), picker_(std::move(picker)), seed_(seed),
      rng_(seed)
{
}

void
ProfileGenerator::reset()
{
    rng_ = stats::Rng(seed_);
    tExact_ = 0.0;
    t_ = 0;
}

std::optional<TraceEntry>
ProfileGenerator::next()
{
    // Skip idle spans (zero rate) in 1-second probes, like
    // OpenLoopClient's idle re-check; a profile that stays at zero for
    // kMaxIdleScan ends the stream instead of spinning forever.
    sim::SimTime probe = t_;
    double rps = rate_(probe);
    while (rps <= 0.0) {
        probe += sim::kSec;
        if (probe - t_ > kMaxIdleScan)
            return std::nullopt;
        rps = rate_(probe);
    }
    tExact_ = std::max(tExact_, static_cast<double>(probe));
    tExact_ += rng_.exponential(1e6 / rps);
    t_ = std::max(t_ + 1,
                  static_cast<sim::SimTime>(std::llround(tExact_)));
    return TraceEntry{t_, picker_(rng_, t_)};
}

TraceGenerator::TraceGenerator(ArrivalTrace trace, bool loop,
                               double rateScale)
    : trace_(std::move(trace)), loop_(loop), rateScale_(rateScale),
      span_(static_cast<sim::SimTime>(
          static_cast<double>(trace_.duration()) / rateScale_))
{
    URSA_CHECK(rateScale_ > 0.0, "workload.generator",
               "trace replay with a non-positive rate scale");
}

void
TraceGenerator::reset()
{
    idx_ = 0;
    cycle_ = 0;
}

std::optional<TraceEntry>
TraceGenerator::next()
{
    if (trace_.entries.empty())
        return std::nullopt;
    if (idx_ == trace_.entries.size()) {
        if (!loop_ || span_ == 0)
            return std::nullopt;
        idx_ = 0;
        ++cycle_;
    }
    const TraceEntry &e = trace_.entries[idx_++];
    const sim::SimTime at =
        static_cast<sim::SimTime>(cycle_) * span_ +
        static_cast<sim::SimTime>(static_cast<double>(e.at) / rateScale_);
    return TraceEntry{at, e.classId};
}

ArrivalTrace
recordTrace(Generator &gen, sim::SimTime until)
{
    gen.reset();
    ArrivalTrace trace;
    while (auto e = gen.next()) {
        if (e->at > until)
            break;
        trace.entries.push_back(*e);
    }
    return trace;
}

GeneratorClient::GeneratorClient(sim::Cluster &cluster,
                                 std::unique_ptr<Generator> gen)
    : cluster_(cluster), gen_(std::move(gen))
{
    URSA_CHECK(gen_ != nullptr, "workload.generator",
               "generator client without a generator");
}

void
GeneratorClient::start(sim::SimTime at)
{
    // Invalidate callbacks still queued from any previous run before
    // the new chain starts; without this, a stale callback would see
    // running_ == true again and resume alongside the new chain,
    // double-submitting every arrival.
    ++generation_;
    gen_->reset();
    running_ = true;
    scheduleNext(at);
}

void
GeneratorClient::scheduleNext(sim::SimTime base)
{
    const auto e = gen_->next();
    if (!e) {
        running_ = false;
        return;
    }
    const std::uint64_t gen = generation_;
    cluster_.events().schedule(
        std::max(base + e->at, cluster_.events().now()),
        [this, gen, base, c = e->classId] {
            if (!running_ || gen != generation_)
                return;
            cluster_.submit(c);
            ++submitted_;
            scheduleNext(base);
        });
}

} // namespace ursa::workload
