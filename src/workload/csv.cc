#include "workload/csv.h"

#include "sim/time.h"
#include "sim/types.h"
#include "workload/trace.h"

#include <charconv>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace ursa::workload
{

namespace
{

void
setError(CsvError *error, std::size_t line, std::string text,
         std::string message)
{
    if (!error)
        return;
    error->line = line;
    error->text = std::move(text);
    error->message = std::move(message);
}

/** Parse a strictly-decimal nonnegative integer filling the view. */
template <typename Int>
bool
parseField(std::string_view field, Int &out)
{
    if (field.empty())
        return false;
    // from_chars accepts a leading '-'; the schema does not.
    if (field.front() == '-' || field.front() == '+')
        return false;
    const char *end = field.data() + field.size();
    const auto res = std::from_chars(field.data(), end, out, 10);
    return res.ec == std::errc{} && res.ptr == end;
}

} // namespace

std::string
CsvError::format() const
{
    std::ostringstream os;
    if (line == 0)
        os << message;
    else
        os << "line " << line << ": '" << text << "': " << message;
    return os.str();
}

std::optional<ArrivalTrace>
parseTraceCsv(std::istream &in, CsvError *error)
{
    ArrivalTrace trace;
    std::string line;
    std::size_t lineNo = 0;
    bool sawData = false;
    sim::SimTime prev = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        std::string_view v(line);
        if (!v.empty() && v.back() == '\r')
            v.remove_suffix(1);
        if (v.empty() || v.front() == '#')
            continue;
        if (!sawData && v == kTraceCsvHeader)
            continue;
        sawData = true;

        const std::size_t comma = v.find(',');
        if (comma == std::string_view::npos) {
            setError(error, lineNo, line, "expected 'arrival_time_us,class'");
            return std::nullopt;
        }
        if (v.find(',', comma + 1) != std::string_view::npos) {
            setError(error, lineNo, line, "more than two fields");
            return std::nullopt;
        }
        sim::SimTime at = 0;
        if (!parseField(v.substr(0, comma), at)) {
            setError(error, lineNo, line,
                     "arrival time is not a nonnegative integer");
            return std::nullopt;
        }
        sim::ClassId cls = 0;
        if (!parseField(v.substr(comma + 1), cls)) {
            setError(error, lineNo, line,
                     "class is not a nonnegative integer");
            return std::nullopt;
        }
        if (at < prev) {
            setError(error, lineNo, line,
                     "arrival times must be nondecreasing");
            return std::nullopt;
        }
        prev = at;
        trace.entries.push_back({at, cls});
    }
    if (in.bad()) {
        setError(error, 0, "", "I/O error while reading trace");
        return std::nullopt;
    }
    return trace;
}

std::optional<ArrivalTrace>
parseTraceCsvString(const std::string &text, CsvError *error)
{
    std::istringstream in(text);
    return parseTraceCsv(in, error);
}

std::optional<ArrivalTrace>
loadTraceCsv(const std::string &path, CsvError *error)
{
    std::ifstream in(path);
    if (!in.is_open()) {
        setError(error, 0, "", "cannot open trace file: " + path);
        return std::nullopt;
    }
    return parseTraceCsv(in, error);
}

void
writeTraceCsv(std::ostream &out, const ArrivalTrace &trace)
{
    out << kTraceCsvHeader << '\n';
    for (const TraceEntry &e : trace.entries)
        out << e.at << ',' << e.classId << '\n';
}

bool
saveTraceCsv(const std::string &path, const ArrivalTrace &trace,
             CsvError *error)
{
    std::ofstream out(path);
    if (!out.is_open()) {
        setError(error, 0, "", "cannot create trace file: " + path);
        return false;
    }
    writeTraceCsv(out, trace);
    out.flush();
    if (!out) {
        setError(error, 0, "", "I/O error while writing trace: " + path);
        return false;
    }
    return true;
}

} // namespace ursa::workload
