/**
 * @file
 * Arrival-rate profiles for the evaluation loads of paper Sec. VII-E:
 * constant Poisson, diurnal (gradual rise and fall), and burst
 * (sharp +50%..125% steps), plus composition helpers.
 */

#ifndef URSA_WORKLOAD_ARRIVAL_H
#define URSA_WORKLOAD_ARRIVAL_H

#include "sim/client.h"
#include "sim/time.h"

namespace ursa::workload
{

/** Constant rate (requests/second). */
sim::RateProfile constantRate(double rps);

/**
 * Diurnal profile: rises linearly from `baseRps` to `peakRps` over the
 * first half of `period`, then falls back over the second half;
 * repeats.
 */
sim::RateProfile diurnalRate(double baseRps, double peakRps,
                             sim::SimTime period);

/**
 * Burst profile: `baseRps` everywhere except [burstStart,
 * burstStart + burstLen), where the rate is baseRps * (1 + burstFrac).
 * The paper's bursts are 50%..125% (burstFrac 0.5..1.25).
 */
sim::RateProfile burstRate(double baseRps, double burstFrac,
                           sim::SimTime burstStart, sim::SimTime burstLen);

/** Scale another profile by a constant factor. */
sim::RateProfile scaled(sim::RateProfile inner, double factor);

/** Shift another profile in time (t < shift uses the t=0 value). */
sim::RateProfile shifted(sim::RateProfile inner, sim::SimTime shift);

} // namespace ursa::workload

#endif // URSA_WORKLOAD_ARRIVAL_H
