/**
 * @file
 * Arrival traces: a recorded sequence of (time, class) arrivals that
 * can be replayed deterministically. Ursa's exploration (Algorithm 1)
 * "replays the workload trace on the profiled microservice"; these
 * types are that trace. Traces can be synthesized (makePoissonTrace,
 * workload/generator.h), loaded from CSV (workload/csv.h), summarized
 * as an arrival curve and re-synthesized (workload/arrival_curve.h),
 * and rate-scaled in place (scaleTrace).
 */

#ifndef URSA_WORKLOAD_TRACE_H
#define URSA_WORKLOAD_TRACE_H

#include "sim/time.h"
#include "sim/types.h"
#include "stats/rng.h"

#include <vector>

namespace ursa::workload
{

/** One recorded arrival. */
struct TraceEntry
{
    sim::SimTime at;
    sim::ClassId classId;

    friend bool operator==(const TraceEntry &a, const TraceEntry &b)
    {
        return a.at == b.at && a.classId == b.classId;
    }
};

/**
 * A deterministic arrival trace. Entries are ordered by nondecreasing
 * time; synthesized traces keep times strictly increasing, but traces
 * loaded from real systems may carry ties.
 */
struct ArrivalTrace
{
    std::vector<TraceEntry> entries;

    /** Duration from 0 to the last arrival. */
    sim::SimTime duration() const
    {
        return entries.empty() ? 0 : entries.back().at;
    }

    /** Arrivals of a given class. */
    std::size_t countOf(sim::ClassId c) const;

    /**
     * Overall requests/second across the trace, estimated as
     * entries.size() / duration() — the count over the span from the
     * trace origin (t = 0) to the last arrival. Returns 0.0 exactly
     * when duration() is 0 (empty trace, or every arrival at t = 0),
     * the one case where the estimator is undefined.
     */
    double meanRate() const;

    /** Per-class arrival fractions (weights over 0..maxClass). */
    std::vector<double> classMix() const;

    friend bool operator==(const ArrivalTrace &a, const ArrivalTrace &b)
    {
        return a.entries == b.entries;
    }
};

/**
 * Synthesize a Poisson trace of the given duration, total rate, and
 * class mix (weights over class ids 0..n-1). Gaps are drawn in
 * floating point and accumulated before rounding to the integer
 * microsecond clock, so the realized rate tracks `rps` without
 * systematic bias; timestamps are kept strictly increasing, which
 * caps the realizable rate at 1 arrival/us.
 */
ArrivalTrace makePoissonTrace(stats::Rng &rng, sim::SimTime duration,
                              double rps,
                              const std::vector<double> &classWeights);

/**
 * Rate-scale a trace: timestamps become round(at / factor), so
 * factor > 1 compresses time (factor x the rate with the same arrival
 * structure — "this trace x 100" is scaleTrace(t, 100)) and factor < 1
 * stretches it. Class labels are preserved. Compression can round
 * distinct timestamps onto the same microsecond; the result is
 * nondecreasing but not necessarily strictly increasing.
 */
ArrivalTrace scaleTrace(const ArrivalTrace &trace, double factor);

} // namespace ursa::workload

#endif // URSA_WORKLOAD_TRACE_H
