/**
 * @file
 * Arrival traces: a recorded sequence of (time, class) arrivals that
 * can be replayed deterministically. Ursa's exploration (Algorithm 1)
 * "replays the workload trace on the profiled microservice"; these
 * types are that trace.
 */

#ifndef URSA_WORKLOAD_TRACE_H
#define URSA_WORKLOAD_TRACE_H

#include "sim/client.h"
#include "sim/cluster.h"
#include "sim/time.h"
#include "sim/types.h"
#include "stats/rng.h"

#include <vector>

namespace ursa::workload
{

/** One recorded arrival. */
struct TraceEntry
{
    sim::SimTime at;
    sim::ClassId classId;
};

/** A deterministic arrival trace. */
struct ArrivalTrace
{
    std::vector<TraceEntry> entries;

    /** Duration from 0 to the last arrival. */
    sim::SimTime duration() const
    {
        return entries.empty() ? 0 : entries.back().at;
    }

    /** Arrivals of a given class. */
    std::size_t countOf(sim::ClassId c) const;

    /** Overall requests/second across the trace. */
    double meanRate() const;
};

/**
 * Synthesize a Poisson trace of the given duration, total rate, and
 * class mix (weights over class ids 0..n-1).
 */
ArrivalTrace makePoissonTrace(stats::Rng &rng, sim::SimTime duration,
                              double rps,
                              const std::vector<double> &classWeights);

/**
 * Replays a trace into a cluster, optionally looping and scaling the
 * inter-arrival spacing.
 */
class TraceReplayClient
{
  public:
    /**
     * @param loop When true, the trace restarts after its last entry.
     * @param rateScale >1 compresses time (higher load), <1 stretches.
     */
    TraceReplayClient(sim::Cluster &cluster, ArrivalTrace trace,
                      bool loop = false, double rateScale = 1.0);

    /** Begin replay at absolute time `at`. */
    void start(sim::SimTime at = 0);

    /** Stop issuing new arrivals. */
    void stop() { running_ = false; }

    /** Requests submitted so far. */
    std::uint64_t submitted() const { return submitted_; }

  private:
    void scheduleEntry(std::size_t idx, sim::SimTime base);

    sim::Cluster &cluster_;
    ArrivalTrace trace_;
    bool loop_;
    double rateScale_;
    bool running_ = false;
    std::uint64_t submitted_ = 0;
};

} // namespace ursa::workload

#endif // URSA_WORKLOAD_TRACE_H
