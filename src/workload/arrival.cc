#include "workload/arrival.h"

#include <cassert>
#include <utility>

namespace ursa::workload
{

sim::RateProfile
constantRate(double rps)
{
    assert(rps >= 0.0);
    return [rps](sim::SimTime) { return rps; };
}

sim::RateProfile
diurnalRate(double baseRps, double peakRps, sim::SimTime period)
{
    assert(period > 0);
    assert(peakRps >= baseRps);
    return [=](sim::SimTime t) {
        const double phase =
            static_cast<double>(t % period) / static_cast<double>(period);
        const double frac = phase < 0.5 ? phase * 2.0 : (1.0 - phase) * 2.0;
        return baseRps + (peakRps - baseRps) * frac;
    };
}

sim::RateProfile
burstRate(double baseRps, double burstFrac, sim::SimTime burstStart,
          sim::SimTime burstLen)
{
    assert(burstFrac >= 0.0);
    return [=](sim::SimTime t) {
        if (t >= burstStart && t < burstStart + burstLen)
            return baseRps * (1.0 + burstFrac);
        return baseRps;
    };
}

sim::RateProfile
scaled(sim::RateProfile inner, double factor)
{
    return [inner = std::move(inner), factor](sim::SimTime t) {
        return inner(t) * factor;
    };
}

sim::RateProfile
shifted(sim::RateProfile inner, sim::SimTime shift)
{
    return [inner = std::move(inner), shift](sim::SimTime t) {
        return inner(t < shift ? 0 : t - shift);
    };
}

} // namespace ursa::workload
