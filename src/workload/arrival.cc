#include "workload/arrival.h"

#include "check/check.h"
#include "sim/client.h"
#include "sim/time.h"

#include <limits>
#include <utility>

namespace ursa::workload
{

sim::RateProfile
constantRate(double rps)
{
    URSA_CHECK(rps >= 0.0, "workload.arrival",
               "constant rate must be non-negative");
    return [rps](sim::SimTime) { return rps; };
}

sim::RateProfile
diurnalRate(double baseRps, double peakRps, sim::SimTime period)
{
    URSA_CHECK(period > 0, "workload.arrival",
               "diurnal profile with a non-positive period");
    URSA_CHECK(peakRps >= baseRps, "workload.arrival",
               "diurnal peak below base rate");
    return [=](sim::SimTime t) {
        const double phase =
            static_cast<double>(t % period) / static_cast<double>(period);
        const double frac = phase < 0.5 ? phase * 2.0 : (1.0 - phase) * 2.0;
        return baseRps + (peakRps - baseRps) * frac;
    };
}

sim::RateProfile
burstRate(double baseRps, double burstFrac, sim::SimTime burstStart,
          sim::SimTime burstLen)
{
    URSA_CHECK(burstFrac >= 0.0, "workload.arrival",
               "burst profile with a negative burst fraction");
    URSA_CHECK(burstStart >= 0, "workload.arrival",
               "burst profile with a negative burst start");
    URSA_CHECK(burstLen >= 0, "workload.arrival",
               "burst profile with a negative burst length");
    URSA_CHECK(burstLen <=
                   std::numeric_limits<sim::SimTime>::max() - burstStart,
               "workload.arrival",
               "burst window end overflows the simulation clock");
    return [=](sim::SimTime t) {
        if (t >= burstStart && t < burstStart + burstLen)
            return baseRps * (1.0 + burstFrac);
        return baseRps;
    };
}

sim::RateProfile
scaled(sim::RateProfile inner, double factor)
{
    return [inner = std::move(inner), factor](sim::SimTime t) {
        return inner(t) * factor;
    };
}

sim::RateProfile
shifted(sim::RateProfile inner, sim::SimTime shift)
{
    URSA_CHECK(shift >= 0, "workload.arrival",
               "profile shifted by a negative offset");
    return [inner = std::move(inner), shift](sim::SimTime t) {
        return inner(t < shift ? 0 : t - shift);
    };
}

} // namespace ursa::workload
