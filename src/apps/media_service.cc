/**
 * @file
 * The re-implemented media service of paper Sec. VI: video reviews and
 * ratings plus actual video upload/download and MQ-fed FFmpeg-style
 * transcode / thumbnail stages. SLAs follow Table III verbatim.
 *
 *   frontend -> video-store                 (upload / download video)
 *   frontend -> video-info                  (get-info)
 *   frontend -> rating -> video-info        (rate-video)
 *   frontend -> video-store ~~MQ~~> transcode    (transcode-video)
 *   frontend -> video-store ~~MQ~~> thumbnail    (generate-thumbnail)
 */

#include "apps/app.h"

#include "spec/app_spec.h"
#include "sim/time.h"
#include "sim/types.h"

namespace ursa::apps
{

namespace
{

sim::ClassBehavior
work(double meanUs, double cv = 0.35)
{
    sim::ClassBehavior b;
    b.computeMeanUs = meanUs;
    b.computeCv = cv;
    return b;
}

} // namespace

AppSpec
makeMediaService()
{
    using sim::CallKind;
    AppSpec app;
    app.name = "media-service";
    app.nominalRps = 150.0;
    app.representative = {"video-store", "video-info", "transcode",
                          "rating"};

    enum ClassIds
    {
        kUploadVideo = 0,
        kDownloadVideo,
        kGetInfo,
        kRateVideo,
        kTranscode,
        kThumbnail,
    };
    auto addClass = [&](const std::string &name, double targetMs,
                        bool async) {
        sim::RequestClassSpec spec;
        spec.name = name;
        spec.rootService = "frontend";
        spec.sla = {99.0, sim::fromMs(targetMs)};
        spec.asyncCompletion = async;
        app.classes.push_back(spec);
    };
    addClass("upload-video", 2000.0, false);
    addClass("download-video", 1500.0, false);
    addClass("get-info", 250.0, false);
    addClass("rate-video", 400.0, false);
    addClass("transcode-video", 40000.0, true);
    addClass("generate-thumbnail", 2000.0, true);

    sim::ServiceConfig frontend;
    frontend.name = "frontend";
    frontend.threads = 256;
    frontend.daemonThreads = 64;
    frontend.cpuPerReplica = 2.0;
    frontend.initialReplicas = 2;
    {
        auto fe = [&](std::vector<sim::CallSpec> calls) {
            sim::ClassBehavior b = work(1000.0, 0.3);
            b.calls = std::move(calls);
            return b;
        };
        frontend.behaviors[kUploadVideo] =
            fe({{"video-store", CallKind::NestedRpc}});
        frontend.behaviors[kDownloadVideo] =
            fe({{"video-store", CallKind::NestedRpc}});
        frontend.behaviors[kGetInfo] =
            fe({{"video-info", CallKind::NestedRpc}});
        frontend.behaviors[kRateVideo] =
            fe({{"rating", CallKind::NestedRpc}});
        frontend.behaviors[kTranscode] =
            fe({{"video-store", CallKind::NestedRpc},
                {"transcode", CallKind::MqPublish}});
        frontend.behaviors[kThumbnail] =
            fe({{"video-store", CallKind::NestedRpc},
                {"thumbnail", CallKind::MqPublish}});
    }
    app.services.push_back(frontend);

    sim::ServiceConfig videoStore;
    videoStore.name = "video-store";
    videoStore.threads = 48;
    videoStore.cpuPerReplica = 2.0;
    videoStore.initialReplicas = 2;
    videoStore.behaviors[kUploadVideo] = work(400000.0, 0.5);
    videoStore.behaviors[kDownloadVideo] = work(300000.0, 0.5);
    videoStore.behaviors[kTranscode] = work(80000.0, 0.4);
    videoStore.behaviors[kThumbnail] = work(60000.0, 0.4);
    app.services.push_back(videoStore);

    sim::ServiceConfig videoInfo;
    videoInfo.name = "video-info";
    videoInfo.threads = 64;
    videoInfo.cpuPerReplica = 1.0;
    videoInfo.initialReplicas = 2;
    videoInfo.behaviors[kGetInfo] = work(50000.0, 0.5);
    videoInfo.behaviors[kRateVideo] = work(35000.0, 0.5);
    app.services.push_back(videoInfo);

    sim::ServiceConfig rating;
    rating.name = "rating";
    rating.threads = 64;
    rating.cpuPerReplica = 1.0;
    rating.initialReplicas = 1;
    {
        sim::ClassBehavior b = work(50000.0, 0.5);
        b.calls = {{"video-info", CallKind::NestedRpc}};
        rating.behaviors[kRateVideo] = b;
    }
    app.services.push_back(rating);

    sim::ServiceConfig transcode;
    transcode.name = "transcode";
    transcode.threads = 4;
    transcode.cpuPerReplica = 4.0;
    transcode.initialReplicas = 2;
    transcode.mqConsumer = true;
    transcode.behaviors[kTranscode] = work(8000000.0, 0.3);
    app.services.push_back(transcode);

    sim::ServiceConfig thumbnail;
    thumbnail.name = "thumbnail";
    thumbnail.threads = 2; // workers match cores
    thumbnail.cpuPerReplica = 2.0;
    thumbnail.initialReplicas = 1;
    thumbnail.mqConsumer = true;
    thumbnail.behaviors[kThumbnail] = work(400000.0, 0.4);
    app.services.push_back(thumbnail);

    // upload : get-info : download : rate = 1 : 100 : 25 : 25
    // (Sec. VII-C), plus the MQ-backed classes at low rates.
    app.exploreMix = {1.0, 25.0, 100.0, 25.0, 0.5, 2.0};
    return app;
}

} // namespace ursa::apps
