/**
 * @file
 * The Sec.-III backpressure case-study chains: `tiers` identical-work
 * services connected by nested RPC, event-driven RPC, or message
 * queues. Worker pools are graded by depth — client-facing tiers are
 * provisioned for whole-request thread occupancy, deep tiers for their
 * own short work — so the paper's attenuation shape (backpressure
 * strongest at the culprit's parent) emerges under a closed-loop load.
 */

#include "apps/app.h"

#include "spec/app_spec.h"
#include "sim/time.h"
#include "sim/types.h"

#include <algorithm>

namespace ursa::apps
{

AppSpec
makeStudyChain(sim::CallKind kind, int tiers)
{
    AppSpec app;
    app.name = "study-chain";
    app.nominalRps = 120.0;

    // Pool grading: 64, 48, 32, 16, 12, ... (floor 8).
    const int pools[] = {64, 48, 32, 16, 12};
    for (int t = 0; t < tiers; ++t) {
        sim::ServiceConfig cfg;
        cfg.name = "tier" + std::to_string(t + 1);
        cfg.threads =
            t < 5 ? pools[t] : std::max(8, pools[4] - 2 * (t - 4));
        cfg.daemonThreads = cfg.threads;
        cfg.cpuPerReplica = 2.0;
        cfg.initialReplicas = 1;
        cfg.mqConsumer = (kind == sim::CallKind::MqPublish && t > 0);
        sim::ClassBehavior b;
        b.computeMeanUs = 5000.0;
        b.computeCv = 0.15;
        if (t + 1 < tiers)
            b.calls.push_back({"tier" + std::to_string(t + 2), kind});
        cfg.behaviors[0] = b;
        app.services.push_back(cfg);
        app.representative.push_back(cfg.name);
    }

    sim::RequestClassSpec spec;
    spec.name = "chain-request";
    spec.rootService = "tier1";
    spec.sla = {99.0, sim::fromMs(30.0 * tiers)};
    // Both RPC kinds gate the client response on the full chain;
    // only the MQ chain completes asynchronously.
    spec.asyncCompletion = (kind == sim::CallKind::MqPublish);
    app.classes.push_back(spec);
    app.exploreMix = {1.0};
    return app;
}

} // namespace ursa::apps
