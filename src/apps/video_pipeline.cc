/**
 * @file
 * The video processing pipeline of paper Sec. VI: three MQ-connected
 * stages (FFmpeg metadata extraction, FFmpeg snapshots, OpenCV face
 * recognition) and two request priorities. High-priority requests are
 * dequeued strictly first; low-priority requests run only when no
 * high-priority work waits. SLAs follow Table IV: p99 <= 20 s (high),
 * p50 <= 4 s (low).
 */

#include "apps/app.h"

#include "spec/app_spec.h"
#include "sim/time.h"
#include "sim/types.h"

namespace ursa::apps
{

AppSpec
makeVideoPipeline(double highFrac)
{
    using sim::CallKind;
    AppSpec app;
    app.name = "video-pipeline";
    app.nominalRps = 6.0;
    app.representative = {"vp-metadata", "vp-snapshot", "vp-facerec"};

    enum ClassIds
    {
        kHigh = 0,
        kLow,
    };
    {
        sim::RequestClassSpec high;
        high.name = "high-priority";
        high.rootService = "vp-frontend";
        high.priority = 0;
        high.sla = {99.0, sim::fromMs(20000.0)};
        high.asyncCompletion = true;
        app.classes.push_back(high);

        sim::RequestClassSpec low;
        low.name = "low-priority";
        low.rootService = "vp-frontend";
        low.priority = 1;
        low.sla = {50.0, sim::fromMs(4000.0)};
        low.asyncCompletion = true;
        app.classes.push_back(low);
    }

    auto stageBehavior = [](double meanUs, double cv,
                            std::vector<sim::CallSpec> calls) {
        sim::ClassBehavior b;
        b.computeMeanUs = meanUs;
        b.computeCv = cv;
        b.calls = std::move(calls);
        return b;
    };

    sim::ServiceConfig frontend;
    frontend.name = "vp-frontend";
    frontend.threads = 64;
    frontend.daemonThreads = 16;
    frontend.cpuPerReplica = 1.0;
    frontend.initialReplicas = 1;
    for (int c : {kHigh, kLow}) {
        frontend.behaviors[c] = stageBehavior(
            5000.0, 0.3, {{"vp-metadata", CallKind::MqPublish}});
    }
    app.services.push_back(frontend);

    sim::ServiceConfig metadata;
    metadata.name = "vp-metadata";
    metadata.threads = 1; // workers match cores: no PS slowdown
    metadata.cpuPerReplica = 1.0;
    metadata.initialReplicas = 2;
    metadata.mqConsumer = true;
    for (int c : {kHigh, kLow}) {
        metadata.behaviors[c] = stageBehavior(
            200000.0, 0.3, {{"vp-snapshot", CallKind::MqPublish}});
    }
    app.services.push_back(metadata);

    sim::ServiceConfig snapshot;
    snapshot.name = "vp-snapshot";
    snapshot.threads = 2;
    snapshot.cpuPerReplica = 2.0;
    snapshot.initialReplicas = 3;
    snapshot.mqConsumer = true;
    for (int c : {kHigh, kLow}) {
        snapshot.behaviors[c] = stageBehavior(
            800000.0, 0.3, {{"vp-facerec", CallKind::MqPublish}});
    }
    app.services.push_back(snapshot);

    sim::ServiceConfig facerec;
    facerec.name = "vp-facerec";
    facerec.threads = 4;
    facerec.cpuPerReplica = 4.0;
    facerec.initialReplicas = 4;
    facerec.mqConsumer = true;
    for (int c : {kHigh, kLow})
        facerec.behaviors[c] = stageBehavior(2000000.0, 0.3, {});
    app.services.push_back(facerec);

    app.exploreMix = {highFrac, 1.0 - highFrac};
    return app;
}

} // namespace ursa::apps
