/**
 * @file
 * The re-implemented social network of paper Sec. VI.
 *
 * Topology (RPC unless noted):
 *
 *   frontend -> post-storage            (post / comment writes+reads)
 *   frontend -> timeline-read -> social-graph, post-storage x2
 *   frontend -> timeline-update -> social-graph, post-storage
 *   frontend -> image-store             (image upload / download)
 *   frontend ~~MQ~~> sentiment          (text ML, 60 ms class)
 *   frontend ~~MQ~~> object-detect      (DETR-scale ML, 800 ms class)
 *
 * Compute means are the Hugging-Face / text-op stand-ins: light text
 * processing is ~ms, sentiment ~60 ms, object detection ~800 ms.
 * SLAs follow Table II verbatim.
 */

#include "apps/app.h"

#include "spec/app_spec.h"
#include "sim/time.h"
#include "sim/types.h"

namespace ursa::apps
{

namespace
{

sim::ClassBehavior
leafCompute(double meanUs, double cv = 0.35)
{
    sim::ClassBehavior b;
    b.computeMeanUs = meanUs;
    b.computeCv = cv;
    return b;
}

} // namespace

AppSpec
makeSocialNetwork(bool vanilla)
{
    using sim::CallKind;
    AppSpec app;
    app.name = vanilla ? "social-network-vanilla" : "social-network";
    app.nominalRps = 300.0;
    app.representative = {"post-storage", "timeline-read", "sentiment",
                          "image-store"};
    if (vanilla)
        app.representative = {"post-storage", "timeline-read",
                              "timeline-update", "image-store"};

    // --- classes (ids fixed by push order) ---------------------------
    enum ClassIds
    {
        kPost = 0,
        kComment,
        kReadTimeline,
        kUpdateTimeline,
        kUploadImage,
        kDownloadImage,
        kSentiment,
        kObjectDetect,
    };
    auto addClass = [&](const std::string &name, double pct,
                        double targetMs, bool async) {
        sim::RequestClassSpec spec;
        spec.name = name;
        spec.rootService = "frontend";
        spec.sla = {pct, sim::fromMs(targetMs)};
        spec.asyncCompletion = async;
        app.classes.push_back(spec);
    };
    addClass("post", 99.0, 75.0, false);
    addClass("comment", 99.0, 75.0, false);
    addClass("read-timeline", 99.0, 250.0, false);
    addClass("update-timeline", 99.0, 500.0, false);
    addClass("upload-image", 99.0, 200.0, false);
    addClass("download-image", 99.0, 75.0, false);
    if (!vanilla) {
        addClass("sentiment-analysis", 99.0, 500.0, true);
        addClass("object-detect", 99.0, 10000.0, true);
    }

    // --- frontend -----------------------------------------------------
    sim::ServiceConfig frontend;
    frontend.name = "frontend";
    frontend.threads = 256;
    frontend.daemonThreads = 64;
    frontend.cpuPerReplica = 2.0;
    frontend.initialReplicas = 2;
    {
        auto fe = [&](std::vector<sim::CallSpec> calls) {
            sim::ClassBehavior b = leafCompute(1000.0, 0.3);
            b.calls = std::move(calls);
            return b;
        };
        frontend.behaviors[kPost] =
            fe({{"post-storage", CallKind::NestedRpc}});
        frontend.behaviors[kComment] =
            fe({{"post-storage", CallKind::NestedRpc}});
        frontend.behaviors[kReadTimeline] =
            fe({{"timeline-read", CallKind::NestedRpc}});
        frontend.behaviors[kUpdateTimeline] =
            fe({{"timeline-update", CallKind::NestedRpc}});
        frontend.behaviors[kUploadImage] =
            fe({{"image-store", CallKind::NestedRpc}});
        frontend.behaviors[kDownloadImage] =
            fe({{"image-store", CallKind::NestedRpc}});
        if (!vanilla) {
            frontend.behaviors[kPost].calls.push_back(
                {"sentiment", CallKind::MqPublish});
            frontend.behaviors[kComment].calls.push_back(
                {"sentiment", CallKind::MqPublish});
            frontend.behaviors[kSentiment] =
                fe({{"post-storage", CallKind::NestedRpc},
                    {"sentiment", CallKind::MqPublish}});
            frontend.behaviors[kObjectDetect] =
                fe({{"image-store", CallKind::NestedRpc},
                    {"object-detect", CallKind::MqPublish}});
        }
    }
    app.services.push_back(frontend);

    // --- post-storage ---------------------------------------------------
    sim::ServiceConfig postStorage;
    postStorage.name = "post-storage";
    postStorage.threads = 64;
    postStorage.cpuPerReplica = 1.0;
    postStorage.initialReplicas = 2;
    postStorage.behaviors[kPost] = leafCompute(12000.0, 0.5);
    postStorage.behaviors[kComment] = leafCompute(11000.0, 0.5);
    postStorage.behaviors[kReadTimeline] = leafCompute(8000.0, 0.5);
    postStorage.behaviors[kUpdateTimeline] = leafCompute(12000.0, 0.5);
    if (!vanilla)
        postStorage.behaviors[kSentiment] = leafCompute(3000.0, 0.5);
    app.services.push_back(postStorage);

    // --- social-graph ----------------------------------------------------
    sim::ServiceConfig socialGraph;
    socialGraph.name = "social-graph";
    socialGraph.threads = 64;
    socialGraph.cpuPerReplica = 1.0;
    socialGraph.initialReplicas = 1;
    socialGraph.behaviors[kReadTimeline] = leafCompute(8000.0, 0.5);
    socialGraph.behaviors[kUpdateTimeline] = leafCompute(9000.0, 0.5);
    app.services.push_back(socialGraph);

    // --- timeline-read -----------------------------------------------------
    sim::ServiceConfig timelineRead;
    timelineRead.name = "timeline-read";
    timelineRead.threads = 64;
    timelineRead.cpuPerReplica = 1.0;
    timelineRead.initialReplicas = 2;
    {
        sim::ClassBehavior b = leafCompute(25000.0, 0.5);
        b.calls = {{"social-graph", CallKind::NestedRpc},
                   {"post-storage", CallKind::NestedRpc},
                   {"post-storage", CallKind::NestedRpc}};
        timelineRead.behaviors[kReadTimeline] = b;
    }
    app.services.push_back(timelineRead);

    // --- timeline-update -----------------------------------------------------
    sim::ServiceConfig timelineUpdate;
    timelineUpdate.name = "timeline-update";
    timelineUpdate.threads = 64;
    timelineUpdate.cpuPerReplica = 1.0;
    timelineUpdate.initialReplicas = 1;
    {
        sim::ClassBehavior b = leafCompute(60000.0, 0.5);
        b.calls = {{"social-graph", CallKind::NestedRpc},
                   {"post-storage", CallKind::NestedRpc}};
        timelineUpdate.behaviors[kUpdateTimeline] = b;
    }
    app.services.push_back(timelineUpdate);

    // --- image-store -----------------------------------------------------
    sim::ServiceConfig imageStore;
    imageStore.name = "image-store";
    imageStore.threads = 64;
    imageStore.cpuPerReplica = 1.0;
    imageStore.initialReplicas = 2;
    imageStore.behaviors[kUploadImage] = leafCompute(40000.0, 0.5);
    imageStore.behaviors[kDownloadImage] = leafCompute(13000.0, 0.5);
    if (!vanilla)
        imageStore.behaviors[kObjectDetect] = leafCompute(12000.0, 0.5);
    app.services.push_back(imageStore);

    if (!vanilla) {
        // --- sentiment (MQ consumer, Hugging-Face text model) ---------
        sim::ServiceConfig sentiment;
        sentiment.name = "sentiment";
        sentiment.threads = 2; // workers match cores
        sentiment.cpuPerReplica = 2.0;
        sentiment.initialReplicas = 4;
        sentiment.mqConsumer = true;
        sentiment.behaviors[kPost] = leafCompute(60000.0, 0.4);
        sentiment.behaviors[kComment] = leafCompute(55000.0, 0.4);
        sentiment.behaviors[kSentiment] = leafCompute(60000.0, 0.4);
        app.services.push_back(sentiment);

        // --- object-detect (MQ consumer, DETR-scale model) ------------
        sim::ServiceConfig detect;
        detect.name = "object-detect";
        detect.threads = 4;
        detect.cpuPerReplica = 4.0;
        detect.initialReplicas = 2;
        detect.mqConsumer = true;
        detect.behaviors[kObjectDetect] = leafCompute(1800000.0, 0.4);
        app.services.push_back(detect);
    }

    // Canonical mix: post : comment : download-image : read-timeline =
    // 1 : 75 : 15 : 25 (Sec. VII-C), with modest rates for the
    // remaining classes.
    if (vanilla) {
        app.exploreMix = {1.0, 75.0, 25.0, 8.0, 5.0, 15.0};
    } else {
        app.exploreMix = {1.0, 75.0, 25.0, 8.0, 5.0, 15.0, 4.0, 1.0};
    }
    return app;
}

} // namespace ursa::apps
