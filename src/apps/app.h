/**
 * @file
 * AppSpec — a declarative description of one benchmark application
 * (services, request classes, SLAs, canonical request mix) that can be
 * instantiated into a Cluster. The four applications of paper Sec. VI
 * (social network, vanilla social network, media service, video
 * processing pipeline) and the Sec.-III study chains are provided.
 */

#ifndef URSA_APPS_APP_H
#define URSA_APPS_APP_H

#include "sim/cluster.h"
#include "sim/types.h"

#include <string>
#include <vector>

namespace ursa::apps
{

/** A benchmark application, ready to instantiate into a cluster. */
struct AppSpec
{
    std::string name;
    std::vector<sim::ServiceConfig> services;
    std::vector<sim::RequestClassSpec> classes;
    /**
     * Canonical request-mix weights (one per class) used during
     * exploration and the constant/dynamic evaluation loads — the
     * ratios of paper Sec. VII-C.
     */
    std::vector<double> exploreMix;
    /** Total request rate (rps) of the paper-style constant load. */
    double nominalRps = 100.0;
    /** Services highlighted in Fig.-13-style plots. */
    std::vector<std::string> representative;

    /** Register services and classes into `cluster` and finalize it. */
    void instantiate(sim::Cluster &cluster) const;

    /** Index of a class by name (throws if absent). */
    sim::ClassId classIndex(const std::string &className) const;

    /** Index of a service by name (throws if absent). */
    int serviceIndex(const std::string &serviceName) const;
};

/**
 * The re-implemented social network (Sec. VI): posts, comments,
 * timelines, images, plus MQ-fed sentiment analysis and object
 * detection with Table-II SLAs. `vanilla` disables the ML services,
 * reproducing the original DeathStarBench functionality.
 */
AppSpec makeSocialNetwork(bool vanilla = false);

/** The media service with Table-III SLAs (video store + MQ transcode /
 * thumbnail stages). */
AppSpec makeMediaService();

/**
 * The three-stage video processing pipeline (metadata -> snapshot ->
 * face recognition over MQs) with two request priorities and Table-IV
 * SLAs. `highFrac` sets the high:low ratio of the canonical mix.
 */
AppSpec makeVideoPipeline(double highFrac = 0.25);

/**
 * The Sec.-III case-study chain: `tiers` services connected by `kind`,
 * worker pools graded by depth (client-facing largest). Class 0 walks
 * the whole chain.
 */
AppSpec makeStudyChain(sim::CallKind kind, int tiers = 5);

/**
 * Return a copy of `mix` with class `cls`'s weight multiplied by
 * `factor` (the paper's skewed loads double or halve update classes).
 */
std::vector<double> skewMix(const AppSpec &app, std::vector<double> mix,
                            const std::string &className, double factor);

} // namespace ursa::apps

#endif // URSA_APPS_APP_H
