/**
 * @file
 * Builders for the benchmark applications of paper Sec. VI (social
 * network, vanilla social network, media service, video processing
 * pipeline) and the Sec.-III study chains. The topology type itself —
 * `spec::AppSpec` — lives in the spec layer (src/spec/app_spec.h) so
 * the control plane and the baselines can consume it without
 * depending on this, the top layer of the DAG; apps/ only *constructs*
 * specs.
 */

#ifndef URSA_APPS_APP_H
#define URSA_APPS_APP_H

#include "sim/types.h"
#include "spec/app_spec.h"

namespace ursa::apps
{

/// Builders return the spec-layer topology type; the alias keeps the
/// historical `apps::AppSpec` spelling working for code above apps/
/// (tests, benches, examples).
using spec::AppSpec;
using spec::skewMix;

/**
 * The re-implemented social network (Sec. VI): posts, comments,
 * timelines, images, plus MQ-fed sentiment analysis and object
 * detection with Table-II SLAs. `vanilla` disables the ML services,
 * reproducing the original DeathStarBench functionality.
 */
AppSpec makeSocialNetwork(bool vanilla = false);

/** The media service with Table-III SLAs (video store + MQ transcode /
 * thumbnail stages). */
AppSpec makeMediaService();

/**
 * The three-stage video processing pipeline (metadata -> snapshot ->
 * face recognition over MQs) with two request priorities and Table-IV
 * SLAs. `highFrac` sets the high:low ratio of the canonical mix.
 */
AppSpec makeVideoPipeline(double highFrac = 0.25);

/**
 * The Sec.-III case-study chain: `tiers` services connected by `kind`,
 * worker pools graded by depth (client-facing largest). Class 0 walks
 * the whole chain.
 */
AppSpec makeStudyChain(sim::CallKind kind, int tiers = 5);

} // namespace ursa::apps

#endif // URSA_APPS_APP_H
