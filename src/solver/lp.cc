#include "solver/lp.h"

#include "check/check.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ursa::solver
{

namespace
{

constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Dense tableau simplex over the standard-form problem
 *   min c.y  s.t.  A y = b,  y >= 0,  b >= 0.
 *
 * Phase 1 minimizes the sum of artificial variables; phase 2 the real
 * objective. Dantzig pricing is used until an iteration cap, then
 * Bland's rule takes over to rule out cycling.
 */
class Tableau
{
  public:
    Tableau(std::size_t m, std::size_t n)
        : m_(m), n_(n), a_(m, std::vector<double>(n + 1, 0.0)),
          basis_(m, SIZE_MAX)
    {
    }

    std::vector<std::vector<double>> &rows() { return a_; }
    std::vector<std::size_t> &basis() { return basis_; }

    /**
     * Run simplex for objective costs `c` (length n_). Returns false if
     * unbounded. On return the tableau is optimal for `c`.
     */
    bool
    optimize(const std::vector<double> &c)
    {
        // Reduced costs: z_j = c_j - c_B . column_j.
        const std::size_t dantzigCap = 50 * (m_ + n_) + 1000;
        std::size_t iter = 0;
        while (true) {
            ++iter;
            const bool useBland = iter > dantzigCap;
            std::vector<double> cb(m_);
            for (std::size_t i = 0; i < m_; ++i)
                cb[i] = c[basis_[i]];

            std::size_t enter = SIZE_MAX;
            double best = -kEps;
            for (std::size_t j = 0; j < n_; ++j) {
                double rc = c[j];
                for (std::size_t i = 0; i < m_; ++i)
                    rc -= cb[i] * a_[i][j];
                if (rc < -kEps) {
                    if (useBland) {
                        enter = j;
                        break;
                    }
                    if (rc < best) {
                        best = rc;
                        enter = j;
                    }
                }
            }
            if (enter == SIZE_MAX)
                return true; // optimal

            // Ratio test.
            std::size_t leave = SIZE_MAX;
            double bestRatio = kInf;
            for (std::size_t i = 0; i < m_; ++i) {
                if (a_[i][enter] > kEps) {
                    const double ratio = a_[i][n_] / a_[i][enter];
                    if (ratio < bestRatio - kEps ||
                        (ratio < bestRatio + kEps &&
                         (leave == SIZE_MAX ||
                          basis_[i] < basis_[leave]))) {
                        bestRatio = ratio;
                        leave = i;
                    }
                }
            }
            if (leave == SIZE_MAX)
                return false; // unbounded direction
            pivot(leave, enter);
        }
    }

    /** Pivot so that column `col` becomes basic in row `row`. */
    void
    pivot(std::size_t row, std::size_t col)
    {
        const double piv = a_[row][col];
        URSA_CHECK(std::fabs(piv) > kEps, "solver.lp",
                   "pivot on a numerically zero element");
        for (double &v : a_[row])
            v /= piv;
        for (std::size_t i = 0; i < m_; ++i) {
            if (i == row)
                continue;
            const double f = a_[i][col];
            if (std::fabs(f) < kEps)
                continue;
            for (std::size_t j = 0; j <= n_; ++j)
                a_[i][j] -= f * a_[row][j];
        }
        basis_[row] = col;
    }

    /** Current value of variable `j`. */
    double
    value(std::size_t j) const
    {
        for (std::size_t i = 0; i < m_; ++i)
            if (basis_[i] == j)
                return a_[i][n_];
        return 0.0;
    }

    std::size_t m_, n_;
    std::vector<std::vector<double>> a_;
    std::vector<std::size_t> basis_;
};

} // namespace

LpProblem::LpProblem(std::size_t n)
    : c(n, 0.0), lower(n, 0.0), upper(n, kInf)
{
}

void
LpProblem::setBounds(std::size_t i, double lo, double hi)
{
    URSA_CHECK(i < numVars(), "solver.lp",
               "setBounds on an out-of-range variable");
    URSA_CHECK(lo <= hi, "solver.lp", "inverted variable bounds");
    lower[i] = lo;
    upper[i] = hi;
}

void
LpProblem::addConstraint(std::vector<double> a, Rel rel, double b)
{
    if (a.size() != numVars())
        throw std::invalid_argument("constraint arity mismatch");
    rows.push_back({std::move(a), rel, b});
}

void
LpProblem::addSparseConstraint(
    const std::vector<std::pair<std::size_t, double>> &terms, Rel rel,
    double b)
{
    std::vector<double> a(numVars(), 0.0);
    for (const auto &[idx, coef] : terms) {
        URSA_CHECK(idx < numVars(), "solver.lp",
                   "sparse constraint names an out-of-range variable");
        a[idx] += coef;
    }
    rows.push_back({std::move(a), rel, b});
}

std::string
toString(LpStatus status)
{
    switch (status) {
      case LpStatus::Optimal:
        return "optimal";
      case LpStatus::Infeasible:
        return "infeasible";
      case LpStatus::Unbounded:
        return "unbounded";
    }
    return "?";
}

LpResult
solveLp(const LpProblem &p)
{
    const std::size_t n = p.numVars();

    // Shift every variable by its lower bound so all shifted variables
    // are >= 0, and materialize finite upper bounds as extra rows.
    double objConst = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        if (!std::isfinite(p.lower[j]))
            throw std::invalid_argument("lower bounds must be finite");
        objConst += p.c[j] * p.lower[j];
    }

    struct StdRow
    {
        std::vector<double> a;
        Rel rel;
        double b;
    };
    std::vector<StdRow> rows;
    rows.reserve(p.rows.size() + n);
    for (const Constraint &r : p.rows) {
        double b = r.b;
        for (std::size_t j = 0; j < n; ++j)
            b -= r.a[j] * p.lower[j];
        rows.push_back({r.a, r.rel, b});
    }
    for (std::size_t j = 0; j < n; ++j) {
        if (std::isfinite(p.upper[j])) {
            std::vector<double> a(n, 0.0);
            a[j] = 1.0;
            rows.push_back({std::move(a), Rel::LessEq,
                            p.upper[j] - p.lower[j]});
        }
    }

    const std::size_t m = rows.size();
    if (m == 0) {
        // Unconstrained: each variable sits at whichever bound is better.
        LpResult res;
        res.x.assign(n, 0.0);
        res.status = LpStatus::Optimal;
        for (std::size_t j = 0; j < n; ++j) {
            if (p.c[j] >= 0.0) {
                res.x[j] = p.lower[j];
            } else if (std::isfinite(p.upper[j])) {
                res.x[j] = p.upper[j];
            } else {
                res.status = LpStatus::Unbounded;
                return res;
            }
            res.objective += p.c[j] * res.x[j];
        }
        return res;
    }

    // Count slack/surplus and artificial columns.
    std::size_t numSlack = 0;
    for (const StdRow &r : rows)
        if (r.rel != Rel::Equal)
            ++numSlack;

    const std::size_t slackBase = n;
    const std::size_t artBase = n + numSlack;
    const std::size_t ncols = artBase + m; // worst case: one artificial/row

    Tableau tab(m, ncols);
    auto &a = tab.rows();
    std::size_t slackIdx = slackBase;
    std::size_t artIdx = artBase;
    std::vector<bool> isArtificial(ncols, false);

    for (std::size_t i = 0; i < m; ++i) {
        StdRow r = rows[i];
        if (r.b < 0.0) {
            for (double &v : r.a)
                v = -v;
            r.b = -r.b;
            if (r.rel == Rel::LessEq)
                r.rel = Rel::GreaterEq;
            else if (r.rel == Rel::GreaterEq)
                r.rel = Rel::LessEq;
        }
        for (std::size_t j = 0; j < n; ++j)
            a[i][j] = r.a[j];
        a[i][ncols] = r.b;

        if (r.rel == Rel::LessEq) {
            a[i][slackIdx] = 1.0;
            tab.basis()[i] = slackIdx++;
        } else if (r.rel == Rel::GreaterEq) {
            a[i][slackIdx] = -1.0;
            ++slackIdx;
            a[i][artIdx] = 1.0;
            isArtificial[artIdx] = true;
            tab.basis()[i] = artIdx++;
        } else {
            a[i][artIdx] = 1.0;
            isArtificial[artIdx] = true;
            tab.basis()[i] = artIdx++;
        }
    }

    LpResult res;

    // Phase 1: minimize the sum of artificials.
    bool needPhase1 = false;
    std::vector<double> phase1Cost(ncols, 0.0);
    for (std::size_t j = 0; j < ncols; ++j) {
        if (isArtificial[j]) {
            phase1Cost[j] = 1.0;
            needPhase1 = true;
        }
    }
    if (needPhase1) {
        if (!tab.optimize(phase1Cost)) {
            // Phase-1 objective is bounded below by 0; "unbounded" here
            // would indicate a solver bug.
            throw std::logic_error("phase-1 simplex reported unbounded");
        }
        double artSum = 0.0;
        for (std::size_t i = 0; i < m; ++i)
            if (isArtificial[tab.basis()[i]])
                artSum += a[i][ncols];
        if (artSum > 1e-6) {
            res.status = LpStatus::Infeasible;
            return res;
        }
        // Drive any degenerate artificials out of the basis.
        for (std::size_t i = 0; i < m; ++i) {
            if (!isArtificial[tab.basis()[i]])
                continue;
            bool pivoted = false;
            for (std::size_t j = 0; j < artBase; ++j) {
                if (std::fabs(a[i][j]) > kEps) {
                    tab.pivot(i, j);
                    pivoted = true;
                    break;
                }
            }
            if (!pivoted) {
                // Redundant row: the artificial stays basic at zero;
                // forbid it from re-entering by leaving its phase-2
                // cost at +inf conceptually (we just zero the row).
                for (std::size_t j = 0; j < ncols; ++j)
                    if (j != tab.basis()[i])
                        a[i][j] = 0.0;
            }
        }
    }

    // Phase 2: real objective (artificials get a prohibitive cost so
    // they can never re-enter the basis).
    std::vector<double> phase2Cost(ncols, 0.0);
    for (std::size_t j = 0; j < n; ++j)
        phase2Cost[j] = p.c[j];
    for (std::size_t j = 0; j < ncols; ++j)
        if (isArtificial[j])
            phase2Cost[j] = 1e18;
    if (!tab.optimize(phase2Cost)) {
        res.status = LpStatus::Unbounded;
        return res;
    }

    res.status = LpStatus::Optimal;
    res.x.assign(n, 0.0);
    for (std::size_t j = 0; j < n; ++j)
        res.x[j] = tab.value(j) + p.lower[j];
    res.objective = 0.0;
    for (std::size_t j = 0; j < n; ++j)
        res.objective += p.c[j] * res.x[j];
    (void)objConst;
    return res;
}

} // namespace ursa::solver
