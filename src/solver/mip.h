/**
 * @file
 * Mixed-integer programming by LP-relaxation branch-and-bound.
 *
 * Top half of the repo's Gurobi substitute. Exact on the instance sizes
 * used by the Ursa optimization model's generic lowering; the
 * specialized solver in core/mip_model.* is the fast path for large
 * topologies and the two are cross-checked in tests.
 */

#ifndef URSA_SOLVER_MIP_H
#define URSA_SOLVER_MIP_H

#include "solver/lp.h"

#include <cstdint>
#include <vector>

namespace ursa::solver
{

/** A MIP: an LP plus integrality flags per variable. */
struct MipProblem
{
    /** Create with `n` variables, none integral. */
    explicit MipProblem(std::size_t n) : lp(n), integral(n, false) {}

    /** Mark variable `i` as integer-constrained. */
    void setIntegral(std::size_t i) { integral[i] = true; }

    /** Mark variable `i` as binary (integral with bounds [0,1]). */
    void
    setBinary(std::size_t i)
    {
        integral[i] = true;
        lp.setBounds(i, 0.0, 1.0);
    }

    LpProblem lp;
    std::vector<bool> integral;
};

/** Outcome of a MIP solve. */
struct MipResult
{
    LpStatus status = LpStatus::Infeasible;
    double objective = 0.0;
    std::vector<double> x;
    std::size_t nodesExplored = 0;
    bool hitNodeLimit = false;
};

/** Branch-and-bound tuning knobs. */
struct MipOptions
{
    std::size_t maxNodes = 200000; ///< node budget before giving up
    double integralityTol = 1e-6;  ///< |x - round(x)| below this is integral
    double absGap = 1e-9;          ///< prune when bound >= incumbent - gap
};

/** Solve by depth-first branch-and-bound with LP bounds. */
MipResult solveMip(const MipProblem &p, const MipOptions &opts = {});

} // namespace ursa::solver

#endif // URSA_SOLVER_MIP_H
