#include "solver/mip.h"

#include "solver/lp.h"

#include <cmath>
#include <limits>
#include <vector>

namespace ursa::solver
{

namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

/** One branch-and-bound node: variable-bound overrides. */
struct Node
{
    std::vector<double> lower;
    std::vector<double> upper;
};

} // namespace

MipResult
solveMip(const MipProblem &p, const MipOptions &opts)
{
    MipResult best;
    best.status = LpStatus::Infeasible;
    double incumbent = kInf;

    std::vector<Node> stack;
    stack.push_back({p.lp.lower, p.lp.upper});

    LpProblem relaxed = p.lp;

    while (!stack.empty()) {
        if (best.nodesExplored >= opts.maxNodes) {
            best.hitNodeLimit = true;
            break;
        }
        ++best.nodesExplored;

        Node node = std::move(stack.back());
        stack.pop_back();

        relaxed.lower = node.lower;
        relaxed.upper = node.upper;
        const LpResult rel = solveLp(relaxed);
        if (rel.status == LpStatus::Infeasible)
            continue;
        if (rel.status == LpStatus::Unbounded) {
            // An unbounded relaxation at the root means the MIP itself
            // is unbounded (or so close we cannot tell); report it.
            best.status = LpStatus::Unbounded;
            return best;
        }
        if (rel.objective >= incumbent - opts.absGap)
            continue; // bound prune

        // Find the most fractional integral variable.
        std::size_t branchVar = SIZE_MAX;
        double bestFrac = opts.integralityTol;
        for (std::size_t j = 0; j < p.integral.size(); ++j) {
            if (!p.integral[j])
                continue;
            const double v = rel.x[j];
            const double frac = std::fabs(v - std::round(v));
            if (frac > bestFrac) {
                bestFrac = frac;
                branchVar = j;
            }
        }

        if (branchVar == SIZE_MAX) {
            // Integral solution: new incumbent.
            incumbent = rel.objective;
            best.status = LpStatus::Optimal;
            best.objective = rel.objective;
            best.x = rel.x;
            for (std::size_t j = 0; j < p.integral.size(); ++j)
                if (p.integral[j])
                    best.x[j] = std::round(best.x[j]);
            continue;
        }

        const double v = rel.x[branchVar];
        Node down = node;
        down.upper[branchVar] = std::floor(v);
        Node up = node;
        up.lower[branchVar] = std::ceil(v);
        // Depth-first; explore the side nearer the fractional value
        // first (pushed last).
        if (v - std::floor(v) < 0.5) {
            stack.push_back(std::move(up));
            stack.push_back(std::move(down));
        } else {
            stack.push_back(std::move(down));
            stack.push_back(std::move(up));
        }
    }

    return best;
}

} // namespace ursa::solver
