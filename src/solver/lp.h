/**
 * @file
 * A dense two-phase primal simplex linear-programming solver.
 *
 * This is the bottom half of the repo's Gurobi substitute: the
 * branch-and-bound MIP solver (mip.h) calls it for relaxations, and the
 * Ursa optimization model can be lowered onto it for cross-checking the
 * specialized exact solver. It is written for clarity and robustness on
 * the small/medium dense instances this project produces, not for
 * industrial sparse problems.
 */

#ifndef URSA_SOLVER_LP_H
#define URSA_SOLVER_LP_H

#include <string>
#include <vector>

namespace ursa::solver
{

/** Relational operator of a linear constraint. */
enum class Rel { LessEq, GreaterEq, Equal };

/** One linear constraint: a . x (rel) b. */
struct Constraint
{
    std::vector<double> a;
    Rel rel = Rel::LessEq;
    double b = 0.0;
};

/**
 * A linear program in the form
 *   minimize c . x
 *   subject to constraints, and lower[i] <= x[i] <= upper[i].
 *
 * Variable bounds default to [0, +inf).
 */
struct LpProblem
{
    /** Create a problem with `n` variables, all costs zero. */
    explicit LpProblem(std::size_t n);

    /** Number of variables. */
    std::size_t numVars() const { return c.size(); }

    /** Set the objective coefficient of variable `i`. */
    void setCost(std::size_t i, double cost) { c[i] = cost; }

    /** Set bounds of variable `i` (upper may be +inf). */
    void setBounds(std::size_t i, double lo, double hi);

    /** Add a constraint; `a` must have numVars() entries. */
    void addConstraint(std::vector<double> a, Rel rel, double b);

    /** Sparse convenience: terms are (varIndex, coefficient). */
    void addSparseConstraint(
        const std::vector<std::pair<std::size_t, double>> &terms, Rel rel,
        double b);

    std::vector<double> c;
    std::vector<double> lower;
    std::vector<double> upper;
    std::vector<Constraint> rows;
};

/** Solver outcome classification. */
enum class LpStatus { Optimal, Infeasible, Unbounded };

/** Solution of an LP. */
struct LpResult
{
    LpStatus status = LpStatus::Infeasible;
    double objective = 0.0;
    std::vector<double> x;
};

/** Human-readable status name. */
std::string toString(LpStatus status);

/**
 * Solve with two-phase primal simplex (Dantzig pricing with a Bland's
 * rule fallback to guarantee termination under degeneracy).
 */
LpResult solveLp(const LpProblem &p);

} // namespace ursa::solver

#endif // URSA_SOLVER_LP_H
