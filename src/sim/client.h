/**
 * @file
 * Load drivers: the open-loop Poisson client (the paper's Locust setup,
 * Sec. VII-A) and a closed-loop client (finite users with think time)
 * used by the backpressure case study of Sec. III.
 *
 * Tracing: every request a client injects goes through
 * Cluster::submit(), which applies the tracer's deterministic
 * hash-of-request-id sampling gate and emits the client-side root span
 * (submit until fully done) on the request's behalf — the hop spans of
 * the service tiers all descend from it.
 */

#ifndef URSA_SIM_CLIENT_H
#define URSA_SIM_CLIENT_H

#include "sim/cluster.h"
#include "sim/time.h"
#include "sim/types.h"
#include "stats/rng.h"

#include <functional>
#include <vector>

namespace ursa::sim
{

/** Picks the class of the next request (may depend on time). */
using ClassPicker = std::function<ClassId(stats::Rng &, SimTime)>;

/** Request rate in requests/second as a function of time. */
using RateProfile = std::function<double(SimTime)>;

/** Build a picker from fixed weights over classes 0..n-1. */
ClassPicker fixedMix(std::vector<double> weights);

/**
 * Open-loop client: Poisson arrivals whose rate follows a profile.
 * Arrivals are independent of responses, as with Locust in the paper.
 */
class OpenLoopClient
{
  public:
    /**
     * @param cluster Target cluster (must be finalized before start()).
     * @param rate Arrival-rate profile (requests/second).
     * @param picker Class mix.
     * @param seed Client-local RNG seed.
     */
    OpenLoopClient(Cluster &cluster, RateProfile rate, ClassPicker picker,
                   std::uint64_t seed);

    /** Begin generating load at absolute time `at`. */
    void start(SimTime at = 0);

    /** Stop generating load (in-flight requests still complete). */
    void stop() { running_ = false; }

    /** Requests submitted so far. */
    std::uint64_t submitted() const { return submitted_; }

  private:
    void scheduleNext();

    Cluster &cluster_;
    RateProfile rate_;
    ClassPicker picker_;
    stats::Rng rng_;
    bool running_ = false;
    std::uint64_t submitted_ = 0;
};

/**
 * Closed-loop client: a fixed population of users; each user submits,
 * waits for the synchronous response, thinks, and repeats. Bounding
 * in-flight requests this way is what lets backlog cascade tier by
 * tier in the backpressure study.
 */
class ClosedLoopClient
{
  public:
    /**
     * @param users Concurrent user count.
     * @param thinkMeanUs Mean exponential think time between requests.
     */
    ClosedLoopClient(Cluster &cluster, int users, SimTime thinkMeanUs,
                     ClassPicker picker, std::uint64_t seed);

    /** Start all users, staggered over the first second. */
    void start(SimTime at = 0);

    /** Stop issuing new requests. */
    void stop() { running_ = false; }

    /** Requests submitted so far. */
    std::uint64_t submitted() const { return submitted_; }

  private:
    void userLoop();

    Cluster &cluster_;
    int users_;
    SimTime thinkMeanUs_;
    ClassPicker picker_;
    stats::Rng rng_;
    bool running_ = false;
    std::uint64_t submitted_ = 0;
};

} // namespace ursa::sim

#endif // URSA_SIM_CLIENT_H
