/**
 * @file
 * A size-bucketed freelist arena and a matching std allocator, used via
 * `std::allocate_shared` to recycle the control-block+object nodes of
 * Request and Invocation — the two allocations made per submit/invoke
 * on the kernel's hot path. After warm-up the path is malloc-free.
 *
 * The arena is single-threaded by design: each Cluster owns one and
 * every allocation/deallocation happens on the thread driving that
 * cluster's event loop. Allocators keep the arena alive via shared_ptr
 * (a shared_ptr<Request> may legitimately outlive its Cluster).
 */

#ifndef URSA_SIM_POOL_H
#define URSA_SIM_POOL_H

#include "base/thread_annotations.h"
#include "check/check.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace ursa::sim
{

/**
 * Freelist arena with 64-byte size classes up to 512 bytes.
 *
 * With URSA_CHECK_LEVEL >= 1 every pooled block carries a hidden
 * header holding a generation counter and a live/free state bit.
 * Releasing a block that is already free fires a "sim.pool" violation
 * (and the block is NOT re-inserted, so the freelist cannot hand the
 * same address out twice); the generation bumps on every allocate and
 * release, so stale-pointer reuse across a recycle is detectable.
 */
class URSA_SINGLE_THREADED PoolArena
{
  public:
    PoolArena() = default;
    PoolArena(const PoolArena &) = delete;
    PoolArena &operator=(const PoolArena &) = delete;

    ~PoolArena()
    {
        for (auto &bucket : free_)
            for (void *p : bucket)
                ::operator delete(p);
    }

#if URSA_CHECK_LEVEL >= 1

    void *
    allocate(std::size_t bytes)
    {
        if (bytes == 0 || bytes > kMaxBlock)
            return ::operator new(bytes);
        auto &bucket = free_[classOf(bytes)];
        Header *h;
        if (!bucket.empty()) {
            h = static_cast<Header *>(bucket.back());
            bucket.pop_back();
            URSA_CHECK(h->live == 0, "sim.pool",
                       "freelist handed out a block still marked live");
        } else {
            h = static_cast<Header *>(::operator new(
                kHeaderSize + (classOf(bytes) + 1) * kGranularity));
            h->generation = 0;
        }
        h->live = 1;
        ++h->generation;
        return static_cast<char *>(static_cast<void *>(h)) + kHeaderSize;
    }

    void
    deallocate(void *p, std::size_t bytes) noexcept
    {
        if (bytes == 0 || bytes > kMaxBlock) {
            ::operator delete(p);
            return;
        }
        Header *h = headerOf(p);
        URSA_CHECK(h->live == 1, "sim.pool",
                   "double release of a pooled block");
        if (h->live != 1)
            return; // keep the freelist sound after a trapped violation
        h->live = 0;
        ++h->generation;
        free_[classOf(bytes)].push_back(h);
    }

    /**
     * Generation tag of a pooled block (bumps on every allocate and
     * release). Exposed for the pool's own tests.
     */
    static std::uint32_t
    generationOf(const void *p)
    {
        return headerOf(const_cast<void *>(p))->generation;
    }

#else // URSA_CHECK_LEVEL == 0: zero-overhead layout, no headers

    void *
    allocate(std::size_t bytes)
    {
        if (bytes == 0 || bytes > kMaxBlock)
            return ::operator new(bytes);
        auto &bucket = free_[classOf(bytes)];
        if (!bucket.empty()) {
            void *p = bucket.back();
            bucket.pop_back();
            return p;
        }
        return ::operator new((classOf(bytes) + 1) * kGranularity);
    }

    void
    deallocate(void *p, std::size_t bytes) noexcept
    {
        if (bytes == 0 || bytes > kMaxBlock) {
            ::operator delete(p);
            return;
        }
        free_[classOf(bytes)].push_back(p);
    }

#endif // URSA_CHECK_LEVEL

  private:
    static constexpr std::size_t kGranularity = 64;
    static constexpr std::size_t kMaxBlock = 512;

#if URSA_CHECK_LEVEL >= 1
    struct Header
    {
        std::uint32_t generation;
        std::uint32_t live;
    };
    /// Header stride preserving max_align for the user block.
    static constexpr std::size_t kHeaderSize =
        alignof(std::max_align_t) > sizeof(Header)
            ? alignof(std::max_align_t)
            : sizeof(Header);

    static Header *
    headerOf(void *userPtr)
    {
        return static_cast<Header *>(static_cast<void *>(
            static_cast<char *>(userPtr) - kHeaderSize));
    }
#endif

    static std::size_t
    classOf(std::size_t bytes)
    {
        return (bytes - 1) / kGranularity;
    }

    std::vector<void *> free_[kMaxBlock / kGranularity];
};

/** std allocator over a shared PoolArena (for allocate_shared). */
template <typename T>
struct PoolAllocator
{
    using value_type = T;

    explicit PoolAllocator(std::shared_ptr<PoolArena> a)
        : arena(std::move(a))
    {
    }

    template <typename U>
    PoolAllocator(const PoolAllocator<U> &other) : arena(other.arena)
    {
    }

    T *
    allocate(std::size_t n)
    {
        if (n == 1 && alignof(T) <= alignof(std::max_align_t))
            return static_cast<T *>(arena->allocate(sizeof(T)));
        return static_cast<T *>(::operator new(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t n) noexcept
    {
        if (n == 1 && alignof(T) <= alignof(std::max_align_t))
            arena->deallocate(p, sizeof(T));
        else
            ::operator delete(p);
    }

    template <typename U>
    bool
    operator==(const PoolAllocator<U> &other) const
    {
        return arena == other.arena;
    }

    std::shared_ptr<PoolArena> arena;
};

} // namespace ursa::sim

#endif // URSA_SIM_POOL_H
