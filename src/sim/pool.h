/**
 * @file
 * A size-bucketed freelist arena plus the intrusive reference-counted
 * smart pointer (`RefPtr` / `makeRef`) that manages Request and
 * Invocation — the two allocations made per submit/invoke on the
 * kernel's hot path. After warm-up the path is malloc-free, and unlike
 * the `std::allocate_shared` scheme this replaced there is no control
 * block and no atomic refcount traffic: the count is a plain uint32
 * embedded in the object (`RefState`), legal because each Cluster's
 * event loop is single-threaded and pooled objects never cross shard
 * boundaries (cross-shard traffic is POD messages, see cross_shard.h).
 *
 * Ownership contract (checked at URSA_CHECK_LEVEL >= 1 in ~PoolArena):
 * RefPtr-managed objects must not outlive the Cluster whose arena they
 * came from. Tests that hold a RequestPtr across a run keep the
 * Cluster alive, which every existing caller already does.
 *
 * `PoolAllocator` (std allocator over the arena) remains for code that
 * wants pooled nodes for its own types via std containers or
 * allocate_shared.
 */

#ifndef URSA_SIM_POOL_H
#define URSA_SIM_POOL_H

#include "base/thread_annotations.h"
#include "check/check.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace ursa::sim
{

/**
 * Freelist arena with 64-byte size classes up to 512 bytes.
 *
 * With URSA_CHECK_LEVEL >= 1 every pooled block carries a hidden
 * header holding a generation counter and a live/free state bit.
 * Releasing a block that is already free fires a "sim.pool" violation
 * (and the block is NOT re-inserted, so the freelist cannot hand the
 * same address out twice); the generation bumps on every allocate and
 * release, so stale-pointer reuse across a recycle is detectable.
 */
class URSA_SINGLE_THREADED PoolArena
{
  public:
    PoolArena() = default;
    PoolArena(const PoolArena &) = delete;
    PoolArena &operator=(const PoolArena &) = delete;

    ~PoolArena()
    {
#if URSA_CHECK_LEVEL >= 1
        URSA_CHECK(liveRefObjects_ == 0, "sim.pool",
                   "RefPtr-managed objects outlive their arena");
#endif
        for (auto &bucket : free_)
            for (void *p : bucket)
                ::operator delete(p);
    }

#if URSA_CHECK_LEVEL >= 1
    /// RefPtr-managed objects currently alive (makeRef bookkeeping).
    void
    noteRefAlloc() noexcept
    {
        ++liveRefObjects_;
    }

    void
    noteRefFree() noexcept
    {
        --liveRefObjects_;
    }
#endif

#if URSA_CHECK_LEVEL >= 1

    void *
    allocate(std::size_t bytes)
    {
        if (bytes == 0 || bytes > kMaxBlock)
            return ::operator new(bytes);
        auto &bucket = free_[classOf(bytes)];
        Header *h;
        if (!bucket.empty()) {
            h = static_cast<Header *>(bucket.back());
            bucket.pop_back();
            URSA_CHECK(h->live == 0, "sim.pool",
                       "freelist handed out a block still marked live");
        } else {
            h = static_cast<Header *>(::operator new(
                kHeaderSize + (classOf(bytes) + 1) * kGranularity));
            h->generation = 0;
        }
        h->live = 1;
        ++h->generation;
        return static_cast<char *>(static_cast<void *>(h)) + kHeaderSize;
    }

    void
    deallocate(void *p, std::size_t bytes) noexcept
    {
        if (bytes == 0 || bytes > kMaxBlock) {
            ::operator delete(p);
            return;
        }
        Header *h = headerOf(p);
        URSA_CHECK(h->live == 1, "sim.pool",
                   "double release of a pooled block");
        if (h->live != 1)
            return; // keep the freelist sound after a trapped violation
        h->live = 0;
        ++h->generation;
        free_[classOf(bytes)].push_back(h);
    }

    /**
     * Generation tag of a pooled block (bumps on every allocate and
     * release). Exposed for the pool's own tests.
     */
    static std::uint32_t
    generationOf(const void *p)
    {
        return headerOf(const_cast<void *>(p))->generation;
    }

#else // URSA_CHECK_LEVEL == 0: zero-overhead layout, no headers

    void *
    allocate(std::size_t bytes)
    {
        if (bytes == 0 || bytes > kMaxBlock)
            return ::operator new(bytes);
        auto &bucket = free_[classOf(bytes)];
        if (!bucket.empty()) {
            void *p = bucket.back();
            bucket.pop_back();
            return p;
        }
        return ::operator new((classOf(bytes) + 1) * kGranularity);
    }

    void
    deallocate(void *p, std::size_t bytes) noexcept
    {
        if (bytes == 0 || bytes > kMaxBlock) {
            ::operator delete(p);
            return;
        }
        free_[classOf(bytes)].push_back(p);
    }

#endif // URSA_CHECK_LEVEL

  private:
    static constexpr std::size_t kGranularity = 64;
    static constexpr std::size_t kMaxBlock = 512;

#if URSA_CHECK_LEVEL >= 1
    struct Header
    {
        std::uint32_t generation;
        std::uint32_t live;
    };
    /// Header stride preserving max_align for the user block.
    static constexpr std::size_t kHeaderSize =
        alignof(std::max_align_t) > sizeof(Header)
            ? alignof(std::max_align_t)
            : sizeof(Header);

    static Header *
    headerOf(void *userPtr)
    {
        return static_cast<Header *>(static_cast<void *>(
            static_cast<char *>(userPtr) - kHeaderSize));
    }
#endif

    static std::size_t
    classOf(std::size_t bytes)
    {
        return (bytes - 1) / kGranularity;
    }

    std::vector<void *> free_[kMaxBlock / kGranularity];

#if URSA_CHECK_LEVEL >= 1
    std::int64_t liveRefObjects_ = 0;
#endif
};

/**
 * Intrusive refcount state embedded in every RefPtr-managed object as
 * a public member named `poolRef`. Non-atomic by design: see the file
 * comment for the single-threaded ownership contract.
 */
struct RefState
{
    std::uint32_t refs = 0;
    PoolArena *arena = nullptr;
};

/**
 * Intrusive, non-atomic, pool-backed shared pointer.
 *
 * 8 bytes (a shared_ptr is 16), copy is a plain increment (no
 * lock-prefixed RMW), and destruction returns the block straight to
 * the owning arena's freelist. Requires `T` to expose a `RefState
 * poolRef` member; create instances with `makeRef<T>(arena, ...)`.
 */
template <typename T>
class RefPtr
{
  public:
    RefPtr() = default;
    RefPtr(std::nullptr_t) {}

    /** Adopt an object whose refcount already accounts for this ref. */
    static RefPtr
    adopt(T *obj)
    {
        RefPtr p;
        p.ptr_ = obj;
        return p;
    }

    RefPtr(const RefPtr &other) : ptr_(other.ptr_)
    {
        if (ptr_ != nullptr)
            ++ptr_->poolRef.refs;
    }

    RefPtr(RefPtr &&other) noexcept : ptr_(other.ptr_)
    {
        other.ptr_ = nullptr;
    }

    RefPtr &
    operator=(const RefPtr &other)
    {
        RefPtr tmp(other);
        std::swap(ptr_, tmp.ptr_);
        return *this;
    }

    RefPtr &
    operator=(RefPtr &&other) noexcept
    {
        std::swap(ptr_, other.ptr_);
        return *this;
    }

    ~RefPtr() { release(); }

    void
    reset()
    {
        release();
        ptr_ = nullptr;
    }

    T *
    get() const
    {
        return ptr_;
    }

    T &
    operator*() const
    {
        return *ptr_;
    }

    T *
    operator->() const
    {
        return ptr_;
    }

    explicit operator bool() const { return ptr_ != nullptr; }

    bool
    operator==(const RefPtr &other) const
    {
        return ptr_ == other.ptr_;
    }

    bool
    operator!=(const RefPtr &other) const
    {
        return ptr_ != other.ptr_;
    }

    /** Current reference count (0 for an empty pointer). */
    std::uint32_t
    useCount() const
    {
        return ptr_ != nullptr ? ptr_->poolRef.refs : 0;
    }

  private:
    void
    release() noexcept
    {
        if (ptr_ == nullptr)
            return;
        if (--ptr_->poolRef.refs == 0) {
            PoolArena *arena = ptr_->poolRef.arena;
#if URSA_CHECK_LEVEL >= 1
            arena->noteRefFree();
#endif
            ptr_->~T();
            arena->deallocate(ptr_, sizeof(T));
        }
    }

    T *ptr_ = nullptr;
};

/**
 * Construct a pool-backed, RefPtr-managed `T`. The object is placement
 * -new'd into an arena block; its embedded `poolRef` is initialized to
 * one reference owned by the returned pointer.
 */
template <typename T, typename... Args>
RefPtr<T>
makeRef(PoolArena &arena, Args &&...args)
{
    void *mem = arena.allocate(sizeof(T));
    T *obj = new (mem) T(static_cast<Args &&>(args)...);
    obj->poolRef.refs = 1;
    obj->poolRef.arena = &arena;
#if URSA_CHECK_LEVEL >= 1
    arena.noteRefAlloc();
#endif
    return RefPtr<T>::adopt(obj);
}

/** std allocator over a shared PoolArena (for allocate_shared). */
template <typename T>
struct PoolAllocator
{
    using value_type = T;

    explicit PoolAllocator(std::shared_ptr<PoolArena> a)
        : arena(std::move(a))
    {
    }

    template <typename U>
    PoolAllocator(const PoolAllocator<U> &other) : arena(other.arena)
    {
    }

    T *
    allocate(std::size_t n)
    {
        if (n == 1 && alignof(T) <= alignof(std::max_align_t))
            return static_cast<T *>(arena->allocate(sizeof(T)));
        return static_cast<T *>(::operator new(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t n) noexcept
    {
        if (n == 1 && alignof(T) <= alignof(std::max_align_t))
            arena->deallocate(p, sizeof(T));
        else
            ::operator delete(p);
    }

    template <typename U>
    bool
    operator==(const PoolAllocator<U> &other) const
    {
        return arena == other.arena;
    }

    std::shared_ptr<PoolArena> arena;
};

} // namespace ursa::sim

#endif // URSA_SIM_POOL_H
