/**
 * @file
 * Cluster — the top-level simulator object: owns the event queue, the
 * RNG, the metrics registry (tracing substrate), all services and the
 * request-class table; routes invocations and completes requests.
 *
 * This is the stand-in for the paper's 8-machine Kubernetes cluster;
 * resource managers act on it exclusively through Service::setReplicas
 * (the paper's replica-count scaling) and read it through
 * MetricsRegistry (the paper's Prometheus).
 */

#ifndef URSA_SIM_CLUSTER_H
#define URSA_SIM_CLUSTER_H

#include "check/check.h"
#include "sim/cross_shard.h"
#include "sim/event_queue.h"
#include "sim/invocation.h"
#include "sim/metrics.h"
#include "sim/pool.h"
#include "sim/service.h"
#include "sim/time.h"
#include "sim/types.h"
#include "stats/rng.h"
#include "trace/span.h"
#include "trace/tracer.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ursa::sim
{

/** The simulated cluster. */
class Cluster
{
  public:
    /**
     * @param seed Seed for every stochastic draw in the simulation.
     * @param metricsWindow Metrics aggregation window (default 1 min,
     *        the paper's sampling frequency).
     */
    explicit Cluster(std::uint64_t seed, SimTime metricsWindow = kMin);

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    // --- construction ----------------------------------------------

    /** Add a service; returns its id. Call before finalize(). */
    ServiceId addService(const ServiceConfig &cfg);

    /** Add a request class; returns its id. Call before finalize(). */
    ClassId addClass(const RequestClassSpec &spec);

    /**
     * Resolve call targets and arm the metrics sampler. Must be called
     * once, after all addService/addClass and before any submit().
     */
    void finalize();

    // --- lookup -----------------------------------------------------

    Service &service(ServiceId id) { return *services_.at(id); }
    const Service &service(ServiceId id) const { return *services_.at(id); }
    Service &service(const std::string &name);
    ServiceId serviceId(const std::string &name) const;
    int numServices() const { return static_cast<int>(services_.size()); }

    const RequestClassSpec &classSpec(ClassId c) const;
    ClassId classId(const std::string &name) const;
    int numClasses() const { return static_cast<int>(classes_.size()); }

    /** Resolved downstream targets for (service, class). */
    const std::vector<ServiceId> &resolvedTargets(ServiceId s,
                                                  ClassId c) const;

    // --- operation ---------------------------------------------------

    /**
     * Submit one request of class `c` at the current time. The request
     * completes through the class's root service; end-to-end latency is
     * recorded automatically per the class's completion mode.
     */
    RequestPtr submit(ClassId c);

    /** Run the simulation until the given absolute time. */
    void run(SimTime until);

    // --- internal routing (used by Replica) ---------------------------

    /**
     * Invoke `target` for `req`; `onSyncDone` resumes the caller.
     * `parentSpan`/`hop` link the new hop's span to the caller's when
     * the request is traced (ignored otherwise). `netDelayUs` is the
     * one-way channel delay of the edge being traversed: the request
     * is delivered (and the invocation created, its arrival stamped)
     * `netDelayUs` later, and the response delays the continuation by
     * the same amount on the way back. 0 keeps the historical
     * in-process zero-latency dispatch. When the target service is
     * owned by another shard of a mesh run (attachShard), the call is
     * emitted as a cross-shard message instead.
     */
    void invoke(ServiceId target, const RequestPtr &req,
                EventQueue::Callback onSyncDone,
                trace::SpanId parentSpan = trace::kNoSpan,
                trace::HopKind hop = trace::HopKind::NestedRpc,
                SimTime netDelayUs = 0);

    /**
     * Publish `req` onto `target`'s message queue (async branch). The
     * message lands on the queue `netDelayUs` after the publish; the
     * arrival (queue wait starts) is stamped at landing.
     */
    void publishTo(ServiceId target, const RequestPtr &req,
                   trace::SpanId parentSpan = trace::kNoSpan,
                   SimTime netDelayUs = 0);

    /** An async branch of `req` finished. */
    void asyncBranchDone(const RequestPtr &req);

    // --- mesh sharding (used by ShardedSim) ----------------------------

    /**
     * Attach this cluster as shard `shardIndex` of a sharded mesh run.
     * `serviceShard[s]` names the shard owning service `s`; dispatches
     * to services owned elsewhere are emitted through `hub` as
     * cross-shard messages (sim/cross_shard.h) instead of handled
     * locally. Call after finalize(), before any submit().
     */
    void attachShard(CrossShardHub &hub, int shardIndex,
                     std::vector<int> serviceShard);

    /** Shard index of this cluster in a mesh run (0 otherwise). */
    int shardIndex() const { return shardIndex_; }

    /** True when `s` is handled by this cluster (always true unless
     *  attached to a mesh). */
    bool ownsService(ServiceId s) const
    {
        return serviceShard_.empty() ||
               serviceShard_[static_cast<std::size_t>(s)] == shardIndex_;
    }

    /**
     * Schedule one inbound cross-shard message. Called by the mesh
     * coordinator between co-advance windows, in deterministic
     * (deliverAt, source shard, emission order) order. Fires a
     * "sim.shard" violation if the message would deliver into this
     * shard's past — i.e. the co-advance window exceeded the lookahead.
     */
    void injectCrossShard(const CrossShardMsg &msg);

    // --- infrastructure ------------------------------------------------

    EventQueue &events() { return events_; }
    const EventQueue &events() const { return events_; }
    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }
    stats::Rng &rng() { return rng_; }

    /**
     * Request-flow tracer (sampling 0 = disabled, the default). Enable
     * with tracer().setSampling(rate) before or between runs; the
     * sampled-request set depends only on request ids, so traces are
     * bit-identical across URSA_THREADS settings.
     */
    trace::Tracer &tracer() { return tracer_; }
    const trace::Tracer &tracer() const { return tracer_; }

    /** Total CPU cores currently allocated across all services. */
    double totalCpuAllocation() const;

    // --- request-conservation accounting -------------------------------

    /** Requests injected via submit() so far. */
    std::uint64_t submitted() const { return submitted_; }

    /** Requests fully completed (sync path + every async branch). */
    std::uint64_t completed() const { return completed_; }

    /** Requests injected but not yet fully completed. */
    std::uint64_t inFlight() const { return submitted_ - completed_; }

    /**
     * Remote-leg proxy requests served on behalf of other shards.
     * Accounted separately from submitted()/completed() so per-shard
     * user-request counts remain comparable to a single-cluster run.
     */
    std::uint64_t remoteSubmitted() const { return remoteSubmitted_; }
    std::uint64_t remoteCompleted() const { return remoteCompleted_; }

    /**
     * Audit request conservation: injected == completed + in-flight,
     * counters monotone. With `expectQuiescent` (callers stopped and
     * the sim drained) additionally require in-flight == 0 and every
     * service queue empty — a lost request (dropped continuation,
     * leaked invocation) fires a "sim.cluster" violation here.
     */
    void auditConservation(bool expectQuiescent) const;

#if URSA_CHECK_LEVEL >= 1
    /**
     * Violation injection for the check layer's own tests: forge one
     * injected-but-never-completed request so auditConservation(true)
     * fires. Leaves the counters corrupted — use only on a cluster
     * about to be discarded.
     */
    void injectConservationViolationForTest() { ++submitted_; }
#endif

  private:
    void samplerTick();
    void maybeFinishRequest(const RequestPtr &req);
    InvocationPtr makeInvocation(ServiceId target, const RequestPtr &req,
                                 trace::SpanId parentSpan,
                                 trace::HopKind hop);
    /// Zero-latency tail of invoke(): create the invocation at the
    /// current time and hand it to the target service.
    void deliver(ServiceId target, const RequestPtr &req,
                 EventQueue::Callback onSyncDone, trace::SpanId parentSpan,
                 trace::HopKind hop);
    /// Zero-latency tail of publishTo().
    void publishLocal(ServiceId target, const RequestPtr &req,
                      trace::SpanId parentSpan);
    /// Act on an inbound Call/Publish at its delivery time: build the
    /// remote-leg proxy request and dispatch it locally.
    void remoteDeliver(const CrossShardMsg &msg);
    /// Pin {req, continuation} while a cross-shard call is in flight.
    std::uint32_t allocRemoteSlot(const RequestPtr &req,
                                  EventQueue::Callback cont, int pending);
    void remoteSlotEvent(std::uint32_t callId, bool syncDone);

    /// Freelist arena recycling Request/Invocation nodes (hot path).
    /// Declared before the event queue (and every other member that
    /// can hold a RefPtr) so pending callbacks release their pooled
    /// objects into a still-live arena during destruction.
    std::shared_ptr<PoolArena> pool_ = std::make_shared<PoolArena>();
    EventQueue events_;
    stats::Rng rng_;
    MetricsRegistry metrics_;
    trace::Tracer tracer_;
    std::vector<std::unique_ptr<Service>> services_;
    std::map<std::string, ServiceId> serviceByName_;
    std::vector<RequestClassSpec> classes_;
    std::map<std::string, ClassId> classByName_;
    /// resolved call targets: [service][class] -> target ids
    std::vector<std::map<ClassId, std::vector<ServiceId>>> resolved_;
    /// Dense dispatch tables, built once at finalize() so the per-
    /// invocation hot path does no map or string lookups. Indexed
    /// [service * numClasses + class]; null where the service has no
    /// behavior for the class. Pointees live in the services' configs
    /// and in resolved_ (stable after finalize).
    std::vector<const ClassBehavior *> behaviorTable_;
    std::vector<const std::vector<ServiceId> *> targetTable_;
    /// Root service of each class, resolved once at finalize().
    std::vector<ServiceId> rootService_;

    std::size_t tableIndex(ServiceId s, ClassId c) const
    {
        return static_cast<std::size_t>(s) * classes_.size() +
               static_cast<std::size_t>(c);
    }

    bool finalized_ = false;
    bool samplerArmed_ = false;
    SimTime sampleInterval_;
    std::uint64_t nextRequestId_ = 1;
    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;

    // Mesh sharding (attachShard): outbound hub, this cluster's shard
    // index, and the owning shard of every service (empty when not
    // attached — everything is local).
    CrossShardHub *hub_ = nullptr;
    int shardIndex_ = 0;
    std::vector<int> serviceShard_;
    /// In-flight outbound cross-shard calls: the source-side request
    /// and continuation, pinned until the remote shard answers.
    /// `pending` counts the completions still expected (SyncDone +
    /// BranchDone for a Call, BranchDone only for a Publish).
    struct RemoteSlot
    {
        RequestPtr req;
        EventQueue::Callback cont;
        int pending = 0;
    };
    std::vector<RemoteSlot> remoteSlots_;
    std::vector<std::uint32_t> remoteFreeSlots_;
    std::uint64_t remoteSubmitted_ = 0;
    std::uint64_t remoteCompleted_ = 0;
};

} // namespace ursa::sim

#endif // URSA_SIM_CLUSTER_H
