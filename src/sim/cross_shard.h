/**
 * @file
 * Cross-shard message vocabulary for the windowed-sharded simulator.
 *
 * When one connected mesh is cut into shards (sim/shard.h), every
 * inter-service call whose endpoints live on different shards becomes
 * a pair of POD messages instead of a direct dispatch: a Call (or
 * Publish) travelling source -> destination, and a SyncDone /
 * BranchDone notification travelling back. Messages carry value types
 * only — no pointers ever cross a shard boundary, which is what keeps
 * each Cluster's pool arena and refcounts single-threaded.
 *
 * Delivery times obey the conservative-lookahead contract: a message
 * emitted during the window ending at t1 has deliverAtUs > t1 whenever
 * the co-advance window is clamped to the minimum cross-shard channel
 * delay, so injecting it before the next window never schedules into a
 * shard's past. Cluster enforces this with a URSA_CHECK at injection.
 */

#ifndef URSA_SIM_CROSS_SHARD_H
#define URSA_SIM_CROSS_SHARD_H

#include "sim/time.h"
#include "sim/types.h"

#include <cstdint>

namespace ursa::sim
{

/** One unit of cross-shard traffic. */
struct CrossShardMsg
{
    enum class Kind : std::uint8_t
    {
        Call,       ///< nested/event RPC into a remote service
        Publish,    ///< MQ publish onto a remote consumer's queue
        SyncDone,   ///< remote synchronous subtree finished
        BranchDone, ///< remote async descendants all finished
    };

    /** Simulated time at which the destination shard acts on it. */
    SimTime deliverAtUs = 0;
    /** Channel delay of the originating edge (round-trip bookkeeping). */
    SimTime netDelayUs = 0;
    /** Target service (Call/Publish; destination-shard id space). */
    ServiceId target = -1;
    /** Request class and priority of the originating request. */
    ClassId classId = 0;
    int priority = 0;
    /** Shard that emitted the message (where replies go). */
    int srcShard = 0;
    /** Source-shard slot pinning {request, continuation} (Call/Publish)
     *  — echoed back verbatim in SyncDone/BranchDone. */
    std::uint32_t callId = 0;
    Kind kind = Kind::Call;
};

/**
 * Outbound mailbox interface a Cluster uses to emit cross-shard
 * traffic. Implemented by ShardedSim: `from`/`to` are shard indexes,
 * each (from, to) mailbox is written only by shard `from`'s thread
 * within a window and drained by the coordinator between windows, in
 * deterministic (deliverAt, source shard, emission order) order.
 */
class CrossShardHub
{
  public:
    virtual ~CrossShardHub() = default;

    virtual void crossSend(int from, int to, const CrossShardMsg &msg) = 0;
};

} // namespace ursa::sim

#endif // URSA_SIM_CROSS_SHARD_H
