/**
 * @file
 * Simulation time: a 64-bit integer microsecond clock and conversion
 * helpers. Integer time keeps event ordering exact and experiments
 * bit-for-bit reproducible.
 */

#ifndef URSA_SIM_TIME_H
#define URSA_SIM_TIME_H

#include <cstdint>

namespace ursa::sim
{

/** Simulated time in microseconds since the start of the run. */
using SimTime = std::int64_t;

/** One microsecond. */
constexpr SimTime kUsec = 1;
/** One millisecond. */
constexpr SimTime kMsec = 1000 * kUsec;
/** One second. */
constexpr SimTime kSec = 1000 * kMsec;
/** One minute. */
constexpr SimTime kMin = 60 * kSec;
/** One hour. */
constexpr SimTime kHour = 60 * kMin;

/** Convert microseconds to (floating) milliseconds. */
constexpr double
toMs(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(kMsec);
}

/** Convert microseconds to (floating) seconds. */
constexpr double
toSec(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(kSec);
}

/** Convert (floating) milliseconds to SimTime, rounding to nearest us. */
constexpr SimTime
fromMs(double ms)
{
    return static_cast<SimTime>(ms * static_cast<double>(kMsec) + 0.5);
}

} // namespace ursa::sim

#endif // URSA_SIM_TIME_H
