/**
 * @file
 * InlineCallback — a move-only `void()` callable with small-buffer
 * optimization, the fast-path replacement for `std::function<void()>`
 * on the simulator's hot paths (event-queue entries, invocation
 * continuations, CPU-engine completions).
 *
 * Captures up to 48 bytes are stored inline (every continuation in the
 * kernel fits: a `this` pointer, a shared_ptr or two and a timestamp);
 * larger callables fall back to a single heap allocation. Trivially
 * copyable inline captures relocate with a plain memcpy, which is what
 * makes heap sifts in the event queue cheap.
 */

#ifndef URSA_SIM_CALLBACK_H
#define URSA_SIM_CALLBACK_H

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace ursa::sim
{

/** Move-only SBO `void()` callable. */
class InlineCallback
{
  public:
    /** Inline capture capacity in bytes. */
    static constexpr std::size_t kInlineSize = 48;

    InlineCallback() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineCallback(F &&f) // NOLINT: implicit like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineSize &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            invoke_ = [](void *b) {
                (*std::launder(reinterpret_cast<Fn *>(b)))();
            };
            if constexpr (std::is_trivially_copyable_v<Fn> &&
                          std::is_trivially_destructible_v<Fn>) {
                manage_ = nullptr; // relocate via memcpy, no destroy
            } else {
                manage_ = [](void *src, void *dst) {
                    Fn *p = std::launder(reinterpret_cast<Fn *>(src));
                    if (dst)
                        ::new (dst) Fn(std::move(*p));
                    p->~Fn();
                };
            }
        } else {
            Fn *p = new Fn(std::forward<F>(f));
            std::memcpy(buf_, &p, sizeof(p));
            invoke_ = [](void *b) {
                Fn *q;
                std::memcpy(&q, b, sizeof(q));
                (*q)();
            };
            manage_ = [](void *src, void *dst) {
                Fn *q;
                std::memcpy(&q, src, sizeof(q));
                if (dst)
                    std::memcpy(dst, &q, sizeof(q));
                else
                    delete q;
            };
        }
    }

    InlineCallback(InlineCallback &&other) noexcept { moveFrom(other); }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    void
    operator()()
    {
        invoke_(buf_);
    }

    explicit operator bool() const noexcept { return invoke_ != nullptr; }

  private:
    using Invoke = void (*)(void *);
    /** manage(src, dst): relocate into `dst`, or destroy when null. */
    using Manage = void (*)(void *, void *);

    void
    moveFrom(InlineCallback &other) noexcept
    {
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        if (invoke_) {
            if (!manage_)
                std::memcpy(buf_, other.buf_, kInlineSize);
            else
                manage_(other.buf_, buf_);
        }
        other.invoke_ = nullptr;
        other.manage_ = nullptr;
    }

    void
    reset() noexcept
    {
        if (invoke_ && manage_)
            manage_(buf_, nullptr);
        invoke_ = nullptr;
        manage_ = nullptr;
    }

    Invoke invoke_ = nullptr;
    Manage manage_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[kInlineSize];
};

} // namespace ursa::sim

#endif // URSA_SIM_CALLBACK_H
