#include "sim/metrics.h"

#include "check/check.h"
#include "sim/time.h"
#include "sim/types.h"
#include "stats/timeseries.h"

#include <algorithm>
#include <stdexcept>

namespace ursa::sim
{

MetricsRegistry::MetricsRegistry(SimTime window) : window_(window)
{
    URSA_CHECK(window_ > 0, "sim.metrics",
               "metrics registry with a non-positive window");
}

void
MetricsRegistry::addService(const std::string &name)
{
    PerService s;
    s.name = name;
    for (std::size_t i = 0; i < classes_.size(); ++i) {
        s.tierLat.emplace_back(window_);
        s.arrivals.emplace_back(window_);
    }
    services_.push_back(std::move(s));
}

void
MetricsRegistry::addClass(const std::string &name, const SlaSpec &sla)
{
    classes_.push_back(
        {name, sla, stats::WindowAggregator(window_), 0, 0, {}});
    growClassVectors();
}

void
MetricsRegistry::growClassVectors()
{
    for (PerService &s : services_) {
        while (s.tierLat.size() < classes_.size()) {
            s.tierLat.emplace_back(window_);
            s.arrivals.emplace_back(window_);
        }
    }
}

void
MetricsRegistry::recordTierLatency(ServiceId s, ClassId c, SimTime at,
                                   SimTime lat)
{
    checkIds(s, c);
    stage({at, lat, s, c, PendingRec::Kind::TierLatency});
}

void
MetricsRegistry::recordEndToEnd(ClassId c, SimTime at, SimTime lat)
{
    checkIds(-1, c);
    stage({at, lat, -1, c, PendingRec::Kind::EndToEnd});
}

void
MetricsRegistry::recordArrival(ServiceId s, ClassId c, SimTime at)
{
    checkIds(s, c);
    stage({at, 0, s, c, PendingRec::Kind::Arrival});
}

void
MetricsRegistry::applyPending()
{
    for (const PendingRec &rec : pending_) {
        switch (rec.kind) {
        case PendingRec::Kind::TierLatency:
            services_.at(rec.service)
                .tierLat.at(rec.classId)
                .add(rec.at, static_cast<double>(rec.lat));
            break;
        case PendingRec::Kind::EndToEnd: {
            PerClass &pc = classes_.at(rec.classId);
            pc.e2e.add(rec.at, static_cast<double>(rec.lat));
            ++pc.completed;
            const SimTime wstart = (rec.at / window_) * window_;
            auto &[done, bad] = pc.byWindow[wstart];
            ++done;
            if (rec.lat > pc.sla.targetUs) {
                ++pc.violated;
                ++bad;
            }
            break;
        }
        case PendingRec::Kind::Arrival:
            services_.at(rec.service)
                .arrivals.at(rec.classId)
                .add(rec.at, 1.0);
            break;
        }
    }
    pending_.clear();
}

void
MetricsRegistry::recordBusySample(ServiceId s, SimTime at,
                                  double cumBusyCoreUs)
{
    // Sampler ticks are the periodic batch boundary: bound the staged
    // buffer's staleness even when nothing queries between windows.
    flushPending();
    services_.at(s).busy.append(at, cumBusyCoreUs);
}

void
MetricsRegistry::recordAllocation(ServiceId s, SimTime at, double cores)
{
    services_.at(s).allocation.append(at, cores);
}

void
MetricsRegistry::recordReplicaCount(ServiceId s, SimTime at, int n)
{
    services_.at(s).replicas.append(at, static_cast<double>(n));
}

const stats::WindowAggregator &
MetricsRegistry::tierLatency(ServiceId s, ClassId c) const
{
    flushPending();
    return services_.at(s).tierLat.at(c);
}

const stats::WindowAggregator &
MetricsRegistry::endToEnd(ClassId c) const
{
    flushPending();
    return classes_.at(c).e2e;
}

const stats::WindowAggregator &
MetricsRegistry::arrivals(ServiceId s, ClassId c) const
{
    flushPending();
    return services_.at(s).arrivals.at(c);
}

double
MetricsRegistry::arrivalRate(ServiceId s, ClassId c, SimTime from,
                             SimTime to) const
{
    flushPending();
    if (to <= from)
        return 0.0;
    // Edge windows overlap the range only partially; counting them in
    // full while dividing by the clipped span inflates the rate, so
    // clip their contribution pro-rata to the overlap fraction.
    double count = 0.0;
    for (const auto &w : services_.at(s).arrivals.at(c).windows()) {
        const SimTime overlap =
            std::min(to, w.start + window_) - std::max(from, w.start);
        if (overlap <= 0)
            continue;
        count += static_cast<double>(w.stats.count()) *
                 static_cast<double>(overlap) /
                 static_cast<double>(window_);
    }
    return count / toSec(to - from);
}

double
MetricsRegistry::cpuUtilization(ServiceId s, SimTime from, SimTime to) const
{
    if (to <= from)
        return 0.0;
    const PerService &ps = services_.at(s);
    // Busy samples are cumulative core-us; take the difference of the
    // nearest samples inside the range.
    const auto pts = ps.busy.range(from, to + 1);
    if (pts.size() < 2)
        return 0.0;
    const double busy = pts.back().value - pts.front().value;
    const double span =
        static_cast<double>(pts.back().time - pts.front().time);
    const double alloc = ps.allocation.timeAverage(
        pts.front().time, pts.back().time);
    if (span <= 0.0 || alloc <= 0.0)
        return 0.0;
    return busy / (alloc * span);
}

double
MetricsRegistry::meanAllocation(ServiceId s, SimTime from, SimTime to) const
{
    return services_.at(s).allocation.timeAverage(from, to);
}

const stats::TimeSeries &
MetricsRegistry::allocationSeries(ServiceId s) const
{
    return services_.at(s).allocation;
}

const stats::TimeSeries &
MetricsRegistry::replicaSeries(ServiceId s) const
{
    return services_.at(s).replicas;
}

namespace
{

/**
 * Weighted (windows, violating windows) of one class over [from, to).
 * Edge windows that only partially overlap the range contribute
 * fractionally, mirroring the pro-rata clipping of arrivalRate — a
 * range cutting a violating window in half should not count a full
 * bad window against a half-sized denominator.
 */
std::pair<double, double>
windowViolations(const stats::WindowAggregator &agg, const SlaSpec &sla,
                 SimTime window, SimTime from, SimTime to)
{
    double total = 0.0, bad = 0.0;
    for (const auto &w : agg.windows()) {
        const SimTime overlap =
            std::min(to, w.start + window) - std::max(from, w.start);
        if (overlap <= 0 || w.samples.empty())
            continue;
        const double weight = static_cast<double>(overlap) /
                              static_cast<double>(window);
        total += weight;
        if (w.samples.percentile(sla.percentile) >
            static_cast<double>(sla.targetUs))
            bad += weight;
    }
    return {total, bad};
}

} // namespace

double
MetricsRegistry::slaViolationRate(ClassId c, SimTime from, SimTime to) const
{
    flushPending();
    const PerClass &pc = classes_.at(c);
    const auto [total, bad] =
        windowViolations(pc.e2e, pc.sla, window_, from, to);
    return total > 0.0 ? bad / total : 0.0;
}

double
MetricsRegistry::overallSlaViolationRate(SimTime from, SimTime to) const
{
    flushPending();
    double total = 0.0, bad = 0.0;
    for (const PerClass &pc : classes_) {
        const auto [t, b] =
            windowViolations(pc.e2e, pc.sla, window_, from, to);
        total += t;
        bad += b;
    }
    return total > 0.0 ? bad / total : 0.0;
}

double
MetricsRegistry::requestViolationRate(ClassId c, SimTime from,
                                      SimTime to) const
{
    // Edge windows are included in full here on purpose: this is a
    // ratio of request counts with no division by the range's span, so
    // the pro-rata clipping that arrivalRate and windowViolations need
    // would only distort which requests are counted.
    flushPending();
    const PerClass &pc = classes_.at(c);
    std::uint64_t done = 0, bad = 0;
    for (const auto &[wstart, counts] : pc.byWindow) {
        if (wstart + window_ <= from || wstart >= to)
            continue;
        done += counts.first;
        bad += counts.second;
    }
    return done ? static_cast<double>(bad) / static_cast<double>(done) : 0.0;
}

const std::string &
MetricsRegistry::serviceName(ServiceId s) const
{
    return services_.at(s).name;
}

const std::string &
MetricsRegistry::className(ClassId c) const
{
    return classes_.at(c).name;
}

const SlaSpec &
MetricsRegistry::sla(ClassId c) const
{
    return classes_.at(c).sla;
}

} // namespace ursa::sim
