#include "sim/client.h"

#include "check/check.h"
#include "sim/cluster.h"
#include "sim/time.h"
#include "sim/types.h"
#include "stats/rng.h"

#include <utility>

namespace ursa::sim
{

ClassPicker
fixedMix(std::vector<double> weights)
{
    return [w = std::move(weights)](stats::Rng &rng, SimTime) {
        return static_cast<ClassId>(rng.weightedChoice(w));
    };
}

OpenLoopClient::OpenLoopClient(Cluster &cluster, RateProfile rate,
                               ClassPicker picker, std::uint64_t seed)
    : cluster_(cluster), rate_(std::move(rate)), picker_(std::move(picker)),
      rng_(seed)
{
}

void
OpenLoopClient::start(SimTime at)
{
    running_ = true;
    cluster_.events().schedule(at, [this] { scheduleNext(); });
}

void
OpenLoopClient::scheduleNext()
{
    if (!running_)
        return;
    const SimTime now = cluster_.events().now();
    const double rps = rate_(now);
    if (rps <= 0.0) {
        // Idle period: re-check the profile shortly.
        cluster_.events().scheduleIn(kSec, [this] { scheduleNext(); });
        return;
    }
    const double gapUs = rng_.exponential(1e6 / rps);
    cluster_.events().scheduleIn(
        static_cast<SimTime>(gapUs) + 1, [this] {
            if (!running_)
                return;
            const ClassId c = picker_(rng_, cluster_.events().now());
            cluster_.submit(c);
            ++submitted_;
            scheduleNext();
        });
}

ClosedLoopClient::ClosedLoopClient(Cluster &cluster, int users,
                                   SimTime thinkMeanUs, ClassPicker picker,
                                   std::uint64_t seed)
    : cluster_(cluster), users_(users), thinkMeanUs_(thinkMeanUs),
      picker_(std::move(picker)), rng_(seed)
{
    URSA_CHECK(users_ > 0, "sim.client",
               "closed-loop client with no users");
}

void
ClosedLoopClient::start(SimTime at)
{
    running_ = true;
    for (int u = 0; u < users_; ++u) {
        const SimTime offset =
            static_cast<SimTime>(rng_.uniform(0.0, 1e6));
        cluster_.events().schedule(at + offset, [this] { userLoop(); });
    }
}

void
ClosedLoopClient::userLoop()
{
    if (!running_)
        return;
    const ClassId c = picker_(rng_, cluster_.events().now());
    RequestPtr req = cluster_.submit(c);
    ++submitted_;
    req->onSyncDone = [this](Request &) {
        if (!running_)
            return;
        const SimTime think =
            static_cast<SimTime>(rng_.exponential(
                static_cast<double>(thinkMeanUs_))) + 1;
        cluster_.events().scheduleIn(think, [this] { userLoop(); });
    };
}

} // namespace ursa::sim
