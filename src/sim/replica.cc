#include "sim/replica.h"

#include "check/check.h"
#include "sim/callback.h"
#include "sim/cluster.h"
#include "sim/invocation.h"
#include "sim/service.h"
#include "sim/time.h"
#include "sim/types.h"
#include "trace/span.h"

#include <algorithm>
#include <cmath>

namespace ursa::sim
{

namespace
{

/** Work below this many core-us counts as finished (float tolerance). */
constexpr double kWorkEps = 1e-6;

} // namespace

Replica::Replica(Service &svc, int index)
    : svc_(svc), index_(index), threads_(svc.config().threads),
      daemonThreads_(svc.config().daemonThreads),
      cpuLimit_(svc.config().cpuPerReplica),
      lastSync_(svc.cluster().events().now())
{
    URSA_CHECK(threads_ > 0, "sim.replica",
               "replica configured with an empty worker pool");
    URSA_CHECK(cpuLimit_ > 0.0, "sim.replica",
               "replica configured with a non-positive CPU limit");
}

void
Replica::auditAccounting()
{
    URSA_CHECK(busyWorkers_ >= 0 && busyWorkers_ <= threads_,
               "sim.replica",
               "worker accounting violation: busy + idle != pool size");
    URSA_CHECK(busyDaemons_ >= 0 && busyDaemons_ <= daemonThreads_,
               "sim.replica",
               "daemon accounting violation: busy + idle != pool size");
    // A queued invocation while a worker idles breaks FIFO admission.
    URSA_CHECK_SLOW(pending_.empty() || busyWorkers_ == threads_ ||
                        draining_,
                    "sim.replica",
                    "pending RPC queued while a worker is idle");
    URSA_CHECK_SLOW(daemonPending_.empty() ||
                        busyDaemons_ == daemonThreads_,
                    "sim.replica",
                    "pending daemon task queued while a daemon is idle");
}

#if URSA_CHECK_LEVEL >= 1
void
Replica::injectAccountingViolationForTest()
{
    --busyWorkers_;
    auditAccounting();
}
#endif

bool
Replica::hasFreeWorker() const
{
    return !draining_ && busyWorkers_ < threads_;
}

void
Replica::submit(InvocationPtr inv)
{
    if (busyWorkers_ < threads_) {
        ++busyWorkers_;
        auditAccounting();
        begin(std::move(inv));
    } else {
        pending_.push_back(std::move(inv));
    }
}

void
Replica::beginMq(InvocationPtr inv)
{
    URSA_CHECK(busyWorkers_ < threads_, "sim.replica",
               "MQ hand-off to a replica with no free worker");
    ++busyWorkers_;
    auditAccounting();
    begin(std::move(inv));
}

void
Replica::begin(InvocationPtr inv)
{
    inv->replica = this;
    // End of queue wait: a worker picked the invocation up. Recorded
    // unconditionally (one store) so traced spans can split queue wait
    // from service time.
    inv->serviceStart = svc_.cluster().events().now();
    auto &rng = svc_.cluster().rng();
    const double work = rng.lognormal(inv->behavior->computeParams);
    cpuSubmit(work, [this, inv] { advance(inv); });
}

void
Replica::advance(const InvocationPtr &inv)
{
    // advance() self-recurses once per fire-and-forget call; the call
    // index strictly grows toward the behavior's call list, so this
    // bound doubles as the recursion depth bound.
    URSA_CHECK(inv->callIdx <= inv->behavior->calls.size() + 1,
               "sim.replica",
               "invocation call index ran past the behavior's call list");
    Cluster &cluster = svc_.cluster();
    if (inv->callIdx >= inv->behavior->calls.size()) {
        // Post-compute phase, then finish.
        if (inv->behavior->postComputeMeanUs > 0.0) {
            const double work =
                cluster.rng().lognormal(inv->behavior->postComputeParams);
            // Consume the phase so re-entry goes straight to finish.
            auto done = [this, inv] { finish(inv); };
            cpuSubmit(work, std::move(done));
            // Mark post-compute as consumed by bumping past the calls.
            const_cast<InvocationPtr &>(inv)->callIdx =
                inv->behavior->calls.size() + 1;
            return;
        }
        finish(inv);
        return;
    }
    if (inv->callIdx > inv->behavior->calls.size()) {
        finish(inv);
        return;
    }

    // Scatter-gather fan-out: issue every call at once and resume when
    // the last synchronous branch responds (stage latency = max, not
    // sum). Event-driven calls are joined like nested ones here; MQ
    // publishes fire and forget as usual.
    if (inv->behavior->parallelCalls && inv->callIdx == 0) {
        Cluster &c = svc_.cluster();
        const SimTime t0 = c.events().now();
        const auto &calls = inv->behavior->calls;
        inv->callIdx = calls.size();
        auto pendingJoins = std::make_shared<int>(0);
        for (std::size_t k = 0; k < calls.size(); ++k) {
            const ServiceId tgt = (*inv->targets)[k];
            if (calls[k].kind == CallKind::MqPublish) {
                inv->req->outstandingAsync += 1;
                c.publishTo(tgt, inv->req, inv->span,
                            calls[k].netDelayUs);
                continue;
            }
            ++*pendingJoins;
            c.invoke(tgt, inv->req, [this, inv, t0, pendingJoins] {
                if (--*pendingJoins == 0) {
                    inv->blockedUs +=
                        svc_.cluster().events().now() - t0;
                    advance(inv);
                }
            }, inv->span,
            calls[k].kind == CallKind::EventRpc
                ? trace::HopKind::EventRpc
                : trace::HopKind::NestedRpc,
            calls[k].netDelayUs);
        }
        if (*pendingJoins == 0)
            advance(inv); // only fire-and-forget calls
        return;
    }

    const CallSpec &call = inv->behavior->calls[inv->callIdx];
    const ServiceId target = (*inv->targets)[inv->callIdx];
    switch (call.kind) {
      case CallKind::NestedRpc: {
        const SimTime t0 = cluster.events().now();
        // The worker stays held while we wait for the downstream
        // response — this is what creates backpressure.
        cluster.invoke(target, inv->req, [this, inv, t0] {
            inv->blockedUs += svc_.cluster().events().now() - t0;
            ++inv->callIdx;
            advance(inv);
        }, inv->span, trace::HopKind::NestedRpc, call.netDelayUs);
        return;
      }
      case CallKind::EventRpc: {
        // Event-driven RPC (paper Fig. 1b): the handler hands the
        // request to a daemon thread and frees its worker, but the
        // response is still gated on the downstream reply — "not
        // fully asynchronous". From a daemon context a further event
        // dispatch degenerates to a nested call (the daemon blocks).
        if (inv->onDaemon) {
            const SimTime t0 = cluster.events().now();
            cluster.invoke(target, inv->req, [this, inv, t0] {
                inv->blockedUs += svc_.cluster().events().now() - t0;
                ++inv->callIdx;
                advance(inv);
            }, inv->span, trace::HopKind::EventRpc, call.netDelayUs);
            return;
        }
        inv->onDaemon = true;
        daemonSubmit([this, inv, target, d = call.netDelayUs] {
            // S0 of an event-driven tier: the daemon issues the
            // downstream call now; record the tier latency here
            // (queue wait + compute + daemon-dispatch wait).
            Cluster &c = svc_.cluster();
            if (!inv->eventLatencyRecorded) {
                inv->eventLatencyRecorded = true;
                c.metrics().recordTierLatency(
                    inv->serviceId, inv->req->classId, c.events().now(),
                    c.events().now() - inv->arrival);
            }
            const SimTime t0 = c.events().now();
            c.invoke(target, inv->req, [this, inv, t0] {
                inv->blockedUs += svc_.cluster().events().now() - t0;
                ++inv->callIdx;
                advance(inv);
            }, inv->span, trace::HopKind::EventRpc, d);
        });
        // The worker is free while the daemon waits.
        releaseWorker();
        return;
      }
      case CallKind::MqPublish: {
        inv->req->outstandingAsync += 1;
        cluster.publishTo(target, inv->req, inv->span, call.netDelayUs);
        ++inv->callIdx;
        advance(inv);
        return;
      }
    }
}

void
Replica::finish(const InvocationPtr &inv)
{
    Cluster &cluster = svc_.cluster();
    const SimTime now = cluster.events().now();

    // Per-tier response time (paper Sec. III): service latency
    // excluding downstream waits. Event-driven tiers were recorded at
    // the daemon send instead (hasEventCall is derived once from the
    // behavior's calls, not rescanned per finish).
    if (!inv->behavior->hasEventCall) {
        cluster.metrics().recordTierLatency(inv->serviceId,
                                            inv->req->classId, now,
                                            now - inv->arrival -
                                                inv->blockedUs);
    }

    if (inv->span != trace::kNoSpan) {
        trace::Span s;
        s.id = inv->span;
        s.parent = inv->parentSpan;
        s.requestId = inv->req->id;
        s.classId = inv->req->classId;
        s.serviceId = inv->serviceId;
        s.kind = inv->hopKind;
        s.start = inv->arrival;
        s.serviceStart = inv->serviceStart;
        s.end = now;
        s.blockedUs = inv->blockedUs;
        cluster.tracer().record(s);
    }

    auto cont = std::move(inv->onSyncDone);
    if (inv->onDaemon)
        daemonRelease();
    else
        releaseWorker();
    if (cont)
        cont();
}

void
Replica::releaseWorker()
{
    URSA_CHECK(busyWorkers_ > 0, "sim.replica",
               "releasing a worker on a fully idle replica");
    if (!pending_.empty()) {
        InvocationPtr next = std::move(pending_.front());
        pending_.pop_front();
        begin(std::move(next));
        return;
    }
    // Worker idles; offer it to the service's message queue.
    if (!draining_ && svc_.config().mqConsumer) {
        --busyWorkers_;
        if (svc_.offerMqWork(*this))
            return; // offerMqWork re-busied the worker via beginMq
        return;
    }
    --busyWorkers_;
    if (draining_ && drained())
        svc_.notifyDrained(*this);
}

void
Replica::daemonSubmit(InlineCallback task)
{
    if (busyDaemons_ < daemonThreads_) {
        ++busyDaemons_;
        task();
    } else {
        daemonPending_.push_back(std::move(task));
    }
}

void
Replica::daemonRelease()
{
    URSA_CHECK(busyDaemons_ > 0, "sim.replica",
               "releasing a daemon on a fully idle replica");
    if (!daemonPending_.empty()) {
        auto task = std::move(daemonPending_.front());
        daemonPending_.pop_front();
        task();
        return;
    }
    --busyDaemons_;
    if (draining_ && drained())
        svc_.notifyDrained(*this);
}

void
Replica::setCpuLimit(double cores)
{
    URSA_CHECK(cores > 0.0, "sim.replica",
               "CPU limit must be positive");
    cpuSync();
    cpuLimit_ = cores;
    cpuReschedule();
}

void
Replica::setCpuFactor(double factor)
{
    URSA_CHECK(factor > 0.0 && factor <= 1.0, "sim.replica",
               "throttle factor outside (0, 1]");
    cpuSync();
    cpuFactor_ = factor;
    cpuReschedule();
}

double
Replica::busyCoreUs()
{
    cpuSync();
    cpuReschedule();
    return busyIntegral_;
}

void
Replica::startDrain()
{
    draining_ = true;
    if (drained())
        svc_.notifyDrained(*this);
}

bool
Replica::drained() const
{
    return draining_ && busyWorkers_ == 0 && busyDaemons_ == 0 &&
           pending_.empty() && daemonPending_.empty() &&
           jobRemaining_.empty();
}

// --- processor-sharing CPU engine -----------------------------------

void
Replica::cpuSubmit(double workCoreUs, InlineCallback done)
{
    cpuSync();
    jobRemaining_.push_back(std::max(workCoreUs, kWorkEps));
    std::uint32_t slot;
    if (!jobFree_.empty()) {
        slot = jobFree_.back();
        jobFree_.pop_back();
        jobSlab_[slot] = std::move(done);
    } else {
        slot = static_cast<std::uint32_t>(jobSlab_.size());
        jobSlab_.push_back(std::move(done));
    }
    jobSlot_.push_back(slot);
    cpuReschedule();
}

void
Replica::cpuSync()
{
    const SimTime now = svc_.cluster().events().now();
    const SimTime dt = now - lastSync_;
    lastSync_ = now;
    if (dt <= 0 || jobRemaining_.empty())
        return;
    const double n = static_cast<double>(jobRemaining_.size());
    const double rate = std::min(1.0, effectiveLimit() / n);
    const double progress = rate * static_cast<double>(dt);
    for (double &remaining : jobRemaining_)
        remaining = std::max(0.0, remaining - progress);
    busyIntegral_ +=
        std::min(n, effectiveLimit()) * static_cast<double>(dt);
}

void
Replica::cpuReschedule()
{
    ++cpuGen_;
    if (jobRemaining_.empty())
        return;
    const double n = static_cast<double>(jobRemaining_.size());
    const double rate = std::min(1.0, effectiveLimit() / n);
    double minRemaining = jobRemaining_.front();
    for (const double remaining : jobRemaining_)
        minRemaining = std::min(minRemaining, remaining);
    const double delay = minRemaining / rate;
    const SimTime when = std::max<SimTime>(
        static_cast<SimTime>(std::ceil(delay)), minRemaining > kWorkEps ? 1 : 0);
    const std::uint64_t gen = cpuGen_;
    svc_.cluster().events().scheduleIn(when,
                                       [this, gen] { onCpuEvent(gen); });
}

void
Replica::onCpuEvent(std::uint64_t gen)
{
    if (gen != cpuGen_)
        return; // superseded by a newer schedule
    cpuSync();
    // Collect finished jobs first: their callbacks may submit new work.
    // Stable in-place compaction keeps the surviving jobs in submission
    // order (completion order is deterministic state).
    std::vector<std::uint32_t> finished = std::move(finishedScratch_);
    finished.clear();
    std::size_t w = 0;
    for (std::size_t r = 0; r < jobRemaining_.size(); ++r) {
        if (jobRemaining_[r] <= kWorkEps) {
            finished.push_back(jobSlot_[r]);
            continue;
        }
        jobRemaining_[w] = jobRemaining_[r];
        jobSlot_[w] = jobSlot_[r];
        ++w;
    }
    jobRemaining_.resize(w);
    jobSlot_.resize(w);
    cpuReschedule();
    for (const std::uint32_t slot : finished) {
        InlineCallback fn = std::move(jobSlab_[slot]);
        jobFree_.push_back(slot);
        fn();
    }
    finished.clear();
    finishedScratch_ = std::move(finished);
    if (draining_ && drained())
        svc_.notifyDrained(*this);
}

} // namespace ursa::sim
