/**
 * @file
 * Experiment reporting: dump a cluster's collected metrics as CSV for
 * plotting — per-class latency/violation series, per-service load,
 * utilization and allocation series, and a one-struct experiment
 * summary. This is the "export" side of the tracing substrate.
 */

#ifndef URSA_SIM_REPORT_H
#define URSA_SIM_REPORT_H

#include "sim/cluster.h"
#include "sim/time.h"

#include <iosfwd>
#include <string>

namespace ursa::sim
{

/** Whole-experiment summary over a time range. */
struct ExperimentSummary
{
    SimTime from = 0;
    SimTime to = 0;
    double overallViolationRate = 0.0;
    double totalCpuCores = 0.0; ///< time-averaged allocation
    std::uint64_t requestsCompleted = 0;

    struct PerClass
    {
        std::string name;
        double slaPercentile = 0.0;
        double slaTargetMs = 0.0;
        double latencyAtSlaPctMs = 0.0;
        double p50Ms = 0.0;
        double p99Ms = 0.0;
        double violationRate = 0.0;
        std::uint64_t completed = 0;
    };
    std::vector<PerClass> classes;
};

/** Compute the summary of `cluster` over [from, to). */
ExperimentSummary summarize(const Cluster &cluster, SimTime from,
                            SimTime to);

/** Print a human-readable summary block. */
void printSummary(const ExperimentSummary &summary, std::ostream &out);

/**
 * Per-window class series as CSV:
 * `minute,class,count,p50_ms,p99_ms,lat_at_sla_ms,violated`.
 */
void writeClassSeriesCsv(const Cluster &cluster, SimTime from, SimTime to,
                         std::ostream &out);

/**
 * Per-window service series as CSV:
 * `minute,service,rps,utilization,alloc_cores,replicas`.
 */
void writeServiceSeriesCsv(const Cluster &cluster, SimTime from,
                           SimTime to, std::ostream &out);

} // namespace ursa::sim

#endif // URSA_SIM_REPORT_H
