/**
 * @file
 * The discrete-event kernel: a time-ordered queue of callbacks with a
 * monotone clock. Ties are broken by insertion order so the simulation
 * is fully deterministic.
 *
 * Fast path: entries hold a small-buffer-optimized move-only callback
 * (InlineCallback) instead of a `std::function`, the heap is a
 * hand-rolled binary min-heap whose sifts move entries through a hole
 * (no swaps, no copies), and the top entry is moved out on pop.
 */

#ifndef URSA_SIM_EVENT_QUEUE_H
#define URSA_SIM_EVENT_QUEUE_H

#include "check/check.h"
#include "sim/callback.h"
#include "sim/time.h"

#include <cstdint>
#include <vector>

namespace ursa::sim
{

/** Deterministic discrete-event queue. */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /**
     * Schedule `fn` to run at absolute time `at`; `at` must not be in
     * the past. Events at equal times fire in scheduling order.
     */
    void schedule(SimTime at, Callback fn);

    /** Schedule `fn` to run `delay` microseconds from now (>= 0). */
    void scheduleIn(SimTime delay, Callback fn);

    /**
     * Pop and run the next event, advancing the clock to its time.
     * @return false when the queue is empty.
     */
    bool runNext();

    /**
     * Run every event with time <= `until`, then set the clock to
     * `until`. New events scheduled while running are honored.
     */
    void runUntil(SimTime until);

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Total events executed so far. */
    std::uint64_t processed() const { return processed_; }

#if URSA_CHECK_LEVEL >= 1
    /**
     * Violation injection for the check layer's own tests: swap the
     * two earliest heap entries so the next pops run out of (time,
     * seq) order and the level-1 monotonicity check fires. No-op with
     * fewer than two pending events.
     */
    void corruptOrderForTest();
#endif

  private:
    struct Entry
    {
        SimTime at = 0;
        std::uint64_t seq = 0;
        Callback fn;
    };

    /** Strict total order: earlier time first, then insertion order. */
    static bool
    earlier(const Entry &a, const Entry &b)
    {
        if (a.at != b.at)
            return a.at < b.at;
        return a.seq < b.seq;
    }

    /** Move the minimum entry out of the heap and restore heap order. */
    Entry popTop();

#if URSA_CHECK_LEVEL >= 1
    /** Audit the popped entry against the last-dispatched (time, seq). */
    void auditPopOrder(const Entry &e);
#endif
#if URSA_CHECK_LEVEL >= 2
    /** Full heap-property scan, sampled every kAuditStride ops. */
    void auditHeap();
#endif

    SimTime now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t processed_ = 0;
#if URSA_CHECK_LEVEL >= 1
    /// (time, seq) of the last dispatched event, for the level-1
    /// strict-total-order audit (FIFO tie-break included).
    SimTime lastAt_ = -1;
    std::uint64_t lastSeq_ = 0;
#endif
#if URSA_CHECK_LEVEL >= 2
    static constexpr std::uint64_t kAuditStride = 1024;
    std::uint64_t auditCountdown_ = 0;
#endif
    /// Binary min-heap ordered by `earlier`; heap_[0] is the minimum.
    std::vector<Entry> heap_;
};

} // namespace ursa::sim

#endif // URSA_SIM_EVENT_QUEUE_H
