/**
 * @file
 * The discrete-event kernel: a time-ordered queue of callbacks with a
 * monotone clock. Ties are broken by insertion order so the simulation
 * is fully deterministic.
 */

#ifndef URSA_SIM_EVENT_QUEUE_H
#define URSA_SIM_EVENT_QUEUE_H

#include "sim/time.h"

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ursa::sim
{

/** Deterministic discrete-event queue. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /**
     * Schedule `fn` to run at absolute time `at`; `at` must not be in
     * the past. Events at equal times fire in scheduling order.
     */
    void schedule(SimTime at, Callback fn);

    /** Schedule `fn` to run `delay` microseconds from now (>= 0). */
    void scheduleIn(SimTime delay, Callback fn);

    /**
     * Pop and run the next event, advancing the clock to its time.
     * @return false when the queue is empty.
     */
    bool runNext();

    /**
     * Run every event with time <= `until`, then set the clock to
     * `until`. New events scheduled while running are honored.
     */
    void runUntil(SimTime until);

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Total events executed so far. */
    std::uint64_t processed() const { return processed_; }

  private:
    struct Entry
    {
        SimTime at;
        std::uint64_t seq;
        Callback fn;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.at != b.at)
                return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    SimTime now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t processed_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

} // namespace ursa::sim

#endif // URSA_SIM_EVENT_QUEUE_H
