/**
 * @file
 * The discrete-event kernel: a time-ordered queue of callbacks with a
 * monotone clock. Ties are broken by insertion order so the simulation
 * is fully deterministic.
 *
 * Two backends share one strict (time, seq) total order:
 *
 *  - `Calendar` (default): a calendar queue tuned for the banded
 *    timestamp distributions our workloads produce. Scheduling appends
 *    a 24-byte key to a time bucket (O(1)); the callback body lives in
 *    a slot slab and never moves with the key (struct-of-arrays — heap
 *    sifts used to relocate 80-byte entries one level at a time).
 *    Bucket width is a power of two, recalibrated from the observed
 *    inter-event gap at every epoch rebuild; events beyond the epoch
 *    horizon wait in an overflow ladder. Draining pulls one bucket at
 *    a time into a run list sorted by exact (time, seq), so dispatch
 *    order is bit-identical to the heap's.
 *  - `Heap` (`URSA_EVENTQUEUE=heap`): the PR-1 hand-rolled binary
 *    min-heap, kept as the A/B benching baseline and the differential
 *    -test oracle.
 *
 * Dispatch is batched: all events of one timestamp drain as a band —
 * the clock advances once and the order audit runs per batch instead
 * of per event.
 */

#ifndef URSA_SIM_EVENT_QUEUE_H
#define URSA_SIM_EVENT_QUEUE_H

#include "check/check.h"
#include "sim/callback.h"
#include "sim/time.h"

#include <cstdint>
#include <vector>

namespace ursa::sim
{

/** Deterministic discrete-event queue. */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    /** Event-ordering backend. */
    enum class Backend
    {
        Calendar, ///< calendar queue, O(1) amortized (default)
        Heap,     ///< binary min-heap oracle (URSA_EVENTQUEUE=heap)
    };

    /** Backend from URSA_EVENTQUEUE ("heap"/"calendar"; default calendar). */
    EventQueue();

    /** Explicit backend (differential tests, A/B benching). */
    explicit EventQueue(Backend backend);

    /** Active backend. */
    Backend backend() const { return backend_; }

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /**
     * Schedule `fn` to run at absolute time `at`; `at` must not be in
     * the past. Events at equal times fire in scheduling order.
     */
    void schedule(SimTime at, Callback fn);

    /** Schedule `fn` to run `delay` microseconds from now (>= 0). */
    void scheduleIn(SimTime delay, Callback fn);

    /**
     * Pop and run the next event, advancing the clock to its time.
     * @return false when the queue is empty.
     */
    bool runNext();

    /**
     * Run every event with time <= `until`, then set the clock to
     * `until`. New events scheduled while running are honored.
     */
    void runUntil(SimTime until);

    /** Number of pending events. */
    std::size_t pending() const
    {
        return backend_ == Backend::Heap ? heap_.size() : count_;
    }

    /** Total events executed so far. */
    std::uint64_t processed() const { return processed_; }

    /** Earliest pending event time, or `empty` sentinel (max SimTime). */
    SimTime nextEventTime();

#if URSA_CHECK_LEVEL >= 1
    /**
     * Violation injection for the check layer's own tests: swap the
     * two earliest entries so the next pops run out of (time, seq)
     * order and the level-1 monotonicity check fires. No-op with
     * fewer than two pending events.
     */
    void corruptOrderForTest();
#endif

  private:
    // --- heap backend ---------------------------------------------------

    struct Entry
    {
        SimTime at = 0;
        std::uint64_t seq = 0;
        Callback fn;
    };

    /** Strict total order: earlier time first, then insertion order. */
    static bool
    earlier(const Entry &a, const Entry &b)
    {
        if (a.at != b.at)
            return a.at < b.at;
        return a.seq < b.seq;
    }

    void heapPush(Entry e);

    /** Move the minimum entry out of the heap and restore heap order. */
    Entry popTop();

    void runUntilHeap(SimTime until);

    // --- calendar backend -----------------------------------------------

    /**
     * Sort/relocation key of one pending event; the callback stays put
     * in `slots_[slot]` while keys move between buckets and the day
     * run list.
     */
    struct Key
    {
        SimTime at = 0;
        std::uint64_t seq = 0;
        std::uint32_t slot = 0;
    };

    static bool
    keyEarlier(const Key &a, const Key &b)
    {
        if (a.at != b.at)
            return a.at < b.at;
        return a.seq < b.seq;
    }

    std::uint32_t storeSlot(Callback &&fn);
    void calendarInsert(Key k);
    void scheduleCalendar(SimTime at, Callback &&fn);
    void runUntilCalendar(SimTime until);

    /**
     * Make the day run list non-empty, pulling the next occupied
     * bucket (rebuilding the epoch from the overflow ladder when the
     * buckets are spent). Never pulls past `until`: returns false when
     * no pending event is at or before it.
     */
    bool pullNextDay(SimTime until);

    /**
     * Drain every day-list event sharing the front timestamp (the
     * caller has already checked it against the run bound), advancing
     * the clock once for the whole band.
     */
    void runBatch();

    /**
     * Re-bucket everything at or beyond the frontier around a new
     * epoch starting at `startAt`, recalibrating the bucket width from
     * the observed inter-event gap and the bucket count from the
     * pending population. Day-list entries (already below the
     * frontier) are untouched.
     */
    void rebuildEpoch(SimTime startAt);

#if URSA_CHECK_LEVEL >= 1
    /** Per-batch order audit: batches strictly increase in time. */
    void auditBatchStart(SimTime at);
#endif
#if URSA_CHECK_LEVEL >= 2
    /** Full backend-structure scan, sampled every kAuditStride ops. */
    void auditStructure();
    void maybeAuditStructure();
#endif

    Backend backend_;
    SimTime now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t processed_ = 0;

#if URSA_CHECK_LEVEL >= 1
    /// (time, seq) of the last dispatched event, for the level-1
    /// strict-total-order audit (FIFO tie-break included).
    SimTime lastAt_ = -1;
    std::uint64_t lastSeq_ = 0;
#endif
#if URSA_CHECK_LEVEL >= 2
    static constexpr std::uint64_t kAuditStride = 1024;
    std::uint64_t auditCountdown_ = 0;
#endif

    /// Binary min-heap ordered by `earlier`; heap_[0] is the minimum.
    std::vector<Entry> heap_;

    /// Callback slab: bodies stay in their slot from schedule to
    /// dispatch; `freeSlots_` recycles vacated slots LIFO.
    std::vector<Callback> slots_;
    std::vector<std::uint32_t> freeSlots_;

    /// Current epoch: bucket b spans
    /// [epochStart_ + b * width, epochStart_ + (b + 1) * width).
    std::vector<std::vector<Key>> buckets_;
    int widthShift_ = 8;          ///< bucket width = 1 << widthShift_ us
    SimTime epochStart_ = 0;
    SimTime epochEnd_ = 0;        ///< first time beyond the last bucket
    SimTime frontier_ = 0;        ///< lower edge of first undrained bucket
    std::size_t cursor_ = 0;      ///< next bucket to drain
    /// Events at or beyond epochEnd_ wait here until an epoch rebuild.
    std::vector<Key> overflow_;
    SimTime minOverflow_ = 0;     ///< valid while overflow_ is non-empty
    /// Sorted (time, seq) run list of the bucket being drained; events
    /// below the frontier insert here directly.
    std::vector<Key> day_;
    std::size_t dayPos_ = 0;
    std::size_t count_ = 0;       ///< total pending (day+buckets+overflow)
    bool resizePending_ = false;  ///< occupancy blew past the bucket grid

    /// Width calibration: sum/count of positive gaps between distinct
    /// consecutive dispatch times since the last rebuild.
    SimTime gapSum_ = 0;
    std::uint64_t gapCount_ = 0;
    SimTime lastDispatchAt_ = -1;
};

} // namespace ursa::sim

#endif // URSA_SIM_EVENT_QUEUE_H
