/**
 * @file
 * The discrete-event kernel: a time-ordered queue of callbacks with a
 * monotone clock. Ties are broken by insertion order so the simulation
 * is fully deterministic.
 *
 * Fast path: entries hold a small-buffer-optimized move-only callback
 * (InlineCallback) instead of a `std::function`, the heap is a
 * hand-rolled binary min-heap whose sifts move entries through a hole
 * (no swaps, no copies), and the top entry is moved out on pop.
 */

#ifndef URSA_SIM_EVENT_QUEUE_H
#define URSA_SIM_EVENT_QUEUE_H

#include "sim/callback.h"
#include "sim/time.h"

#include <cstdint>
#include <vector>

namespace ursa::sim
{

/** Deterministic discrete-event queue. */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /**
     * Schedule `fn` to run at absolute time `at`; `at` must not be in
     * the past. Events at equal times fire in scheduling order.
     */
    void schedule(SimTime at, Callback fn);

    /** Schedule `fn` to run `delay` microseconds from now (>= 0). */
    void scheduleIn(SimTime delay, Callback fn);

    /**
     * Pop and run the next event, advancing the clock to its time.
     * @return false when the queue is empty.
     */
    bool runNext();

    /**
     * Run every event with time <= `until`, then set the clock to
     * `until`. New events scheduled while running are honored.
     */
    void runUntil(SimTime until);

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Total events executed so far. */
    std::uint64_t processed() const { return processed_; }

  private:
    struct Entry
    {
        SimTime at = 0;
        std::uint64_t seq = 0;
        Callback fn;
    };

    /** Strict total order: earlier time first, then insertion order. */
    static bool
    earlier(const Entry &a, const Entry &b)
    {
        if (a.at != b.at)
            return a.at < b.at;
        return a.seq < b.seq;
    }

    /** Move the minimum entry out of the heap and restore heap order. */
    Entry popTop();

    SimTime now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t processed_ = 0;
    /// Binary min-heap ordered by `earlier`; heap_[0] is the minimum.
    std::vector<Entry> heap_;
};

} // namespace ursa::sim

#endif // URSA_SIM_EVENT_QUEUE_H
