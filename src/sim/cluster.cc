#include "sim/cluster.h"

#include "check/check.h"
#include "sim/event_queue.h"
#include "sim/invocation.h"
#include "sim/pool.h"
#include "sim/service.h"
#include "sim/time.h"
#include "sim/types.h"
#include "trace/span.h"

#include <stdexcept>

namespace ursa::sim
{

Cluster::Cluster(std::uint64_t seed, SimTime metricsWindow)
    : rng_(seed), metrics_(metricsWindow),
      sampleInterval_(std::max<SimTime>(metricsWindow / 2, kSec))
{
}

ServiceId
Cluster::addService(const ServiceConfig &cfg)
{
    if (finalized_)
        throw std::logic_error("addService after finalize");
    if (serviceByName_.count(cfg.name))
        throw std::invalid_argument("duplicate service name: " + cfg.name);
    const ServiceId id = static_cast<ServiceId>(services_.size());
    metrics_.addService(cfg.name);
    services_.push_back(std::make_unique<Service>(*this, cfg, id));
    serviceByName_[cfg.name] = id;
    return id;
}

ClassId
Cluster::addClass(const RequestClassSpec &spec)
{
    if (finalized_)
        throw std::logic_error("addClass after finalize");
    if (classByName_.count(spec.name))
        throw std::invalid_argument("duplicate class name: " + spec.name);
    const ClassId id = static_cast<ClassId>(classes_.size());
    metrics_.addClass(spec.name, spec.sla);
    classes_.push_back(spec);
    classByName_[spec.name] = id;
    return id;
}

void
Cluster::finalize()
{
    if (finalized_)
        throw std::logic_error("finalize called twice");
    // Resolve every CallSpec target to a ServiceId and sanity-check
    // that class roots exist and have behaviors.
    resolved_.resize(services_.size());
    for (ServiceId s = 0; s < numServices(); ++s) {
        for (const auto &[cls, behavior] : services_[s]->config().behaviors) {
            std::vector<ServiceId> targets;
            targets.reserve(behavior.calls.size());
            for (const CallSpec &call : behavior.calls) {
                const auto it = serviceByName_.find(call.target);
                if (it == serviceByName_.end()) {
                    throw std::invalid_argument(
                        "unknown call target '" + call.target +
                        "' from service " + services_[s]->config().name);
                }
                if (call.kind == CallKind::MqPublish &&
                    !services_[it->second]->config().mqConsumer) {
                    throw std::invalid_argument(
                        "MqPublish to non-MQ service " + call.target);
                }
                targets.push_back(it->second);
            }
            resolved_[s][cls] = std::move(targets);
        }
    }
    rootService_.reserve(classes_.size());
    for (const RequestClassSpec &spec : classes_) {
        const ServiceId root = serviceId(spec.rootService);
        if (!services_[root]->config().behaviors.count(
                classByName_.at(spec.name))) {
            throw std::invalid_argument(
                "root service " + spec.rootService +
                " has no behavior for class " + spec.name);
        }
        rootService_.push_back(root);
    }
    // Dense dispatch tables: one flat [service][class] grid replacing
    // the per-invocation map lookups on the hot path.
    behaviorTable_.assign(services_.size() * classes_.size(), nullptr);
    targetTable_.assign(services_.size() * classes_.size(), nullptr);
    for (ServiceId s = 0; s < numServices(); ++s) {
        for (const auto &[cls, behavior] : services_[s]->config().behaviors) {
            if (cls < 0 || cls >= numClasses()) {
                throw std::invalid_argument(
                    "service " + services_[s]->config().name +
                    " has a behavior for an unknown class id");
            }
            behaviorTable_[tableIndex(s, cls)] = &behavior;
            targetTable_[tableIndex(s, cls)] = &resolved_[s].at(cls);
        }
    }
    finalized_ = true;
}

Service &
Cluster::service(const std::string &name)
{
    return *services_.at(serviceId(name));
}

ServiceId
Cluster::serviceId(const std::string &name) const
{
    const auto it = serviceByName_.find(name);
    if (it == serviceByName_.end())
        throw std::invalid_argument("unknown service: " + name);
    return it->second;
}

const RequestClassSpec &
Cluster::classSpec(ClassId c) const
{
    return classes_.at(c);
}

ClassId
Cluster::classId(const std::string &name) const
{
    const auto it = classByName_.find(name);
    if (it == classByName_.end())
        throw std::invalid_argument("unknown class: " + name);
    return it->second;
}

const std::vector<ServiceId> &
Cluster::resolvedTargets(ServiceId s, ClassId c) const
{
    return resolved_.at(s).at(c);
}

RequestPtr
Cluster::submit(ClassId c)
{
    if (!finalized_)
        throw std::logic_error("submit before finalize");
    const RequestClassSpec &spec = classes_.at(c);
    ++submitted_;
    auto req = std::allocate_shared<Request>(PoolAllocator<Request>(pool_));
    req->id = nextRequestId_++;
    req->classId = c;
    req->priority = spec.priority;
    req->submitTime = events_.now();
    if (tracer_.enabled() && tracer_.sampleRequest(req->id)) {
        req->traced = true;
        req->rootSpan = tracer_.nextSpanId();
    }

    const ServiceId root = rootService_[c];
    invoke(root, req, [this, req] {
        req->syncDone = true;
        req->syncDoneTime = events_.now();
        if (req->onSyncDone)
            req->onSyncDone(*req);
        const RequestClassSpec &s = classes_.at(req->classId);
        if (!s.asyncCompletion) {
            metrics_.recordEndToEnd(req->classId, events_.now(),
                                    req->syncDoneTime - req->submitTime);
        }
        maybeFinishRequest(req);
    }, req->rootSpan, trace::HopKind::NestedRpc);
    return req;
}

InvocationPtr
Cluster::makeInvocation(ServiceId target, const RequestPtr &req,
                        trace::SpanId parentSpan, trace::HopKind hop)
{
    const std::size_t idx = tableIndex(target, req->classId);
    const ClassBehavior *behavior = behaviorTable_[idx];
    if (behavior == nullptr) {
        throw std::logic_error("service " +
                               services_.at(target)->config().name +
                               " has no behavior for class " +
                               classes_.at(req->classId).name);
    }
    auto inv = std::allocate_shared<Invocation>(
        PoolAllocator<Invocation>(pool_));
    inv->req = req;
    inv->serviceId = target;
    inv->behavior = behavior;
    inv->targets = targetTable_[idx];
    inv->arrival = events_.now();
    if (req->traced) {
        inv->span = tracer_.nextSpanId();
        inv->parentSpan = parentSpan;
        inv->hopKind = hop;
    }
    return inv;
}

void
Cluster::invoke(ServiceId target, const RequestPtr &req,
                EventQueue::Callback onSyncDone, trace::SpanId parentSpan,
                trace::HopKind hop)
{
    InvocationPtr inv = makeInvocation(target, req, parentSpan, hop);
    inv->onSyncDone = std::move(onSyncDone);
    metrics_.recordArrival(target, req->classId, events_.now());
    services_.at(target)->dispatch(std::move(inv));
}

void
Cluster::publishTo(ServiceId target, const RequestPtr &req,
                   trace::SpanId parentSpan)
{
    // Queue wait counts toward the tier, so arrival is at publish time.
    InvocationPtr inv = makeInvocation(target, req, parentSpan,
                                       trace::HopKind::MqPublish);
    inv->onSyncDone = [this, req] { asyncBranchDone(req); };
    metrics_.recordArrival(target, req->classId, events_.now());
    services_.at(target)->publish(std::move(inv));
}

void
Cluster::asyncBranchDone(const RequestPtr &req)
{
    URSA_CHECK(req->outstandingAsync > 0, "sim.cluster",
               "async branch completed with no outstanding branch");
    req->outstandingAsync -= 1;
    maybeFinishRequest(req);
}

void
Cluster::maybeFinishRequest(const RequestPtr &req)
{
    if (!req->fullyDone() || req->allDoneTime >= 0)
        return;
    req->allDoneTime = events_.now();
    ++completed_;
    URSA_CHECK(completed_ <= submitted_, "sim.cluster",
               "request conservation violation: completed > injected");
    if (req->traced) {
        // The client-side root span covers the full request lifetime
        // (submit until the sync path and every async branch finished).
        trace::Span s;
        s.id = req->rootSpan;
        s.requestId = req->id;
        s.classId = req->classId;
        s.kind = trace::HopKind::Client;
        s.start = req->submitTime;
        s.serviceStart = req->submitTime;
        s.end = req->allDoneTime;
        tracer_.record(s);
    }
    const RequestClassSpec &spec = classes_.at(req->classId);
    if (spec.asyncCompletion) {
        metrics_.recordEndToEnd(req->classId, events_.now(),
                                req->allDoneTime - req->submitTime);
    }
    if (req->onFullyDone)
        req->onFullyDone(*req);
}

void
Cluster::run(SimTime until)
{
    if (!finalized_)
        throw std::logic_error("run before finalize");
    if (!samplerArmed_) {
        samplerArmed_ = true;
        samplerTick();
    }
    events_.runUntil(until);
}

void
Cluster::samplerTick()
{
    for (ServiceId s = 0; s < numServices(); ++s) {
        metrics_.recordBusySample(s, events_.now(),
                                  services_[s]->cumBusyCoreUs());
    }
#if URSA_CHECK_LEVEL >= 2
    auditConservation(false); // periodic live sweep
#endif
    events_.scheduleIn(sampleInterval_, [this] { samplerTick(); });
}

void
Cluster::auditConservation(bool expectQuiescent) const
{
    URSA_CHECK(completed_ <= submitted_, "sim.cluster",
               "request conservation violation: completed > injected");
    if (!expectQuiescent)
        return;
    URSA_CHECK(inFlight() == 0, "sim.cluster",
               "request conservation violation at drain: "
               "injected != completed");
    for (const auto &svc : services_) {
        URSA_CHECK(svc->mqDepth() == 0, "sim.cluster",
                   "message queue non-empty at drain");
        URSA_CHECK(svc->rpcQueueDepth() == 0, "sim.cluster",
                   "RPC queue non-empty at drain");
    }
}

double
Cluster::totalCpuAllocation() const
{
    double total = 0.0;
    for (const auto &s : services_)
        total += s->cpuAllocation();
    return total;
}

} // namespace ursa::sim
