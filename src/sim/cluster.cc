#include "sim/cluster.h"

#include "check/check.h"
#include "sim/cross_shard.h"
#include "sim/event_queue.h"
#include "sim/invocation.h"
#include "sim/pool.h"
#include "sim/service.h"
#include "sim/time.h"
#include "sim/types.h"
#include "trace/span.h"

#include <stdexcept>

namespace ursa::sim
{

namespace
{

/**
 * Pool-backed record of one latency-bearing local call in flight: the
 * delivery event and the delayed response resume both capture only
 * {this, RefPtr} and stay inside the InlineCallback SBO buffer, so a
 * nonzero `netDelayUs` adds no malloc to the dispatch hot path.
 */
struct NetHop
{
    RefState poolRef;

    RequestPtr req;
    EventQueue::Callback cont;
    ServiceId target = -1;
    SimTime delayUs = 0;
    trace::SpanId parentSpan = trace::kNoSpan;
    trace::HopKind hopKind = trace::HopKind::NestedRpc;
};

} // namespace

Cluster::Cluster(std::uint64_t seed, SimTime metricsWindow)
    : rng_(seed), metrics_(metricsWindow),
      sampleInterval_(std::max<SimTime>(metricsWindow / 2, kSec))
{
}

ServiceId
Cluster::addService(const ServiceConfig &cfg)
{
    if (finalized_)
        throw std::logic_error("addService after finalize");
    if (serviceByName_.count(cfg.name))
        throw std::invalid_argument("duplicate service name: " + cfg.name);
    const ServiceId id = static_cast<ServiceId>(services_.size());
    metrics_.addService(cfg.name);
    services_.push_back(std::make_unique<Service>(*this, cfg, id));
    serviceByName_[cfg.name] = id;
    return id;
}

ClassId
Cluster::addClass(const RequestClassSpec &spec)
{
    if (finalized_)
        throw std::logic_error("addClass after finalize");
    if (classByName_.count(spec.name))
        throw std::invalid_argument("duplicate class name: " + spec.name);
    const ClassId id = static_cast<ClassId>(classes_.size());
    metrics_.addClass(spec.name, spec.sla);
    classes_.push_back(spec);
    classByName_[spec.name] = id;
    return id;
}

void
Cluster::finalize()
{
    if (finalized_)
        throw std::logic_error("finalize called twice");
    // Resolve every CallSpec target to a ServiceId and sanity-check
    // that class roots exist and have behaviors.
    resolved_.resize(services_.size());
    for (ServiceId s = 0; s < numServices(); ++s) {
        for (const auto &[cls, behavior] : services_[s]->config().behaviors) {
            std::vector<ServiceId> targets;
            targets.reserve(behavior.calls.size());
            for (const CallSpec &call : behavior.calls) {
                const auto it = serviceByName_.find(call.target);
                if (it == serviceByName_.end()) {
                    throw std::invalid_argument(
                        "unknown call target '" + call.target +
                        "' from service " + services_[s]->config().name);
                }
                if (call.kind == CallKind::MqPublish &&
                    !services_[it->second]->config().mqConsumer) {
                    throw std::invalid_argument(
                        "MqPublish to non-MQ service " + call.target);
                }
                targets.push_back(it->second);
            }
            resolved_[s][cls] = std::move(targets);
        }
    }
    rootService_.reserve(classes_.size());
    for (const RequestClassSpec &spec : classes_) {
        const ServiceId root = serviceId(spec.rootService);
        if (!services_[root]->config().behaviors.count(
                classByName_.at(spec.name))) {
            throw std::invalid_argument(
                "root service " + spec.rootService +
                " has no behavior for class " + spec.name);
        }
        rootService_.push_back(root);
    }
    // Dense dispatch tables: one flat [service][class] grid replacing
    // the per-invocation map lookups on the hot path.
    behaviorTable_.assign(services_.size() * classes_.size(), nullptr);
    targetTable_.assign(services_.size() * classes_.size(), nullptr);
    for (ServiceId s = 0; s < numServices(); ++s) {
        for (const auto &[cls, behavior] : services_[s]->config().behaviors) {
            if (cls < 0 || cls >= numClasses()) {
                throw std::invalid_argument(
                    "service " + services_[s]->config().name +
                    " has a behavior for an unknown class id");
            }
            behaviorTable_[tableIndex(s, cls)] = &behavior;
            targetTable_[tableIndex(s, cls)] = &resolved_[s].at(cls);
        }
    }
    finalized_ = true;
}

Service &
Cluster::service(const std::string &name)
{
    return *services_.at(serviceId(name));
}

ServiceId
Cluster::serviceId(const std::string &name) const
{
    const auto it = serviceByName_.find(name);
    if (it == serviceByName_.end())
        throw std::invalid_argument("unknown service: " + name);
    return it->second;
}

const RequestClassSpec &
Cluster::classSpec(ClassId c) const
{
    return classes_.at(c);
}

ClassId
Cluster::classId(const std::string &name) const
{
    const auto it = classByName_.find(name);
    if (it == classByName_.end())
        throw std::invalid_argument("unknown class: " + name);
    return it->second;
}

const std::vector<ServiceId> &
Cluster::resolvedTargets(ServiceId s, ClassId c) const
{
    return resolved_.at(s).at(c);
}

RequestPtr
Cluster::submit(ClassId c)
{
    if (!finalized_)
        throw std::logic_error("submit before finalize");
    const RequestClassSpec &spec = classes_.at(c);
    URSA_CHECK(ownsService(rootService_[c]), "sim.cluster",
               "submit on a shard that does not own the class's root "
               "service");
    ++submitted_;
    RequestPtr req = makeRef<Request>(*pool_);
    req->id = nextRequestId_++;
    req->classId = c;
    req->priority = spec.priority;
    req->submitTime = events_.now();
    if (tracer_.enabled() && tracer_.sampleRequest(req->id)) {
        req->traced = true;
        req->rootSpan = tracer_.nextSpanId();
    }

    const ServiceId root = rootService_[c];
    invoke(root, req, [this, req] {
        req->syncDone = true;
        req->syncDoneTime = events_.now();
        if (req->onSyncDone)
            req->onSyncDone(*req);
        const RequestClassSpec &s = classes_.at(req->classId);
        if (!s.asyncCompletion) {
            metrics_.recordEndToEnd(req->classId, events_.now(),
                                    req->syncDoneTime - req->submitTime);
        }
        maybeFinishRequest(req);
    }, req->rootSpan, trace::HopKind::NestedRpc);
    return req;
}

InvocationPtr
Cluster::makeInvocation(ServiceId target, const RequestPtr &req,
                        trace::SpanId parentSpan, trace::HopKind hop)
{
    const std::size_t idx = tableIndex(target, req->classId);
    const ClassBehavior *behavior = behaviorTable_[idx];
    if (behavior == nullptr) {
        throw std::logic_error("service " +
                               services_.at(target)->config().name +
                               " has no behavior for class " +
                               classes_.at(req->classId).name);
    }
    InvocationPtr inv = makeRef<Invocation>(*pool_);
    inv->req = req;
    inv->serviceId = target;
    inv->behavior = behavior;
    inv->targets = targetTable_[idx];
    inv->arrival = events_.now();
    if (req->traced) {
        inv->span = tracer_.nextSpanId();
        inv->parentSpan = parentSpan;
        inv->hopKind = hop;
    }
    return inv;
}

void
Cluster::invoke(ServiceId target, const RequestPtr &req,
                EventQueue::Callback onSyncDone, trace::SpanId parentSpan,
                trace::HopKind hop, SimTime netDelayUs)
{
    if (hub_ != nullptr && !ownsService(target)) {
        // Cross-shard call: pin {req, continuation} locally, ship a
        // POD message. The remote shard answers with SyncDone (resume
        // the continuation) and BranchDone (remote async descendants
        // all drained — release the async pin taken here).
        URSA_CHECK(netDelayUs > 0, "sim.shard",
                   "zero-latency call crosses a shard boundary "
                   "(plan and mesh cut disagree)");
        req->outstandingAsync += 1;
        CrossShardMsg msg;
        msg.kind = CrossShardMsg::Kind::Call;
        msg.deliverAtUs = events_.now() + netDelayUs;
        msg.netDelayUs = netDelayUs;
        msg.target = target;
        msg.classId = req->classId;
        msg.priority = req->priority;
        msg.srcShard = shardIndex_;
        msg.callId = allocRemoteSlot(req, std::move(onSyncDone), 2);
        hub_->crossSend(shardIndex_, serviceShard_[target], msg);
        return;
    }
    if (netDelayUs > 0) {
        // Latency-bearing local edge: deliver after the channel delay
        // (arrival stamped at delivery), and delay the response resume
        // by the same amount on the way back.
        RefPtr<NetHop> rec = makeRef<NetHop>(*pool_);
        rec->req = req;
        rec->cont = std::move(onSyncDone);
        rec->target = target;
        rec->delayUs = netDelayUs;
        rec->parentSpan = parentSpan;
        rec->hopKind = hop;
        events_.scheduleIn(netDelayUs, [this, rec] {
            EventQueue::Callback resume = [this, rec] {
                events_.scheduleIn(rec->delayUs, std::move(rec->cont));
            };
            deliver(rec->target, rec->req, std::move(resume),
                    rec->parentSpan, rec->hopKind);
        });
        return;
    }
    deliver(target, req, std::move(onSyncDone), parentSpan, hop);
}

void
Cluster::deliver(ServiceId target, const RequestPtr &req,
                 EventQueue::Callback onSyncDone, trace::SpanId parentSpan,
                 trace::HopKind hop)
{
    InvocationPtr inv = makeInvocation(target, req, parentSpan, hop);
    inv->onSyncDone = std::move(onSyncDone);
    metrics_.recordArrival(target, req->classId, events_.now());
    services_.at(target)->dispatch(std::move(inv));
}

void
Cluster::publishTo(ServiceId target, const RequestPtr &req,
                   trace::SpanId parentSpan, SimTime netDelayUs)
{
    if (hub_ != nullptr && !ownsService(target)) {
        // The caller already took the async pin for this publish; the
        // remote proxy's BranchDone releases it.
        URSA_CHECK(netDelayUs > 0, "sim.shard",
                   "zero-latency publish crosses a shard boundary "
                   "(plan and mesh cut disagree)");
        CrossShardMsg msg;
        msg.kind = CrossShardMsg::Kind::Publish;
        msg.deliverAtUs = events_.now() + netDelayUs;
        msg.netDelayUs = netDelayUs;
        msg.target = target;
        msg.classId = req->classId;
        msg.priority = req->priority;
        msg.srcShard = shardIndex_;
        msg.callId = allocRemoteSlot(req, EventQueue::Callback(), 1);
        hub_->crossSend(shardIndex_, serviceShard_[target], msg);
        return;
    }
    if (netDelayUs > 0) {
        RefPtr<NetHop> rec = makeRef<NetHop>(*pool_);
        rec->req = req;
        rec->target = target;
        rec->parentSpan = parentSpan;
        events_.scheduleIn(netDelayUs, [this, rec] {
            publishLocal(rec->target, rec->req, rec->parentSpan);
        });
        return;
    }
    publishLocal(target, req, parentSpan);
}

void
Cluster::publishLocal(ServiceId target, const RequestPtr &req,
                      trace::SpanId parentSpan)
{
    // Queue wait counts toward the tier, so arrival is at landing time.
    InvocationPtr inv = makeInvocation(target, req, parentSpan,
                                       trace::HopKind::MqPublish);
    inv->onSyncDone = [this, req] { asyncBranchDone(req); };
    metrics_.recordArrival(target, req->classId, events_.now());
    services_.at(target)->publish(std::move(inv));
}

void
Cluster::attachShard(CrossShardHub &hub, int shardIndex,
                     std::vector<int> serviceShard)
{
    if (!finalized_)
        throw std::logic_error("attachShard before finalize");
    if (serviceShard.size() != services_.size())
        throw std::invalid_argument(
            "attachShard: serviceShard size != service count");
    hub_ = &hub;
    shardIndex_ = shardIndex;
    serviceShard_ = std::move(serviceShard);
}

std::uint32_t
Cluster::allocRemoteSlot(const RequestPtr &req, EventQueue::Callback cont,
                         int pending)
{
    std::uint32_t id;
    if (!remoteFreeSlots_.empty()) {
        id = remoteFreeSlots_.back();
        remoteFreeSlots_.pop_back();
    } else {
        id = static_cast<std::uint32_t>(remoteSlots_.size());
        remoteSlots_.emplace_back();
    }
    RemoteSlot &slot = remoteSlots_[id];
    slot.req = req;
    slot.cont = std::move(cont);
    slot.pending = pending;
    return id;
}

void
Cluster::remoteSlotEvent(std::uint32_t callId, bool syncDone)
{
    RemoteSlot &slot = remoteSlots_.at(callId);
    URSA_CHECK(slot.pending > 0, "sim.shard",
               "cross-shard completion for an already-released call");
    if (syncDone) {
        EventQueue::Callback cont = std::move(slot.cont);
        if (--slot.pending == 0) {
            slot.req.reset();
            remoteFreeSlots_.push_back(callId);
        }
        cont();
    } else {
        RequestPtr req = slot.req;
        if (--slot.pending == 0) {
            slot.req.reset();
            slot.cont = EventQueue::Callback();
            remoteFreeSlots_.push_back(callId);
        }
        asyncBranchDone(req);
    }
}

void
Cluster::injectCrossShard(const CrossShardMsg &msg)
{
    URSA_CHECK(msg.deliverAtUs > events_.now(), "sim.shard",
               "cross-shard message delivers into the shard's past "
               "(co-advance window exceeds the channel lookahead)");
    switch (msg.kind) {
    case CrossShardMsg::Kind::Call:
    case CrossShardMsg::Kind::Publish:
        events_.schedule(msg.deliverAtUs,
                         [this, msg] { remoteDeliver(msg); });
        break;
    case CrossShardMsg::Kind::SyncDone:
        events_.schedule(msg.deliverAtUs, [this, id = msg.callId] {
            remoteSlotEvent(id, /*syncDone=*/true);
        });
        break;
    case CrossShardMsg::Kind::BranchDone:
        events_.schedule(msg.deliverAtUs, [this, id = msg.callId] {
            remoteSlotEvent(id, /*syncDone=*/false);
        });
        break;
    }
}

void
Cluster::remoteDeliver(const CrossShardMsg &msg)
{
    // Build the destination-side proxy request: locally it looks like
    // a freshly submitted request of the same class, but it is
    // accounted in the remote counters, never traced, and excluded
    // from end-to-end recording — the source shard owns the
    // user-visible request.
    ++remoteSubmitted_;
    RequestPtr proxy = makeRef<Request>(*pool_);
    proxy->id = nextRequestId_++;
    proxy->classId = msg.classId;
    proxy->priority = msg.priority;
    proxy->submitTime = events_.now();
    proxy->remoteLeg = true;
    proxy->onFullyDone = [this, src = msg.srcShard, callId = msg.callId,
                          d = msg.netDelayUs](Request &) {
        CrossShardMsg done;
        done.kind = CrossShardMsg::Kind::BranchDone;
        done.deliverAtUs = events_.now() + d;
        done.srcShard = shardIndex_;
        done.callId = callId;
        hub_->crossSend(shardIndex_, src, done);
    };
    if (msg.kind == CrossShardMsg::Kind::Publish) {
        // The remote publisher holds one async pin for this branch;
        // mirror it here so the proxy stays open until the consumer
        // (and any descendants it spawns) finish.
        proxy->syncDone = true;
        proxy->syncDoneTime = events_.now();
        proxy->outstandingAsync = 1;
        publishLocal(msg.target, proxy, trace::kNoSpan);
        return;
    }
    deliver(
        msg.target, proxy,
        [this, proxy, src = msg.srcShard, callId = msg.callId,
         d = msg.netDelayUs] {
            proxy->syncDone = true;
            proxy->syncDoneTime = events_.now();
            CrossShardMsg done;
            done.kind = CrossShardMsg::Kind::SyncDone;
            done.deliverAtUs = events_.now() + d;
            done.srcShard = shardIndex_;
            done.callId = callId;
            hub_->crossSend(shardIndex_, src, done);
            maybeFinishRequest(proxy);
        },
        trace::kNoSpan, trace::HopKind::NestedRpc);
}

void
Cluster::asyncBranchDone(const RequestPtr &req)
{
    URSA_CHECK(req->outstandingAsync > 0, "sim.cluster",
               "async branch completed with no outstanding branch");
    req->outstandingAsync -= 1;
    maybeFinishRequest(req);
}

void
Cluster::maybeFinishRequest(const RequestPtr &req)
{
    if (!req->fullyDone() || req->allDoneTime >= 0)
        return;
    req->allDoneTime = events_.now();
    if (req->remoteLeg) {
        // Destination-side proxy of a cross-shard call: accounted in
        // the remote counters and invisible to end-to-end metrics; the
        // onFullyDone hook ships BranchDone back to the source shard.
        ++remoteCompleted_;
        URSA_CHECK(remoteCompleted_ <= remoteSubmitted_, "sim.cluster",
                   "remote-leg conservation violation: completed > "
                   "injected");
        if (req->onFullyDone)
            req->onFullyDone(*req);
        return;
    }
    ++completed_;
    URSA_CHECK(completed_ <= submitted_, "sim.cluster",
               "request conservation violation: completed > injected");
    if (req->traced) {
        // The client-side root span covers the full request lifetime
        // (submit until the sync path and every async branch finished).
        trace::Span s;
        s.id = req->rootSpan;
        s.requestId = req->id;
        s.classId = req->classId;
        s.kind = trace::HopKind::Client;
        s.start = req->submitTime;
        s.serviceStart = req->submitTime;
        s.end = req->allDoneTime;
        tracer_.record(s);
    }
    const RequestClassSpec &spec = classes_.at(req->classId);
    if (spec.asyncCompletion) {
        metrics_.recordEndToEnd(req->classId, events_.now(),
                                req->allDoneTime - req->submitTime);
    }
    if (req->onFullyDone)
        req->onFullyDone(*req);
}

void
Cluster::run(SimTime until)
{
    if (!finalized_)
        throw std::logic_error("run before finalize");
    if (!samplerArmed_) {
        samplerArmed_ = true;
        samplerTick();
    }
    events_.runUntil(until);
}

void
Cluster::samplerTick()
{
    for (ServiceId s = 0; s < numServices(); ++s) {
        metrics_.recordBusySample(s, events_.now(),
                                  services_[s]->cumBusyCoreUs());
    }
#if URSA_CHECK_LEVEL >= 2
    auditConservation(false); // periodic live sweep
#endif
    events_.scheduleIn(sampleInterval_, [this] { samplerTick(); });
}

void
Cluster::auditConservation(bool expectQuiescent) const
{
    URSA_CHECK(completed_ <= submitted_, "sim.cluster",
               "request conservation violation: completed > injected");
    if (!expectQuiescent)
        return;
    URSA_CHECK(inFlight() == 0, "sim.cluster",
               "request conservation violation at drain: "
               "injected != completed");
    URSA_CHECK(remoteSubmitted_ == remoteCompleted_, "sim.cluster",
               "remote-leg conservation violation at drain: "
               "injected != completed");
    URSA_CHECK(remoteFreeSlots_.size() == remoteSlots_.size(),
               "sim.cluster",
               "cross-shard call slots still pinned at drain");
    for (const auto &svc : services_) {
        URSA_CHECK(svc->mqDepth() == 0, "sim.cluster",
                   "message queue non-empty at drain");
        URSA_CHECK(svc->rpcQueueDepth() == 0, "sim.cluster",
                   "RPC queue non-empty at drain");
    }
}

double
Cluster::totalCpuAllocation() const
{
    double total = 0.0;
    for (const auto &s : services_)
        total += s->cpuAllocation();
    return total;
}

} // namespace ursa::sim
