/**
 * @file
 * Shared simulator value types: identifiers, request classes, requests,
 * and the per-service behavior configuration.
 */

#ifndef URSA_SIM_TYPES_H
#define URSA_SIM_TYPES_H

#include "sim/pool.h"
#include "sim/time.h"
#include "stats/rng.h"
#include "trace/span.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ursa::sim
{

/** Index of a service within its cluster. */
using ServiceId = int;

/** Index of a request class within its cluster. */
using ClassId = int;

/** How a service invokes a downstream service (paper Fig. 1). */
enum class CallKind
{
    NestedRpc, ///< synchronous: caller's worker blocks for the response
    EventRpc,  ///< handler dispatches to a daemon thread, returns at once
    MqPublish, ///< fire-and-forget publish onto the target's queue
};

/**
 * Default one-way network delay of an inter-service call, in
 * microseconds: a realistic per-hop floor for kernel-bypass-free
 * datacenter RPC through a service mesh (sidecar proxy each side).
 * Besides fidelity, a nonzero floor is what gives the sharded kernel
 * per-edge lookahead — see computeShardPlan in sim/shard.h.
 */
inline constexpr SimTime kDefaultNetDelayUs = 1000;

/** One downstream call made while handling a request class. */
struct CallSpec
{
    std::string target;
    CallKind kind = CallKind::NestedRpc;
    /**
     * Minimum one-way network delay of this channel (us), applied by
     * Cluster dispatch to the request delivery and, for RPC, to the
     * response. 0 is an explicit option meaning colocated/in-process
     * (same-shard only: a zero-latency edge has no lookahead, so
     * computeShardPlan merges its endpoints into one shard).
     */
    SimTime netDelayUs = kDefaultNetDelayUs;
};

/**
 * How one service handles one request class: compute before the
 * downstream calls, the calls themselves (sequential), and compute
 * after the last call completes.
 *
 * Compute amounts are CPU work in core-microseconds drawn from a
 * lognormal distribution — the stand-in for the paper's business logic
 * (text ops are ~ms, video ops ~100 ms, ML inference ~seconds).
 */
struct ClassBehavior
{
    double computeMeanUs = 1000.0;
    double computeCv = 0.3;
    std::vector<CallSpec> calls;
    /**
     * When true, nested calls in `calls` are issued concurrently and
     * joined (scatter-gather fan-out); the stage latency is the max of
     * the branches instead of their sum. Async calls (event/MQ) fire
     * immediately either way. When false (default), calls run
     * sequentially — the paper folds repeated accesses into cumulative
     * latency, which matches the sequential model.
     */
    bool parallelCalls = false;
    double postComputeMeanUs = 0.0;
    double postComputeCv = 0.3;
    /**
     * Derived, set by Service from `calls` — do not set by hand. True
     * when any call is event-driven: the tier latency is then recorded
     * at the daemon send instead of at finish (paper Fig. 1b), and the
     * dispatch hot path branches on this instead of rescanning `calls`.
     */
    bool hasEventCall = false;
    /**
     * Derived, set by Service alongside `hasEventCall` — the (mu,
     * sigma) pairs of the compute and post-compute lognormals,
     * precomputed once so the per-sample hot path skips the
     * log/sqrt re-derivation (PR-6 profile rock #2).
     */
    stats::LognormalParams computeParams;
    stats::LognormalParams postComputeParams;
};

/** Static configuration of one microservice. */
struct ServiceConfig
{
    std::string name;
    int threads = 16;           ///< worker threads per replica
    int daemonThreads = 8;      ///< event-dispatch threads per replica
    double cpuPerReplica = 1.0; ///< CPU limit per replica, in cores
    int initialReplicas = 1;
    bool mqConsumer = false;    ///< ingress is a message queue
    std::map<ClassId, ClassBehavior> behaviors;
};

/** End-to-end SLA of a request class (paper Tables II-IV). */
struct SlaSpec
{
    double percentile = 99.0; ///< e.g. 99 for p99, 50 for p50
    SimTime targetUs = 0;     ///< latency target
};

/** A request class (or priority level) handled by an application. */
struct RequestClassSpec
{
    std::string name;
    std::string rootService;    ///< service that receives the request
    int priority = 0;           ///< 0 = highest; used by MQ dequeues
    SlaSpec sla;
    /**
     * When true the SLA is judged at full completion (all async MQ /
     * event-driven descendants done); otherwise at the synchronous
     * response. MQ-backed classes like object-detect use true.
     */
    bool asyncCompletion = false;
};

/**
 * One in-flight user request. Owned by RefPtr (pool-backed intrusive
 * refcount, see sim/pool.h): invocation continuations and async
 * branches keep it alive until fully done. Must not outlive the
 * Cluster that created it.
 */
struct Request
{
    RefState poolRef;

    std::uint64_t id = 0;
    ClassId classId = 0;
    int priority = 0;
    SimTime submitTime = 0;
    SimTime syncDoneTime = -1;
    SimTime allDoneTime = -1;
    int outstandingAsync = 0;
    bool syncDone = false;

    /// Selected by the tracer's deterministic hash-of-id gate at
    /// submit; every hop of a traced request emits a span.
    bool traced = false;
    /// True for the destination-side proxy of a cross-shard call: the
    /// request is accounted in the remote counters, never traced, and
    /// excluded from end-to-end latency recording (the source shard
    /// owns the user-visible request).
    bool remoteLeg = false;
    /// Client root span id of a traced request (kNoSpan otherwise).
    trace::SpanId rootSpan = trace::kNoSpan;

    /** Invoked exactly once when sync + all async branches are done. */
    std::function<void(Request &)> onFullyDone;

    /** Invoked once when the root synchronous response is produced. */
    std::function<void(Request &)> onSyncDone;

    /** True once both completion conditions hold. */
    bool fullyDone() const { return syncDone && outstandingAsync == 0; }
};

using RequestPtr = RefPtr<Request>;

} // namespace ursa::sim

#endif // URSA_SIM_TYPES_H
