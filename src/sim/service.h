/**
 * @file
 * A Service groups the replicas of one microservice, owns its ingress
 * (round-robin RPC dispatch or a shared priority message queue), and
 * implements replica-count scaling with draining — the knob every
 * resource manager in this repo turns.
 */

#ifndef URSA_SIM_SERVICE_H
#define URSA_SIM_SERVICE_H

#include "check/check.h"
#include "sim/invocation.h"
#include "sim/replica.h"
#include "sim/types.h"

#include <deque>
#include <map>
#include <memory>
#include <vector>

namespace ursa::sim
{

class Cluster;

/** One microservice: replicas + ingress + scaling. */
class Service
{
  public:
    Service(Cluster &cluster, ServiceConfig cfg, ServiceId id);

    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

    /** Immutable configuration. */
    const ServiceConfig &config() const { return cfg_; }

    /** Cluster-wide id. */
    ServiceId id() const { return id_; }

    /** Owning cluster. */
    Cluster &cluster() { return cluster_; }

    /** Dispatch an RPC invocation to a replica (round-robin, preferring
     * replicas with a free worker). */
    void dispatch(InvocationPtr inv);

    /** Enqueue an MQ message; consumed by priority then FIFO order. */
    void publish(InvocationPtr inv);

    /**
     * Scale to `n` active replicas (n >= 1). Shrinking drains the
     * youngest replicas: they finish queued work, then disappear.
     */
    void setReplicas(int n);

    /** Number of active (non-draining) replicas. */
    int activeReplicas() const;

    /** Total allocated cores, including still-draining replicas. */
    double cpuAllocation() const;

    /** Set the throttle factor on every replica (fault injection). */
    void setCpuFactor(double factor);

    /** Set the per-replica CPU limit on every replica (profiling). */
    void setCpuLimitPerReplica(double cores);

    /** Cumulative busy core-us across current and reaped replicas. */
    double cumBusyCoreUs();

    /** Depth of the service's message queue (all priorities). */
    std::size_t mqDepth() const;

    /** Sum of per-replica pending RPC queues. */
    std::size_t rpcQueueDepth() const;

    /**
     * Called by a replica when a worker frees up: hands it the next MQ
     * message if one is waiting. @return true if work was handed over.
     */
    bool offerMqWork(Replica &replica);

    /** Called by a replica that finished draining. */
    void notifyDrained(Replica &replica);

#if URSA_CHECK_LEVEL >= 1
    /** Test access to a replica, for the check layer's violation-
     * injection tests only. */
    Replica &replicaForTest(std::size_t i) { return *replicas_.at(i); }
#endif

  private:
    Replica &pickReplica();

    Cluster &cluster_;
    ServiceConfig cfg_;
    ServiceId id_;
    std::vector<std::unique_ptr<Replica>> replicas_;
    /// MQ buffer: priority level -> FIFO of waiting invocations.
    std::map<int, std::deque<InvocationPtr>> mq_;
    std::size_t rr_ = 0;
    double retiredBusyCoreUs_ = 0.0;
    /// Reused active-replica buffer for pickReplica (no per-dispatch
    /// allocation).
    std::vector<Replica *> pickScratch_;
};

} // namespace ursa::sim

#endif // URSA_SIM_SERVICE_H
