/**
 * @file
 * MetricsRegistry — the tracing substrate (the paper's Prometheus).
 *
 * Collects, per window: per-service/per-class response times (the S0-R0
 * tier latency of Sec. III), per-class end-to-end latencies with SLA
 * violation tracking, per-service/per-class arrival counts, and
 * per-service CPU allocation / busy integrals and replica counts.
 */

#ifndef URSA_SIM_METRICS_H
#define URSA_SIM_METRICS_H

#include "sim/time.h"
#include "sim/types.h"
#include "stats/timeseries.h"

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace ursa::sim
{

/**
 * Central, windowed metrics store for one cluster.
 *
 * The per-event recording calls (tier latency, end-to-end, arrival —
 * several per simulated request) are the hot path: each lands in a
 * windowed aggregator behind two bounds-checked lookups plus, for
 * end-to-end records, a per-window map probe. To keep the dispatch
 * loop lean they are staged into a small POD buffer and applied in
 * order at batch boundaries: when the buffer fills, at every busy-
 * sample tick, and lazily before any query reads an aggregate. The
 * flush preserves recording order exactly, so every aggregate (and
 * every reservoir-sampling RNG draw) is bit-identical to unbatched
 * recording — batching moves work, it never changes results.
 */
class MetricsRegistry
{
  public:
    /**
     * @param window Aggregation window width (default: one simulated
     *        minute, the paper's sampling frequency).
     */
    explicit MetricsRegistry(SimTime window = kMin);

    /** Window width. */
    SimTime window() const { return window_; }

    /** Register a service; must be called in ServiceId order. */
    void addService(const std::string &name);

    /** Register a class; must be called in ClassId order. */
    void addClass(const std::string &name, const SlaSpec &sla);

    // --- recording -------------------------------------------------

    /** Per-tier response time (queue wait + compute, excl. downstream). */
    void recordTierLatency(ServiceId s, ClassId c, SimTime at, SimTime lat);

    /** End-to-end latency of a finished request of class `c`. */
    void recordEndToEnd(ClassId c, SimTime at, SimTime lat);

    /** One request of class `c` arrived at service `s`. */
    void recordArrival(ServiceId s, ClassId c, SimTime at);

    /** Cumulative busy core-us of service `s`, sampled at `at`. */
    void recordBusySample(ServiceId s, SimTime at, double cumBusyCoreUs);

    /** Total allocated cores of service `s` changed to `cores`. */
    void recordAllocation(ServiceId s, SimTime at, double cores);

    /** Active replica count of service `s` changed to `n`. */
    void recordReplicaCount(ServiceId s, SimTime at, int n);

    // --- queries ---------------------------------------------------

    /** Tier-latency windows for (service, class). */
    const stats::WindowAggregator &tierLatency(ServiceId s, ClassId c) const;

    /** End-to-end latency windows for a class. */
    const stats::WindowAggregator &endToEnd(ClassId c) const;

    /** Arrival-count windows for (service, class). */
    const stats::WindowAggregator &arrivals(ServiceId s, ClassId c) const;

    /** Arrivals per second of class `c` at service `s` over [from,to). */
    double arrivalRate(ServiceId s, ClassId c, SimTime from,
                       SimTime to) const;

    /** Mean CPU utilization of service `s` over [from, to), in [0,1]. */
    double cpuUtilization(ServiceId s, SimTime from, SimTime to) const;

    /** Time-averaged allocated cores of `s` over [from, to). */
    double meanAllocation(ServiceId s, SimTime from, SimTime to) const;

    /** Allocation time series (for Fig.-13-style plots). */
    const stats::TimeSeries &allocationSeries(ServiceId s) const;

    /** Replica-count time series. */
    const stats::TimeSeries &replicaSeries(ServiceId s) const;

    /**
     * SLA violation rate of class `c` over [from, to): the fraction of
     * sampling windows whose latency at the class's SLA percentile
     * exceeds the SLA target. This is the paper's metric — it treats
     * p50 and p99 SLAs uniformly (Tables II-IV, Sec. VII-E).
     */
    double slaViolationRate(ClassId c, SimTime from, SimTime to) const;

    /**
     * Aggregate window-based SLA violation rate over all classes in
     * [from, to): violating (class, window) pairs / all pairs.
     */
    double overallSlaViolationRate(SimTime from, SimTime to) const;

    /**
     * Fraction of individual class-`c` requests in [from, to) whose
     * latency exceeded the SLA target (secondary diagnostic; only
     * meaningful for high-percentile SLAs).
     */
    double requestViolationRate(ClassId c, SimTime from, SimTime to) const;

    /** Number of registered services / classes. */
    int numServices() const { return static_cast<int>(services_.size()); }
    int numClasses() const { return static_cast<int>(classes_.size()); }

    /** Names (for printing). */
    const std::string &serviceName(ServiceId s) const;
    const std::string &className(ClassId c) const;

    /** SLA of class `c`. */
    const SlaSpec &sla(ClassId c) const;

  private:
    struct PerClass
    {
        std::string name;
        SlaSpec sla;
        stats::WindowAggregator e2e;
        std::uint64_t completed = 0;
        std::uint64_t violated = 0;
        /// per-window (start -> [completed, violated])
        std::map<SimTime, std::pair<std::uint64_t, std::uint64_t>> byWindow;
    };
    struct PerService
    {
        std::string name;
        std::vector<stats::WindowAggregator> tierLat; ///< per class
        std::vector<stats::WindowAggregator> arrivals; ///< per class
        stats::TimeSeries busy;       ///< cumulative busy core-us samples
        stats::TimeSeries allocation; ///< allocated cores (step series)
        stats::TimeSeries replicas;
    };

    void growClassVectors();

    /// One staged hot-path record (recording order == buffer order).
    struct PendingRec
    {
        SimTime at;
        SimTime lat;       ///< unused for Arrival
        ServiceId service; ///< unused for EndToEnd
        ClassId classId;
        enum class Kind : std::uint8_t
        {
            TierLatency,
            EndToEnd,
            Arrival,
        } kind;
    };
    /// Flush threshold: ~6 KiB of staged records, small enough to stay
    /// cache-resident, large enough to amortize the aggregator walks.
    static constexpr std::size_t kPendingFlush = 256;

    /** Apply every staged record, in order. */
    void flushPending() const
    {
        if (!pending_.empty())
            const_cast<MetricsRegistry *>(this)->applyPending();
    }

    void applyPending();

    /**
     * Eager id validation at record time. Staging defers the aggregator
     * walk (and its bounds-checked `.at()`) to the flush, which would
     * turn a caller's bad id into a delayed, hard-to-attribute throw;
     * two compares here keep the original throwing contract at the call
     * site while staying branch-predictable in the hot path.
     */
    void
    checkIds(ServiceId s, ClassId c) const
    {
        if (s >= 0 && static_cast<std::size_t>(s) >= services_.size())
            throw std::out_of_range("MetricsRegistry: service id out of range");
        if (c < 0 || static_cast<std::size_t>(c) >= classes_.size())
            throw std::out_of_range("MetricsRegistry: class id out of range");
    }

    void
    stage(const PendingRec &rec)
    {
        pending_.push_back(rec);
        if (pending_.size() >= kPendingFlush)
            applyPending();
    }

    SimTime window_;
    std::vector<PerService> services_;
    std::vector<PerClass> classes_;
    std::vector<PendingRec> pending_;
};

} // namespace ursa::sim

#endif // URSA_SIM_METRICS_H
