#include "sim/shard.h"

#include "check/check.h"
#include "exec/thread_pool.h"
#include "sim/cluster.h"
#include "sim/time.h"
#include "sim/types.h"

#include <algorithm>
#include <stdexcept>

namespace ursa::sim
{

namespace
{

/** Union-find root with path halving. */
int
findRoot(std::vector<int> &parent, int x)
{
    while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    return x;
}

void
unite(std::vector<int> &parent, int a, int b)
{
    a = findRoot(parent, a);
    b = findRoot(parent, b);
    if (a != b)
        parent[std::max(a, b)] = std::min(a, b);
}

} // namespace

ShardPlan
computeShardPlan(const Cluster &cluster)
{
    const int numServices = cluster.numServices();
    const int numClasses = cluster.numClasses();

    std::vector<int> parent(static_cast<std::size_t>(numServices));
    for (int s = 0; s < numServices; ++s)
        parent[s] = s;

    // Undirected closure of "s calls t" over every class behavior.
    // Call targets are resolved by name so this works off the public
    // config surface alone.
    for (ServiceId s = 0; s < numServices; ++s) {
        const ServiceConfig &cfg = cluster.service(s).config();
        for (const auto &[cls, behavior] : cfg.behaviors) {
            (void)cls;
            for (const CallSpec &call : behavior.calls)
                unite(parent, s, cluster.serviceId(call.target));
        }
    }

    ShardPlan plan;
    plan.serviceGroup.resize(static_cast<std::size_t>(numServices), -1);
    // Dense group ids in order of lowest member ServiceId (the
    // union-find root is always the component's minimum id).
    for (int s = 0; s < numServices; ++s) {
        const int root = findRoot(parent, s);
        if (plan.serviceGroup[root] < 0)
            plan.serviceGroup[root] = plan.shards++;
        plan.serviceGroup[s] = plan.serviceGroup[root];
    }

    plan.classGroup.resize(static_cast<std::size_t>(numClasses), -1);
    for (ClassId c = 0; c < numClasses; ++c) {
        const ServiceId root =
            cluster.serviceId(cluster.classSpec(c).rootService);
        plan.classGroup[c] = plan.serviceGroup[root];
    }
    return plan;
}

ShardedSim::ShardedSim(SimTime windowUs) : window_(windowUs)
{
    if (windowUs <= 0)
        throw std::invalid_argument("ShardedSim window must be positive");
}

void
ShardedSim::addShard(Cluster &cluster)
{
    URSA_CHECK(now_ == 0, "sim.shard",
               "shard added after the sharded run started");
    shards_.push_back(&cluster);
}

void
ShardedSim::run(SimTime until)
{
    // Window-by-window co-advance: a barrier at every window edge keeps
    // all shards within one lookahead window of each other, which is
    // exactly the conservative-synchronization contract cross-shard
    // channels will need. Shards within a window run via parallelFor
    // with the fixed-shard mapping (index == shard), so the schedule of
    // each shard's events is independent of URSA_THREADS.
    while (now_ < until) {
        const SimTime target = std::min(until, now_ + window_);
        // ursa-lint: allow(blocking-in-sim) the shard barrier is the one sanctioned blocking point — co-advancing shards must join on the pool's window edge before cross-shard time can move
        exec::parallelFor(shards_.size(), [&](std::size_t k) {
            shards_[k]->run(target);
        });
        now_ = target;
#if URSA_CHECK_LEVEL >= 1
        for (const Cluster *shard : shards_) {
            URSA_CHECK(shard->events().now() == now_, "sim.shard",
                       "shard clock diverged from the window edge");
        }
#endif
    }
}

std::uint64_t
ShardedSim::eventsProcessed() const
{
    std::uint64_t total = 0;
    for (const Cluster *shard : shards_)
        total += shard->events().processed();
    return total;
}

std::uint64_t
ShardedSim::submitted() const
{
    std::uint64_t total = 0;
    for (const Cluster *shard : shards_)
        total += shard->submitted();
    return total;
}

std::uint64_t
ShardedSim::completed() const
{
    std::uint64_t total = 0;
    for (const Cluster *shard : shards_)
        total += shard->completed();
    return total;
}

} // namespace ursa::sim
