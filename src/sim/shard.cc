#include "sim/shard.h"

#include "check/check.h"
#include "exec/thread_pool.h"
#include "sim/cluster.h"
#include "sim/cross_shard.h"
#include "sim/time.h"
#include "sim/types.h"

#include <algorithm>
#include <stdexcept>

namespace ursa::sim
{

namespace
{

/** Union-find root with path halving. */
int
findRoot(std::vector<int> &parent, int x)
{
    while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    return x;
}

void
unite(std::vector<int> &parent, int a, int b)
{
    a = findRoot(parent, a);
    b = findRoot(parent, b);
    if (a != b)
        parent[std::max(a, b)] = std::min(a, b);
}

} // namespace

ShardPlan
computeShardPlan(const Cluster &cluster)
{
    const int numServices = cluster.numServices();
    const int numClasses = cluster.numClasses();

    std::vector<int> parent(static_cast<std::size_t>(numServices));
    for (int s = 0; s < numServices; ++s)
        parent[s] = s;

    // Undirected closure of "s calls t at zero latency" over every
    // class behavior: only edges with no lookahead force their
    // endpoints into one event queue. Call targets are resolved by
    // name so this works off the public config surface alone.
    for (ServiceId s = 0; s < numServices; ++s) {
        const ServiceConfig &cfg = cluster.service(s).config();
        for (const auto &[cls, behavior] : cfg.behaviors) {
            (void)cls;
            for (const CallSpec &call : behavior.calls)
                if (call.netDelayUs == 0)
                    unite(parent, s, cluster.serviceId(call.target));
        }
    }

    ShardPlan plan;
    plan.serviceGroup.resize(static_cast<std::size_t>(numServices), -1);
    // Dense group ids in order of lowest member ServiceId (the
    // union-find root is always the component's minimum id).
    for (int s = 0; s < numServices; ++s) {
        const int root = findRoot(parent, s);
        if (plan.serviceGroup[root] < 0)
            plan.serviceGroup[root] = plan.shards++;
        plan.serviceGroup[s] = plan.serviceGroup[root];
    }

    plan.classGroup.resize(static_cast<std::size_t>(numClasses), -1);
    for (ClassId c = 0; c < numClasses; ++c) {
        const ServiceId root =
            cluster.serviceId(cluster.classSpec(c).rootService);
        plan.classGroup[c] = plan.serviceGroup[root];
    }

    // Lookahead-model report: the mesh's conservative lookahead is the
    // minimum delay over the edges left crossing groups (kNoLink when
    // the groups are fully disconnected).
    for (ServiceId s = 0; s < numServices; ++s) {
        const ServiceConfig &cfg = cluster.service(s).config();
        for (const auto &[cls, behavior] : cfg.behaviors) {
            (void)cls;
            for (const CallSpec &call : behavior.calls) {
                const ServiceId t = cluster.serviceId(call.target);
                if (plan.serviceGroup[s] == plan.serviceGroup[t])
                    continue;
                URSA_CHECK(call.netDelayUs > 0, "sim.shard",
                           "zero-latency edge crosses shard groups");
                plan.lookaheadUs =
                    std::min(plan.lookaheadUs, call.netDelayUs);
            }
        }
    }
    return plan;
}

ShardedSim::ShardedSim(SimTime windowUs) : window_(windowUs)
{
    if (windowUs <= 0)
        throw std::invalid_argument("ShardedSim window must be positive");
}

void
ShardedSim::addShard(Cluster &cluster)
{
    URSA_CHECK(now_ == 0, "sim.shard",
               "shard added after the sharded run started");
    URSA_CHECK(!mesh_, "sim.shard", "shard added after connectMesh");
    shards_.push_back(&cluster);
}

void
ShardedSim::connectMesh(const ShardPlan &plan)
{
    if (mesh_)
        throw std::logic_error("connectMesh called twice");
    if (now_ != 0)
        throw std::logic_error("connectMesh after the run started");
    if (static_cast<int>(shards_.size()) != plan.shards)
        throw std::invalid_argument(
            "connectMesh: shard count does not match the plan");
    mesh_ = true;
    lookahead_ = plan.lookaheadUs;
    window_ = std::min(window_, lookahead_);
    mail_.assign(shards_.size(),
                 std::vector<std::vector<CrossShardMsg>>(shards_.size()));
    for (std::size_t k = 0; k < shards_.size(); ++k)
        shards_[k]->attachShard(*this, static_cast<int>(k),
                                plan.serviceGroup);
}

void
ShardedSim::crossSend(int from, int to, const CrossShardMsg &msg)
{
    // Single-writer rows: within a window only shard `from`'s thread
    // appends to mail_[from][*]; the parallelFor join publishes the
    // rows to the coordinator.
    mail_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)]
        .push_back(msg);
}

void
ShardedSim::exchange()
{
    const std::size_t n = shards_.size();
    for (std::size_t dst = 0; dst < n; ++dst) {
        inboxScratch_.clear();
        for (std::size_t src = 0; src < n; ++src) {
            std::vector<CrossShardMsg> &box = mail_[src][dst];
            for (std::size_t i = 0; i < box.size(); ++i)
                inboxScratch_.push_back(
                    {box[i], static_cast<int>(src), i});
        }
        // Deterministic merge order at injection: (deliver time,
        // source shard, per-mailbox emission order). The triple is
        // unique, so the sort is a total order independent of
        // URSA_THREADS.
        std::sort(inboxScratch_.begin(), inboxScratch_.end(),
                  [](const InboxEntry &a, const InboxEntry &b) {
                      if (a.msg.deliverAtUs != b.msg.deliverAtUs)
                          return a.msg.deliverAtUs < b.msg.deliverAtUs;
                      if (a.src != b.src)
                          return a.src < b.src;
                      return a.seq < b.seq;
                  });
        for (const InboxEntry &entry : inboxScratch_)
            shards_[dst]->injectCrossShard(entry.msg);
    }
    for (std::size_t src = 0; src < n; ++src)
        for (std::size_t dst = 0; dst < n; ++dst)
            mail_[src][dst].clear();
}

void
ShardedSim::run(SimTime until)
{
    // Window-by-window co-advance: a barrier at every window edge keeps
    // all shards within one lookahead window of each other, which is
    // exactly the conservative-synchronization contract cross-shard
    // channels will need. Shards within a window run via parallelFor
    // with the fixed-shard mapping (index == shard), so the schedule of
    // each shard's events is independent of URSA_THREADS.
    URSA_CHECK(!mesh_ || window_ <= lookahead_, "sim.shard",
               "co-advance window exceeds the minimum cross-shard "
               "lookahead — messages could deliver into a shard's past");
    while (now_ < until) {
        const SimTime target = std::min(until, now_ + window_);
        // ursa-lint: allow(blocking-in-sim) the shard barrier is the one sanctioned blocking point — co-advancing shards must join on the pool's window edge before cross-shard time can move
        exec::parallelFor(shards_.size(), [&](std::size_t k) {
            shards_[k]->run(target);
        });
        now_ = target;
#if URSA_CHECK_LEVEL >= 1
        for (const Cluster *shard : shards_) {
            URSA_CHECK(shard->events().now() == now_, "sim.shard",
                       "shard clock diverged from the window edge");
        }
#endif
        if (mesh_)
            exchange();
    }
}

std::uint64_t
ShardedSim::eventsProcessed() const
{
    std::uint64_t total = 0;
    for (const Cluster *shard : shards_)
        total += shard->events().processed();
    return total;
}

std::uint64_t
ShardedSim::submitted() const
{
    std::uint64_t total = 0;
    for (const Cluster *shard : shards_)
        total += shard->submitted();
    return total;
}

std::uint64_t
ShardedSim::completed() const
{
    std::uint64_t total = 0;
    for (const Cluster *shard : shards_)
        total += shard->completed();
    return total;
}

} // namespace ursa::sim
