/**
 * @file
 * An Invocation is one service's handling of one request: the unit of
 * work that flows through replicas. It carries the timing fields needed
 * to reproduce the paper's per-tier response-time measurement
 * (S0 - R0: queue wait + compute, excluding downstream waits).
 */

#ifndef URSA_SIM_INVOCATION_H
#define URSA_SIM_INVOCATION_H

#include "sim/callback.h"
#include "sim/pool.h"
#include "sim/time.h"
#include "sim/types.h"
#include "trace/span.h"

#include <memory>

namespace ursa::sim
{

class Replica;

/** One service's handling of one request. */
struct Invocation
{
    RefState poolRef;

    RequestPtr req;
    ServiceId serviceId = -1;
    const ClassBehavior *behavior = nullptr;
    /// Resolved downstream service ids, parallel to behavior->calls.
    const std::vector<ServiceId> *targets = nullptr;

    /// RPC: when the request was dispatched to the replica.
    /// MQ: when the message was published (queue wait counts).
    SimTime arrival = 0;
    /// Accumulated time spent blocked on nested downstream responses.
    SimTime blockedUs = 0;
    /// Next downstream call to issue.
    std::size_t callIdx = 0;
    /// Event-driven tiers record latency at the first daemon send.
    bool eventLatencyRecorded = false;
    /// True once the invocation was handed from its worker thread to a
    /// daemon thread (event-driven dispatch, paper Fig. 1b).
    bool onDaemon = false;
    /// Replica executing this invocation (set when a worker picks it up).
    Replica *replica = nullptr;

    /// Tracing (set only for sampled requests): this hop's span, the
    /// caller hop's span, how the request reached this hop, and when a
    /// worker picked the invocation up (end of queue wait).
    trace::SpanId span = trace::kNoSpan;
    trace::SpanId parentSpan = trace::kNoSpan;
    trace::HopKind hopKind = trace::HopKind::NestedRpc;
    SimTime serviceStart = -1;

    /// Continuation: resume the parent (nested RPC) or complete the
    /// async branch (MQ / event-driven) or answer the client (root).
    InlineCallback onSyncDone;
};

using InvocationPtr = RefPtr<Invocation>;

} // namespace ursa::sim

#endif // URSA_SIM_INVOCATION_H
