/**
 * @file
 * A Replica models one container instance of a microservice:
 *
 *  - a finite pool of worker threads (requests queue FIFO when all
 *    workers are busy; a worker making a nested RPC stays held for the
 *    whole downstream round trip — this is the mechanism behind the
 *    backpressure effect of paper Sec. III);
 *  - a finite pool of daemon threads servicing event-driven dispatches
 *    (paper Fig. 1b);
 *  - a CPU with a configurable core limit shared by all active compute
 *    phases under processor sharing (each job progresses at
 *    min(1, limit/active) cores), with an integral of used core-time
 *    for utilization accounting.
 *
 * With finite worker pools and a closed-loop client, throttling a leaf
 * tier makes backlog cascade bottom-up: the culprit's parent saturates
 * first and each ancestor progressively less — reproducing the Fig. 2
 * attenuation. Message queues bypass worker blocking entirely, so MQ
 * stages show no backpressure.
 */

#ifndef URSA_SIM_REPLICA_H
#define URSA_SIM_REPLICA_H

#include "check/check.h"
#include "sim/callback.h"
#include "sim/invocation.h"
#include "sim/time.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

namespace ursa::sim
{

class Service;

/** One container instance of a service. */
class Replica
{
  public:
    /**
     * @param svc Owning service.
     * @param index Replica index (for diagnostics).
     */
    Replica(Service &svc, int index);

    Replica(const Replica &) = delete;
    Replica &operator=(const Replica &) = delete;

    /** True when a worker is free and the replica accepts work. */
    bool hasFreeWorker() const;

    /** Pending RPC queue length (excluding running invocations). */
    std::size_t queueLength() const { return pending_.size(); }

    /** Number of busy worker threads (running or blocked downstream). */
    int busyWorkers() const { return busyWorkers_; }

    /** Submit an RPC invocation (from Service dispatch). */
    void submit(InvocationPtr inv);

    /**
     * Begin handling an MQ message. Only called by Service when this
     * replica has a free worker.
     */
    void beginMq(InvocationPtr inv);

    /** Set the CPU limit in cores (dynamic; used by the profiler). */
    void setCpuLimit(double cores);

    /** Nominal CPU limit in cores. */
    double cpuLimit() const { return cpuLimit_; }

    /**
     * Throttle factor in (0, 1]: effective limit = limit * factor.
     * Used by fault injection (paper Fig. 2) and Firm's anomaly
     * injection during RL training.
     */
    void setCpuFactor(double factor);

    /** Cumulative used core-microseconds up to now. */
    double busyCoreUs();

    /** Stop accepting new work; finish what is queued and running. */
    void startDrain();

    /** True when draining and fully idle. */
    bool drained() const;

    /** Whether startDrain was called. */
    bool draining() const { return draining_; }

#if URSA_CHECK_LEVEL >= 1
    /**
     * Violation injection for the check layer's own tests: release a
     * worker that was never acquired, so the accounting audit fires
     * ("sim.replica"). Leaves the replica's counters corrupted — use
     * only on a cluster about to be discarded.
     */
    void injectAccountingViolationForTest();
#endif

  private:
    /** Thread-pool accounting audit: busy counts within pool bounds,
     * no queued work while a worker idles, queues never negative. */
    void auditAccounting();
    void begin(InvocationPtr inv);
    void advance(const InvocationPtr &inv);
    void finish(const InvocationPtr &inv);
    void releaseWorker();
    void daemonSubmit(InlineCallback task);
    void daemonRelease();

    // --- processor-sharing CPU engine ---
    void cpuSubmit(double workCoreUs, InlineCallback done);
    void cpuSync();
    void cpuReschedule();
    void onCpuEvent(std::uint64_t gen);
    double effectiveLimit() const { return cpuLimit_ * cpuFactor_; }

    Service &svc_;
    int index_;
    int threads_;
    int daemonThreads_;
    double cpuLimit_;
    double cpuFactor_ = 1.0;

    int busyWorkers_ = 0;
    int busyDaemons_ = 0;
    std::deque<InvocationPtr> pending_;
    std::deque<InlineCallback> daemonPending_;
    bool draining_ = false;

    /// Processor-sharing job state, struct-of-arrays: cpuSync and
    /// cpuReschedule sweep only the dense remaining-work array on every
    /// CPU event, and completion callbacks sit in a stable slot slab so
    /// onCpuEvent's compaction shifts 12-byte job records instead of
    /// relocating 64-byte callbacks.
    std::vector<double> jobRemaining_;
    std::vector<std::uint32_t> jobSlot_;
    std::vector<InlineCallback> jobSlab_;
    std::vector<std::uint32_t> jobFree_;
    /// Reused buffer for slots collected by onCpuEvent (no per-event
    /// allocation).
    std::vector<std::uint32_t> finishedScratch_;
    SimTime lastSync_ = 0;
    double busyIntegral_ = 0.0;
    std::uint64_t cpuGen_ = 0;
};

} // namespace ursa::sim

#endif // URSA_SIM_REPLICA_H
