#include "sim/report.h"

#include "sim/cluster.h"
#include "sim/metrics.h"
#include "sim/time.h"
#include "sim/types.h"

#include <iomanip>
#include <ostream>

namespace ursa::sim
{

ExperimentSummary
summarize(const Cluster &cluster, SimTime from, SimTime to)
{
    const MetricsRegistry &m = cluster.metrics();
    ExperimentSummary out;
    out.from = from;
    out.to = to;
    out.overallViolationRate = m.overallSlaViolationRate(from, to);
    for (ServiceId s = 0; s < cluster.numServices(); ++s)
        out.totalCpuCores += m.meanAllocation(s, from, to);

    for (ClassId c = 0; c < cluster.numClasses(); ++c) {
        ExperimentSummary::PerClass pc;
        pc.name = m.className(c);
        pc.slaPercentile = m.sla(c).percentile;
        pc.slaTargetMs = toMs(m.sla(c).targetUs);
        pc.violationRate = m.slaViolationRate(c, from, to);
        for (const auto &w : m.endToEnd(c).windows()) {
            if (w.start < from || w.start + m.window() > to)
                continue;
            pc.completed += w.stats.count();
        }
        const auto samples = m.endToEnd(c).collect(from, to);
        if (!samples.empty()) {
            pc.latencyAtSlaPctMs =
                samples.percentile(pc.slaPercentile) / 1000.0;
            pc.p50Ms = samples.percentile(50.0) / 1000.0;
            pc.p99Ms = samples.percentile(99.0) / 1000.0;
        }
        out.requestsCompleted += pc.completed;
        out.classes.push_back(std::move(pc));
    }
    return out;
}

void
printSummary(const ExperimentSummary &s, std::ostream &out)
{
    out << "experiment summary [" << toSec(s.from) / 60.0 << ".."
        << toSec(s.to) / 60.0 << " min]\n";
    out << "  requests completed: " << s.requestsCompleted
        << ", mean CPU allocation: " << std::fixed
        << std::setprecision(1) << s.totalCpuCores
        << " cores, SLA violation rate: " << std::setprecision(2)
        << 100.0 * s.overallViolationRate << "%\n";
    for (const auto &pc : s.classes) {
        out << "  " << std::left << std::setw(20) << pc.name
            << " p" << std::setprecision(0) << pc.slaPercentile << " "
            << std::setprecision(1) << pc.latencyAtSlaPctMs << " ms (SLA "
            << pc.slaTargetMs << " ms), p50 " << pc.p50Ms << ", p99 "
            << pc.p99Ms << ", viol " << std::setprecision(2)
            << 100.0 * pc.violationRate << "%\n";
    }
}

void
writeClassSeriesCsv(const Cluster &cluster, SimTime from, SimTime to,
                    std::ostream &out)
{
    const MetricsRegistry &m = cluster.metrics();
    out << "minute,class,count,p50_ms,p99_ms,lat_at_sla_ms,violated\n";
    for (ClassId c = 0; c < cluster.numClasses(); ++c) {
        const auto &sla = m.sla(c);
        for (const auto &w : m.endToEnd(c).windows()) {
            if (w.start < from || w.start >= to || w.samples.empty())
                continue;
            const double atSla = w.samples.percentile(sla.percentile);
            out << toSec(w.start) / 60.0 << ',' << m.className(c) << ','
                << w.stats.count() << ','
                << w.samples.percentile(50.0) / 1000.0 << ','
                << w.samples.percentile(99.0) / 1000.0 << ','
                << atSla / 1000.0 << ','
                << (atSla > static_cast<double>(sla.targetUs) ? 1 : 0)
                << "\n";
        }
    }
}

void
writeServiceSeriesCsv(const Cluster &cluster, SimTime from, SimTime to,
                      std::ostream &out)
{
    const MetricsRegistry &m = cluster.metrics();
    const SimTime w = m.window();
    out << "minute,service,rps,utilization,alloc_cores,replicas\n";
    for (ServiceId s = 0; s < cluster.numServices(); ++s) {
        for (SimTime t = from; t + w <= to; t += w) {
            double rps = 0.0;
            for (ClassId c = 0; c < cluster.numClasses(); ++c)
                rps += m.arrivalRate(s, c, t, t + w);
            out << toSec(t) / 60.0 << ',' << m.serviceName(s) << ','
                << rps << ',' << m.cpuUtilization(s, t, t + w) << ','
                << m.meanAllocation(s, t, t + w) << ','
                << m.replicaSeries(s).last(0.0) << "\n";
        }
    }
}

} // namespace ursa::sim
