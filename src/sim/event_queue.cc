#include "sim/event_queue.h"

#include "check/check.h"
#include "sim/time.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string_view>
#include <utility>

namespace ursa::sim
{

namespace
{
constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::max();

/// Calendar geometry bounds. Width is clamped to [16us, ~4.2s]; the
/// bucket count to [64, 65536] (sized at ~4x pending population so the
/// expected occupancy stays around a quarter event per bucket).
constexpr int kMinWidthShift = 4;
constexpr int kMaxWidthShift = 22;
constexpr std::size_t kMinBuckets = 64;
constexpr std::size_t kMaxBuckets = 65536;

EventQueue::Backend
backendFromEnv()
{
    const char *v = std::getenv("URSA_EVENTQUEUE");
    if (v == nullptr || *v == '\0')
        return EventQueue::Backend::Calendar;
    const std::string_view s(v);
    if (s == "calendar")
        return EventQueue::Backend::Calendar;
    if (s == "heap")
        return EventQueue::Backend::Heap;
    throw std::runtime_error(
        "URSA_EVENTQUEUE must be 'calendar' or 'heap'");
}

} // namespace

EventQueue::EventQueue() : EventQueue(backendFromEnv()) {}

EventQueue::EventQueue(Backend backend) : backend_(backend)
{
    if (backend_ == Backend::Calendar) {
        buckets_.resize(kMinBuckets);
        epochEnd_ = static_cast<SimTime>(buckets_.size()) << widthShift_;
    }
}

void
EventQueue::schedule(SimTime at, Callback fn)
{
    // Past scheduling stays a throwing contract (callers and tests
    // rely on the exception); the dispatch-side audits own the
    // monotonicity invariant.
    if (at < now_)
        throw std::logic_error("scheduling an event in the past");
    if (backend_ == Backend::Heap)
        heapPush(Entry{at, seq_++, std::move(fn)});
    else
        scheduleCalendar(at, std::move(fn));
#if URSA_CHECK_LEVEL >= 2
    maybeAuditStructure();
#endif
}

void
EventQueue::scheduleIn(SimTime delay, Callback fn)
{
    if (delay < 0)
        throw std::logic_error("negative event delay");
    schedule(now_ + delay, std::move(fn));
}

bool
EventQueue::runNext()
{
    if (backend_ == Backend::Heap) {
        if (heap_.empty())
            return false;
        Entry e = popTop();
#if URSA_CHECK_LEVEL >= 1
        auditBatchStart(e.at);
        URSA_CHECK(e.at > lastAt_ || (e.at == lastAt_ && e.seq > lastSeq_),
                   "sim.event_queue",
                   "FIFO tie-break violation: (time, seq) not increasing");
        lastAt_ = e.at;
        lastSeq_ = e.seq;
#endif
        now_ = e.at;
        ++processed_;
        e.fn();
        return true;
    }

    if (count_ == 0 || !pullNextDay(kNoEvent))
        return false;
    const Key k = day_[dayPos_++];
#if URSA_CHECK_LEVEL >= 1
    auditBatchStart(k.at);
    URSA_CHECK(k.at > lastAt_ || (k.at == lastAt_ && k.seq > lastSeq_),
               "sim.event_queue",
               "FIFO tie-break violation: (time, seq) not increasing");
    lastAt_ = k.at;
    lastSeq_ = k.seq;
#endif
    if (lastDispatchAt_ >= 0 && k.at > lastDispatchAt_) {
        gapSum_ += k.at - lastDispatchAt_;
        ++gapCount_;
    }
    lastDispatchAt_ = k.at;
    now_ = k.at;
    --count_;
    ++processed_;
    Callback fn = std::move(slots_[k.slot]);
    freeSlots_.push_back(k.slot);
    if (dayPos_ >= day_.size()) {
        day_.clear();
        dayPos_ = 0;
    }
    fn();
    return true;
}

void
EventQueue::runUntil(SimTime until)
{
    if (backend_ == Backend::Heap)
        runUntilHeap(until);
    else
        runUntilCalendar(until);
}

SimTime
EventQueue::nextEventTime()
{
    if (backend_ == Backend::Heap)
        return heap_.empty() ? kNoEvent : heap_.front().at;
    if (count_ == 0)
        return kNoEvent;
    // The day run list holds everything below the frontier, so its
    // front (sorted) is the global minimum when non-empty; otherwise
    // the first occupied bucket beats every later bucket and the
    // overflow ladder (all at or beyond the epoch end).
    if (dayPos_ < day_.size())
        return day_[dayPos_].at;
    for (std::size_t c = cursor_; c < buckets_.size(); ++c) {
        if (buckets_[c].empty())
            continue;
        SimTime best = kNoEvent;
        for (const Key &k : buckets_[c])
            best = std::min(best, k.at);
        return best;
    }
    return overflow_.empty() ? kNoEvent : minOverflow_;
}

// --- heap backend -------------------------------------------------------

void
EventQueue::heapPush(Entry e)
{
    // Hole-based sift-up: parents slide down until e's slot is found,
    // so each level costs one entry move instead of a swap.
    heap_.emplace_back();
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (earlier(heap_[parent], e))
            break;
        heap_[i] = std::move(heap_[parent]);
        i = parent;
    }
    heap_[i] = std::move(e);
}

EventQueue::Entry
EventQueue::popTop()
{
    Entry top = std::move(heap_.front());
    Entry last = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) {
        // Hole-based sift-down: the smaller child slides up until
        // `last` fits, again one move per level.
        std::size_t i = 0;
        const std::size_t n = heap_.size();
        for (;;) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && earlier(heap_[child + 1], heap_[child]))
                ++child;
            if (!earlier(heap_[child], last))
                break;
            heap_[i] = std::move(heap_[child]);
            i = child;
        }
        heap_[i] = std::move(last);
    }
    return top;
}

void
EventQueue::runUntilHeap(SimTime until)
{
    while (!heap_.empty() && heap_.front().at <= until) {
        Entry e = popTop();
#if URSA_CHECK_LEVEL >= 1
        auditBatchStart(e.at);
        URSA_CHECK(e.at > lastAt_ || (e.at == lastAt_ && e.seq > lastSeq_),
                   "sim.event_queue",
                   "FIFO tie-break violation: (time, seq) not increasing");
        lastAt_ = e.at;
        lastSeq_ = e.seq;
#endif
        now_ = e.at;
        ++processed_;
        e.fn();
    }
    if (until > now_)
        now_ = until;
}

// --- calendar backend ---------------------------------------------------

std::uint32_t
EventQueue::storeSlot(Callback &&fn)
{
    if (!freeSlots_.empty()) {
        const std::uint32_t s = freeSlots_.back();
        freeSlots_.pop_back();
        slots_[s] = std::move(fn);
        return s;
    }
    slots_.push_back(std::move(fn));
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void
EventQueue::scheduleCalendar(SimTime at, Callback &&fn)
{
    if (count_ == 0) {
        // Empty queue: re-anchor the epoch so `at` lands in bucket 0
        // instead of trickling through the overflow ladder after the
        // cursor wrapped.
        const SimTime width = SimTime{1} << widthShift_;
        day_.clear();
        dayPos_ = 0;
        epochStart_ = at & ~(width - 1);
        epochEnd_ = epochStart_ +
                    (static_cast<SimTime>(buckets_.size()) << widthShift_);
        frontier_ = epochStart_;
        cursor_ = 0;
        overflow_.clear();
    }
    calendarInsert(Key{at, seq_++, storeSlot(std::move(fn))});
    ++count_;
    // A burst outgrew the grid: rebuild (recalibrating width and bucket
    // count) the next time the drain loop is between days.
    if (count_ > 4 * buckets_.size())
        resizePending_ = true;
}

void
EventQueue::calendarInsert(Key k)
{
    if (k.at < frontier_) {
        // The bucket covering this time was already pulled: insert
        // into the sorted day run list at the exact (time, seq) spot.
        const auto it = std::upper_bound(day_.begin() +
                                             static_cast<std::ptrdiff_t>(
                                                 dayPos_),
                                         day_.end(), k, keyEarlier);
        day_.insert(it, k);
    } else if (k.at < epochEnd_) {
        buckets_[static_cast<std::size_t>((k.at - epochStart_) >>
                                          widthShift_)]
            .push_back(k);
    } else {
        if (overflow_.empty() || k.at < minOverflow_)
            minOverflow_ = k.at;
        overflow_.push_back(k);
    }
}

bool
EventQueue::pullNextDay(SimTime until)
{
    for (;;) {
        if (dayPos_ < day_.size())
            return day_[dayPos_].at <= until;
        day_.clear();
        dayPos_ = 0;
        if (resizePending_) {
            resizePending_ = false;
            rebuildEpoch(frontier_);
        }
        const SimTime width = SimTime{1} << widthShift_;
        while (cursor_ < buckets_.size()) {
            std::vector<Key> &b = buckets_[cursor_];
            ++cursor_;
            frontier_ += width;
            if (b.empty())
                continue;
            // Swap so the day list inherits the keys and the bucket
            // keeps the old day capacity for reuse.
            day_.swap(b);
            std::sort(day_.begin(), day_.end(), keyEarlier);
            return day_[0].at <= until;
        }
        if (overflow_.empty() || minOverflow_ > until)
            return false;
        rebuildEpoch(minOverflow_);
    }
}

void
EventQueue::runBatch()
{
    const SimTime at = day_[dayPos_].at;
#if URSA_CHECK_LEVEL >= 1
    auditBatchStart(at);
#endif
    if (lastDispatchAt_ >= 0 && at > lastDispatchAt_) {
        gapSum_ += at - lastDispatchAt_;
        ++gapCount_;
    }
    lastDispatchAt_ = at;
    now_ = at;
    // Drain the whole time band; callbacks may schedule more events at
    // this same timestamp, which land after dayPos_ (their seq is
    // larger than every pending one) and extend the batch.
    while (dayPos_ < day_.size() && day_[dayPos_].at == at) {
        const Key k = day_[dayPos_++];
#if URSA_CHECK_LEVEL >= 1
        URSA_CHECK(k.at > lastAt_ || (k.at == lastAt_ && k.seq > lastSeq_),
                   "sim.event_queue",
                   "FIFO tie-break violation: (time, seq) not increasing");
        lastAt_ = k.at;
        lastSeq_ = k.seq;
#endif
        --count_;
        ++processed_;
        Callback fn = std::move(slots_[k.slot]);
        freeSlots_.push_back(k.slot);
        fn();
    }
    if (dayPos_ >= day_.size()) {
        day_.clear();
        dayPos_ = 0;
    }
}

void
EventQueue::runUntilCalendar(SimTime until)
{
    while (pullNextDay(until))
        runBatch();
    if (until > now_)
        now_ = until;
}

void
EventQueue::rebuildEpoch(SimTime startAt)
{
    // Gather every key still in the grid or the ladder. Buckets before
    // the cursor are empty by construction.
    std::vector<Key> all;
    all.reserve(count_ - (day_.size() - dayPos_));
    for (std::vector<Key> &b : buckets_) {
        all.insert(all.end(), b.begin(), b.end());
        b.clear();
    }
    all.insert(all.end(), overflow_.begin(), overflow_.end());
    overflow_.clear();

    // Recalibrate the bucket width from the mean gap between distinct
    // dispatch times: ~2 distinct times per bucket keeps the pull/sort
    // batches small without walking empty buckets.
    if (gapCount_ >= 16) {
        const SimTime target =
            std::max<SimTime>(2 * (gapSum_ / static_cast<SimTime>(gapCount_)),
                              1);
        int shift = kMinWidthShift;
        while ((SimTime{1} << shift) < target && shift < kMaxWidthShift)
            ++shift;
        widthShift_ = shift;
        // Halve instead of reset: keep memory of the workload but stay
        // adaptive to phase changes.
        gapSum_ /= 2;
        gapCount_ /= 2;
    }
    std::size_t nb = kMinBuckets;
    while (nb < 4 * all.size() && nb < kMaxBuckets)
        nb *= 2;
    if (buckets_.size() != nb)
        buckets_.resize(nb);

    const SimTime width = SimTime{1} << widthShift_;
    epochStart_ = startAt & ~(width - 1);
    epochEnd_ = epochStart_ + (static_cast<SimTime>(nb) << widthShift_);
    frontier_ = epochStart_;
    cursor_ = 0;
    for (const Key &k : all)
        calendarInsert(k);
}

#if URSA_CHECK_LEVEL >= 1

void
EventQueue::auditBatchStart(SimTime at)
{
    check::noteSimTime(at);
    URSA_CHECK(at >= now_, "sim.event_queue",
               "dispatch order violation: event earlier than sim clock");
#if URSA_CHECK_LEVEL >= 2
    maybeAuditStructure();
#endif
}

void
EventQueue::corruptOrderForTest()
{
    if (backend_ == Backend::Heap) {
        if (heap_.size() < 2)
            return;
        std::swap(heap_[0], heap_[1]);
        return;
    }
    if (count_ < 2)
        return;
    // Flatten the whole calendar into the day run list, then swap the
    // two earliest keys. The epoch collapses (start == end, cursor at
    // the end) so later inserts go through the overflow ladder and the
    // next wrap rebuilds a fresh epoch.
    for (std::vector<Key> &b : buckets_) {
        day_.insert(day_.end(), b.begin(), b.end());
        b.clear();
    }
    day_.insert(day_.end(), overflow_.begin(), overflow_.end());
    overflow_.clear();
    std::sort(day_.begin() + static_cast<std::ptrdiff_t>(dayPos_),
              day_.end(), keyEarlier);
    epochStart_ = epochEnd_ = frontier_ = day_.back().at + 1;
    cursor_ = buckets_.size();
    std::swap(day_[dayPos_], day_[dayPos_ + 1]);
}

#endif // URSA_CHECK_LEVEL >= 1

#if URSA_CHECK_LEVEL >= 2

void
EventQueue::maybeAuditStructure()
{
    if (auditCountdown_-- == 0) {
        auditCountdown_ = kAuditStride - 1;
        auditStructure();
    }
}

void
EventQueue::auditStructure()
{
    if (backend_ == Backend::Heap) {
        for (std::size_t i = 1; i < heap_.size(); ++i) {
            const std::size_t parent = (i - 1) / 2;
            URSA_CHECK_SLOW(earlier(heap_[parent], heap_[i]),
                            "sim.event_queue",
                            "heap-order violation between parent and child");
            URSA_CHECK_SLOW(heap_[i].at >= now_, "sim.event_queue",
                            "pending event earlier than the sim clock");
        }
        return;
    }

    // Day run list: sorted by (time, seq), nothing before the clock,
    // everything below the frontier.
    std::size_t live = day_.size() - dayPos_;
    for (std::size_t i = dayPos_; i < day_.size(); ++i) {
        URSA_CHECK_SLOW(day_[i].at >= now_, "sim.event_queue",
                        "day-list event earlier than the sim clock");
        URSA_CHECK_SLOW(day_[i].at < frontier_, "sim.event_queue",
                        "day-list event at or beyond the frontier");
        if (i > dayPos_)
            URSA_CHECK_SLOW(keyEarlier(day_[i - 1], day_[i]),
                            "sim.event_queue",
                            "day run list out of (time, seq) order");
    }
    // Bucket grid: drained buckets empty, keys hash to their bucket.
    for (std::size_t c = 0; c < buckets_.size(); ++c) {
        if (c < cursor_) {
            URSA_CHECK_SLOW(buckets_[c].empty(), "sim.event_queue",
                            "drained calendar bucket is not empty");
            continue;
        }
        live += buckets_[c].size();
        for (const Key &k : buckets_[c]) {
            URSA_CHECK_SLOW(
                static_cast<std::size_t>((k.at - epochStart_) >>
                                         widthShift_) == c,
                "sim.event_queue", "calendar key in the wrong bucket");
            URSA_CHECK_SLOW(k.at >= frontier_, "sim.event_queue",
                            "bucketed event below the frontier");
        }
    }
    // Overflow ladder: beyond the epoch, with an exact cached minimum.
    live += overflow_.size();
    SimTime minSeen = kNoEvent;
    for (const Key &k : overflow_) {
        URSA_CHECK_SLOW(k.at >= epochEnd_, "sim.event_queue",
                        "overflow event inside the epoch horizon");
        minSeen = std::min(minSeen, k.at);
    }
    if (!overflow_.empty())
        URSA_CHECK_SLOW(minSeen == minOverflow_, "sim.event_queue",
                        "stale overflow minimum cache");
    URSA_CHECK_SLOW(live == count_, "sim.event_queue",
                    "calendar population does not match pending count");
}

#endif // URSA_CHECK_LEVEL >= 2

} // namespace ursa::sim
