#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace ursa::sim
{

void
EventQueue::schedule(SimTime at, Callback fn)
{
    if (at < now_)
        throw std::logic_error("scheduling an event in the past");
    heap_.push({at, seq_++, std::move(fn)});
}

void
EventQueue::scheduleIn(SimTime delay, Callback fn)
{
    if (delay < 0)
        throw std::logic_error("negative event delay");
    schedule(now_ + delay, std::move(fn));
}

bool
EventQueue::runNext()
{
    if (heap_.empty())
        return false;
    // std::priority_queue::top() is const; the Entry must be copied or
    // moved out before pop. Move via const_cast is safe here because
    // the entry is popped immediately.
    Entry e = std::move(const_cast<Entry &>(heap_.top()));
    heap_.pop();
    now_ = e.at;
    ++processed_;
    e.fn();
    return true;
}

void
EventQueue::runUntil(SimTime until)
{
    while (!heap_.empty() && heap_.top().at <= until)
        runNext();
    if (until > now_)
        now_ = until;
}

} // namespace ursa::sim
