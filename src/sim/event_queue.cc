#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace ursa::sim
{

void
EventQueue::schedule(SimTime at, Callback fn)
{
    // Past scheduling stays a throwing contract (callers and tests
    // rely on the exception); the dispatch-side audit in auditPopOrder
    // owns the monotonicity invariant.
    if (at < now_)
        throw std::logic_error("scheduling an event in the past");
    Entry e{at, seq_++, std::move(fn)};
    // Hole-based sift-up: parents slide down until e's slot is found,
    // so each level costs one entry move instead of a swap.
    heap_.emplace_back();
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (earlier(heap_[parent], e))
            break;
        heap_[i] = std::move(heap_[parent]);
        i = parent;
    }
    heap_[i] = std::move(e);
#if URSA_CHECK_LEVEL >= 2
    if (auditCountdown_-- == 0) {
        auditCountdown_ = kAuditStride - 1;
        auditHeap();
    }
#endif
}

void
EventQueue::scheduleIn(SimTime delay, Callback fn)
{
    if (delay < 0)
        throw std::logic_error("negative event delay");
    schedule(now_ + delay, std::move(fn));
}

EventQueue::Entry
EventQueue::popTop()
{
    Entry top = std::move(heap_.front());
    Entry last = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) {
        // Hole-based sift-down: the smaller child slides up until
        // `last` fits, again one move per level.
        std::size_t i = 0;
        const std::size_t n = heap_.size();
        for (;;) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && earlier(heap_[child + 1], heap_[child]))
                ++child;
            if (!earlier(heap_[child], last))
                break;
            heap_[i] = std::move(heap_[child]);
            i = child;
        }
        heap_[i] = std::move(last);
    }
    return top;
}

bool
EventQueue::runNext()
{
    if (heap_.empty())
        return false;
    Entry e = popTop();
#if URSA_CHECK_LEVEL >= 1
    auditPopOrder(e);
#endif
    now_ = e.at;
    ++processed_;
    e.fn();
    return true;
}

void
EventQueue::runUntil(SimTime until)
{
    while (!heap_.empty() && heap_.front().at <= until) {
        Entry e = popTop();
#if URSA_CHECK_LEVEL >= 1
        auditPopOrder(e);
#endif
        now_ = e.at;
        ++processed_;
        e.fn();
    }
    if (until > now_)
        now_ = until;
}

#if URSA_CHECK_LEVEL >= 1

void
EventQueue::auditPopOrder(const Entry &e)
{
    check::noteSimTime(e.at);
    URSA_CHECK(e.at >= now_, "sim.event_queue",
               "dispatch order violation: event earlier than sim clock");
    URSA_CHECK(e.at > lastAt_ || (e.at == lastAt_ && e.seq > lastSeq_),
               "sim.event_queue",
               "FIFO tie-break violation: (time, seq) not increasing");
    lastAt_ = e.at;
    lastSeq_ = e.seq;
#if URSA_CHECK_LEVEL >= 2
    if (auditCountdown_-- == 0) {
        auditCountdown_ = kAuditStride - 1;
        auditHeap();
    }
#endif
}

void
EventQueue::corruptOrderForTest()
{
    if (heap_.size() < 2)
        return;
    std::swap(heap_[0], heap_[1]);
}

#endif // URSA_CHECK_LEVEL >= 1

#if URSA_CHECK_LEVEL >= 2

void
EventQueue::auditHeap()
{
    for (std::size_t i = 1; i < heap_.size(); ++i) {
        const std::size_t parent = (i - 1) / 2;
        URSA_CHECK_SLOW(earlier(heap_[parent], heap_[i]),
                        "sim.event_queue",
                        "heap-order violation between parent and child");
        URSA_CHECK_SLOW(heap_[i].at >= now_, "sim.event_queue",
                        "pending event earlier than the sim clock");
    }
}

#endif // URSA_CHECK_LEVEL >= 2

} // namespace ursa::sim
