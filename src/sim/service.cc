#include "sim/service.h"

#include "sim/cluster.h"
#include "sim/invocation.h"
#include "sim/types.h"
#include "stats/rng.h"

#include <cassert>
#include <stdexcept>

namespace ursa::sim
{

Service::Service(Cluster &cluster, ServiceConfig cfg, ServiceId id)
    : cluster_(cluster), cfg_(std::move(cfg)), id_(id)
{
    if (cfg_.initialReplicas < 1)
        throw std::invalid_argument("a service needs >= 1 replica");
    for (auto &[cls, behavior] : cfg_.behaviors) {
        (void)cls;
        behavior.hasEventCall = false;
        for (const CallSpec &call : behavior.calls)
            if (call.kind == CallKind::EventRpc)
                behavior.hasEventCall = true;
        // Derive the (mu, sigma) pairs once so the per-sample hot path
        // skips the log/sqrt re-derivation.
        behavior.computeParams = stats::LognormalParams::fromMeanCv(
            behavior.computeMeanUs, behavior.computeCv);
        behavior.postComputeParams = stats::LognormalParams::fromMeanCv(
            behavior.postComputeMeanUs, behavior.postComputeCv);
    }
    for (int i = 0; i < cfg_.initialReplicas; ++i)
        replicas_.push_back(std::make_unique<Replica>(*this, i));
    cluster_.metrics().recordAllocation(id_, cluster_.events().now(),
                                        cpuAllocation());
    cluster_.metrics().recordReplicaCount(id_, cluster_.events().now(),
                                          activeReplicas());
}

Replica &
Service::pickReplica()
{
    // Round-robin over active replicas, preferring one with a free
    // worker so queueing only starts once the service saturates. The
    // active list is rebuilt into a reused scratch buffer so the per-
    // dispatch hot path stays allocation-free.
    std::vector<Replica *> &active = pickScratch_;
    active.clear();
    for (auto &r : replicas_)
        if (!r->draining())
            active.push_back(r.get());
    if (active.empty())
        throw std::logic_error("service has no active replicas");
    const std::size_t n = active.size();
    rr_ = (rr_ + 1) % n;
    for (std::size_t probe = 0; probe < n; ++probe) {
        Replica *r = active[(rr_ + probe) % n];
        if (r->hasFreeWorker())
            return *r;
    }
    // All busy: shortest pending queue wins (ties: round-robin order).
    Replica *best = active[rr_ % n];
    for (std::size_t probe = 0; probe < n; ++probe) {
        Replica *r = active[(rr_ + probe) % n];
        if (r->queueLength() < best->queueLength())
            best = r;
    }
    return *best;
}

void
Service::dispatch(InvocationPtr inv)
{
    pickReplica().submit(std::move(inv));
}

void
Service::publish(InvocationPtr inv)
{
    const int prio = inv->req->priority;
    // Try to hand the message to a free worker immediately.
    for (auto &r : replicas_) {
        if (r->hasFreeWorker()) {
            // Strict priority: an arriving message only jumps the queue
            // if nothing of equal-or-higher priority waits.
            bool blocked = false;
            for (const auto &[p, q] : mq_)
                if (p <= prio && !q.empty())
                    blocked = true;
            if (!blocked) {
                r->beginMq(std::move(inv));
                return;
            }
            break;
        }
    }
    mq_[prio].push_back(std::move(inv));
}

bool
Service::offerMqWork(Replica &replica)
{
    for (auto &[prio, q] : mq_) {
        if (q.empty())
            continue;
        InvocationPtr inv = std::move(q.front());
        q.pop_front();
        replica.beginMq(std::move(inv));
        return true;
    }
    return false;
}

void
Service::setReplicas(int n)
{
    if (n < 1)
        throw std::invalid_argument("replica count must be >= 1");
    int active = activeReplicas();
    if (n > active) {
        for (int i = active; i < n; ++i) {
            replicas_.push_back(std::make_unique<Replica>(
                *this, static_cast<int>(replicas_.size())));
            // A fresh replica can immediately absorb queued MQ work.
            while (replicas_.back()->hasFreeWorker() &&
                   offerMqWork(*replicas_.back())) {
            }
        }
    } else if (n < active) {
        // Drain the youngest active replicas.
        for (auto it = replicas_.rbegin();
             it != replicas_.rend() && active > n; ++it) {
            if (!(*it)->draining()) {
                (*it)->startDrain();
                --active;
            }
        }
    }
    cluster_.metrics().recordAllocation(id_, cluster_.events().now(),
                                        cpuAllocation());
    cluster_.metrics().recordReplicaCount(id_, cluster_.events().now(),
                                          activeReplicas());
}

int
Service::activeReplicas() const
{
    int n = 0;
    for (const auto &r : replicas_)
        if (!r->draining())
            ++n;
    return n;
}

double
Service::cpuAllocation() const
{
    double total = 0.0;
    for (const auto &r : replicas_)
        total += r->cpuLimit();
    return total;
}

void
Service::setCpuFactor(double factor)
{
    for (auto &r : replicas_)
        r->setCpuFactor(factor);
}

void
Service::setCpuLimitPerReplica(double cores)
{
    for (auto &r : replicas_)
        r->setCpuLimit(cores);
    cfg_.cpuPerReplica = cores;
    cluster_.metrics().recordAllocation(id_, cluster_.events().now(),
                                        cpuAllocation());
}

double
Service::cumBusyCoreUs()
{
    double total = retiredBusyCoreUs_;
    for (auto &r : replicas_)
        total += r->busyCoreUs();
    return total;
}

std::size_t
Service::mqDepth() const
{
    std::size_t n = 0;
    for (const auto &[prio, q] : mq_)
        n += q.size();
    return n;
}

std::size_t
Service::rpcQueueDepth() const
{
    std::size_t n = 0;
    for (const auto &r : replicas_)
        n += r->queueLength();
    return n;
}

void
Service::notifyDrained(Replica &replica)
{
    // Reap on a fresh event: the replica may still be on the stack.
    Replica *target = &replica;
    cluster_.events().scheduleIn(0, [this, target] {
        for (auto it = replicas_.begin(); it != replicas_.end(); ++it) {
            if (it->get() == target) {
                if (!(*it)->drained())
                    return; // picked up new work in the meantime
                retiredBusyCoreUs_ += (*it)->busyCoreUs();
                replicas_.erase(it);
                cluster_.metrics().recordAllocation(
                    id_, cluster_.events().now(), cpuAllocation());
                return;
            }
        }
    });
}

} // namespace ursa::sim
