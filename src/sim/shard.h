/**
 * @file
 * Intra-simulation parallelism: cut the DES into shards and co-advance
 * them on ursa::exec with conservative windowed synchronization.
 *
 * `computeShardPlan` analyses a finalized Cluster's call graph and
 * partitions services into *shard groups*. The partition follows the
 * per-edge lookahead model: every `CallSpec` carries a minimum network
 * delay (`netDelayUs`), and a message sent over an edge at time `t`
 * cannot take effect before `t + netDelayUs`. Only zero-latency edges
 * (explicit `netDelayUs = 0`, meaning colocated/in-process) force
 * their endpoints into one group — their events interleave at
 * identical timestamps, so they must share an event queue. Services
 * joined solely by latency-bearing edges land in distinct groups, and
 * `ShardPlan::lookaheadUs` reports the minimum delay over all
 * group-crossing edges: the conservative lookahead of the whole mesh.
 * A plan with no cross-group edges at all (fully disconnected groups)
 * reports `kNoLink` — infinite lookahead, any window is safe.
 *
 * `ShardedSim` co-advances one Cluster per shard in fixed time
 * windows via `exec::parallelFor`. Two usage modes:
 *
 *  - Disconnected shards (PR-6 behavior, no `connectMesh` call): each
 *    Cluster is causally independent, nothing is exchanged.
 *
 *  - One connected mesh cut into shards (`connectMesh(plan)`): every
 *    added Cluster is a full replica of the topology, shard k owns
 *    the services of plan group k, and cross-shard calls flow as POD
 *    messages (sim/cross_shard.h) through per-(src, dst) mailboxes.
 *    Within a window each shard appends to its own outbound rows
 *    only; between windows the coordinator drains every inbox in
 *    deterministic (deliverAt, source shard, emission order) order
 *    and schedules the messages on the destination queues. The
 *    co-advance window is clamped to the plan's lookahead, which
 *    guarantees every message emitted during a window delivers
 *    strictly after the window edge — never into a shard's past.
 *
 * Both modes use the PR-1 fixed-shard trick: the parallel index *is*
 * the shard, each shard owns all of its mutable state (its Cluster,
 * clients, RNGs, pool arena), and mailbox rows are single-writer
 * within a window — so results are bit-identical for any URSA_THREADS
 * setting. Thread scheduling only decides who runs a shard, never
 * what it computes.
 */

#ifndef URSA_SIM_SHARD_H
#define URSA_SIM_SHARD_H

#include "check/check.h"
#include "sim/cross_shard.h"
#include "sim/time.h"

#include <cstdint>
#include <limits>
#include <vector>

namespace ursa::sim
{

class Cluster;

/** Partition of a cluster's services/classes into shard groups. */
struct ShardPlan
{
    /** Lookahead value meaning "no cross-shard channel exists". */
    static constexpr SimTime kNoLink = std::numeric_limits<SimTime>::max();

    /** Number of shard groups. */
    int shards = 0;

    /** Shard group of each service, indexed by ServiceId. */
    std::vector<int> serviceGroup;

    /** Shard group of each class (its root service's group). */
    std::vector<int> classGroup;

    /**
     * Minimum `netDelayUs` of any edge between distinct groups — the
     * mesh's conservative lookahead, and the largest safe co-advance
     * window. kNoLink when no edge crosses groups (fully disconnected
     * components with infinite lookahead).
     */
    SimTime lookaheadUs = kNoLink;
};

/**
 * Partition `cluster`'s services by the per-edge lookahead model: the
 * union-find merges only the endpoints of zero-latency edges, then
 * `lookaheadUs` is the minimum delay over the edges left crossing
 * groups. The cluster must be finalized. Group ids are dense, in
 * order of lowest member ServiceId.
 */
ShardPlan computeShardPlan(const Cluster &cluster);

/**
 * Windowed co-advance of shard Clusters on ursa::exec. Non-owning:
 * callers keep the Clusters (and their clients) alive for the
 * ShardedSim's lifetime. Without `connectMesh` the shards must be
 * causally independent — which separate Cluster objects are by
 * construction; with it they form one mesh per the plan.
 */
class ShardedSim : public CrossShardHub
{
  public:
    /** Default co-advance window: one simulated second. */
    static constexpr SimTime kDefaultWindowUs = kSec;

    /**
     * @param windowUs Co-advance window; every shard reaches the end
     *        of a window before any shard enters the next. Must be
     *        > 0. Disconnected shards accept any window; connectMesh
     *        clamps it to the plan's lookahead.
     */
    explicit ShardedSim(SimTime windowUs = kDefaultWindowUs);

    /** Register one shard. All shards must be added before run(). */
    void addShard(Cluster &cluster);

    /**
     * Wire the added shards into one connected mesh: shard k serves
     * the services of plan group k, and every cross-group call is
     * exchanged as a cross-shard message. Requires exactly
     * `plan.shards` added shards, each a full, finalized replica of
     * the same topology the plan was computed from. Clamps the
     * co-advance window to `plan.lookaheadUs`. Call once, after every
     * addShard and before run().
     */
    void connectMesh(const ShardPlan &plan);

    /** CrossShardHub: append to the (from, to) outbound mailbox. */
    void crossSend(int from, int to, const CrossShardMsg &msg) override;

    std::size_t shards() const { return shards_.size(); }

    /** Common simulated time every shard has reached. */
    SimTime now() const { return now_; }

    /** Effective co-advance window (post any connectMesh clamp). */
    SimTime window() const { return window_; }

    /**
     * Advance every shard to `until`, window by window, shards in
     * parallel within a window, mailboxes exchanged between windows.
     * Bit-identical for any URSA_THREADS.
     */
    void run(SimTime until);

    /** Total events executed across all shards. */
    std::uint64_t eventsProcessed() const;

    /** Aggregate requests injected across all shards (remote-leg
     *  proxies excluded — they are not user requests). */
    std::uint64_t submitted() const;

    /** Aggregate requests fully completed across all shards. */
    std::uint64_t completed() const;

#if URSA_CHECK_LEVEL >= 1
    /**
     * Break the window/lookahead clamp on purpose (check-layer tests):
     * a mesh run with a window beyond the lookahead must fire
     * "sim.shard" violations instead of silently reordering events.
     */
    void overrideWindowForTest(SimTime windowUs) { window_ = windowUs; }
#endif

  private:
    /// Drain every (src, dst) mailbox into the destination shards, in
    /// deterministic (deliverAt, source shard, emission order) order.
    void exchange();

    std::vector<Cluster *> shards_;
    SimTime window_;
    SimTime now_ = 0;

    // Mesh state (connectMesh): outbound mailboxes indexed
    // [from][to], each row written only by shard `from` within a
    // window and drained by the coordinator between windows.
    bool mesh_ = false;
    SimTime lookahead_ = ShardPlan::kNoLink;
    std::vector<std::vector<std::vector<CrossShardMsg>>> mail_;
    /// Scratch for exchange(): (msg, src, seq) triples being merged.
    struct InboxEntry
    {
        CrossShardMsg msg;
        int src;
        std::size_t seq;
    };
    std::vector<InboxEntry> inboxScratch_;
};

} // namespace ursa::sim

#endif // URSA_SIM_SHARD_H
