/**
 * @file
 * First step of intra-simulation parallelism: shard the DES by service
 * groups and co-advance the shards on ursa::exec.
 *
 * `computeShardPlan` analyses a finalized Cluster's call graph and
 * partitions services into *shard groups* — connected components of the
 * undirected "calls or is called by" relation, with every request class
 * assigned to its root service's group. Two groups never exchange
 * invocations, so their event streams are causally independent and can
 * execute in parallel with no synchronization at all.
 *
 * The conservative-lookahead model: a shard may safely advance to
 * `t + lookahead`, where lookahead is the minimum latency of any
 * cross-shard channel, because no message sent after `t` can arrive
 * before `t + lookahead`. In the current simulator every call is
 * delivered with zero latency (an RPC's events interleave at the same
 * timestamps as its caller's), so connected services have lookahead 0
 * and must share a shard; only disconnected groups — lookahead
 * infinity, reported as `ShardPlan::kNoLink` — are parallelizable.
 * Cross-shard channels with nonzero minimum latency (and with them
 * sub-infinite lookahead windows) are future work; `ShardedSim`'s
 * windowed co-advance is already shaped for them.
 *
 * `ShardedSim` co-advances one Cluster per shard in fixed time windows
 * via `exec::parallelFor`, using the PR-1 fixed-shard trick: the
 * parallel index *is* the shard, each shard owns all of its mutable
 * state (its Cluster, clients, RNGs), so results are bit-identical for
 * any URSA_THREADS setting — thread scheduling only decides who runs a
 * shard, never what it computes.
 */

#ifndef URSA_SIM_SHARD_H
#define URSA_SIM_SHARD_H

#include "sim/time.h"

#include <cstdint>
#include <limits>
#include <vector>

namespace ursa::sim
{

class Cluster;

/** Partition of a cluster's services/classes into independent shards. */
struct ShardPlan
{
    /** Lookahead value meaning "no cross-shard channel exists". */
    static constexpr SimTime kNoLink = std::numeric_limits<SimTime>::max();

    /** Number of shard groups (connected components). */
    int shards = 0;

    /** Shard group of each service, indexed by ServiceId. */
    std::vector<int> serviceGroup;

    /** Shard group of each class (its root service's group). */
    std::vector<int> classGroup;

    /**
     * Minimum latency of any channel between distinct groups. All
     * in-simulator calls are currently zero-latency, so connected
     * services always land in one group and this is kNoLink.
     */
    SimTime lookaheadUs = kNoLink;
};

/**
 * Partition `cluster`'s services into connected components of the call
 * graph (all classes' behaviors considered). The cluster must be
 * finalized. Group ids are dense, in order of lowest member ServiceId.
 */
ShardPlan computeShardPlan(const Cluster &cluster);

/**
 * Windowed co-advance of independent shard Clusters on ursa::exec.
 * Non-owning: callers keep the Clusters (and their clients) alive for
 * the ShardedSim's lifetime. Each added Cluster must be causally
 * independent of the others — which separate Cluster objects are by
 * construction (they share no event queue, services or RNG).
 */
class ShardedSim
{
  public:
    /** Default co-advance window: one simulated second. */
    static constexpr SimTime kDefaultWindowUs = kSec;

    /**
     * @param windowUs Co-advance window; every shard reaches the end
     *        of a window before any shard enters the next. Must be
     *        > 0. With zero-latency-only channels any window is safe;
     *        once cross-shard links exist the window must not exceed
     *        the plan's lookahead.
     */
    explicit ShardedSim(SimTime windowUs = kDefaultWindowUs);

    /** Register one shard. All shards must be added before run(). */
    void addShard(Cluster &cluster);

    std::size_t shards() const { return shards_.size(); }

    /** Common simulated time every shard has reached. */
    SimTime now() const { return now_; }

    /**
     * Advance every shard to `until`, window by window, shards in
     * parallel within a window. Bit-identical for any URSA_THREADS.
     */
    void run(SimTime until);

    /** Total events executed across all shards. */
    std::uint64_t eventsProcessed() const;

    /** Aggregate requests injected across all shards. */
    std::uint64_t submitted() const;

    /** Aggregate requests fully completed across all shards. */
    std::uint64_t completed() const;

  private:
    std::vector<Cluster *> shards_;
    SimTime window_;
    SimTime now_ = 0;
};

} // namespace ursa::sim

#endif // URSA_SIM_SHARD_H
