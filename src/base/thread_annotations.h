/**
 * @file
 * Portable Clang Thread Safety Analysis macros.
 *
 * Under clang the `URSA_*` macros expand to the `thread_safety`
 * attribute family, so `-Wthread-safety` proves at compile time that
 * every access to a `URSA_GUARDED_BY(mu)` member happens with `mu`
 * held, that `URSA_REQUIRES(mu)` functions are only called under the
 * lock, and that `URSA_EXCLUDES(mu)` functions are never re-entered
 * with it held. Under GCC (and any compiler without the attribute)
 * every macro expands to nothing, so annotations are free and the
 * build is identical.
 *
 * libstdc++'s `std::mutex` carries none of these attributes, so the
 * analysis cannot see its lock()/unlock() calls; annotated code must
 * use the `ursa::base::Mutex` / `MutexLock` / `CondVar` wrappers from
 * "base/mutex.h" instead. The CI `clang-threadsafety` leg builds the
 * tree with `-Wthread-safety -Werror=thread-safety`; `tools/ursa-lint`
 * additionally enforces (rule `missing-annotation`) that every mutex
 * member in the concurrent layers is referenced by at least one
 * annotation and that every atomic member carries a sharing-rationale
 * comment.
 *
 * `URSA_SINGLE_THREADED` expands to nothing on every compiler: it is a
 * documentation marker for classes whose contract is "owned by one
 * thread" (e.g. `sim::PoolArena`, `trace::Tracer` — one per Cluster,
 * touched only by the thread driving that cluster's event loop).
 * Marked classes need no locks, and giving them any would be a design
 * smell; the marker makes the contract grep-able at the class head.
 */

#ifndef URSA_BASE_THREAD_ANNOTATIONS_H
#define URSA_BASE_THREAD_ANNOTATIONS_H

#if defined(__clang__) && !defined(URSA_NO_THREAD_SAFETY_ATTRIBUTES)
#define URSA_THREAD_ATTRIBUTE_(x) __attribute__((x))
#else
#define URSA_THREAD_ATTRIBUTE_(x) // no-op outside clang
#endif

/** Declares a type to be a capability (e.g. a mutex wrapper). */
#define URSA_CAPABILITY(x) URSA_THREAD_ATTRIBUTE_(capability(x))

/** Declares an RAII type that acquires in its ctor, releases in dtor. */
#define URSA_SCOPED_CAPABILITY URSA_THREAD_ATTRIBUTE_(scoped_lockable)

/** Member data that may only be touched while `x` is held. */
#define URSA_GUARDED_BY(x) URSA_THREAD_ATTRIBUTE_(guarded_by(x))

/** Pointer member whose *pointee* may only be touched while `x` is held. */
#define URSA_PT_GUARDED_BY(x) URSA_THREAD_ATTRIBUTE_(pt_guarded_by(x))

/** Function that must be called with the capabilities held. */
#define URSA_REQUIRES(...) \
    URSA_THREAD_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/** Function that must be called with the capabilities NOT held. */
#define URSA_EXCLUDES(...) \
    URSA_THREAD_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/** Function that acquires the capabilities and holds them on return. */
#define URSA_ACQUIRE(...) \
    URSA_THREAD_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/** Function that releases the capabilities. */
#define URSA_RELEASE(...) \
    URSA_THREAD_ATTRIBUTE_(release_capability(__VA_ARGS__))

/** Function that acquires the capability iff it returns `ret`. */
#define URSA_TRY_ACQUIRE(ret, ...) \
    URSA_THREAD_ATTRIBUTE_(try_acquire_capability(ret, __VA_ARGS__))

/** Assert (at runtime) that the capability is held; teaches the analysis. */
#define URSA_ASSERT_CAPABILITY(x) \
    URSA_THREAD_ATTRIBUTE_(assert_capability(x))

/** Function returning a reference to the named capability. */
#define URSA_RETURN_CAPABILITY(x) \
    URSA_THREAD_ATTRIBUTE_(lock_returned(x))

/**
 * Opt a function body out of the analysis. Reserved for trusted
 * primitives whose correctness the analysis cannot express (e.g. a
 * condition-variable wait that unlocks and relocks internally); the
 * declaration keeps its REQUIRES/ACQUIRE contract so *callers* are
 * still checked.
 */
#define URSA_NO_THREAD_SAFETY_ANALYSIS \
    URSA_THREAD_ATTRIBUTE_(no_thread_safety_analysis)

/**
 * Documentation-only marker (expands to nothing everywhere): the class
 * is confined to a single owning thread and is intentionally lock-free.
 */
#define URSA_SINGLE_THREADED

#endif // URSA_BASE_THREAD_ANNOTATIONS_H
