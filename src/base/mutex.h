/**
 * @file
 * Annotated mutex / condition-variable wrappers for the concurrent
 * layers.
 *
 * libstdc++ ships `std::mutex` without thread-safety attributes, so
 * clang's analysis cannot observe its acquisitions. These wrappers are
 * the project's lockable types: `Mutex` is a `URSA_CAPABILITY`,
 * `MutexLock` a scoped acquisition the analysis tracks through block
 * scope, and `CondVar` exposes `wait()` with a `URSA_REQUIRES(mu)`
 * contract (its body opts out of the analysis — the unlock/relock
 * inside `std::condition_variable_any::wait` is the one pattern the
 * attribute grammar cannot express — but every *caller* is still
 * checked).
 *
 * Zero-cost: everything is an inline forward to the std primitive; on
 * GCC the attributes vanish and the wrappers compile to the exact same
 * code as the raw std types.
 */

#ifndef URSA_BASE_MUTEX_H
#define URSA_BASE_MUTEX_H

#include "base/thread_annotations.h"

#include <condition_variable>
#include <mutex>

namespace ursa::base
{

/** Annotated exclusive mutex (wraps std::mutex). */
class URSA_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() URSA_ACQUIRE()
    {
        mu_.lock();
    }

    void
    unlock() URSA_RELEASE()
    {
        mu_.unlock();
    }

    bool
    try_lock() URSA_TRY_ACQUIRE(true)
    {
        return mu_.try_lock();
    }

  private:
    friend class CondVar;
    std::mutex mu_;
};

/** RAII lock over Mutex, tracked by the analysis through its scope. */
class URSA_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) URSA_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }

    ~MutexLock() URSA_RELEASE()
    {
        mu_.unlock();
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Condition variable bound to `Mutex`. Waits require the mutex held
 * (enforced on callers by the analysis); use the predicate-free form
 * inside a `while (!condition)` loop so guarded reads of the condition
 * stay inside the caller's analyzed, lock-held scope:
 *
 *   base::MutexLock lock(mu_);
 *   while (!ready_)   // ready_ is URSA_GUARDED_BY(mu_)
 *       cv_.wait(mu_);
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release `mu`, sleep, and reacquire before return. */
    void
    wait(Mutex &mu) URSA_REQUIRES(mu) URSA_NO_THREAD_SAFETY_ANALYSIS
    {
        std::unique_lock<std::mutex> relock(mu.mu_, std::adopt_lock);
        cv_.wait(relock);
        relock.release(); // caller still owns the reacquired mutex
    }

    void
    notify_one()
    {
        cv_.notify_one();
    }

    void
    notify_all()
    {
        cv_.notify_all();
    }

  private:
    std::condition_variable cv_;
};

} // namespace ursa::base

#endif // URSA_BASE_MUTEX_H
