#include "trace/export.h"

#include "stats/quantile.h"
#include "trace/span.h"

#include <algorithm>
#include <map>
#include <ostream>

namespace ursa::trace
{

namespace
{

/** Minimal JSON string escaping (names are plain identifiers). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) >= 0x20)
            out.push_back(c);
    }
    return out;
}

/** Viewer pid: services keep their id + 1; the client is pid 0. */
int
viewerPid(int serviceId)
{
    return serviceId >= 0 ? serviceId + 1 : 0;
}

std::string
lookupName(const std::vector<std::string> &names, int id,
           const char *fallbackPrefix)
{
    if (id >= 0 && static_cast<std::size_t>(id) < names.size() &&
        !names[id].empty())
        return names[id];
    return std::string(fallbackPrefix) + std::to_string(id);
}

} // namespace

void
writeChromeTrace(const std::vector<Span> &spans,
                 const std::vector<std::string> &serviceNames,
                 const std::vector<std::string> &classNames,
                 std::ostream &out)
{
    out << "[\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            out << ",\n";
        first = false;
    };

    // Process-name metadata rows: one per service plus the client.
    std::map<int, std::string> pids;
    pids[0] = "client";
    for (const Span &s : spans)
        if (s.serviceId >= 0)
            pids[viewerPid(s.serviceId)] =
                lookupName(serviceNames, s.serviceId, "service-");
    for (const auto &[pid, name] : pids) {
        sep();
        out << "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
            << ",\"args\":{\"name\":\"" << jsonEscape(name) << "\"}}";
    }

    for (const Span &s : spans) {
        const std::string label =
            (s.serviceId >= 0
                 ? lookupName(serviceNames, s.serviceId, "service-")
                 : std::string("client")) +
            "/" + lookupName(classNames, s.classId, "class-");
        sep();
        out << "  {\"name\":\"" << jsonEscape(label) << "\",\"cat\":\""
            << hopKindName(s.kind) << "\",\"ph\":\"X\",\"ts\":" << s.start
            << ",\"dur\":" << s.totalUs()
            << ",\"pid\":" << viewerPid(s.serviceId)
            << ",\"tid\":" << s.requestId << ",\"args\":{\"span\":" << s.id
            << ",\"parent\":" << s.parent
            << ",\"queue_us\":" << s.queueWaitUs()
            << ",\"service_us\":" << s.serviceUs()
            << ",\"blocked_us\":" << s.blockedUs << "}}";
    }
    out << "\n]\n";
}

std::vector<TierBreakdown>
tierBreakdown(const std::vector<Span> &spans, std::int64_t from,
              std::int64_t to)
{
    struct Acc
    {
        std::uint64_t n = 0;
        double queue = 0.0, service = 0.0, blocked = 0.0;
        std::vector<double> totals, tiers;
    };
    std::map<int, Acc> byService;
    for (const Span &s : spans) {
        if (s.end < from || s.end >= to)
            continue;
        Acc &a = byService[s.serviceId];
        ++a.n;
        a.queue += static_cast<double>(s.queueWaitUs());
        a.service += static_cast<double>(s.serviceUs());
        a.blocked += static_cast<double>(s.blockedUs);
        a.totals.push_back(static_cast<double>(s.totalUs()));
        a.tiers.push_back(
            static_cast<double>(s.queueWaitUs() + s.serviceUs()));
    }

    std::vector<TierBreakdown> out;
    out.reserve(byService.size());
    for (auto &[serviceId, a] : byService) {
        TierBreakdown row;
        row.serviceId = serviceId;
        row.spans = a.n;
        const double n = static_cast<double>(a.n);
        row.meanQueueUs = a.queue / n;
        row.meanServiceUs = a.service / n;
        row.meanBlockedUs = a.blocked / n;
        row.p99TotalUs = stats::percentileOf(std::move(a.totals), 99.0);
        row.p99TierUs = stats::percentileOf(std::move(a.tiers), 99.0);
        out.push_back(row);
    }
    return out;
}

} // namespace ursa::trace
