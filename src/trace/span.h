/**
 * @file
 * Span — one record of the request-flow tracing layer: a request's
 * passage through one service hop (or the client itself). Spans carry
 * the parent-span link plus the three intervals the paper's analysis
 * needs (Sec. III / Fig. 2): queue wait (dispatch-or-publish until a
 * worker picks the invocation up), service time (own compute, queue
 * excluded), and blocked-on-child time (waiting for synchronous
 * downstream responses) — together they attribute chain-level effects
 * like backpressure to a culprit tier per request, not just per
 * window.
 *
 * The layer is deliberately dependency-free (plain integers, no sim
 * types) so it sits below the simulation kernel; `ursa::sim::Cluster`
 * owns the Tracer and the kernel emits spans at the request lifecycle
 * sites.
 */

#ifndef URSA_TRACE_SPAN_H
#define URSA_TRACE_SPAN_H

#include <cstdint>

namespace ursa::trace
{

/** Span identifier, unique within one Tracer. 0 means "no span". */
using SpanId = std::uint64_t;

/** The null span id (untraced invocation / root parent). */
constexpr SpanId kNoSpan = 0;

/** How the request reached this hop (paper Fig. 1). */
enum class HopKind : std::uint8_t
{
    Client = 0, ///< the client-side root span (submit -> fully done)
    NestedRpc,  ///< synchronous RPC from the parent hop
    EventRpc,   ///< event-driven RPC issued from a daemon thread
    MqPublish,  ///< consumed from the target's message queue
};

/** Printable name of a hop kind. */
const char *hopKindName(HopKind k);

/** One (request, service hop) record. All times are simulated us. */
struct Span
{
    SpanId id = kNoSpan;
    SpanId parent = kNoSpan;     ///< caller hop's span (kNoSpan at root)
    std::uint64_t requestId = 0; ///< Request::id (trace id)
    int classId = -1;
    /// Service handling the hop; -1 for the client root span.
    int serviceId = -1;
    HopKind kind = HopKind::Client;
    /// Hop start: RPC dispatch / MQ publish time (queue wait counts).
    std::int64_t start = 0;
    /// A worker picked the invocation up (end of queue wait).
    std::int64_t serviceStart = 0;
    /// Hop completion (continuation fired).
    std::int64_t end = 0;
    /// Time spent blocked on synchronous downstream responses.
    std::int64_t blockedUs = 0;

    /** Queue wait before a worker picked the hop up. */
    std::int64_t queueWaitUs() const { return serviceStart - start; }

    /** Whole-hop duration (queue + service + blocked). */
    std::int64_t totalUs() const { return end - start; }

    /** Own service time: total minus queue wait and downstream waits. */
    std::int64_t serviceUs() const
    {
        return end - serviceStart - blockedUs;
    }
};

} // namespace ursa::trace

#endif // URSA_TRACE_SPAN_H
