/**
 * @file
 * Span consumers: the Chrome `trace_event` JSON exporter (load the
 * file in chrome://tracing or ui.perfetto.dev) and the per-tier
 * latency-breakdown table that turns raw spans into the paper's
 * queue/service/blocked attribution (the Fig. 2 story per tier).
 *
 * The exporters take plain name vectors instead of a Cluster so the
 * trace layer stays below the simulation kernel in the dependency
 * order.
 */

#ifndef URSA_TRACE_EXPORT_H
#define URSA_TRACE_EXPORT_H

#include "trace/span.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ursa::trace
{

/**
 * Write spans as a Chrome trace_event JSON array. Each hop becomes a
 * complete ("ph":"X") event on pid = service, tid = request, so the
 * viewer groups rows by service and nests a request's hops in time;
 * span/parent ids, hop kind and the queue/service/blocked split are
 * attached as args. Client root spans land on a synthetic "client"
 * process after the services.
 *
 * @param spans        Spans to emit (any order).
 * @param serviceNames Service names indexed by ServiceId ("" allowed).
 * @param classNames   Class names indexed by ClassId ("" allowed).
 */
void writeChromeTrace(const std::vector<Span> &spans,
                      const std::vector<std::string> &serviceNames,
                      const std::vector<std::string> &classNames,
                      std::ostream &out);

/** Per-service latency decomposition over a set of spans. */
struct TierBreakdown
{
    int serviceId = -1; ///< -1 aggregates the client root spans
    std::uint64_t spans = 0;
    double meanQueueUs = 0.0;
    double meanServiceUs = 0.0;
    double meanBlockedUs = 0.0;
    double p99TotalUs = 0.0;
    /// p99 of queue + service time (the paper's S0-R0 tier response
    /// time, downstream waits excluded) — comparable to
    /// MetricsRegistry::tierLatency.
    double p99TierUs = 0.0;
};

/**
 * Aggregate spans ending in [from, to) into one row per service,
 * ordered by serviceId (client rows, serviceId -1, first). Services
 * with no spans in range produce no row.
 */
std::vector<TierBreakdown> tierBreakdown(const std::vector<Span> &spans,
                                         std::int64_t from,
                                         std::int64_t to);

} // namespace ursa::trace

#endif // URSA_TRACE_EXPORT_H
