#include "trace/tracer.h"

#include "check/check.h"
#include "trace/span.h"

#include <cmath>

namespace ursa::trace
{

namespace
{

/**
 * SplitMix64 finalizer over the request id. Stateless on purpose: the
 * sampling decision must depend only on the id, never on how many
 * requests were hashed before it, so parallel shards and reruns agree.
 */
std::uint64_t
mixRequestId(std::uint64_t id)
{
    std::uint64_t z = id + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

const char *
hopKindName(HopKind k)
{
    switch (k) {
      case HopKind::Client:
        return "client";
      case HopKind::NestedRpc:
        return "rpc";
      case HopKind::EventRpc:
        return "event-rpc";
      case HopKind::MqPublish:
        return "mq";
    }
    return "?";
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity)
{
    URSA_CHECK(capacity_ > 0, "trace.tracer",
               "tracer configured with a zero-capacity ring");
}

void
Tracer::setSampling(double rate)
{
    URSA_CHECK(rate >= 0.0 && rate <= 1.0, "trace.tracer",
               "sampling rate outside [0, 1]");
    rate_ = std::fmin(std::fmax(rate, 0.0), 1.0);
    sampleAll_ = rate_ >= 1.0;
    // Threshold in 64-bit hash space; 2^64 * rate computed via long
    // double to keep the gate monotone in `rate`.
    threshold_ = sampleAll_
                     ? ~0ULL
                     : static_cast<std::uint64_t>(
                           static_cast<long double>(rate_) *
                           18446744073709551616.0L);
}

bool
Tracer::sampleRequest(std::uint64_t requestId) const
{
    if (rate_ <= 0.0)
        return false;
    if (sampleAll_)
        return true;
    return mixRequestId(requestId) < threshold_;
}

void
Tracer::record(const Span &s)
{
    URSA_CHECK(s.id != kNoSpan, "trace.tracer",
               "recording a span without an id");
    URSA_CHECK(s.serviceStart >= s.start && s.end >= s.serviceStart,
               "trace.tracer",
               "span intervals out of order (start <= serviceStart <= end)");
    URSA_CHECK(s.blockedUs >= 0 &&
                   s.blockedUs <= s.end - s.serviceStart,
               "trace.tracer",
               "span blocked-on-child interval exceeds its service span");
    ++recorded_;
    if (ring_.size() < capacity_) {
        ring_.push_back(s);
        return;
    }
    // Wraparound: overwrite the oldest retained span.
    ring_[next_] = s;
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
}

void
Tracer::clear()
{
    // Span ids and recorded() keep advancing; dropped() restarts so a
    // consumer can tell whether *its* measurement window was truncated.
    ring_.clear();
    next_ = 0;
    dropped_ = 0;
}

void
Tracer::setCapacity(std::size_t capacity)
{
    URSA_CHECK(capacity > 0, "trace.tracer",
               "tracer ring capacity must be positive");
    ring_.clear();
    ring_.shrink_to_fit();
    next_ = 0;
    dropped_ = 0;
    capacity_ = capacity;
}

std::vector<Span>
Tracer::snapshot() const
{
    std::vector<Span> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
        out = ring_;
        return out;
    }
    // Full ring: next_ is the oldest entry.
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(next_ + i) % capacity_]);
    return out;
}

} // namespace ursa::trace
