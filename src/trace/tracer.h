/**
 * @file
 * Tracer — the ring-buffered, sampling-gated span recorder.
 *
 * Sampling is a pure function of the request id (a SplitMix64-style
 * hash compared against a precomputed 64-bit threshold), so the set of
 * traced requests for a (topology, workload, seed) triple is
 * bit-identical across URSA_THREADS settings, platforms and reruns —
 * the same determinism contract the rest of the kernel obeys
 * (tools/ursa-lint treats src/trace/ as a deterministic layer). Disabled tracing (sampling 0, the default) costs one
 * predictable branch per request lifecycle site; no span storage is
 * touched.
 *
 * Completed spans land in a fixed-capacity ring buffer: long runs stay
 * bounded in memory and simply retain the most recent spans, with the
 * overwritten count reported so consumers can detect truncation.
 */

#ifndef URSA_TRACE_TRACER_H
#define URSA_TRACE_TRACER_H

#include "base/thread_annotations.h"
#include "trace/span.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ursa::trace
{

/**
 * Ring-buffered span recorder with deterministic request sampling.
 *
 * URSA_SINGLE_THREADED: one Tracer per Cluster, touched only by the
 * thread driving that cluster's event loop — parallel grid cells each
 * own a private (Cluster, Tracer) pair, so the recorder needs (and
 * must have) no locks on the record() hot path.
 */
class URSA_SINGLE_THREADED Tracer
{
  public:
    /** Default ring capacity (spans). */
    static constexpr std::size_t kDefaultCapacity = 1u << 16;

    explicit Tracer(std::size_t capacity = kDefaultCapacity);

    // --- sampling gate ---------------------------------------------

    /**
     * Set the request sampling rate in [0, 1]. 0 (the default)
     * disables tracing entirely; 1 traces every request. The decision
     * per request is hash(requestId) < rate * 2^64 — deterministic and
     * independent of recording order or thread count.
     */
    void setSampling(double rate);

    /** Current sampling rate. */
    double sampling() const { return rate_; }

    /** Whether any request can be sampled (rate > 0). */
    bool enabled() const { return rate_ > 0.0; }

    /** Deterministic per-request sampling decision. */
    bool sampleRequest(std::uint64_t requestId) const;

    // --- span ids ---------------------------------------------------

    /** Allocate the next span id (monotone, never kNoSpan). */
    SpanId nextSpanId() { return ++lastSpanId_; }

    // --- recording ---------------------------------------------------

    /** Record one completed span (overwrites the oldest when full). */
    void record(const Span &s);

    /** Drop all retained spans (ids and counters keep advancing). */
    void clear();

    // --- access ------------------------------------------------------

    /** Ring capacity (spans). Resizing clears retained spans. */
    std::size_t capacity() const { return capacity_; }
    void setCapacity(std::size_t capacity);

    /** Retained span count (<= capacity). */
    std::size_t size() const { return ring_.size(); }

    /** Total spans ever recorded. */
    std::uint64_t recorded() const { return recorded_; }

    /** Spans overwritten by ring wraparound since the last clear(). */
    std::uint64_t dropped() const { return dropped_; }

    /** Retained spans, oldest first (copies out of the ring). */
    std::vector<Span> snapshot() const;

  private:
    std::size_t capacity_;
    double rate_ = 0.0;
    /// Sampling threshold in 64-bit hash space; 0 when disabled.
    std::uint64_t threshold_ = 0;
    bool sampleAll_ = false;
    SpanId lastSpanId_ = kNoSpan;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
    /// Ring storage: next_ is the overwrite position once full.
    std::vector<Span> ring_;
    std::size_t next_ = 0;
};

} // namespace ursa::trace

#endif // URSA_TRACE_TRACER_H
