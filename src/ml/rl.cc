#include "ml/rl.h"

#include "ml/mlp.h"

#include <algorithm>
#include <cassert>

namespace ursa::ml
{

namespace
{

std::vector<int>
layerSizes(const QAgentConfig &cfg)
{
    std::vector<int> sizes;
    sizes.push_back(cfg.stateDim);
    for (int h : cfg.hidden)
        sizes.push_back(h);
    sizes.push_back(cfg.numActions);
    return sizes;
}

} // namespace

QAgent::QAgent(QAgentConfig cfg, std::uint64_t seed)
    : cfg_(cfg), q_(layerSizes(cfg), seed, cfg.learningRate),
      target_(layerSizes(cfg), seed, cfg.learningRate), rng_(seed ^ 0xabcd)
{
    target_.copyWeightsFrom(q_);
}

double
QAgent::epsilon() const
{
    const double frac =
        std::min(1.0, static_cast<double>(actCalls_) /
                          std::max(1, cfg_.epsilonDecaySteps));
    return cfg_.epsilonStart +
           (cfg_.epsilonEnd - cfg_.epsilonStart) * frac;
}

int
QAgent::act(const std::vector<double> &state, bool explore)
{
    ++actCalls_;
    if (explore && rng_.uniform() < epsilon())
        return static_cast<int>(rng_.uniformInt(cfg_.numActions));
    const std::vector<double> qs = q_.forward(state);
    return static_cast<int>(
        std::max_element(qs.begin(), qs.end()) - qs.begin());
}

void
QAgent::observe(Transition t)
{
    replay_.push_back(std::move(t));
    while (replay_.size() > cfg_.replayCapacity)
        replay_.pop_front();
}

double
QAgent::trainStep()
{
    if (replay_.size() < static_cast<std::size_t>(cfg_.batchSize))
        return 0.0;
    ++steps_;

    std::vector<std::vector<double>> xs, ys;
    xs.reserve(cfg_.batchSize);
    ys.reserve(cfg_.batchSize);
    for (int b = 0; b < cfg_.batchSize; ++b) {
        const Transition &t =
            replay_[rng_.uniformInt(replay_.size())];
        // Target: current Q with the taken action replaced by the
        // bootstrapped return from the target network.
        std::vector<double> target = q_.forward(t.state);
        const std::vector<double> nextQ = target_.forward(t.nextState);
        const double maxNext =
            *std::max_element(nextQ.begin(), nextQ.end());
        target[t.action] = t.reward + cfg_.gamma * maxNext;
        xs.push_back(t.state);
        ys.push_back(std::move(target));
    }
    const double loss = q_.trainBatch(xs, ys, Loss::MeanSquared);
    if (steps_ % static_cast<std::uint64_t>(cfg_.targetSyncInterval) == 0)
        target_.copyWeightsFrom(q_);
    return loss;
}

std::vector<double>
QAgent::qValues(const std::vector<double> &state) const
{
    return q_.forward(state);
}

} // namespace ursa::ml
