/**
 * @file
 * A compact deep Q-learning agent (MLP Q-network, replay buffer,
 * target network, epsilon-greedy) over a discrete action set. One such
 * agent per microservice is the stand-in for Firm's per-service RL
 * resource controllers (paper Sec. VII-B): Firm's DDPG emits a
 * continuous scaling action; our agent picks among discretized replica
 * deltas, which on a replica-count knob is equivalent in effect.
 */

#ifndef URSA_ML_RL_H
#define URSA_ML_RL_H

#include "ml/mlp.h"
#include "stats/rng.h"

#include <cstdint>
#include <deque>
#include <vector>

namespace ursa::ml
{

/** One replay transition. */
struct Transition
{
    std::vector<double> state;
    int action = 0;
    double reward = 0.0;
    std::vector<double> nextState;
};

/** Q-agent configuration. */
struct QAgentConfig
{
    int stateDim = 3;
    int numActions = 5;
    std::vector<int> hidden = {32, 32};
    double gamma = 0.9;          ///< discount
    double learningRate = 1e-3;
    double epsilonStart = 1.0;   ///< initial exploration rate
    double epsilonEnd = 0.05;
    int epsilonDecaySteps = 5000;
    std::size_t replayCapacity = 20000;
    int batchSize = 32;
    int targetSyncInterval = 200; ///< hard target-network sync period
};

/** Deep Q-learning agent with a replay buffer and target network. */
class QAgent
{
  public:
    QAgent(QAgentConfig cfg, std::uint64_t seed);

    /**
     * Pick an action for `state`; explores epsilon-greedily when
     * `explore` is true, else acts greedily.
     */
    int act(const std::vector<double> &state, bool explore = true);

    /** Store a transition in the replay buffer. */
    void observe(Transition t);

    /**
     * One training step (sampled mini-batch, Q-learning target,
     * periodic target sync). No-op until the buffer holds a batch.
     * @return the TD loss of the step (0 when skipped).
     */
    double trainStep();

    /** Q-values for a state (diagnostics / tests). */
    std::vector<double> qValues(const std::vector<double> &state) const;

    /** Current exploration rate. */
    double epsilon() const;

    /** Training steps taken. */
    std::uint64_t steps() const { return steps_; }

  private:
    QAgentConfig cfg_;
    Mlp q_;
    Mlp target_;
    std::deque<Transition> replay_;
    stats::Rng rng_;
    std::uint64_t steps_ = 0;
    std::uint64_t actCalls_ = 0;
};

} // namespace ursa::ml

#endif // URSA_ML_RL_H
