#include "ml/gbdt.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace ursa::ml
{

namespace
{

double
sigmoid(double x)
{
    return 1.0 / (1.0 + std::exp(-x));
}

double
meanOf(const std::vector<double> &v, const std::vector<int> &idx, int begin,
       int end)
{
    double s = 0.0;
    for (int i = begin; i < end; ++i)
        s += v[idx[i]];
    return s / std::max(1, end - begin);
}

} // namespace

Gbdt::Gbdt(GbdtConfig cfg) : cfg_(cfg)
{
    if (cfg_.numTrees < 1 || cfg_.maxDepth < 1 ||
        cfg_.minSamplesLeaf < 1 || cfg_.learningRate <= 0.0)
        throw std::invalid_argument("bad GbdtConfig");
}

double
Gbdt::Tree::eval(const std::vector<double> &x) const
{
    int cur = 0;
    while (nodes[cur].feature >= 0) {
        cur = x[nodes[cur].feature] <= nodes[cur].threshold
                  ? nodes[cur].left
                  : nodes[cur].right;
    }
    return nodes[cur].value;
}

int
Gbdt::buildNode(Tree &tree, const std::vector<std::vector<double>> &xs,
                const std::vector<double> &grad, std::vector<int> &idx,
                int begin, int end, int depth) const
{
    const int nodeId = static_cast<int>(tree.nodes.size());
    tree.nodes.emplace_back();
    const int n = end - begin;
    const double mean = meanOf(grad, idx, begin, end);

    if (depth >= cfg_.maxDepth || n < 2 * cfg_.minSamplesLeaf) {
        tree.nodes[nodeId].value = mean;
        return nodeId;
    }

    // Exact greedy split search: for each feature, sort the index range
    // and scan split points minimizing the sum of squared residuals.
    const int dim = static_cast<int>(xs[idx[begin]].size());
    double bestGain = 1e-12;
    int bestFeature = -1;
    double bestThreshold = 0.0;

    double total = 0.0, totalSq = 0.0;
    for (int i = begin; i < end; ++i) {
        total += grad[idx[i]];
        totalSq += grad[idx[i]] * grad[idx[i]];
    }
    const double parentSse = totalSq - total * total / n;

    std::vector<int> sorted(idx.begin() + begin, idx.begin() + end);
    for (int f = 0; f < dim; ++f) {
        std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
            return xs[a][f] < xs[b][f];
        });
        double leftSum = 0.0, leftSq = 0.0;
        for (int i = 0; i + 1 < n; ++i) {
            const double g = grad[sorted[i]];
            leftSum += g;
            leftSq += g * g;
            const int nl = i + 1, nr = n - nl;
            if (nl < cfg_.minSamplesLeaf || nr < cfg_.minSamplesLeaf)
                continue;
            if (xs[sorted[i]][f] == xs[sorted[i + 1]][f])
                continue; // no valid threshold between equal values
            const double rightSum = total - leftSum;
            const double rightSq = totalSq - leftSq;
            const double sse = (leftSq - leftSum * leftSum / nl) +
                               (rightSq - rightSum * rightSum / nr);
            const double gain = parentSse - sse;
            if (gain > bestGain) {
                bestGain = gain;
                bestFeature = f;
                bestThreshold =
                    0.5 * (xs[sorted[i]][f] + xs[sorted[i + 1]][f]);
            }
        }
    }

    if (bestFeature < 0) {
        tree.nodes[nodeId].value = mean;
        return nodeId;
    }

    // Partition the index range in place.
    const auto mid = std::stable_partition(
        idx.begin() + begin, idx.begin() + end, [&](int i) {
            return xs[i][bestFeature] <= bestThreshold;
        });
    const int midPos = static_cast<int>(mid - idx.begin());
    if (midPos == begin || midPos == end) {
        tree.nodes[nodeId].value = mean;
        return nodeId;
    }

    tree.nodes[nodeId].feature = bestFeature;
    tree.nodes[nodeId].threshold = bestThreshold;
    const int left =
        buildNode(tree, xs, grad, idx, begin, midPos, depth + 1);
    const int right =
        buildNode(tree, xs, grad, idx, midPos, end, depth + 1);
    tree.nodes[nodeId].left = left;
    tree.nodes[nodeId].right = right;
    return nodeId;
}

Gbdt::Tree
Gbdt::buildTree(const std::vector<std::vector<double>> &xs,
                const std::vector<double> &grad,
                std::vector<int> &indices) const
{
    Tree tree;
    buildNode(tree, xs, grad, indices, 0,
              static_cast<int>(indices.size()), 0);
    return tree;
}

void
Gbdt::fit(const std::vector<std::vector<double>> &xs,
          const std::vector<double> &ys)
{
    if (xs.empty() || xs.size() != ys.size())
        throw std::invalid_argument("bad dataset");
    const std::size_t n = xs.size();
    trees_.clear();

    // Base prediction: mean (Squared) or prior log-odds (Logistic).
    if (cfg_.objective == Objective::Squared) {
        basePrediction_ =
            std::accumulate(ys.begin(), ys.end(), 0.0) /
            static_cast<double>(n);
    } else {
        const double p = std::clamp(
            std::accumulate(ys.begin(), ys.end(), 0.0) /
                static_cast<double>(n),
            1e-6, 1.0 - 1e-6);
        basePrediction_ = std::log(p / (1.0 - p));
    }

    std::vector<double> score(n, basePrediction_);
    std::vector<double> residual(n);
    std::vector<int> indices(n);
    for (int t = 0; t < cfg_.numTrees; ++t) {
        // Negative gradient of the loss wrt the current score.
        for (std::size_t i = 0; i < n; ++i) {
            if (cfg_.objective == Objective::Squared)
                residual[i] = ys[i] - score[i];
            else
                residual[i] = ys[i] - sigmoid(score[i]);
        }
        std::iota(indices.begin(), indices.end(), 0);
        Tree tree = buildTree(xs, residual, indices);
        for (std::size_t i = 0; i < n; ++i)
            score[i] += cfg_.learningRate * tree.eval(xs[i]);
        trees_.push_back(std::move(tree));
    }
    trained_ = true;
}

double
Gbdt::rawScore(const std::vector<double> &x) const
{
    double s = basePrediction_;
    for (const Tree &t : trees_)
        s += cfg_.learningRate * t.eval(x);
    return s;
}

double
Gbdt::predict(const std::vector<double> &x) const
{
    if (!trained_)
        throw std::logic_error("predict before fit");
    const double s = rawScore(x);
    return cfg_.objective == Objective::Squared ? s : sigmoid(s);
}

bool
Gbdt::predictClass(const std::vector<double> &x) const
{
    if (cfg_.objective != Objective::Logistic)
        throw std::logic_error("predictClass needs Logistic objective");
    return predict(x) >= 0.5;
}

} // namespace ursa::ml
