/**
 * @file
 * Gradient-boosted regression trees, from scratch: CART trees fit to
 * negative gradients with shrinkage. Supports squared loss (regression)
 * and logistic loss (binary classification). This is the
 * boosted-trees half of the Sinan baseline's model stack.
 */

#ifndef URSA_ML_GBDT_H
#define URSA_ML_GBDT_H

#include <cstdint>
#include <memory>
#include <vector>

namespace ursa::ml
{

/** Objective for boosting. */
enum class Objective
{
    Squared,  ///< regression on y
    Logistic, ///< binary classification, y in {0, 1}
};

/** Tuning knobs. */
struct GbdtConfig
{
    int numTrees = 100;
    int maxDepth = 3;
    int minSamplesLeaf = 5;
    double learningRate = 0.1;
    Objective objective = Objective::Squared;
};

/** A gradient-boosted tree ensemble. */
class Gbdt
{
  public:
    explicit Gbdt(GbdtConfig cfg = {});

    /**
     * Fit on a dataset. Rows of `xs` must share one dimension;
     * `ys` must be the same length (for Logistic: labels in {0,1}).
     */
    void fit(const std::vector<std::vector<double>> &xs,
             const std::vector<double> &ys);

    /**
     * Raw score: regression value (Squared) or probability (Logistic).
     */
    double predict(const std::vector<double> &x) const;

    /** Logistic only: hard 0/1 prediction at threshold 0.5. */
    bool predictClass(const std::vector<double> &x) const;

    /** Number of trees actually fit. */
    int treeCount() const { return static_cast<int>(trees_.size()); }

    /** True after a successful fit(). */
    bool trained() const { return trained_; }

  private:
    struct Node
    {
        int feature = -1; ///< -1 marks a leaf
        double threshold = 0.0;
        double value = 0.0; ///< leaf output
        int left = -1, right = -1;
    };
    struct Tree
    {
        std::vector<Node> nodes;
        double eval(const std::vector<double> &x) const;
    };

    Tree buildTree(const std::vector<std::vector<double>> &xs,
                   const std::vector<double> &grad,
                   std::vector<int> &indices) const;
    int buildNode(Tree &tree, const std::vector<std::vector<double>> &xs,
                  const std::vector<double> &grad, std::vector<int> &idx,
                  int begin, int end, int depth) const;
    double rawScore(const std::vector<double> &x) const;

    GbdtConfig cfg_;
    double basePrediction_ = 0.0;
    std::vector<Tree> trees_;
    bool trained_ = false;
};

} // namespace ursa::ml

#endif // URSA_ML_GBDT_H
