/**
 * @file
 * A small from-scratch multi-layer perceptron with ReLU hidden layers
 * and an Adam optimizer. This is the neural-network substrate for the
 * ML-driven baselines: Sinan's latency/violation predictors and Firm's
 * per-service RL agents (paper Sec. VII-B).
 */

#ifndef URSA_ML_MLP_H
#define URSA_ML_MLP_H


#include <cstdint>
#include <vector>

namespace ursa::ml
{

/** Output-layer/loss pairing. */
enum class Loss
{
    MeanSquared, ///< linear output, MSE (regression)
    Logistic,    ///< sigmoid output, binary cross-entropy
};

/** A feed-forward network: sizes = {in, hidden..., out}. */
class Mlp
{
  public:
    /**
     * @param sizes Layer widths, at least {in, out}.
     * @param seed Weight-init seed (He initialization).
     * @param learningRate Adam step size.
     */
    Mlp(std::vector<int> sizes, std::uint64_t seed,
        double learningRate = 1e-3);

    /** Forward pass (applies sigmoid on output iff loss is Logistic). */
    std::vector<double> forward(const std::vector<double> &x,
                                Loss loss = Loss::MeanSquared) const;

    /**
     * One Adam step on a mini-batch; returns the mean loss.
     * X and Y must be equal-length and non-empty.
     */
    double trainBatch(const std::vector<std::vector<double>> &xs,
                      const std::vector<std::vector<double>> &ys,
                      Loss loss);

    /**
     * Convenience: epochs of mini-batch SGD over a dataset with
     * shuffling. Returns the final epoch's mean loss.
     */
    double fit(const std::vector<std::vector<double>> &xs,
               const std::vector<std::vector<double>> &ys, Loss loss,
               int epochs, int batchSize, std::uint64_t shuffleSeed = 1);

    /** Copy weights from another identically-shaped network. */
    void copyWeightsFrom(const Mlp &other);

    /** Soft-update weights toward another network (Polyak averaging). */
    void blendWeightsFrom(const Mlp &other, double tau);

    /** Input dimension. */
    int inputDim() const { return sizes_.front(); }

    /** Output dimension. */
    int outputDim() const { return sizes_.back(); }

    /** Total number of parameters. */
    std::size_t parameterCount() const;

  private:
    struct Layer
    {
        std::vector<double> w; ///< out x in, row-major
        std::vector<double> b;
        // Adam state
        std::vector<double> mw, vw, mb, vb;
        int in = 0, out = 0;
    };

    void forwardInternal(const std::vector<double> &x,
                         std::vector<std::vector<double>> &acts,
                         Loss loss) const;

    std::vector<int> sizes_;
    std::vector<Layer> layers_;
    double lr_;
    std::uint64_t adamStep_ = 0;
};

} // namespace ursa::ml

#endif // URSA_ML_MLP_H
