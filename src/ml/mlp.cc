#include "ml/mlp.h"

#include "check/check.h"
#include "stats/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ursa::ml
{

namespace
{

double
sigmoid(double x)
{
    return 1.0 / (1.0 + std::exp(-x));
}

} // namespace

Mlp::Mlp(std::vector<int> sizes, std::uint64_t seed, double learningRate)
    : sizes_(std::move(sizes)), lr_(learningRate)
{
    if (sizes_.size() < 2)
        throw std::invalid_argument("Mlp needs at least input and output");
    stats::Rng rng(seed);
    for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
        Layer layer;
        layer.in = sizes_[l];
        layer.out = sizes_[l + 1];
        layer.w.resize(static_cast<std::size_t>(layer.in) * layer.out);
        layer.b.assign(layer.out, 0.0);
        // He initialization for ReLU nets.
        const double scale = std::sqrt(2.0 / layer.in);
        for (double &w : layer.w)
            w = rng.normal(0.0, scale);
        layer.mw.assign(layer.w.size(), 0.0);
        layer.vw.assign(layer.w.size(), 0.0);
        layer.mb.assign(layer.b.size(), 0.0);
        layer.vb.assign(layer.b.size(), 0.0);
        layers_.push_back(std::move(layer));
    }
}

void
Mlp::forwardInternal(const std::vector<double> &x,
                     std::vector<std::vector<double>> &acts,
                     Loss loss) const
{
    URSA_CHECK(static_cast<int>(x.size()) == sizes_.front(), "ml.mlp",
               "input width does not match the first layer");
    acts.clear();
    acts.push_back(x);
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Layer &layer = layers_[l];
        std::vector<double> z(layer.out, 0.0);
        const std::vector<double> &a = acts.back();
        for (int o = 0; o < layer.out; ++o) {
            double sum = layer.b[o];
            const double *row =
                layer.w.data() + static_cast<std::size_t>(o) * layer.in;
            for (int i = 0; i < layer.in; ++i)
                sum += row[i] * a[i];
            z[o] = sum;
        }
        const bool last = (l + 1 == layers_.size());
        if (!last) {
            for (double &v : z)
                v = std::max(0.0, v); // ReLU
        } else if (loss == Loss::Logistic) {
            for (double &v : z)
                v = sigmoid(v);
        }
        acts.push_back(std::move(z));
    }
}

std::vector<double>
Mlp::forward(const std::vector<double> &x, Loss loss) const
{
    std::vector<std::vector<double>> acts;
    forwardInternal(x, acts, loss);
    return acts.back();
}

double
Mlp::trainBatch(const std::vector<std::vector<double>> &xs,
                const std::vector<std::vector<double>> &ys, Loss loss)
{
    if (xs.empty() || xs.size() != ys.size())
        throw std::invalid_argument("bad training batch");

    // Accumulate gradients over the batch.
    struct Grad
    {
        std::vector<double> w, b;
    };
    std::vector<Grad> grads(layers_.size());
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        grads[l].w.assign(layers_[l].w.size(), 0.0);
        grads[l].b.assign(layers_[l].b.size(), 0.0);
    }

    double totalLoss = 0.0;
    std::vector<std::vector<double>> acts;
    for (std::size_t n = 0; n < xs.size(); ++n) {
        forwardInternal(xs[n], acts, loss);
        const std::vector<double> &out = acts.back();
        const std::vector<double> &y = ys[n];
        URSA_CHECK(y.size() == out.size(), "ml.mlp",
                   "label width does not match the output layer");

        // Output delta. For MSE with linear output and for BCE with
        // sigmoid output, dL/dz conveniently equals (out - y).
        std::vector<double> delta(out.size());
        for (std::size_t o = 0; o < out.size(); ++o) {
            delta[o] = out[o] - y[o];
            if (loss == Loss::MeanSquared) {
                totalLoss += 0.5 * delta[o] * delta[o];
            } else {
                const double p = std::clamp(out[o], 1e-12, 1.0 - 1e-12);
                totalLoss +=
                    -(y[o] * std::log(p) + (1.0 - y[o]) * std::log(1.0 - p));
            }
        }

        for (std::size_t l = layers_.size(); l-- > 0;) {
            Layer &layer = layers_[l];
            const std::vector<double> &aPrev = acts[l];
            for (int o = 0; o < layer.out; ++o) {
                grads[l].b[o] += delta[o];
                double *grow =
                    grads[l].w.data() +
                    static_cast<std::size_t>(o) * layer.in;
                for (int i = 0; i < layer.in; ++i)
                    grow[i] += delta[o] * aPrev[i];
            }
            if (l == 0)
                break;
            // Propagate delta through weights and the ReLU derivative.
            std::vector<double> prev(layer.in, 0.0);
            for (int o = 0; o < layer.out; ++o) {
                const double *row =
                    layer.w.data() + static_cast<std::size_t>(o) * layer.in;
                for (int i = 0; i < layer.in; ++i)
                    prev[i] += row[i] * delta[o];
            }
            for (int i = 0; i < layer.in; ++i)
                if (acts[l][i] <= 0.0)
                    prev[i] = 0.0;
            delta = std::move(prev);
        }
    }

    // Adam update.
    ++adamStep_;
    constexpr double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
    const double invN = 1.0 / static_cast<double>(xs.size());
    const double bc1 =
        1.0 - std::pow(beta1, static_cast<double>(adamStep_));
    const double bc2 =
        1.0 - std::pow(beta2, static_cast<double>(adamStep_));
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        Layer &layer = layers_[l];
        auto adam = [&](std::vector<double> &param, std::vector<double> &m,
                        std::vector<double> &v,
                        const std::vector<double> &g) {
            for (std::size_t i = 0; i < param.size(); ++i) {
                const double grad = g[i] * invN;
                m[i] = beta1 * m[i] + (1.0 - beta1) * grad;
                v[i] = beta2 * v[i] + (1.0 - beta2) * grad * grad;
                param[i] -= lr_ * (m[i] / bc1) /
                            (std::sqrt(v[i] / bc2) + eps);
            }
        };
        adam(layer.w, layer.mw, layer.vw, grads[l].w);
        adam(layer.b, layer.mb, layer.vb, grads[l].b);
    }
    return totalLoss / static_cast<double>(xs.size());
}

double
Mlp::fit(const std::vector<std::vector<double>> &xs,
         const std::vector<std::vector<double>> &ys, Loss loss, int epochs,
         int batchSize, std::uint64_t shuffleSeed)
{
    if (xs.empty() || xs.size() != ys.size())
        throw std::invalid_argument("bad dataset");
    stats::Rng rng(shuffleSeed);
    std::vector<std::size_t> order(xs.size());
    std::iota(order.begin(), order.end(), 0);
    double lastLoss = 0.0;
    for (int e = 0; e < epochs; ++e) {
        // Fisher-Yates shuffle with the project RNG (deterministic).
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.uniformInt(i)]);
        double epochLoss = 0.0;
        std::size_t batches = 0;
        for (std::size_t start = 0; start < order.size();
             start += static_cast<std::size_t>(batchSize)) {
            std::vector<std::vector<double>> bx, by;
            for (std::size_t i = start;
                 i < std::min(order.size(),
                              start + static_cast<std::size_t>(batchSize));
                 ++i) {
                bx.push_back(xs[order[i]]);
                by.push_back(ys[order[i]]);
            }
            epochLoss += trainBatch(bx, by, loss);
            ++batches;
        }
        lastLoss = epochLoss / static_cast<double>(batches);
    }
    return lastLoss;
}

void
Mlp::copyWeightsFrom(const Mlp &other)
{
    if (sizes_ != other.sizes_)
        throw std::invalid_argument("shape mismatch");
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        layers_[l].w = other.layers_[l].w;
        layers_[l].b = other.layers_[l].b;
    }
}

void
Mlp::blendWeightsFrom(const Mlp &other, double tau)
{
    if (sizes_ != other.sizes_)
        throw std::invalid_argument("shape mismatch");
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        for (std::size_t i = 0; i < layers_[l].w.size(); ++i)
            layers_[l].w[i] = (1.0 - tau) * layers_[l].w[i] +
                              tau * other.layers_[l].w[i];
        for (std::size_t i = 0; i < layers_[l].b.size(); ++i)
            layers_[l].b[i] = (1.0 - tau) * layers_[l].b[i] +
                              tau * other.layers_[l].b[i];
    }
}

std::size_t
Mlp::parameterCount() const
{
    std::size_t n = 0;
    for (const Layer &l : layers_)
        n += l.w.size() + l.b.size();
    return n;
}

} // namespace ursa::ml
