/**
 * @file
 * The isolated-service harness of paper Fig. 3: a workload generator
 * drives a lightweight proxy which forwards every request to the
 * tested service (nested RPC, or MQ publish for queue consumers). The
 * backpressure profiler watches the proxy's latency; the exploration
 * controller (Algorithm 1) measures the tested service's latency
 * distributions. Downstream calls of the tested service are stripped —
 * in a backpressure-free system its latency depends only on its own
 * resources (Sec. III insight 4).
 */

#ifndef URSA_CORE_HARNESS_H
#define URSA_CORE_HARNESS_H

#include "spec/app_spec.h"
#include "sim/client.h"
#include "sim/cluster.h"
#include "sim/time.h"
#include "sim/types.h"

#include <memory>
#include <vector>

namespace ursa::core
{

/**
 * An instantiated Fig.-3 harness.
 *
 * Ownership contract for the parallel exploration path: every harness
 * (cluster, client and all) is built, driven and destroyed by exactly
 * one ursa::exec shard — nothing here is shared across threads, which
 * is why the struct is lock-free and the thread-safety analysis layer
 * has nothing to annotate on it.
 */
struct IsolatedHarness
{
    std::unique_ptr<sim::Cluster> cluster;
    sim::ServiceId proxyId = -1;
    sim::ServiceId testedId = -1;
    std::unique_ptr<sim::OpenLoopClient> client;
    /** Per-class service-local request rates driven by the client. */
    std::vector<double> localRates;

    /** Total driven rps. */
    double totalRps() const;
};

/**
 * Build the harness for `app.services[serviceIdx]`.
 *
 * @param localRates Service-local per-class rates (rps), typically
 *        app mix rate x visit count; zero for unhandled classes.
 * @param testedReplicas Replica count of the tested service.
 * @param proxyThreads Worker pool of the proxy: finite so that tested-
 *        service saturation visibly backs up into the proxy.
 */
IsolatedHarness makeIsolatedHarness(const spec::AppSpec &app,
                                    int serviceIdx,
                                    const std::vector<double> &localRates,
                                    int testedReplicas, std::uint64_t seed,
                                    int proxyThreads = 64,
                                    sim::SimTime metricsWindow = sim::kMin);

} // namespace ursa::core

#endif // URSA_CORE_HARNESS_H
