#include "core/profile.h"

#include "spec/app_spec.h"
#include "sim/time.h"
#include "sim/types.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace ursa::core
{

bool
ServiceProfile::handlesClass(sim::ClassId c) const
{
    if (levels.empty())
        return false;
    const auto &lv = levels.front();
    return c >= 0 &&
           static_cast<std::size_t>(c) < lv.loadPerReplica.size() &&
           lv.loadPerReplica[c] > 0.0;
}

double
ServiceProfile::lpr(int level, sim::ClassId c) const
{
    return levels.at(level).loadPerReplica.at(c);
}

int
AppProfile::totalSamples() const
{
    int n = 0;
    for (const ServiceProfile &s : services)
        n += s.samples;
    return n;
}

sim::SimTime
AppProfile::wallClockExploreTime() const
{
    sim::SimTime t = 0;
    for (const ServiceProfile &s : services)
        t = std::max(t, s.exploreTime);
    return t;
}

namespace
{

std::vector<std::vector<double>>
walkVisits(const spec::AppSpec &app, bool syncPathsOnly)
{
    const std::size_t numServices = app.services.size();
    const std::size_t numClasses = app.classes.size();
    std::vector<std::vector<double>> visits(
        numServices, std::vector<double>(numClasses, 0.0));

    std::map<std::string, std::size_t> index;
    for (std::size_t i = 0; i < numServices; ++i)
        index[app.services[i].name] = i;

    for (std::size_t c = 0; c < numClasses; ++c) {
        const bool followAsync =
            !syncPathsOnly || app.classes[c].asyncCompletion;
        // Walk the call tree with multiplicities.
        std::function<void(std::size_t, double)> walk =
            [&](std::size_t svc, double mult) {
                visits[svc][c] += mult;
                const auto &behaviors = app.services[svc].behaviors;
                const auto it = behaviors.find(static_cast<int>(c));
                if (it == behaviors.end())
                    return;
                for (const sim::CallSpec &call : it->second.calls) {
                    if (!followAsync &&
                        call.kind != sim::CallKind::NestedRpc)
                        continue;
                    const auto tgt = index.find(call.target);
                    if (tgt == index.end())
                        throw std::invalid_argument("unknown target " +
                                                    call.target);
                    walk(tgt->second, mult);
                }
            };
        const auto root = index.find(app.classes[c].rootService);
        if (root == index.end())
            throw std::invalid_argument("unknown root service for class " +
                                        app.classes[c].name);
        walk(root->second, 1.0);
    }
    return visits;
}

} // namespace

std::vector<std::vector<double>>
computeVisitCounts(const spec::AppSpec &app)
{
    return walkVisits(app, /*syncPathsOnly=*/false);
}

std::vector<std::vector<double>>
computeSlaVisitCounts(const spec::AppSpec &app)
{
    return walkVisits(app, /*syncPathsOnly=*/true);
}

} // namespace ursa::core
