/**
 * @file
 * UrsaManager — the deployed control plane (paper Fig. 5): wires the
 * optimization engine, per-service resource controllers, anomaly
 * detector and latency estimator onto a live cluster. The exploration
 * controller runs offline beforehand and hands its AppProfile here.
 */

#ifndef URSA_CORE_MANAGER_H
#define URSA_CORE_MANAGER_H

#include "spec/app_spec.h"
#include "core/anomaly.h"
#include "core/estimator.h"
#include "core/mip_model.h"
#include "core/profile.h"
#include "core/resource_controller.h"
#include "sim/cluster.h"
#include "sim/time.h"
#include "sim/types.h"
#include "stats/online.h"

#include <functional>
#include <memory>
#include <vector>

namespace ursa::core
{

/** Manager tuning. */
struct UrsaManagerOptions
{
    ResourceControllerOptions controller;
    AnomalyOptions anomaly;
    /** Controller tick period. */
    sim::SimTime controlInterval = 15 * sim::kSec;
    /** Anomaly-check period (0 disables the detector). */
    sim::SimTime anomalyInterval = 3 * sim::kMin;
    OptimizerOptions optimizer;
};

/** Ursa's online control plane for one application. */
class UrsaManager
{
  public:
    /**
     * @param cluster Live cluster running `app`.
     * @param app The application (for topology-derived visit counts).
     * @param profile Exploration output.
     */
    UrsaManager(sim::Cluster &cluster, const spec::AppSpec &app,
                AppProfile profile, UrsaManagerOptions opts = {});

    /**
     * Initial deployment: solve the model for the given expected
     * per-class application request mix (total rps + weights), size
     * every service accordingly, and schedule the periodic control
     * loop starting at the current simulation time.
     * @return false if the model is infeasible (nothing scheduled).
     */
    bool deploy(double expectedRps, const std::vector<double> &mix);

    /** Stop ticking (in-flight work completes). */
    void stop() { running_ = false; }

    /** Current optimization plan. */
    const ModelOutput &plan() const { return plan_; }

    /** Installed LPR thresholds, [service][class]. */
    const std::vector<std::vector<double>> &thresholds() const
    {
        return thresholds_;
    }

    /** The exploration profile currently in use. */
    const AppProfile &profile() const { return profile_; }

    /** The calibrated latency estimator (Figs. 9-10). */
    LatencyEstimator &estimator() { return *estimator_; }

    /**
     * Re-solve the model against recently measured loads (the anomaly
     * detector's Recalculate action; also callable directly).
     * @return true when the new plan is feasible and was installed.
     */
    bool recalculate();

    /**
     * Replace the exploration profile (after a partial re-exploration,
     * Sec. VII-G) and recalculate.
     */
    bool updateProfile(AppProfile profile);

    /**
     * Hook invoked when the anomaly detector escalates to
     * re-exploration. The callee is expected to run the exploration
     * controller and call updateProfile().
     */
    std::function<void(const std::vector<sim::ServiceId> &)> onReexplore;

    // --- control-plane latency accounting (Table VI) ----------------

    /** Wall-clock latency of deployment-path decisions (ticks). */
    stats::OnlineStats deployDecisionLatencyUs() const;

    /** Wall-clock latency of model re-solves (updates). */
    const stats::OnlineStats &updateLatencyUs() const
    {
        return updateLatency_;
    }

    /** Model recalculations performed. */
    int recalculations() const { return recalcs_; }

  private:
    void controlTick();
    void anomalyTick();
    void installPlan(const ModelOutput &plan);
    std::vector<std::vector<double>> measuredLoads(sim::SimTime horizon);

    sim::Cluster &cluster_;
    const spec::AppSpec &app_;
    AppProfile profile_;
    UrsaManagerOptions opts_;
    std::vector<std::vector<double>> visits_;    ///< load-bearing visits
    std::vector<std::vector<double>> slaVisits_; ///< latency-path visits
    std::vector<sim::SlaSpec> slas_;
    UrsaOptimizer optimizer_;
    ModelOutput plan_;
    std::vector<std::vector<double>> thresholds_;
    std::vector<std::unique_ptr<ResourceController>> controllers_;
    std::unique_ptr<LatencyEstimator> estimator_;
    AnomalyDetector detector_;
    stats::OnlineStats updateLatency_;
    bool running_ = false;
    bool ticksScheduled_ = false;
    bool deviationPersists_ = false;
    int recalcs_ = 0;
};

} // namespace ursa::core

#endif // URSA_CORE_MANAGER_H
