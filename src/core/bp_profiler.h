/**
 * @file
 * The backpressure-free CPU-threshold profiler of paper Sec. III
 * (Figs. 3-4): sweep the tested service's CPU limit upward, watch the
 * proxy's p99 latency, and declare convergence when Welch's t-test can
 * no longer distinguish the latency under the last two limits. The CPU
 * utilization just before convergence is the service's backpressure-
 * free threshold; exploration later refuses to push utilization past
 * it, preserving the independence assumption of the performance model.
 */

#ifndef URSA_CORE_BP_PROFILER_H
#define URSA_CORE_BP_PROFILER_H

#include "spec/app_spec.h"
#include "sim/time.h"

#include <cstdint>
#include <vector>

namespace ursa::core
{

/**
 * Span-derived critical-path attribution of one sweep step: mean
 * queue/service/blocked intervals of the proxy and tested hops, built
 * from `ursa::trace` request spans. The proxy's blocked-on-child share
 * is exactly the backpressure signal the profiler infers indirectly
 * from its latency convergence test — spans make it attributable
 * per request instead of per window.
 */
struct BpAttribution
{
    std::uint64_t proxySpans = 0;
    std::uint64_t testedSpans = 0;
    double proxyQueueUs = 0.0;
    double proxyServiceUs = 0.0;
    /// Proxy time spent waiting on the tested service's response.
    double proxyBlockedUs = 0.0;
    double testedQueueUs = 0.0;
    double testedServiceUs = 0.0;

    /** Fraction of proxy hop time spent blocked on the tested tier. */
    double proxyBlockedShare() const
    {
        const double total =
            proxyQueueUs + proxyServiceUs + proxyBlockedUs;
        return total > 0.0 ? proxyBlockedUs / total : 0.0;
    }
};

/** One CPU-limit step of the sweep (a point on a Fig.-4 curve). */
struct BpStep
{
    double cpuLimit = 0.0;     ///< cores given to the tested service
    double proxyP99Us = 0.0;   ///< proxy 99th-percentile latency
    double testedP99Us = 0.0;  ///< tested-service 99th-percentile latency
    double utilization = 0.0;  ///< tested-service CPU utilization
    BpAttribution attribution; ///< span-derived critical-path split
};

/** Result of profiling one service. */
struct BpProfileResult
{
    /** Backpressure-free utilization threshold, in (0, 1]. */
    double threshold = 1.0;
    /** Whether the proxy latency converged within the sweep. */
    bool converged = false;
    /** The full sweep, for Fig.-4-style plots. */
    std::vector<BpStep> steps;
    /** Simulated time spent. */
    sim::SimTime timeSpent = 0;
};

/** Sweep configuration. */
struct BpProfilerOptions
{
    int maxSteps = 14;
    /** First limit as a fraction of the measured CPU demand. */
    double startFactor = 0.8;
    /** Geometric growth of the limit per step. */
    double growthFactor = 1.18;
    /** Measurement duration per step. */
    sim::SimTime stepDuration = 2 * sim::kMin;
    /** Sub-window for t-test samples. */
    sim::SimTime sampleWindow = 10 * sim::kSec;
    /** t-test significance for convergence. */
    double alpha = 0.05;
    /** Scale the driven load so CPU demand is about this many cores
     * (keeps the sweep cheap; the threshold is a ratio). */
    double targetDemandCores = 2.0;
    /**
     * Request-sampling rate of the span tracer inside each step. The
     * spans feed BpStep::attribution and a redundant-measurement audit
     * (the span-derived tested-tier latency must agree with the
     * windowed tierLatency metric — both observe the same finished
     * invocations). Deterministic per request id, so the sweep stays
     * bit-identical across URSA_THREADS. 0 disables.
     */
    double traceSampling = 0.25;
    /**
     * Proxy worker-pool headroom over the nominal thread occupancy
     * (lambda x uncontended sojourn ~ CPU demand). A nested-RPC proxy
     * holds one worker for the tested service's whole round trip, so
     * once tested latency inflates past this factor the proxy's pool
     * exhausts and its own latency rises — the signal the profiler
     * watches for.
     */
    double proxyHeadroom = 3.5;
};

/**
 * Profile the backpressure-free threshold of `app.services[serviceIdx]`
 * under the given service-local per-class rates.
 */
BpProfileResult profileBackpressureThreshold(
    const spec::AppSpec &app, int serviceIdx,
    const std::vector<double> &localRates, std::uint64_t seed,
    const BpProfilerOptions &opts = {});

} // namespace ursa::core

#endif // URSA_CORE_BP_PROFILER_H
