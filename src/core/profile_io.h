/**
 * @file
 * Plain-text serialization of exploration profiles, so the expensive
 * offline exploration runs once and every benchmark binary can reuse
 * its output — mirroring how a production deployment would persist
 * exploration data between controller restarts.
 */

#ifndef URSA_CORE_PROFILE_IO_H
#define URSA_CORE_PROFILE_IO_H

#include "core/profile.h"

#include <iosfwd>
#include <string>

namespace ursa::core
{

/** Serialize a profile (versioned, human-readable). */
void saveAppProfile(const AppProfile &profile, std::ostream &out);

/** Save to a file path; returns false on I/O failure. */
bool saveAppProfile(const AppProfile &profile, const std::string &path);

/**
 * Parse a profile written by saveAppProfile.
 * @throws std::runtime_error on malformed input.
 */
AppProfile loadAppProfile(std::istream &in);

/**
 * Load from a file path.
 * @param ok Set to whether the file existed and parsed.
 */
AppProfile loadAppProfile(const std::string &path, bool &ok);

} // namespace ursa::core

#endif // URSA_CORE_PROFILE_IO_H
