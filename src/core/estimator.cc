#include "core/estimator.h"

#include <stdexcept>

namespace ursa::core
{

LatencyEstimator::LatencyEstimator(int numClasses, double ewmaAlpha)
    : upper_(numClasses, 0.0), ratio_(numClasses, 1.0),
      seeded_(numClasses, false), alpha_(ewmaAlpha)
{
    if (ewmaAlpha <= 0.0 || ewmaAlpha > 1.0)
        throw std::invalid_argument("ewmaAlpha must be in (0, 1]");
}

void
LatencyEstimator::setUpperBounds(std::vector<double> upperUs)
{
    if (upperUs.size() != upper_.size())
        throw std::invalid_argument("upper-bound arity mismatch");
    upper_ = std::move(upperUs);
}

void
LatencyEstimator::observe(int classId, double measuredUs)
{
    const double ub = upper_.at(classId);
    if (ub <= 0.0 || measuredUs <= 0.0)
        return;
    const double r = measuredUs / ub;
    if (!seeded_.at(classId)) {
        ratio_.at(classId) = r;
        seeded_.at(classId) = true;
    } else {
        ratio_.at(classId) =
            (1.0 - alpha_) * ratio_.at(classId) + alpha_ * r;
    }
}

double
LatencyEstimator::estimate(int classId) const
{
    return upper_.at(classId) * ratio_.at(classId);
}

double
LatencyEstimator::upperBound(int classId) const
{
    return upper_.at(classId);
}

double
LatencyEstimator::ratio(int classId) const
{
    return ratio_.at(classId);
}

} // namespace ursa::core
