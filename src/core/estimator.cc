#include "core/estimator.h"

#include "check/check.h"

#include <stdexcept>

namespace ursa::core
{

LatencyEstimator::LatencyEstimator(int numClasses, double ewmaAlpha)
    : upper_(numClasses, 0.0), ratio_(numClasses, 1.0),
      seeded_(numClasses, false), alpha_(ewmaAlpha)
{
    if (ewmaAlpha <= 0.0 || ewmaAlpha > 1.0)
        throw std::invalid_argument("ewmaAlpha must be in (0, 1]");
}

void
LatencyEstimator::setUpperBounds(std::vector<double> upperUs)
{
    if (upperUs.size() != upper_.size())
        throw std::invalid_argument("upper-bound arity mismatch");
    upper_ = std::move(upperUs);
}

void
LatencyEstimator::observe(int classId, double measuredUs)
{
    const double ub = upper_.at(classId);
    // A measurement with no upper bound or a non-positive latency means
    // the caller wired the estimator wrong (bounds not seeded from
    // exploration, or a negative interval upstream). Dropping it
    // silently freezes the ratio at a stale value; surface the
    // violation instead, then degrade gracefully for captured/level-0
    // builds.
    URSA_CHECK(ub > 0.0, "core.estimator",
               "observe() before the class's upper bound was set");
    URSA_CHECK(measuredUs > 0.0, "core.estimator",
               "observe() with a non-positive latency measurement");
    if (ub <= 0.0 || measuredUs <= 0.0)
        return;
    const double r = measuredUs / ub;
    if (!seeded_.at(classId)) {
        ratio_.at(classId) = r;
        seeded_.at(classId) = true;
    } else {
        ratio_.at(classId) =
            (1.0 - alpha_) * ratio_.at(classId) + alpha_ * r;
    }
}

double
LatencyEstimator::estimate(int classId) const
{
    return upper_.at(classId) * ratio_.at(classId);
}

double
LatencyEstimator::upperBound(int classId) const
{
    return upper_.at(classId);
}

double
LatencyEstimator::ratio(int classId) const
{
    return ratio_.at(classId);
}

} // namespace ursa::core
