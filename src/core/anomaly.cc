#include "core/anomaly.h"

#include "sim/cluster.h"
#include "sim/time.h"
#include "sim/types.h"

#include <algorithm>

namespace ursa::core
{

double
AnomalyDetector::requestRatioDeviation(const sim::Cluster &cluster,
                                       sim::ServiceId service,
                                       const std::vector<double> &lpr,
                                       sim::SimTime from, sim::SimTime to)
{
    const auto &metrics = cluster.metrics();
    double maxDemand = 0.0;
    double sumLoad = 0.0, sumThreshold = 0.0;
    for (std::size_t c = 0; c < lpr.size(); ++c) {
        if (lpr[c] <= 0.0)
            continue;
        const double load =
            metrics.arrivalRate(service, static_cast<int>(c), from, to);
        maxDemand = std::max(maxDemand, load / lpr[c]);
        sumLoad += load;
        sumThreshold += lpr[c];
    }
    if (maxDemand <= 0.0 || sumThreshold <= 0.0 || sumLoad <= 0.0)
        return 1.0;
    const double aggregateDemand = sumLoad / sumThreshold;
    return maxDemand / aggregateDemand;
}

AnomalyReport
AnomalyDetector::check(const sim::Cluster &cluster,
                       const std::vector<std::vector<double>> &thresholds,
                       sim::SimTime now, bool deviationPersists) const
{
    AnomalyReport report;
    const sim::SimTime window = cluster.metrics().window();
    const sim::SimTime from =
        std::max<sim::SimTime>(0, now - opts_.lookbackWindows * window);

    // Latency anomaly first: SLA violations mean stale distributions
    // and dominate any mix-skew concern.
    report.slaViolationRate =
        cluster.metrics().overallSlaViolationRate(from, now);
    if (report.slaViolationRate > opts_.slaViolationThreshold) {
        report.action = AnomalyAction::Reexplore;
        for (sim::ServiceId s = 0;
             s < static_cast<sim::ServiceId>(thresholds.size()); ++s)
            report.services.push_back(s);
        return report;
    }

    // Load anomaly: request-ratio deviation per service.
    for (sim::ServiceId s = 0;
         s < static_cast<sim::ServiceId>(thresholds.size()); ++s) {
        const double dev = requestRatioDeviation(cluster, s,
                                                 thresholds[s], from, now);
        if (dev > opts_.ratioDeviationThreshold)
            report.services.push_back(s);
        report.maxDeviation = std::max(report.maxDeviation, dev);
    }
    if (!report.services.empty()) {
        report.action = deviationPersists ? AnomalyAction::Reexplore
                                          : AnomalyAction::Recalculate;
    }
    return report;
}

} // namespace ursa::core
