/**
 * @file
 * The anomaly detector (paper Sec. V, component 5). Two anomaly kinds:
 *
 *  - Load anomalies: the request mix drifts from the mix the LPR
 *    thresholds were computed for, detected through the request-ratio
 *    deviation metric max_j(L_j/t_j) / (sum_j L_j / sum_j t_j) — 1 when
 *    the binding class matches the aggregate, growing as the mix skews.
 *    Remedy: recalculate thresholds (re-run the optimization engine);
 *    if deviation persists, re-explore the affected service.
 *
 *  - Latency anomalies: the end-to-end SLA violation rate over recent
 *    windows exceeds a user threshold, meaning the exploration-time
 *    latency distributions are stale. Remedy: re-exploration.
 */

#ifndef URSA_CORE_ANOMALY_H
#define URSA_CORE_ANOMALY_H

#include "sim/cluster.h"
#include "sim/time.h"
#include "sim/types.h"

#include <vector>

namespace ursa::core
{

/** What the detector asks the manager to do. */
enum class AnomalyAction
{
    None,
    Recalculate, ///< re-run the optimization engine on current loads
    Reexplore,   ///< partial re-exploration of the listed services
};

/** Detector output. */
struct AnomalyReport
{
    AnomalyAction action = AnomalyAction::None;
    /** Services whose mix deviates (for Recalculate/Reexplore). */
    std::vector<sim::ServiceId> services;
    double maxDeviation = 1.0;
    double slaViolationRate = 0.0;
};

/** Detector tuning. */
struct AnomalyOptions
{
    /** Request-ratio deviation that triggers recalculation. */
    double ratioDeviationThreshold = 1.5;
    /** Window-violation rate that triggers re-exploration. */
    double slaViolationThreshold = 0.15;
    /** Look-back horizon in metric windows. */
    int lookbackWindows = 5;
};

/** Stateless checks over the tracing data. */
class AnomalyDetector
{
  public:
    explicit AnomalyDetector(AnomalyOptions opts = {}) : opts_(opts) {}

    /**
     * Inspect the recent history ending at `now`.
     *
     * @param thresholds Current LPR thresholds,
     *        thresholds[service][class] (<= 0 where not applicable).
     * @param deviationPersists True when a previous Recalculate did
     *        not cure the deviation — escalates to Reexplore.
     */
    AnomalyReport check(
        const sim::Cluster &cluster,
        const std::vector<std::vector<double>> &thresholds,
        sim::SimTime now, bool deviationPersists = false) const;

    /** The request-ratio deviation of one service (1 = no skew). */
    static double requestRatioDeviation(
        const sim::Cluster &cluster, sim::ServiceId service,
        const std::vector<double> &lpr, sim::SimTime from, sim::SimTime to);

    const AnomalyOptions &options() const { return opts_; }

  private:
    AnomalyOptions opts_;
};

} // namespace ursa::core

#endif // URSA_CORE_ANOMALY_H
