#include "core/mip_model.h"

#include "check/check.h"
#include "core/profile.h"
#include "core/theorem.h"
#include "solver/lp.h"
#include "solver/mip.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>

namespace ursa::core
{

namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

/** A class's latency stages: (service, level-independent repeats). */
struct ClassPath
{
    std::vector<int> services; ///< one entry per visit (repeats included)
};

/** Validated, pre-digested solve context shared by the B&B. */
struct Context
{
    const ModelInput &in;
    const AppProfile &prof;
    bool evenSplit = false;
    int numServices;
    int numClasses;
    /** Services that actually have levels to choose. */
    std::vector<int> active;
    /** Per class: stage list (service index per visit). */
    std::vector<ClassPath> paths;
    /** Resource (cores) of service s at level l under current loads. */
    std::vector<std::vector<double>> resource;
    /** Replicas of service s at level l under current loads. */
    std::vector<std::vector<int>> reps;
    /** Element-wise min latency over levels, per service/class/grid. */
    std::vector<std::vector<std::vector<double>>> minLatency;

    explicit Context(const ModelInput &input)
        : in(input), prof(*input.profile)
    {
        numServices = static_cast<int>(prof.services.size());
        numClasses = static_cast<int>(input.slas.size());
        if (static_cast<int>(input.loads.size()) != numServices ||
            static_cast<int>(input.slaVisits.size()) != numServices)
            throw std::invalid_argument("model input size mismatch");

        // Profile/load validation: a NaN or negative latency entry
        // would silently pass through the percentile-split DP and
        // produce a bogus "feasible" allocation.
        for (const ServiceProfile &svc : prof.services)
            for (const LprLevel &lvl : svc.levels)
                for (const auto &row : lvl.latency)
                    for (double v : row)
                        URSA_CHECK(std::isfinite(v) && v >= 0.0,
                                   "core.mip",
                                   "profiled latency entry not finite "
                                   "and non-negative");
        for (const auto &row : input.loads)
            for (double v : row)
                URSA_CHECK(std::isfinite(v) && v >= 0.0, "core.mip",
                           "load entry not finite and non-negative");
        for (const auto &row : input.slaVisits)
            for (double v : row)
                URSA_CHECK(std::isfinite(v) && v >= 0.0, "core.mip",
                           "SLA visit count not finite and non-negative");

        for (int s = 0; s < numServices; ++s)
            if (!prof.services[s].levels.empty())
                active.push_back(s);

        paths.resize(numClasses);
        for (int c = 0; c < numClasses; ++c) {
            for (int s = 0; s < numServices; ++s) {
                if (!prof.services[s].handlesClass(c))
                    continue;
                // Only services on the class's SLA path contribute
                // latency stages; zero SLA visits = load only.
                const int repeats = static_cast<int>(
                    std::lround(in.slaVisits[s][c]));
                for (int r = 0; r < repeats; ++r)
                    paths[c].services.push_back(s);
            }
        }

        resource.resize(numServices);
        reps.resize(numServices);
        minLatency.resize(numServices);
        for (int s = 0; s < numServices; ++s) {
            const ServiceProfile &svc = prof.services[s];
            const int nl = static_cast<int>(svc.levels.size());
            resource[s].resize(nl);
            reps[s].resize(nl);
            for (int l = 0; l < nl; ++l) {
                reps[s][l] =
                    UrsaOptimizer::replicasNeeded(svc, l, in.loads[s]);
                resource[s][l] = reps[s][l] * svc.cpuPerReplica;
            }
            // Min latency over levels per class/grid point, for
            // optimistic feasibility pruning.
            if (nl > 0) {
                minLatency[s].resize(numClasses);
                for (int c = 0; c < numClasses; ++c) {
                    if (!svc.handlesClass(c))
                        continue;
                    const std::size_t g = prof.grid.size();
                    minLatency[s][c].assign(g, kInf);
                    for (int l = 0; l < nl; ++l) {
                        const auto &row = svc.levels[l].latency[c];
                        for (std::size_t k = 0; k < g; ++k)
                            minLatency[s][c][k] =
                                std::min(minLatency[s][c][k], row[k]);
                    }
                }
            }
        }
    }

    /** Minimal resource of service s over its levels (0 if no levels). */
    double
    minResource(int s) const
    {
        if (resource[s].empty())
            return 0.0;
        return *std::min_element(resource[s].begin(), resource[s].end());
    }

    /**
     * Feasibility check: with `level[s]` fixed (>= 0) for decided
     * services and optimistic (min) latencies elsewhere, does every
     * class admit a residual-feasible percentile split within its SLA?
     * When every service is decided this is the exact check.
     * @param upperBound When non-null and feasible, receives the
     *        latency-sum upper bound per class.
     */
    bool
    feasible(const std::vector<int> &level,
             std::vector<double> *upperBound) const
    {
        if (upperBound)
            upperBound->assign(numClasses, 0.0);
        for (int c = 0; c < numClasses; ++c) {
            if (paths[c].services.empty())
                continue;
            std::vector<std::vector<double>> stageLat;
            stageLat.reserve(paths[c].services.size());
            for (int s : paths[c].services) {
                if (level[s] >= 0) {
                    stageLat.push_back(
                        prof.services[s].levels[level[s]].latency[c]);
                } else if (!minLatency[s].empty() &&
                           !minLatency[s][c].empty()) {
                    stageLat.push_back(minLatency[s][c]);
                } else {
                    // Service without exploration data on this path:
                    // treat as free (it is not being managed).
                    continue;
                }
            }
            if (stageLat.empty())
                continue;
            SplitResult split;
            if (evenSplit) {
                // Naive policy: every stage gets residual/n; pick the
                // largest grid percentile fitting that share.
                const double share =
                    (100.0 - in.slas[c].percentile) /
                    static_cast<double>(stageLat.size());
                int gidx = -1;
                for (std::size_t g = 0; g < prof.grid.size(); ++g)
                    if (100.0 - prof.grid[g] <= share + 1e-12)
                        gidx = static_cast<int>(g);
                if (gidx < 0) {
                    split.feasible = false;
                } else {
                    split.feasible = true;
                    for (const auto &row : stageLat) {
                        if (!std::isfinite(row[gidx])) {
                            split.feasible = false;
                            break;
                        }
                        split.totalLatency += row[gidx];
                    }
                }
            } else {
                split = optimizePercentileSplit(stageLat, prof.grid,
                                                in.slas[c].percentile);
            }
            if (!split.feasible ||
                split.totalLatency >
                    static_cast<double>(in.slas[c].targetUs))
                return false;
            if (upperBound)
                (*upperBound)[c] = split.totalLatency;
        }
        return true;
    }
};

} // namespace

int
UrsaOptimizer::replicasNeeded(const ServiceProfile &svc, int lvl,
                              const std::vector<double> &loads)
{
    const LprLevel &level = svc.levels.at(lvl);
    int needed = 1;
    for (std::size_t c = 0; c < level.loadPerReplica.size(); ++c) {
        const double a = level.loadPerReplica[c];
        if (a <= 0.0)
            continue;
        const double load = c < loads.size() ? loads[c] : 0.0;
        if (load <= 0.0)
            continue;
        needed = std::max(
            needed, static_cast<int>(std::ceil(load / a - 1e-9)));
    }
    return needed;
}

ModelOutput
UrsaOptimizer::solve(const ModelInput &input) const
{
    if (input.profile == nullptr)
        throw std::invalid_argument("model input missing profile");
    Context ctx(input);
    ctx.evenSplit = opts_.evenSplit;

    ModelOutput out;
    out.level.assign(ctx.numServices, -1);
    out.replicas.assign(ctx.numServices, 0);
    out.upperBoundUs.assign(ctx.numClasses, 0.0);

    // Order decisions by descending resource spread so pruning bites
    // early on the services that matter.
    std::vector<int> order = ctx.active;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        auto spread = [&](int s) {
            const auto &r = ctx.resource[s];
            return *std::max_element(r.begin(), r.end()) -
                   *std::min_element(r.begin(), r.end());
        };
        return spread(a) > spread(b);
    });

    double incumbent = kInf;
    std::vector<int> bestLevel;
    std::vector<double> bestUpper;
    std::size_t nodes = 0;
    bool hitLimit = false;

    // Suffix sums of minimal remaining resource for bounding.
    std::vector<double> minSuffix(order.size() + 1, 0.0);
    for (std::size_t i = order.size(); i-- > 0;)
        minSuffix[i] = minSuffix[i + 1] + ctx.minResource(order[i]);

    std::vector<int> level(ctx.numServices, -1);
    std::function<void(std::size_t, double)> recurse =
        [&](std::size_t depth, double used) {
            if (++nodes > opts_.maxNodes) {
                hitLimit = true;
                return;
            }
            if (used + minSuffix[depth] >= incumbent)
                return; // resource bound
            if (depth == order.size()) {
                std::vector<double> upper;
                if (ctx.feasible(level, &upper)) {
                    incumbent = used;
                    bestLevel = level;
                    bestUpper = std::move(upper);
                }
                return;
            }
            if (!ctx.feasible(level, nullptr))
                return; // optimistic latency already violates an SLA
            const int s = order[depth];
            // Cheapest-resource levels first: the first feasible leaf
            // tends to be optimal, giving a tight incumbent early.
            std::vector<int> byResource(ctx.resource[s].size());
            for (std::size_t i = 0; i < byResource.size(); ++i)
                byResource[i] = static_cast<int>(i);
            std::sort(byResource.begin(), byResource.end(),
                      [&](int a, int b) {
                          return ctx.resource[s][a] < ctx.resource[s][b];
                      });
            for (int l : byResource) {
                level[s] = l;
                recurse(depth + 1, used + ctx.resource[s][l]);
                if (hitLimit)
                    break;
            }
            level[s] = -1;
        };
    recurse(0, 0.0);

    out.nodesExplored = nodes;
    out.hitNodeLimit = hitLimit;
    if (!std::isfinite(incumbent))
        return out; // infeasible

    out.feasible = true;
    out.level = bestLevel;
    out.upperBoundUs = bestUpper;
    out.totalCpuCores = 0.0;
    for (int s = 0; s < ctx.numServices; ++s) {
        if (out.level[s] >= 0) {
            out.replicas[s] = ctx.reps[s][out.level[s]];
            out.totalCpuCores += ctx.resource[s][out.level[s]];
        }
    }

    // Feasibility re-check of the returned incumbent: the exact split
    // must still fit every class's SLA, every decided service must
    // carry its load with >= 1 replica, and the objective must equal
    // the recomputed resource sum. Catches B&B bookkeeping bugs
    // (stale incumbent, wrong bound ordering) at the API boundary.
    std::vector<double> recheck;
    URSA_CHECK(ctx.feasible(out.level, &recheck), "core.mip",
               "returned solution fails the exact feasibility re-check");
    for (int c = 0; c < ctx.numClasses; ++c) {
        if (!recheck.empty())
            URSA_CHECK(recheck[c] <=
                           static_cast<double>(input.slas[c].targetUs) +
                               1e-6,
                       "core.mip",
                       "returned solution's latency bound exceeds the "
                       "class SLA");
    }
    for (int s : ctx.active)
        URSA_CHECK(out.level[s] >= 0 && out.replicas[s] >= 1, "core.mip",
                   "active service left undecided or with no replicas");
    URSA_CHECK(std::fabs(out.totalCpuCores - incumbent) <= 1e-6,
               "core.mip",
               "objective drifted from the recomputed resource sum");
    return out;
}

ModelOutput
solveViaGenericMip(const ModelInput &input, std::size_t maxNodes)
{
    if (input.profile == nullptr)
        throw std::invalid_argument("model input missing profile");
    Context ctx(input);
    const PercentileGrid &grid = ctx.prof.grid;
    const int G = static_cast<int>(grid.size());

    // Variable layout:
    //   delta[s][l]            one-hot level choice (binary)
    //   gamma[stage(c,k)][g]   one-hot percentile choice per stage
    //   z[stage(c,k)][l][g]    linearized product (continuous [0,1])
    struct StageRef
    {
        int cls;
        int svc;
    };
    std::vector<StageRef> stages;
    for (int c = 0; c < ctx.numClasses; ++c)
        for (int s : ctx.paths[c].services)
            if (!ctx.prof.services[s].levels.empty())
                stages.push_back({c, s});

    std::vector<std::vector<std::size_t>> deltaIdx(ctx.numServices);
    std::size_t nv = 0;
    for (int s : ctx.active) {
        deltaIdx[s].resize(ctx.prof.services[s].levels.size());
        for (auto &idx : deltaIdx[s])
            idx = nv++;
    }
    std::vector<std::size_t> gammaBase(stages.size());
    for (std::size_t k = 0; k < stages.size(); ++k) {
        gammaBase[k] = nv;
        nv += G;
    }
    std::vector<std::size_t> zBase(stages.size());
    for (std::size_t k = 0; k < stages.size(); ++k) {
        zBase[k] = nv;
        nv += ctx.prof.services[stages[k].svc].levels.size() * G;
    }

    solver::MipProblem mip(nv);
    for (int s : ctx.active) {
        std::vector<std::pair<std::size_t, double>> onehot;
        for (std::size_t l = 0; l < deltaIdx[s].size(); ++l) {
            mip.setBinary(deltaIdx[s][l]);
            mip.lp.setCost(deltaIdx[s][l], ctx.resource[s][l]);
            onehot.emplace_back(deltaIdx[s][l], 1.0);
        }
        mip.lp.addSparseConstraint(onehot, solver::Rel::Equal, 1.0);
    }
    for (std::size_t k = 0; k < stages.size(); ++k) {
        std::vector<std::pair<std::size_t, double>> onehot;
        for (int g = 0; g < G; ++g) {
            mip.setBinary(gammaBase[k] + g);
            onehot.emplace_back(gammaBase[k] + g, 1.0);
        }
        mip.lp.addSparseConstraint(onehot, solver::Rel::Equal, 1.0);
    }
    // z linking: z >= delta + gamma - 1, z <= delta, z <= gamma.
    for (std::size_t k = 0; k < stages.size(); ++k) {
        const int s = stages[k].svc;
        const int nl =
            static_cast<int>(ctx.prof.services[s].levels.size());
        for (int l = 0; l < nl; ++l) {
            for (int g = 0; g < G; ++g) {
                const std::size_t z = zBase[k] + l * G + g;
                mip.lp.setBounds(z, 0.0, 1.0);
                mip.lp.addSparseConstraint({{z, 1.0},
                                            {deltaIdx[s][l], -1.0},
                                            {gammaBase[k] + g, -1.0}},
                                           solver::Rel::GreaterEq, -1.0);
                mip.lp.addSparseConstraint(
                    {{z, 1.0}, {deltaIdx[s][l], -1.0}},
                    solver::Rel::LessEq, 0.0);
                mip.lp.addSparseConstraint(
                    {{z, 1.0}, {gammaBase[k] + g, -1.0}},
                    solver::Rel::LessEq, 0.0);
            }
        }
    }
    // Constraint 1 (latency) and 2 (residual budget) per class.
    for (int c = 0; c < ctx.numClasses; ++c) {
        std::vector<std::pair<std::size_t, double>> latencyRow;
        std::vector<std::pair<std::size_t, double>> residualRow;
        for (std::size_t k = 0; k < stages.size(); ++k) {
            if (stages[k].cls != c)
                continue;
            const int s = stages[k].svc;
            const auto &svc = ctx.prof.services[s];
            const int nl = static_cast<int>(svc.levels.size());
            for (int l = 0; l < nl; ++l)
                for (int g = 0; g < G; ++g)
                    latencyRow.emplace_back(zBase[k] + l * G + g,
                                            svc.levels[l].latency[c][g]);
            for (int g = 0; g < G; ++g)
                residualRow.emplace_back(gammaBase[k] + g,
                                         100.0 - grid[g]);
        }
        if (latencyRow.empty())
            continue;
        mip.lp.addSparseConstraint(
            latencyRow, solver::Rel::LessEq,
            static_cast<double>(input.slas[c].targetUs));
        mip.lp.addSparseConstraint(residualRow, solver::Rel::LessEq,
                                   100.0 - input.slas[c].percentile);
    }

    solver::MipOptions opts;
    opts.maxNodes = maxNodes;
    const solver::MipResult res = solver::solveMip(mip, opts);

    ModelOutput out;
    out.level.assign(ctx.numServices, -1);
    out.replicas.assign(ctx.numServices, 0);
    out.upperBoundUs.assign(ctx.numClasses, 0.0);
    out.nodesExplored = res.nodesExplored;
    out.hitNodeLimit = res.hitNodeLimit;
    if (res.status != solver::LpStatus::Optimal)
        return out;
    out.feasible = true;
    out.totalCpuCores = res.objective;
    for (int s : ctx.active) {
        for (std::size_t l = 0; l < deltaIdx[s].size(); ++l) {
            if (res.x[deltaIdx[s][l]] > 0.5) {
                out.level[s] = static_cast<int>(l);
                out.replicas[s] = ctx.reps[s][l];
            }
        }
    }
    for (std::size_t k = 0; k < stages.size(); ++k) {
        const int c = stages[k].cls;
        const int s = stages[k].svc;
        const auto &svc = ctx.prof.services[s];
        for (std::size_t l = 0; l < svc.levels.size(); ++l)
            for (int g = 0; g < G; ++g)
                if (res.x[zBase[k] + l * G + g] > 0.5)
                    out.upperBoundUs[c] += svc.levels[l].latency[c][g];
    }
    return out;
}

} // namespace ursa::core
