/**
 * @file
 * AutoReexplorer — closes the paper's anomaly loop (Sec. V, component
 * 5): when the UrsaManager's anomaly detector escalates to
 * re-exploration, this binding runs the exploration controller on the
 * affected services (partial exploration, Sec. VII-G) and installs the
 * refreshed profile back into the manager.
 *
 * Note on time: exploration here is performed against isolated harness
 * clusters (as the real system profiles a staging copy), so the live
 * cluster's simulated clock does not advance during re-exploration;
 * the cost is reported through samplesSpent()/timeSpent() exactly as
 * Table V accounts it.
 */

#ifndef URSA_CORE_AUTO_REEXPLORER_H
#define URSA_CORE_AUTO_REEXPLORER_H

#include "spec/app_spec.h"
#include "core/explorer.h"
#include "core/manager.h"
#include "core/profile.h"
#include "sim/time.h"
#include "sim/types.h"

#include <vector>

namespace ursa::core
{

/** Binds a manager's re-exploration hook to an explorer. */
class AutoReexplorer
{
  public:
    /**
     * Wire `manager.onReexplore`. The app reference must outlive this
     * object (as it must outlive the manager anyway).
     */
    AutoReexplorer(UrsaManager &manager, const spec::AppSpec &app,
                   ExplorationOptions opts);

    /** Services re-explored so far (may repeat). */
    const std::vector<sim::ServiceId> &reexplored() const
    {
        return reexplored_;
    }

    /** Exploration samples consumed by re-explorations. */
    int samplesSpent() const { return samplesSpent_; }

    /** Simulated profiling time consumed by re-explorations. */
    sim::SimTime timeSpent() const { return timeSpent_; }

  private:
    void handle(const std::vector<sim::ServiceId> &services);

    UrsaManager &manager_;
    const spec::AppSpec &app_;
    ExplorationController explorer_;
    AppProfile working_;
    std::vector<sim::ServiceId> reexplored_;
    int samplesSpent_ = 0;
    sim::SimTime timeSpent_ = 0;
};

} // namespace ursa::core

#endif // URSA_CORE_AUTO_REEXPLORER_H
