/**
 * @file
 * Exploration data: per-service latency distributions under different
 * load-per-replica (LPR) thresholds — the D_i^j matrices and R_i
 * vectors of the paper's MIP formulation (Table I) — plus static visit
 * counts derived from the application topology.
 */

#ifndef URSA_CORE_PROFILE_H
#define URSA_CORE_PROFILE_H

#include "spec/app_spec.h"
#include "core/theorem.h"
#include "sim/time.h"
#include "sim/types.h"

#include <map>
#include <string>
#include <vector>

namespace ursa::core
{

/** One explored LPR level of one service. */
struct LprLevel
{
    /** Replica count used when this level was measured. */
    int replicas = 0;
    /** Load per replica, per class (rps); 0 for unhandled classes. */
    std::vector<double> loadPerReplica;
    /**
     * Tier latency (us) at each grid percentile, per class:
     * latency[classId][gridIdx]. Empty rows for unhandled classes.
     */
    std::vector<std::vector<double>> latency;
    /** Mean CPU utilization observed at this level, in [0, 1]. */
    double cpuUtilization = 0.0;
};

/** Everything exploration learned about one service. */
struct ServiceProfile
{
    std::string serviceName;
    double cpuPerReplica = 1.0;
    /** Backpressure-free CPU utilization threshold (Sec. III). */
    double bpThreshold = 1.0;
    /** Levels in increasing load-per-replica order. */
    std::vector<LprLevel> levels;
    /** Observation windows consumed exploring this service. */
    int samples = 0;
    /** Simulated time spent exploring this service. */
    sim::SimTime exploreTime = 0;

    /** True when the service serves class `c`. */
    bool handlesClass(sim::ClassId c) const;

    /** Total load the level can carry per replica for class `c`. */
    double lpr(int level, sim::ClassId c) const;
};

/** Exploration output for a whole application. */
struct AppProfile
{
    PercentileGrid grid = defaultGrid();
    std::vector<ServiceProfile> services; ///< indexed by ServiceId
    /** Total observation windows across all services (Table V). */
    int totalSamples() const;
    /** Max per-service explore time: services explore in parallel. */
    sim::SimTime wallClockExploreTime() const;
};

/**
 * Static visit counts: visits[service][class] = expected invocations of
 * the service per request of the class, derived by walking the
 * application topology (a read-timeline request visits post-storage
 * twice, etc.). The paper folds repeated visits into "cumulative
 * latency of all accesses" — the optimizer multiplies by these counts.
 * Every call kind is followed: these counts size *load*.
 */
std::vector<std::vector<double>> computeVisitCounts(const spec::AppSpec &app);

/**
 * SLA-relevant visit counts: like computeVisitCounts, but for a class
 * measured at its synchronous response (asyncCompletion == false) the
 * walk does not descend through MqPublish or EventRpc calls — those
 * branches complete after the response and do not bear on the class's
 * latency SLA. Async-completion classes keep all visits. These counts
 * define the stage lists of the latency constraints (MIP constraint 1)
 * and the explorer's early-stop check.
 */
std::vector<std::vector<double>>
computeSlaVisitCounts(const spec::AppSpec &app);

} // namespace ursa::core

#endif // URSA_CORE_PROFILE_H
