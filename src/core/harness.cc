#include "core/harness.h"

#include "spec/app_spec.h"
#include "sim/client.h"
#include "sim/cluster.h"
#include "sim/time.h"
#include "sim/types.h"

#include <numeric>
#include <stdexcept>

namespace ursa::core
{

double
IsolatedHarness::totalRps() const
{
    return std::accumulate(localRates.begin(), localRates.end(), 0.0);
}

IsolatedHarness
makeIsolatedHarness(const spec::AppSpec &app, int serviceIdx,
                    const std::vector<double> &localRates,
                    int testedReplicas, std::uint64_t seed,
                    int proxyThreads, sim::SimTime metricsWindow)
{
    if (localRates.size() != app.classes.size())
        throw std::invalid_argument("localRates arity mismatch");

    const sim::ServiceConfig &orig = app.services.at(serviceIdx);
    IsolatedHarness h;
    h.cluster = std::make_unique<sim::Cluster>(seed, metricsWindow);
    h.localRates = localRates;

    // Proxy: forwards every driven class to the tested service. Its
    // own work is negligible but its worker pool is finite, so tested-
    // service backpressure shows up as proxy queueing (paper Fig. 3).
    sim::ServiceConfig proxy;
    proxy.name = "proxy";
    proxy.threads = proxyThreads;
    proxy.daemonThreads = proxyThreads;
    proxy.cpuPerReplica = 8.0;
    proxy.initialReplicas = 1;
    const sim::CallKind kind = orig.mqConsumer ? sim::CallKind::MqPublish
                                               : sim::CallKind::NestedRpc;
    for (std::size_t c = 0; c < app.classes.size(); ++c) {
        sim::ClassBehavior b;
        b.computeMeanUs = 200.0;
        b.computeCv = 0.1;
        if (orig.behaviors.count(static_cast<int>(c)) &&
            localRates[c] > 0.0)
            b.calls.push_back({orig.name, kind});
        proxy.behaviors[static_cast<int>(c)] = b;
    }

    // Tested service: original configuration with downstream calls
    // stripped (compute preserved, including the post-call phase).
    sim::ServiceConfig tested = orig;
    tested.initialReplicas = testedReplicas;
    for (auto &[cls, behavior] : tested.behaviors)
        behavior.calls.clear();

    h.proxyId = h.cluster->addService(proxy);
    h.testedId = h.cluster->addService(tested);

    for (std::size_t c = 0; c < app.classes.size(); ++c) {
        sim::RequestClassSpec spec = app.classes[c];
        spec.rootService = "proxy";
        spec.asyncCompletion = orig.mqConsumer;
        h.cluster->addClass(spec);
    }
    h.cluster->finalize();

    const double total = h.totalRps();
    if (total > 0.0) {
        h.client = std::make_unique<sim::OpenLoopClient>(
            *h.cluster, [total](sim::SimTime) { return total; },
            sim::fixedMix(localRates), seed ^ 0x5eedULL);
    }
    return h;
}

} // namespace ursa::core
