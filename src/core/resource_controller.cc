#include "core/resource_controller.h"

#include "sim/cluster.h"
#include "sim/service.h"
#include "sim/time.h"
#include "sim/types.h"
#include "stats/online.h"
#include "stats/welch.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace ursa::core
{

ResourceController::ResourceController(sim::Cluster &cluster,
                                       sim::ServiceId service,
                                       ResourceControllerOptions opts)
    : cluster_(cluster), service_(service), opts_(opts)
{
}

void
ResourceController::setThresholds(std::vector<double> lpr)
{
    lpr_ = std::move(lpr);
}

int
ResourceController::tick()
{
    // ursa-lint: allow(wall-clock) control-plane overhead (Table 6)
    const auto wallStart = std::chrono::steady_clock::now();

    sim::Service &svc = cluster_.service(service_);
    const int current = svc.activeReplicas();
    const sim::SimTime now = cluster_.events().now();
    const auto &metrics = cluster_.metrics();
    const double windowSec = sim::toSec(metrics.window());

    // Per-class load statistics over the recent history windows.
    int target = opts_.minReplicas;
    bool exceeds = false;
    bool allFitBelow = true;
    for (std::size_t c = 0; c < lpr_.size(); ++c) {
        if (lpr_[c] <= 0.0)
            continue;
        const auto windows = metrics.arrivals(service_, static_cast<int>(c))
                                 .lastWindowsBefore(
                                     now, static_cast<std::size_t>(
                                              opts_.historyWindows));
        stats::OnlineStats load;
        for (const auto *w : windows)
            load.add(static_cast<double>(w->stats.count()) / windowSec);
        if (load.count() == 0)
            continue;

        target = std::max(
            target,
            static_cast<int>(std::ceil(load.mean() / lpr_[c] - 1e-9)));
        // Scale-out trigger: load significantly above current capacity.
        if (stats::meanExceedsValue(load, current * lpr_[c], opts_.alpha))
            exceeds = true;
        // Scale-in gate: load must fit significantly below the shrunk
        // capacity for EVERY class.
        const double shrunk =
            (current - 1) * lpr_[c] * opts_.scaleInSafety;
        if (!stats::meanBelowValue(load, shrunk, opts_.alpha))
            allFitBelow = false;
    }

    int next = current;
    if (exceeds && target > current) {
        next = target;
    } else if (allFitBelow && target < current) {
        next = std::max(target, current - 1); // step down conservatively
    }
    next = std::clamp(next, opts_.minReplicas, opts_.maxReplicas);

    // ursa-lint: allow(wall-clock) control-plane overhead (Table 6)
    const auto wallEnd = std::chrono::steady_clock::now();
    decisionLatency_.add(
        std::chrono::duration<double, std::micro>(wallEnd - wallStart)
            .count());

    if (next != current) {
        svc.setReplicas(next);
        ++scaleEvents_;
    }
    return next;
}

} // namespace ursa::core
