/**
 * @file
 * The per-service resource controller (paper Sec. V, component 4):
 * given the load-per-replica thresholds chosen by the optimization
 * engine, it adjusts the replica count as load changes so no request
 * class's per-replica load exceeds its threshold. Welch's t-test
 * absorbs load-measurement noise: the controller only scales out when
 * the measured load significantly exceeds the current capacity, and
 * only scales in when it fits significantly below the shrunk capacity.
 *
 * This threshold check is the entire critical path of an Ursa scaling
 * decision — the reason Ursa's control plane is orders of magnitude
 * faster than ML inference (paper Table VI).
 */

#ifndef URSA_CORE_RESOURCE_CONTROLLER_H
#define URSA_CORE_RESOURCE_CONTROLLER_H

#include "sim/cluster.h"
#include "sim/types.h"
#include "stats/online.h"

#include <vector>

namespace ursa::core
{

/** Controller tuning. */
struct ResourceControllerOptions
{
    /** Load-history windows fed to the t-test. */
    int historyWindows = 3;
    /** t-test significance. */
    double alpha = 0.05;
    /** Scale in only when load fits below safety * shrunk capacity. */
    double scaleInSafety = 0.85;
    int minReplicas = 1;
    int maxReplicas = 256;
};

/** Scales one service against its LPR thresholds. */
class ResourceController
{
  public:
    ResourceController(sim::Cluster &cluster, sim::ServiceId service,
                       ResourceControllerOptions opts = {});

    /** Install per-class LPR thresholds (rps/replica; <=0 = ignore). */
    void setThresholds(std::vector<double> lpr);

    /** Current thresholds. */
    const std::vector<double> &thresholds() const { return lpr_; }

    /**
     * One control decision at the current simulation time; applies the
     * new replica count to the service. @return replicas after the
     * decision.
     */
    int tick();

    /**
     * Wall-clock latency of tick() decisions in microseconds —
     * the deployment-path control-plane latency of Table VI.
     */
    const stats::OnlineStats &decisionLatencyUs() const
    {
        return decisionLatency_;
    }

    /** Scaling actions actually taken. */
    int scaleEvents() const { return scaleEvents_; }

  private:
    sim::Cluster &cluster_;
    sim::ServiceId service_;
    ResourceControllerOptions opts_;
    std::vector<double> lpr_;
    stats::OnlineStats decisionLatency_;
    int scaleEvents_ = 0;
};

} // namespace ursa::core

#endif // URSA_CORE_RESOURCE_CONTROLLER_H
