#include "core/auto_reexplorer.h"

#include "spec/app_spec.h"
#include "core/explorer.h"
#include "core/manager.h"
#include "sim/types.h"

namespace ursa::core
{

AutoReexplorer::AutoReexplorer(UrsaManager &manager,
                               const spec::AppSpec &app,
                               ExplorationOptions opts)
    : manager_(manager), app_(app), explorer_(opts)
{
    manager_.onReexplore =
        [this](const std::vector<sim::ServiceId> &services) {
            handle(services);
        };
}

void
AutoReexplorer::handle(const std::vector<sim::ServiceId> &services)
{
    working_ = manager_.profile();
    for (sim::ServiceId s : services) {
        if (s < 0 ||
            static_cast<std::size_t>(s) >= working_.services.size())
            continue;
        explorer_.reexploreService(app_, s, working_);
        reexplored_.push_back(s);
        samplesSpent_ += working_.services[s].samples;
        timeSpent_ += working_.services[s].exploreTime;
    }
    manager_.updateProfile(working_);
}

} // namespace ursa::core
