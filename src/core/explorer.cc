#include "core/explorer.h"

#include "spec/app_spec.h"
#include "check/check.h"
#include "core/bp_profiler.h"
#include "core/harness.h"
#include "core/profile.h"
#include "core/theorem.h"
#include "exec/thread_pool.h"
#include "sim/time.h"
#include "sim/types.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ursa::core
{

std::vector<double>
ExplorationController::localRates(const spec::AppSpec &app,
                                  int serviceIdx) const
{
    const std::vector<double> &mix =
        opts_.mix.empty() ? app.exploreMix : opts_.mix;
    const double rps = opts_.appRps > 0.0 ? opts_.appRps : app.nominalRps;
    const double total =
        std::accumulate(mix.begin(), mix.end(), 0.0);
    const auto visits = computeVisitCounts(app);
    std::vector<double> rates(app.classes.size(), 0.0);
    for (std::size_t c = 0; c < app.classes.size(); ++c)
        rates[c] = rps * mix[c] / total * visits[serviceIdx][c];
    return rates;
}

ServiceProfile
ExplorationController::exploreService(const spec::AppSpec &app,
                                      int serviceIdx, double bpThreshold,
                                      const std::vector<double> &rates,
                                      const PercentileGrid &grid) const
{
    // Percentile-grid and input validation: a malformed grid or rate
    // vector silently poisons every LPR level recorded downstream.
    for (std::size_t g = 0; g < grid.size(); ++g) {
        URSA_CHECK(grid[g] > 0.0 && grid[g] <= 100.0, "core.explorer",
                   "percentile grid entry outside (0, 100]");
        URSA_CHECK(g == 0 || grid[g] > grid[g - 1], "core.explorer",
                   "percentile grid not strictly increasing");
    }
    for (double r : rates)
        URSA_CHECK(std::isfinite(r) && r >= 0.0, "core.explorer",
                   "service-local rate not finite and non-negative");
    URSA_CHECK(bpThreshold > 0.0 && bpThreshold <= 1.0, "core.explorer",
               "backpressure-free threshold outside (0, 1]");

    const sim::ServiceConfig &svcCfg = app.services.at(serviceIdx);
    ServiceProfile profile;
    profile.serviceName = svcCfg.name;
    profile.cpuPerReplica = svcCfg.cpuPerReplica;
    profile.bpThreshold = bpThreshold;

    // Initial replicas: adequate CPUs to keep latency low (paper
    // Sec. VII-C): provision for a low utilization target.
    double demand = 0.0;
    for (const auto &[cls, b] : svcCfg.behaviors) {
        if (static_cast<std::size_t>(cls) < rates.size())
            demand += rates[cls] *
                      (b.computeMeanUs + b.postComputeMeanUs) / 1e6;
    }
    if (demand <= 0.0)
        return profile; // unused service: nothing to explore

    int replicas = std::max(
        1, static_cast<int>(std::ceil(
               demand / (svcCfg.cpuPerReplica * opts_.initialUtilization))));

    // A class's end-to-end target only constrains this service if the
    // service lies on the class's SLA path (sync classes do not cover
    // their async MQ/event side-branches).
    const auto slaVisits = computeSlaVisitCounts(app);

    const sim::SimTime warmup = opts_.window;
    const sim::SimTime levelSpan =
        warmup + opts_.window * opts_.windowsPerLevel;

    while (replicas >= 1) {
        IsolatedHarness h = makeIsolatedHarness(
            app, serviceIdx, rates, replicas,
            opts_.seed + 7919ULL * (replicas + 1), 64, opts_.window);
        h.client->start(0);
        h.cluster->run(levelSpan);
        profile.samples += opts_.windowsPerLevel;
        profile.exploreTime += levelSpan;

        const auto &metrics = h.cluster->metrics();
        const double util =
            metrics.cpuUtilization(h.testedId, warmup, levelSpan);

        // SLA-violation frequency: fraction of windows whose tested-
        // service latency at the class's SLA percentile exceeds the
        // full end-to-end target (a conservative per-service stop: if
        // one service alone eats the budget, no feasible split exists).
        int windows = 0, violating = 0;
        for (std::size_t c = 0; c < app.classes.size(); ++c) {
            if (rates[c] <= 0.0 || slaVisits[serviceIdx][c] <= 0.0)
                continue;
            const auto &agg = metrics.tierLatency(h.testedId,
                                                  static_cast<int>(c));
            for (const auto &w : agg.windows()) {
                if (w.start < warmup || w.samples.empty())
                    continue;
                ++windows;
                if (w.samples.percentile(app.classes[c].sla.percentile) >
                    static_cast<double>(app.classes[c].sla.targetUs))
                    ++violating;
            }
        }
        const double violFreq =
            windows ? static_cast<double>(violating) / windows : 0.0;

        const bool bpStop =
            opts_.enforceBpThreshold && util >= bpThreshold;
        const bool unstable = util >= opts_.maxUtilization;
        if (bpStop || unstable || violFreq >= opts_.slaViolationThreshold)
            break; // Algorithm 1: terminate without recording

        // Record this LPR level.
        URSA_CHECK(std::isfinite(util) && util >= 0.0 && util <= 1.0 + 1e-9,
                   "core.explorer",
                   "measured CPU utilization outside [0, 1]");
        LprLevel level;
        level.replicas = replicas;
        level.cpuUtilization = util;
        level.loadPerReplica.assign(app.classes.size(), 0.0);
        level.latency.assign(app.classes.size(), {});
        for (std::size_t c = 0; c < app.classes.size(); ++c) {
            if (rates[c] <= 0.0)
                continue;
            const double measured = metrics.arrivalRate(
                h.testedId, static_cast<int>(c), warmup, levelSpan);
            // LPR bound: the measured per-replica load must be finite,
            // non-negative and consistent with the offered rate (x2
            // covers Poisson noise on short levels; beyond that the
            // harness replayed the wrong workload).
            URSA_CHECK(std::isfinite(measured) && measured >= 0.0,
                       "core.explorer",
                       "measured arrival rate not finite/non-negative");
            URSA_CHECK(measured <= rates[c] * 2.0 + 5.0, "core.explorer",
                       "LPR bound violation: measured load exceeds "
                       "the offered service-local rate");
            level.loadPerReplica[c] = measured / replicas;
            const auto samples = metrics
                                     .tierLatency(h.testedId,
                                                  static_cast<int>(c))
                                     .collect(warmup, levelSpan);
            level.latency[c].reserve(grid.size());
            // A low-rate class can see zero arrivals within a short
            // level span; record zero latency (no observed load, which
            // matches loadPerReplica above) instead of throwing.
            for (double p : grid)
                level.latency[c].push_back(
                    samples.empty() ? 0.0 : samples.percentile(p));
        }
        profile.levels.push_back(std::move(level));

        replicas -= opts_.replicaStep;
    }
    return profile;
}

AppProfile
ExplorationController::exploreApp(const spec::AppSpec &app) const
{
    // Per-service explorations are embarrassingly parallel (Sec. VII-C:
    // wall-clock time is the max, not the sum). Each index builds its
    // own harness clusters with index-derived seeds, so the profile is
    // bit-identical to the serial run for any URSA_THREADS. Shared
    // captures (`app`, `profile.grid`, `this`) are read-only inside
    // the lambda and each shard writes only its own result slot — the
    // lock-free shape the thread-safety analysis layer expects of
    // parallelMap bodies (see base/thread_annotations.h).
    AppProfile profile;
    profile.services = exec::parallelMap<ServiceProfile>(
        app.services.size(), [&](std::size_t s) {
            const std::vector<double> rates =
                localRates(app, static_cast<int>(s));
            double bpThreshold = 1.0;
            if (!app.services[s].mqConsumer) {
                const BpProfileResult bp = profileBackpressureThreshold(
                    app, static_cast<int>(s), rates,
                    opts_.seed + 31ULL * (s + 1), opts_.bpOptions);
                bpThreshold = bp.threshold;
            }
            return exploreService(app, static_cast<int>(s), bpThreshold,
                                  rates, profile.grid);
        });
    return profile;
}

void
ExplorationController::reexploreService(const spec::AppSpec &app,
                                        int serviceIdx,
                                        AppProfile &profile) const
{
    const std::vector<double> rates = localRates(app, serviceIdx);
    double bpThreshold = 1.0;
    if (!app.services[serviceIdx].mqConsumer) {
        bpThreshold = profileBackpressureThreshold(
                          app, serviceIdx, rates,
                          opts_.seed + 101ULL, opts_.bpOptions)
                          .threshold;
    }
    profile.services[serviceIdx] = exploreService(
        app, serviceIdx, bpThreshold, rates, profile.grid);
}

} // namespace ursa::core
