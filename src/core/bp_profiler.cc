#include "core/bp_profiler.h"

#include "spec/app_spec.h"
#include "check/check.h"
#include "core/harness.h"
#include "sim/time.h"
#include "stats/quantile.h"
#include "stats/welch.h"
#include "trace/export.h"

#include <algorithm>
#include <cmath>

namespace ursa::core
{

namespace
{

/** Measured statistics of one CPU-limit step. */
struct StepMeasurement
{
    std::vector<double> proxyP99Samples; ///< per sub-window
    double proxyP99 = 0.0;
    double testedP99 = 0.0;
    double utilization = 0.0;
    BpAttribution attribution;
};

/** Span ring capacity per step (bounds memory at full-rate steps). */
constexpr std::size_t kStepRingCapacity = 1u << 17;

/**
 * Build the step's critical-path attribution from the tracer's spans
 * and audit it against the windowed tier-latency metric: the tested
 * hop's span time (queue + service) and MetricsRegistry::tierLatency
 * measure the same finished invocations through two independent
 * pipelines, so their means must agree. Divergence means one of the
 * measurement paths lost or double-counted intervals.
 */
BpAttribution
attributeStep(const IsolatedHarness &h, sim::SimTime warmup,
              sim::SimTime end, double metricsTestedMeanUs,
              std::size_t metricsTestedCount)
{
    BpAttribution attr;
    const auto &tracer = h.cluster->tracer();
    const auto rows = trace::tierBreakdown(tracer.snapshot(), warmup, end);
    for (const trace::TierBreakdown &row : rows) {
        if (row.serviceId == h.proxyId) {
            attr.proxySpans = row.spans;
            attr.proxyQueueUs = row.meanQueueUs;
            attr.proxyServiceUs = row.meanServiceUs;
            attr.proxyBlockedUs = row.meanBlockedUs;
        } else if (row.serviceId == h.testedId) {
            attr.testedSpans = row.spans;
            attr.testedQueueUs = row.meanQueueUs;
            attr.testedServiceUs = row.meanServiceUs;
            const double spanMean =
                row.meanQueueUs + row.meanServiceUs;
            // Redundant-measurement audit. Gated on healthy sample
            // sizes and an untruncated ring so sampling noise cannot
            // fire it; 25% + 1 ms absorbs reservoir-vs-sample jitter.
            if (tracer.dropped() == 0 && row.spans >= 1000 &&
                metricsTestedCount >= 1000) {
                const double tol =
                    0.25 * metricsTestedMeanUs + 1000.0;
                URSA_CHECK(std::fabs(spanMean - metricsTestedMeanUs) <=
                               tol,
                           "core.bp_profiler",
                           "span-derived tested-tier latency diverges "
                           "from the windowed tierLatency metric");
            }
        }
    }
    return attr;
}

StepMeasurement
measureStep(const spec::AppSpec &app, int serviceIdx,
            const std::vector<double> &rates, double cpuLimit,
            double demandCores, std::uint64_t seed,
            const BpProfilerOptions &opts)
{
    const int proxyThreads = std::max(
        4, static_cast<int>(std::ceil(demandCores * opts.proxyHeadroom)));
    IsolatedHarness h = makeIsolatedHarness(app, serviceIdx, rates,
                                            /*testedReplicas=*/1, seed,
                                            proxyThreads,
                                            opts.sampleWindow);
    h.cluster->service(h.testedId).setCpuLimitPerReplica(cpuLimit);
    if (opts.traceSampling > 0.0) {
        h.cluster->tracer().setCapacity(kStepRingCapacity);
        h.cluster->tracer().setSampling(opts.traceSampling);
    }
    h.client->start(0);

    const sim::SimTime warmup = opts.stepDuration / 4;
    const sim::SimTime end = warmup + opts.stepDuration;
    h.cluster->run(end);

    StepMeasurement m;
    const auto &metrics = h.cluster->metrics();
    stats::SampleSet proxyAll(0, 3), testedAll(0, 5);
    for (int c = 0; c < h.cluster->numClasses(); ++c) {
        const auto &agg = metrics.tierLatency(h.proxyId, c);
        for (const auto &w : agg.windows()) {
            if (w.start < warmup || w.samples.empty())
                continue;
            m.proxyP99Samples.push_back(w.samples.percentile(99.0));
            for (double v : w.samples.samples())
                proxyAll.add(v);
        }
        const auto tested =
            metrics.tierLatency(h.testedId, c).collect(warmup, end);
        for (double v : tested.samples())
            testedAll.add(v);
    }
    m.proxyP99 = proxyAll.empty() ? 0.0 : proxyAll.percentile(99.0);
    m.testedP99 = testedAll.empty() ? 0.0 : testedAll.percentile(99.0);
    m.utilization = metrics.cpuUtilization(h.testedId, warmup, end);
    if (opts.traceSampling > 0.0) {
        m.attribution = attributeStep(h, warmup, end, testedAll.mean(),
                                      testedAll.count());
    }
    return m;
}

} // namespace

BpProfileResult
profileBackpressureThreshold(const spec::AppSpec &app, int serviceIdx,
                             const std::vector<double> &localRates,
                             std::uint64_t seed,
                             const BpProfilerOptions &opts)
{
    BpProfileResult res;

    // Estimate CPU demand analytically and scale the load so the sweep
    // is cheap; the threshold is a utilization ratio.
    const auto &svc = app.services.at(serviceIdx);
    double demand = 0.0;
    for (const auto &[cls, b] : svc.behaviors) {
        if (static_cast<std::size_t>(cls) < localRates.size())
            demand += localRates[cls] *
                      (b.computeMeanUs + b.postComputeMeanUs) / 1e6;
    }
    if (demand <= 0.0)
        return res; // nothing to profile
    const double scale =
        std::min(1.0, opts.targetDemandCores / demand);
    std::vector<double> rates = localRates;
    for (double &r : rates)
        r *= scale;
    demand *= scale;

    StepMeasurement prev;
    bool havePrev = false;
    double prevUtil = 1.0;
    for (int k = 0; k < opts.maxSteps; ++k) {
        const double limit = demand * opts.startFactor *
                             std::pow(opts.growthFactor, k);
        const StepMeasurement cur = measureStep(
            app, serviceIdx, rates, limit, demand,
            seed + 1000 * (k + 1), opts);
        res.steps.push_back({limit, cur.proxyP99, cur.testedP99,
                             cur.utilization, cur.attribution});
        res.timeSpent += opts.stepDuration + opts.stepDuration / 4;

        if (havePrev &&
            stats::meansEqual(prev.proxyP99Samples, cur.proxyP99Samples,
                              opts.alpha)) {
            // Proxy latency converged between the previous and current
            // limits: the utilization just before convergence is the
            // backpressure-free threshold. Measured utilization can
            // drift past 1.0 at window edges under overload; the
            // contract is (0, 1].
            res.threshold = std::clamp(prevUtil, 1e-3, 1.0);
            res.converged = true;
            return res;
        }
        prevUtil = cur.utilization;
        prev = cur;
        havePrev = true;
    }
    // Never converged inside the sweep: be conservative and use the
    // last measured utilization (clamped to the (0, 1] contract).
    res.threshold = std::clamp(prevUtil, 1e-3, 1.0);
    return res;
}

} // namespace ursa::core
