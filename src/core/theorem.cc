#include "core/theorem.h"

#include "check/check.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ursa::core
{

namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Residuals in 0.1-percentile integer units, rounded conservatively
 * up so the DP never under-counts a residual. */
int
residualUnits(double percentile)
{
    return static_cast<int>(std::ceil(residual(percentile) * 10.0 - 1e-9));
}

} // namespace

PercentileGrid
defaultGrid()
{
    return {50.0, 75.0, 90.0, 95.0, 99.0, 99.5, 99.9};
}

double
residual(double percentile)
{
    return 100.0 - percentile;
}

bool
splitSatisfiesResiduals(const std::vector<double> &stagePercentiles,
                        double endToEndPercentile)
{
    double sum = 0.0;
    for (double p : stagePercentiles)
        sum += residual(p);
    return residual(endToEndPercentile) >= sum - 1e-12;
}

SplitResult
optimizePercentileSplit(
    const std::vector<std::vector<double>> &latencyByStage,
    const PercentileGrid &grid, double endToEndPercentile)
{
    SplitResult res;
    const std::size_t n = latencyByStage.size();
    if (n == 0) {
        res.feasible = true;
        return res;
    }
    for (const auto &row : latencyByStage) {
        if (row.size() != grid.size())
            throw std::invalid_argument(
                "latency row does not match percentile grid");
    }
    for (std::size_t g = 1; g < grid.size(); ++g)
        if (grid[g] <= grid[g - 1])
            throw std::invalid_argument("grid must be increasing");

    const int budget =
        static_cast<int>(std::floor(residual(endToEndPercentile) * 10.0 +
                                    1e-9));
    if (budget < 0)
        return res;

    std::vector<int> cost(grid.size());
    for (std::size_t g = 0; g < grid.size(); ++g)
        cost[g] = residualUnits(grid[g]);

    // dp[s][b] = min latency sum over the first s stages using residual
    // budget exactly b; choice[s][b] = grid index of stage s-1 on that
    // optimum (kept per stage so the solution is reconstructible).
    const std::size_t bmax = static_cast<std::size_t>(budget) + 1;
    std::vector<std::vector<double>> dp(n + 1,
                                        std::vector<double>(bmax, kInf));
    std::vector<std::vector<int>> choice(n,
                                         std::vector<int>(bmax, -1));
    dp[0][0] = 0.0;

    for (std::size_t s = 0; s < n; ++s) {
        for (int b = 0; b <= budget; ++b) {
            if (!std::isfinite(dp[s][b]))
                continue;
            for (std::size_t g = 0; g < grid.size(); ++g) {
                const double lat = latencyByStage[s][g];
                if (!std::isfinite(lat))
                    continue;
                const int nb = b + cost[g];
                if (nb > budget)
                    continue;
                const double total = dp[s][b] + lat;
                if (total < dp[s + 1][nb]) {
                    dp[s + 1][nb] = total;
                    choice[s][nb] = static_cast<int>(g);
                }
            }
        }
    }

    int bestB = -1;
    double best = kInf;
    for (int b = 0; b <= budget; ++b) {
        if (dp[n][b] < best) {
            best = dp[n][b];
            bestB = b;
        }
    }
    if (bestB < 0)
        return res;

    res.feasible = true;
    res.totalLatency = best;
    res.chosenIdx.assign(n, -1);
    int b = bestB;
    for (std::size_t s = n; s-- > 0;) {
        const int g = choice[s][b];
        URSA_CHECK(g >= 0, "core.theorem",
                   "percentile-split DP backtrack hit an unset choice");
        res.chosenIdx[s] = g;
        b -= cost[static_cast<std::size_t>(g)];
    }
    URSA_CHECK(b >= 0, "core.theorem",
               "percentile-split DP backtrack overran the budget");
    return res;
}

} // namespace ursa::core
