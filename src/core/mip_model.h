/**
 * @file
 * The Ursa resource-optimization model (paper Sec. IV, "MIP 1"):
 * choose one explored LPR level per service (one-hot delta_i) and one
 * grid percentile per service-visit and class (one-hot gamma_i^j) such
 * that for every request class the Theorem-1 latency upper bound meets
 * the SLA, minimizing total CPU.
 *
 * Two solvers are provided:
 *  - UrsaOptimizer::solve — exact branch-and-bound over per-service
 *    levels with an inner percentile-split DP per class (the production
 *    path; scales to real topologies);
 *  - lowerToGenericMip — a literal 0/1 ILP encoding solved by
 *    ursa::solver::solveMip (the Gurobi stand-in), used to cross-check
 *    the specialized solver on small instances.
 */

#ifndef URSA_CORE_MIP_MODEL_H
#define URSA_CORE_MIP_MODEL_H

#include "core/profile.h"
#include "sim/types.h"
#include "solver/mip.h"

#include <cstdint>
#include <vector>

namespace ursa::core
{

/** Inputs to one optimization solve. */
struct ModelInput
{
    const AppProfile *profile = nullptr;
    /** SLA per class (target percentile + latency target). */
    std::vector<sim::SlaSpec> slas;
    /** Current service-local load, loads[service][class] in rps. */
    std::vector<std::vector<double>> loads;
    /**
     * SLA-relevant visit counts (computeSlaVisitCounts):
     * slaVisits[service][class] stages per request. Defines the
     * latency-constraint paths; loads are supplied separately above.
     */
    std::vector<std::vector<double>> slaVisits;
};

/** Result of one optimization solve. */
struct ModelOutput
{
    bool feasible = false;
    /** Chosen LPR level per service (-1 where nothing to choose). */
    std::vector<int> level;
    /** Replica count per service implied by loads at chosen levels. */
    std::vector<int> replicas;
    /** Total allocated CPU cores at those replica counts. */
    double totalCpuCores = 0.0;
    /** Theorem-1 latency upper bound per class at the optimum (us). */
    std::vector<double> upperBoundUs;
    /** Branch-and-bound nodes explored (diagnostics). */
    std::size_t nodesExplored = 0;
    bool hitNodeLimit = false;
};

/** Solver knobs. */
struct OptimizerOptions
{
    std::size_t maxNodes = 2000000;
    /**
     * Ablation: disable Theorem 1's percentile-split freedom and give
     * every stage of a class the same even share of the residual
     * budget (the naive alternative the paper's formulation improves
     * on). Used by bench_ablation_split.
     */
    bool evenSplit = false;
};

/** The exact specialized solver. */
class UrsaOptimizer
{
  public:
    explicit UrsaOptimizer(OptimizerOptions opts = {}) : opts_(opts) {}

    /** Solve the model; input vectors must be mutually consistent. */
    ModelOutput solve(const ModelInput &input) const;

    /**
     * Replica count service `s` needs at level `lvl` to carry
     * `loads[s]` (the paper's Equation 3 divided by u_i).
     */
    static int replicasNeeded(const ServiceProfile &svc, int lvl,
                              const std::vector<double> &loads);

  private:
    OptimizerOptions opts_;
};

/**
 * Literal 0/1 ILP encoding of MIP 1 (with linearized one-hot products)
 * solved through ursa::solver. Exponentially slower than the
 * specialized solver; intended for small cross-check instances.
 * Visit counts are rounded to >= 1 repeats of the stage.
 */
ModelOutput solveViaGenericMip(const ModelInput &input,
                               std::size_t maxNodes = 500000);

} // namespace ursa::core

#endif // URSA_CORE_MIP_MODEL_H
