#include "core/manager.h"

#include "spec/app_spec.h"
#include "core/anomaly.h"
#include "core/estimator.h"
#include "core/mip_model.h"
#include "core/profile.h"
#include "core/resource_controller.h"
#include "sim/cluster.h"
#include "sim/time.h"
#include "sim/types.h"
#include "stats/online.h"

#include <chrono>
#include <numeric>

namespace ursa::core
{

UrsaManager::UrsaManager(sim::Cluster &cluster, const spec::AppSpec &app,
                         AppProfile profile, UrsaManagerOptions opts)
    : cluster_(cluster), app_(app), profile_(std::move(profile)),
      opts_(opts), visits_(computeVisitCounts(app)),
      slaVisits_(computeSlaVisitCounts(app)), optimizer_(opts.optimizer),
      detector_(opts.anomaly)
{
    for (const auto &cls : app_.classes)
        slas_.push_back(cls.sla);
    estimator_ = std::make_unique<LatencyEstimator>(
        static_cast<int>(app_.classes.size()));
    for (sim::ServiceId s = 0; s < cluster_.numServices(); ++s) {
        controllers_.push_back(std::make_unique<ResourceController>(
            cluster_, s, opts_.controller));
    }
}

bool
UrsaManager::deploy(double expectedRps, const std::vector<double> &mix)
{
    // Expected service-local loads from the mix and visit counts.
    const double total = std::accumulate(mix.begin(), mix.end(), 0.0);
    ModelInput input;
    input.profile = &profile_;
    input.slas = slas_;
    input.slaVisits = slaVisits_;
    input.loads.assign(profile_.services.size(),
                       std::vector<double>(app_.classes.size(), 0.0));
    for (std::size_t s = 0; s < profile_.services.size(); ++s)
        for (std::size_t c = 0; c < app_.classes.size(); ++c)
            input.loads[s][c] =
                expectedRps * mix[c] / total * visits_[s][c];

    // ursa-lint: allow(wall-clock) control-plane overhead (Table 6)
    const auto wallStart = std::chrono::steady_clock::now();
    const ModelOutput plan = optimizer_.solve(input);
    updateLatency_.add(std::chrono::duration<double, std::micro>(
                           // ursa-lint: allow(wall-clock) control-plane overhead (Table 6)
                           std::chrono::steady_clock::now() - wallStart)
                           .count());
    if (!plan.feasible)
        return false;
    installPlan(plan);

    running_ = true;
    if (!ticksScheduled_) {
        ticksScheduled_ = true;
        cluster_.events().scheduleIn(opts_.controlInterval,
                                     [this] { controlTick(); });
        if (opts_.anomalyInterval > 0) {
            cluster_.events().scheduleIn(opts_.anomalyInterval,
                                         [this] { anomalyTick(); });
        }
    }
    return true;
}

void
UrsaManager::installPlan(const ModelOutput &plan)
{
    plan_ = plan;
    thresholds_.assign(cluster_.numServices(),
                       std::vector<double>(app_.classes.size(), 0.0));
    for (std::size_t s = 0; s < profile_.services.size(); ++s) {
        const int lvl = plan.level[s];
        if (lvl < 0)
            continue;
        thresholds_[s] = profile_.services[s].levels[lvl].loadPerReplica;
        controllers_[s]->setThresholds(thresholds_[s]);
        // Apply the plan's replica counts immediately.
        if (plan.replicas[s] > 0)
            cluster_.service(static_cast<sim::ServiceId>(s))
                .setReplicas(plan.replicas[s]);
    }
    estimator_->setUpperBounds(plan.upperBoundUs);
}

std::vector<std::vector<double>>
UrsaManager::measuredLoads(sim::SimTime horizon)
{
    const sim::SimTime now = cluster_.events().now();
    const sim::SimTime from = std::max<sim::SimTime>(0, now - horizon);
    std::vector<std::vector<double>> loads(
        cluster_.numServices(),
        std::vector<double>(app_.classes.size(), 0.0));
    for (sim::ServiceId s = 0; s < cluster_.numServices(); ++s)
        for (std::size_t c = 0; c < app_.classes.size(); ++c)
            loads[s][c] = cluster_.metrics().arrivalRate(
                s, static_cast<int>(c), from, now);
    return loads;
}

bool
UrsaManager::recalculate()
{
    ModelInput input;
    input.profile = &profile_;
    input.slas = slas_;
    input.slaVisits = slaVisits_;
    input.loads = measuredLoads(5 * cluster_.metrics().window());

    // ursa-lint: allow(wall-clock) control-plane overhead (Table 6)
    const auto wallStart = std::chrono::steady_clock::now();
    const ModelOutput plan = optimizer_.solve(input);
    updateLatency_.add(std::chrono::duration<double, std::micro>(
                           // ursa-lint: allow(wall-clock) control-plane overhead (Table 6)
                           std::chrono::steady_clock::now() - wallStart)
                           .count());
    ++recalcs_;
    if (!plan.feasible)
        return false;
    installPlan(plan);
    return true;
}

bool
UrsaManager::updateProfile(AppProfile profile)
{
    profile_ = std::move(profile);
    return recalculate();
}

void
UrsaManager::controlTick()
{
    if (!running_)
        return;
    for (std::size_t s = 0; s < controllers_.size(); ++s) {
        if (plan_.level.size() > s && plan_.level[s] >= 0)
            controllers_[s]->tick();
    }
    // Feed the estimator the last completed window's measurements.
    const sim::SimTime now = cluster_.events().now();
    for (std::size_t c = 0; c < app_.classes.size(); ++c) {
        const auto windows =
            cluster_.metrics().endToEnd(static_cast<int>(c))
                .lastWindowsBefore(now, 1);
        if (!windows.empty() && !windows[0]->samples.empty()) {
            estimator_->observe(
                static_cast<int>(c),
                windows[0]->samples.percentile(slas_[c].percentile));
        }
    }
    cluster_.events().scheduleIn(opts_.controlInterval,
                                 [this] { controlTick(); });
}

void
UrsaManager::anomalyTick()
{
    if (!running_)
        return;
    const AnomalyReport report =
        detector_.check(cluster_, thresholds_, cluster_.events().now(),
                        deviationPersists_);
    switch (report.action) {
      case AnomalyAction::None:
        deviationPersists_ = false;
        break;
      case AnomalyAction::Recalculate:
        recalculate();
        deviationPersists_ = true; // escalate if it does not clear
        break;
      case AnomalyAction::Reexplore:
        deviationPersists_ = false;
        if (onReexplore)
            onReexplore(report.services);
        break;
    }
    cluster_.events().scheduleIn(opts_.anomalyInterval,
                                 [this] { anomalyTick(); });
}

stats::OnlineStats
UrsaManager::deployDecisionLatencyUs() const
{
    stats::OnlineStats all;
    for (const auto &c : controllers_)
        all.merge(c->decisionLatencyUs());
    return all;
}

} // namespace ursa::core
