/**
 * @file
 * The exploration controller: Algorithm 1 of the paper. Each service
 * is explored individually in the Fig.-3 harness by replaying its
 * service-local workload while stepping the replica count down; every
 * step contributes one LPR level (load-per-replica vector + latency
 * distributions at the percentile grid). Exploration stops swiftly
 * when the SLA-violation frequency exceeds F_sla or the CPU
 * utilization crosses the service's backpressure-free threshold.
 */

#ifndef URSA_CORE_EXPLORER_H
#define URSA_CORE_EXPLORER_H

#include "spec/app_spec.h"
#include "core/bp_profiler.h"
#include "core/profile.h"
#include "core/theorem.h"
#include "sim/time.h"

#include <cstdint>
#include <vector>

namespace ursa::core
{

/** Exploration configuration. */
struct ExplorationOptions
{
    /** Total application request rate replayed during exploration. */
    double appRps = 0.0; ///< 0: use the app's nominalRps
    /** Request-class mix (weights); empty: use the app's exploreMix. */
    std::vector<double> mix;
    /** Observation window (the paper samples once per minute). */
    sim::SimTime window = sim::kMin;
    /** Windows (samples) collected per LPR level. */
    int windowsPerLevel = 10;
    /** F_sla: stop when this fraction of windows violates the SLA. */
    double slaViolationThreshold = 0.1;
    /** Replica-count step per iteration. */
    int replicaStep = 1;
    /** Enforce the backpressure-free CPU threshold stop (ablation
     * knob: the paper's design enables it). */
    bool enforceBpThreshold = true;
    /**
     * Hard queue-stability cap applied on top of the backpressure
     * threshold: a level measured at utilization >= this is discarded
     * even if short-window latencies look healthy, because a queue at
     * rho -> 1 diverges on horizons longer than the profiling window
     * (this bites for multi-second MQ jobs like video transcoding).
     */
    double maxUtilization = 0.88;
    /** Initial-provisioning utilization target (adequate CPUs). */
    double initialUtilization = 0.3;
    /** Options for the per-service backpressure profiling pass. */
    BpProfilerOptions bpOptions;
    std::uint64_t seed = 1;
};

/** Runs Algorithm 1 and the Sec.-III profiling pass. */
class ExplorationController
{
  public:
    explicit ExplorationController(ExplorationOptions opts = {})
        : opts_(opts)
    {
    }

    /**
     * Explore a single service given its backpressure-free threshold
     * and service-local per-class rates.
     */
    ServiceProfile exploreService(const spec::AppSpec &app,
                                  int serviceIdx, double bpThreshold,
                                  const std::vector<double> &localRates,
                                  const PercentileGrid &grid) const;

    /**
     * Full pipeline for a new application: determine backpressure-free
     * thresholds for RPC services (MQ consumers need none — Sec. III
     * shows MQs do not propagate backpressure), then run Algorithm 1
     * on every service. Per-service explorations are independent, so
     * wall-clock time is the max, not the sum (Sec. VII-C).
     */
    AppProfile exploreApp(const spec::AppSpec &app) const;

    /**
     * Re-explore one service (the paper's partial exploration after a
     * business-logic update, Sec. VII-G) and patch the profile.
     */
    void reexploreService(const spec::AppSpec &app, int serviceIdx,
                          AppProfile &profile) const;

    /** Service-local per-class rates implied by the options' mix. */
    std::vector<double> localRates(const spec::AppSpec &app,
                                   int serviceIdx) const;

    const ExplorationOptions &options() const { return opts_; }

  private:
    ExplorationOptions opts_;
};

} // namespace ursa::core

#endif // URSA_CORE_EXPLORER_H
