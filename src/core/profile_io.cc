#include "core/profile_io.h"

#include "core/profile.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace ursa::core
{

namespace
{

constexpr const char *kMagic = "ursa-profile-v1";

void
expect(std::istream &in, const std::string &token)
{
    std::string got;
    in >> got;
    if (got != token)
        throw std::runtime_error("profile parse error: expected '" +
                                 token + "', got '" + got + "'");
}

} // namespace

void
saveAppProfile(const AppProfile &profile, std::ostream &out)
{
    out << kMagic << "\n";
    out << std::setprecision(17);
    out << "grid " << profile.grid.size();
    for (double p : profile.grid)
        out << ' ' << p;
    out << "\nservices " << profile.services.size() << "\n";
    for (const ServiceProfile &svc : profile.services) {
        const std::size_t classes =
            svc.levels.empty() ? 0 : svc.levels.front().loadPerReplica.size();
        out << "service " << svc.serviceName << ' ' << svc.cpuPerReplica
            << ' ' << svc.bpThreshold << ' ' << svc.samples << ' '
            << svc.exploreTime << ' ' << svc.levels.size() << ' '
            << classes << "\n";
        for (const LprLevel &level : svc.levels) {
            out << "level " << level.replicas << ' '
                << level.cpuUtilization;
            for (double v : level.loadPerReplica)
                out << ' ' << v;
            out << "\n";
            for (std::size_t c = 0; c < classes; ++c) {
                out << "lat";
                if (level.latency[c].empty()) {
                    for (std::size_t g = 0; g < profile.grid.size(); ++g)
                        out << " -1";
                } else {
                    for (double v : level.latency[c])
                        out << ' ' << v;
                }
                out << "\n";
            }
        }
    }
}

bool
saveAppProfile(const AppProfile &profile, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    saveAppProfile(profile, out);
    return static_cast<bool>(out);
}

AppProfile
loadAppProfile(std::istream &in)
{
    std::string magic;
    in >> magic;
    if (magic != kMagic)
        throw std::runtime_error("not an ursa profile (bad magic)");

    AppProfile profile;
    expect(in, "grid");
    std::size_t gridSize = 0;
    in >> gridSize;
    profile.grid.resize(gridSize);
    for (double &p : profile.grid)
        in >> p;

    expect(in, "services");
    std::size_t numServices = 0;
    in >> numServices;
    profile.services.resize(numServices);
    for (ServiceProfile &svc : profile.services) {
        expect(in, "service");
        std::size_t numLevels = 0, numClasses = 0;
        in >> svc.serviceName >> svc.cpuPerReplica >> svc.bpThreshold >>
            svc.samples >> svc.exploreTime >> numLevels >> numClasses;
        svc.levels.resize(numLevels);
        for (LprLevel &level : svc.levels) {
            expect(in, "level");
            in >> level.replicas >> level.cpuUtilization;
            level.loadPerReplica.resize(numClasses);
            for (double &v : level.loadPerReplica)
                in >> v;
            level.latency.assign(numClasses, {});
            for (std::size_t c = 0; c < numClasses; ++c) {
                expect(in, "lat");
                std::vector<double> row(profile.grid.size());
                for (double &v : row)
                    in >> v;
                if (!row.empty() && row.front() >= 0.0)
                    level.latency[c] = std::move(row);
            }
        }
        if (!in)
            throw std::runtime_error("truncated profile for service " +
                                     svc.serviceName);
    }
    return profile;
}

AppProfile
loadAppProfile(const std::string &path, bool &ok)
{
    ok = false;
    std::ifstream in(path);
    if (!in)
        return {};
    try {
        AppProfile profile = loadAppProfile(in);
        ok = true;
        return profile;
    } catch (const std::exception &) {
        return {};
    }
}

} // namespace ursa::core
