/**
 * @file
 * Latency estimation with overestimation mitigation (paper Sec. IV end
 * and Sec. VII-D): the Theorem-1 bound is a sound but loose upper
 * bound; Ursa records the observed ratio of measured latency to the
 * bound online (EWMA) and multiplies the bound by that expected ratio
 * to produce calibrated estimates — the red curves of Figs. 9-10.
 */

#ifndef URSA_CORE_ESTIMATOR_H
#define URSA_CORE_ESTIMATOR_H

#include <vector>

namespace ursa::core
{

/** Per-class calibrated latency estimator. */
class LatencyEstimator
{
  public:
    /**
     * @param numClasses Number of request classes.
     * @param ewmaAlpha Weight of the newest ratio observation.
     */
    explicit LatencyEstimator(int numClasses, double ewmaAlpha = 0.3);

    /** Install the current model upper bounds (us, per class). */
    void setUpperBounds(std::vector<double> upperUs);

    /** Feed one measured latency (us) at the class's SLA percentile. */
    void observe(int classId, double measuredUs);

    /** Calibrated estimate (us): upper bound x expected ratio. */
    double estimate(int classId) const;

    /** Raw upper bound (us). */
    double upperBound(int classId) const;

    /** Current measured/bound ratio (1 until first observation). */
    double ratio(int classId) const;

  private:
    std::vector<double> upper_;
    std::vector<double> ratio_;
    std::vector<bool> seeded_;
    double alpha_;
};

} // namespace ursa::core

#endif // URSA_CORE_ESTIMATOR_H
