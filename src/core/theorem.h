/**
 * @file
 * Theorem 1 of the paper and the percentile-split optimization built on
 * it.
 *
 * Theorem 1: for a chain S_1..S_n with per-service latency percentile
 * functions t_i, the end-to-end x_e-th percentile satisfies
 *
 *   t_e(x_e) <= sum_i t_i(x_i)   whenever
 *   100 - x_e >= sum_i (100 - x_i),
 *
 * for ANY joint distribution (union bound on tail events). The solver
 * therefore may pick any per-stage percentiles whose residuals
 * (100 - x_i) fit in the end-to-end residual budget (100 - x_e); this
 * file provides the exact dynamic program that picks the residual-
 * feasible combination minimizing the latency sum over a discretized
 * percentile grid.
 */

#ifndef URSA_CORE_THEOREM_H
#define URSA_CORE_THEOREM_H

#include <vector>

namespace ursa::core
{

/**
 * The discretized percentile grid shared by profiling and the solver.
 * Must be strictly increasing, in (0, 100).
 */
using PercentileGrid = std::vector<double>;

/** A reasonable default grid covering p50 and p99-style SLAs. */
PercentileGrid defaultGrid();

/** Residual (100 - x) of a percentile. */
double residual(double percentile);

/**
 * Check the Theorem-1 residual condition for a concrete choice of
 * per-stage percentiles against an end-to-end percentile.
 */
bool splitSatisfiesResiduals(const std::vector<double> &stagePercentiles,
                             double endToEndPercentile);

/** Result of the percentile-split DP. */
struct SplitResult
{
    bool feasible = false;
    /** Minimal sum of per-stage latencies among feasible splits. */
    double totalLatency = 0.0;
    /** Chosen grid index per stage. */
    std::vector<int> chosenIdx;
};

/**
 * Exact percentile-split optimization: given per-stage latency values
 * at each grid percentile (`latencyByStage[stage][gridIdx]`, +inf
 * allowed to forbid options), pick one grid percentile per stage
 * minimizing the latency sum subject to Theorem 1's residual budget
 * for `endToEndPercentile`.
 *
 * Runs a dynamic program over integer-scaled residuals (0.1-percentile
 * resolution), exact for grids quantized to 0.1.
 */
SplitResult optimizePercentileSplit(
    const std::vector<std::vector<double>> &latencyByStage,
    const PercentileGrid &grid, double endToEndPercentile);

} // namespace ursa::core

#endif // URSA_CORE_THEOREM_H
