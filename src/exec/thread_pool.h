/**
 * @file
 * ursa::exec — the parallel execution layer for independent
 * simulations. A deliberately simple, work-stealing-free thread pool
 * plus `parallelFor` / `parallelMap` primitives built on dynamic index
 * claiming with caller participation.
 *
 * Determinism contract: a parallel unit (one index of a parallelFor)
 * must own all of its mutable state — its own Cluster, its own RNG
 * seeded from the index — and write results only into its own slot.
 * Under that contract results are bit-identical to the serial run for
 * any thread count, because thread scheduling only decides *who* runs
 * an index, never *what* the index computes.
 *
 * `URSA_THREADS` (default: hardware concurrency) sets the effective
 * parallelism; `setThreadCount` overrides it programmatically (used by
 * the determinism regression tests). Nested parallelFor calls are safe:
 * the caller always participates in its own loop and completion is
 * tracked per index, not per pool task, so a loop can finish even when
 * every pool worker is busy elsewhere.
 */

#ifndef URSA_EXEC_THREAD_POOL_H
#define URSA_EXEC_THREAD_POOL_H

#include "base/mutex.h"
#include "base/thread_annotations.h"

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

namespace ursa::exec
{

/**
 * Effective parallelism: `URSA_THREADS` if set (>= 1), else hardware
 * concurrency. Read once, then cached; setThreadCount overrides.
 */
int threadCount();

/** Override the effective parallelism (n >= 1). */
void setThreadCount(int n);

/** Shared worker pool; grows on demand up to the requested size. */
class ThreadPool
{
  public:
    /** The process-wide pool used by parallelFor/parallelMap. */
    static ThreadPool &global();

    ~ThreadPool() URSA_EXCLUDES(mu_);

    /** Ensure at least `n` worker threads exist. */
    void ensureWorkers(int n) URSA_EXCLUDES(mu_);

    /** Enqueue a task for any worker. */
    void post(std::function<void()> task) URSA_EXCLUDES(mu_);

    int workers() const URSA_EXCLUDES(mu_);

  private:
    void workerLoop() URSA_EXCLUDES(mu_);

    mutable base::Mutex mu_;
    base::CondVar cv_;
    std::deque<std::function<void()>> queue_ URSA_GUARDED_BY(mu_);
    std::vector<std::thread> threads_ URSA_GUARDED_BY(mu_);
    bool stop_ URSA_GUARDED_BY(mu_) = false;
};

/**
 * Run `body(i)` for every i in [0, n), using up to threadCount()
 * threads (the caller participates). Blocks until every index has
 * completed. The first exception thrown by any index is rethrown in
 * the caller after the loop drains. With threadCount() == 1 the loop
 * runs serially, in order, on the calling thread.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &body);

/**
 * Parallel map: out[i] = fn(i) for i in [0, n), same execution model
 * as parallelFor. T must be default-constructible and movable.
 */
template <typename T, typename F>
std::vector<T>
parallelMap(std::size_t n, F &&fn)
{
    std::vector<T> out(n);
    parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace ursa::exec

#endif // URSA_EXEC_THREAD_POOL_H
