#include "exec/thread_pool.h"

#include "base/mutex.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

namespace ursa::exec
{

namespace
{

/// Effective parallelism; 0 = "not yet resolved from the environment".
/// atomic: read by every parallelFor caller, written by setThreadCount
/// from tests while workers may be mid-loop; relaxed is enough because
/// any racing readers see either the old or the new count, both valid.
std::atomic<int> g_threads{0};

int
threadsFromEnv()
{
    if (const char *v = std::getenv("URSA_THREADS")) {
        const int n = std::atoi(v);
        if (n >= 1)
            return n;
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc ? static_cast<int>(hc) : 1;
}

} // namespace

int
threadCount()
{
    int t = g_threads.load(std::memory_order_relaxed);
    if (t == 0) {
        t = threadsFromEnv();
        g_threads.store(t, std::memory_order_relaxed);
    }
    return t;
}

void
setThreadCount(int n)
{
    g_threads.store(n < 1 ? 1 : n, std::memory_order_relaxed);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::~ThreadPool()
{
    // Move the worker handles out under the lock: joining must happen
    // unlocked (workers take mu_ to drain), but reading threads_
    // unlocked raced with a concurrent ensureWorkers — a gap the
    // thread-safety analysis flagged once threads_ became
    // URSA_GUARDED_BY(mu_) (regression: ThreadPoolTest.
    // EnsureWorkersDuringShutdownDoesNotRace).
    std::vector<std::thread> workers;
    {
        base::MutexLock lock(mu_);
        stop_ = true;
        workers.swap(threads_);
    }
    cv_.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
ThreadPool::ensureWorkers(int n)
{
    base::MutexLock lock(mu_);
    if (stop_)
        return; // shutting down: joined threads must not regrow
    while (static_cast<int>(threads_.size()) < n)
        threads_.emplace_back([this] { workerLoop(); });
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        base::MutexLock lock(mu_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

int
ThreadPool::workers() const
{
    base::MutexLock lock(mu_);
    return static_cast<int>(threads_.size());
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            base::MutexLock lock(mu_);
            while (!stop_ && queue_.empty())
                cv_.wait(mu_);
            if (queue_.empty())
                return; // stop_ set and queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

namespace
{

/** Shared progress of one parallelFor call. */
struct LoopState
{
    /// atomic: the work-claiming counter every participant bumps;
    /// fetch_add is the claim itself, no lock can replace it.
    std::atomic<std::size_t> next{0};
    /// atomic: completion count read by the caller's wait predicate
    /// while workers increment it.
    std::atomic<std::size_t> done{0};
    std::size_t n = 0; // immutable after publication via post()
    const std::function<void(std::size_t)> *body = nullptr; // immutable
    base::Mutex mu;
    base::CondVar cv;
    std::exception_ptr error URSA_GUARDED_BY(mu);

    /**
     * Claim and run indices until none are left. Safe to call from
     * stale pool tasks after the loop finished: `next` only grows, so
     * late claims see i >= n and never touch `body`.
     */
    void
    drain() URSA_EXCLUDES(mu)
    {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                (*body)(i);
            } catch (...) {
                base::MutexLock lock(mu);
                if (!error)
                    error = std::current_exception();
            }
            if (done.fetch_add(1) + 1 == n) {
                base::MutexLock lock(mu); // pairs with the caller's wait
                cv.notify_all();
            }
        }
    }
};

} // namespace

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    const std::size_t k =
        std::min<std::size_t>(n, static_cast<std::size_t>(threadCount()));
    if (k <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    auto st = std::make_shared<LoopState>();
    st->n = n;
    st->body = &body;

    ThreadPool &pool = ThreadPool::global();
    pool.ensureWorkers(static_cast<int>(k) - 1);
    for (std::size_t t = 0; t + 1 < k; ++t)
        pool.post([st] { st->drain(); });

    st->drain(); // the caller participates

    base::MutexLock lock(st->mu);
    while (st->done.load() != n)
        st->cv.wait(st->mu);
    if (st->error)
        std::rethrow_exception(st->error);
}

} // namespace ursa::exec
