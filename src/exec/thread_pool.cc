#include "exec/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

namespace ursa::exec
{

namespace
{

std::atomic<int> g_threads{0};

int
threadsFromEnv()
{
    if (const char *v = std::getenv("URSA_THREADS")) {
        const int n = std::atoi(v);
        if (n >= 1)
            return n;
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc ? static_cast<int>(hc) : 1;
}

} // namespace

int
threadCount()
{
    int t = g_threads.load(std::memory_order_relaxed);
    if (t == 0) {
        t = threadsFromEnv();
        g_threads.store(t, std::memory_order_relaxed);
    }
    return t;
}

void
setThreadCount(int n)
{
    g_threads.store(n < 1 ? 1 : n, std::memory_order_relaxed);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::ensureWorkers(int n)
{
    std::lock_guard<std::mutex> lock(mu_);
    while (static_cast<int>(threads_.size()) < n)
        threads_.emplace_back([this] { workerLoop(); });
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

int
ThreadPool::workers() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(threads_.size());
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

namespace
{

/** Shared progress of one parallelFor call. */
struct LoopState
{
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t n = 0;
    const std::function<void(std::size_t)> *body = nullptr;
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;

    /**
     * Claim and run indices until none are left. Safe to call from
     * stale pool tasks after the loop finished: `next` only grows, so
     * late claims see i >= n and never touch `body`.
     */
    void
    drain()
    {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                (*body)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu);
                if (!error)
                    error = std::current_exception();
            }
            if (done.fetch_add(1) + 1 == n) {
                std::lock_guard<std::mutex> lock(mu); // pairs with wait
                cv.notify_all();
            }
        }
    }
};

} // namespace

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    const std::size_t k =
        std::min<std::size_t>(n, static_cast<std::size_t>(threadCount()));
    if (k <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    auto st = std::make_shared<LoopState>();
    st->n = n;
    st->body = &body;

    ThreadPool &pool = ThreadPool::global();
    pool.ensureWorkers(static_cast<int>(k) - 1);
    for (std::size_t t = 0; t + 1 < k; ++t)
        pool.post([st] { st->drain(); });

    st->drain(); // the caller participates

    std::unique_lock<std::mutex> lock(st->mu);
    st->cv.wait(lock, [&] { return st->done.load() == n; });
    if (st->error)
        std::rethrow_exception(st->error);
}

} // namespace ursa::exec
