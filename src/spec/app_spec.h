/**
 * @file
 * AppSpec — the declarative application topology (services, request
 * classes / call graphs, SLOs, canonical request mix) shared by every
 * layer that reasons about an application: the control plane (core/)
 * consumes it as the input it optimizes, the comparison baselines
 * (baselines/) read the same topology, and the builders in apps/
 * construct instances of it.
 *
 * Historically this type lived in src/apps/, which put the top of the
 * construction DAG underneath core/ and baselines/ as a vocabulary
 * dependency — the 16 grandfathered layer violations of the original
 * whole-project lint sweep. It now sits in its own spec-only layer
 * between workload and solver, so everything above workload may speak
 * "application topology" without reaching into apps/.
 */

#ifndef URSA_SPEC_APP_SPEC_H
#define URSA_SPEC_APP_SPEC_H

#include "sim/cluster.h"
#include "sim/types.h"

#include <string>
#include <vector>

namespace ursa::spec
{

/** A benchmark application, ready to instantiate into a cluster. */
struct AppSpec
{
    std::string name;
    std::vector<sim::ServiceConfig> services;
    std::vector<sim::RequestClassSpec> classes;
    /**
     * Canonical request-mix weights (one per class) used during
     * exploration and the constant/dynamic evaluation loads — the
     * ratios of paper Sec. VII-C.
     */
    std::vector<double> exploreMix;
    /** Total request rate (rps) of the paper-style constant load. */
    double nominalRps = 100.0;
    /** Services highlighted in Fig.-13-style plots. */
    std::vector<std::string> representative;

    /** Register services and classes into `cluster` and finalize it. */
    void instantiate(sim::Cluster &cluster) const;

    /** Index of a class by name (throws if absent). */
    sim::ClassId classIndex(const std::string &className) const;

    /** Index of a service by name (throws if absent). */
    int serviceIndex(const std::string &serviceName) const;
};

/**
 * Return a copy of `mix` with class `cls`'s weight multiplied by
 * `factor` (the paper's skewed loads double or halve update classes).
 */
std::vector<double> skewMix(const AppSpec &app, std::vector<double> mix,
                            const std::string &className, double factor);

} // namespace ursa::spec

#endif // URSA_SPEC_APP_SPEC_H
