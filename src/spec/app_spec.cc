#include "spec/app_spec.h"

#include "sim/cluster.h"
#include "sim/types.h"

#include <stdexcept>

namespace ursa::spec
{

void
AppSpec::instantiate(sim::Cluster &cluster) const
{
    for (const sim::ServiceConfig &svc : services)
        cluster.addService(svc);
    for (const sim::RequestClassSpec &cls : classes)
        cluster.addClass(cls);
    cluster.finalize();
}

sim::ClassId
AppSpec::classIndex(const std::string &className) const
{
    for (std::size_t i = 0; i < classes.size(); ++i)
        if (classes[i].name == className)
            return static_cast<sim::ClassId>(i);
    throw std::invalid_argument("unknown class " + className + " in app " +
                                name);
}

int
AppSpec::serviceIndex(const std::string &serviceName) const
{
    for (std::size_t i = 0; i < services.size(); ++i)
        if (services[i].name == serviceName)
            return static_cast<int>(i);
    throw std::invalid_argument("unknown service " + serviceName +
                                " in app " + name);
}

std::vector<double>
skewMix(const AppSpec &app, std::vector<double> mix,
        const std::string &className, double factor)
{
    mix.at(static_cast<std::size_t>(app.classIndex(className))) *= factor;
    return mix;
}

} // namespace ursa::spec
