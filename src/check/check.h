/**
 * @file
 * Compile-time-gated invariant auditing for the whole tree.
 *
 * `URSA_CHECK(cond, component, msg)` is the project's replacement for
 * bare `assert()`: it stays active in Release builds (the default
 * check level is 1), produces a structured violation report carrying
 * the component tag, the current simulated time and the failed
 * condition, and can be trapped by tests through ScopedCapture so
 * violation-injection tests can prove each check actually fires.
 *
 * Levels (CMake cache option URSA_CHECK_LEVEL, default 1):
 *   0  all checks compiled out (conditions not evaluated);
 *   1  cheap O(1) invariants on the hot path (<10% events/sec cost);
 *   2  adds expensive audits (full heap-order scans, periodic
 *      conservation sweeps) via URSA_CHECK_SLOW — the CI
 *      "Debug+checks" leg builds at this level.
 *
 * The layer is dependency-free (everything links against it, including
 * ursa_stats) and thread-safe: violation handling goes through a
 * thread-local capture stack plus a process-wide atomic counter, so
 * parallel exploration under URSA_THREADS=8 stays TSan-clean.
 */

#ifndef URSA_CHECK_CHECK_H
#define URSA_CHECK_CHECK_H

#include <cstdint>
#include <vector>

#ifndef URSA_CHECK_LEVEL
#define URSA_CHECK_LEVEL 1
#endif

namespace ursa::check
{

/** One failed invariant, as delivered to handlers and captures. */
struct Violation
{
    const char *component; ///< e.g. "sim.event_queue"
    const char *message;   ///< human-readable invariant statement
    const char *condition; ///< stringified failed condition
    const char *file;
    int line;
    /// Simulated time (us) of the active event loop on this thread at
    /// the moment of violation; -1 outside any simulation.
    std::int64_t simTime;
};

/**
 * Report a violation. If a ScopedCapture is active on this thread the
 * violation is recorded and control returns to the caller (so
 * injection tests can observe it); otherwise a structured report is
 * written to stderr and the process aborts.
 */
void fail(const char *component, const char *message,
          const char *condition, const char *file, int line);

/** Process-wide count of violations since start (atomic). */
std::uint64_t violationCount();

/**
 * Record the simulated time of the event loop driving this thread;
 * the kernel calls this as the clock advances so violation reports
 * can carry sim time. Costs one thread-local store.
 */
void noteSimTime(std::int64_t t);

/** Last noted simulated time on this thread (-1 if none). */
std::int64_t currentSimTime();

/**
 * RAII trap recording this thread's violations instead of aborting.
 * Nests (innermost capture wins); used by violation-injection tests:
 *
 *   check::ScopedCapture trap;
 *   queue.corruptOrderForTest();
 *   queue.runNext();
 *   EXPECT_TRUE(trap.sawComponent("sim.event_queue"));
 */
class ScopedCapture
{
  public:
    ScopedCapture();
    ~ScopedCapture();
    ScopedCapture(const ScopedCapture &) = delete;
    ScopedCapture &operator=(const ScopedCapture &) = delete;

    const std::vector<Violation> &violations() const { return violations_; }
    bool empty() const { return violations_.empty(); }

    /** True when any recorded violation carries this component tag. */
    bool sawComponent(const char *component) const;

    void record(const Violation &v) { violations_.push_back(v); }

  private:
    ScopedCapture *prev_;
    std::vector<Violation> violations_;
};

} // namespace ursa::check

// A disabled check must still parse its operands (so level-0 builds
// cannot rot) without evaluating them.
#define URSA_CHECK_UNUSED_(cond) ((void)sizeof(!(cond)))

#if URSA_CHECK_LEVEL >= 1
#define URSA_CHECK(cond, component, msg)                                  \
    do {                                                                  \
        if (!(cond))                                                      \
            ::ursa::check::fail(component, msg, #cond, __FILE__,          \
                                __LINE__);                                \
    } while (0)
#else
#define URSA_CHECK(cond, component, msg) URSA_CHECK_UNUSED_(cond)
#endif

#if URSA_CHECK_LEVEL >= 2
#define URSA_CHECK_SLOW(cond, component, msg)                             \
    do {                                                                  \
        if (!(cond))                                                      \
            ::ursa::check::fail(component, msg, #cond, __FILE__,          \
                                __LINE__);                                \
    } while (0)
#else
#define URSA_CHECK_SLOW(cond, component, msg) URSA_CHECK_UNUSED_(cond)
#endif

#endif // URSA_CHECK_CHECK_H
