#include "check/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <inttypes.h>

namespace ursa::check
{

namespace
{

/// atomic: bumped by fail() from every simulation shard concurrently;
/// a relaxed counter is the whole contract (violationCount() is a
/// monotonic process-wide tally, never a synchronization point).
std::atomic<std::uint64_t> g_violations{0};

// Capture stack and sim-time note are thread-local by design: each
// parallelFor shard drives its own cluster, so violations trap to the
// capture installed on the shard that raised them without any locking.
thread_local ScopedCapture *tl_capture = nullptr;
thread_local std::int64_t tl_simTime = -1;

} // namespace

void
fail(const char *component, const char *message, const char *condition,
     const char *file, int line)
{
    g_violations.fetch_add(1, std::memory_order_relaxed);
    const Violation v{component, message, condition, file, line,
                      tl_simTime};
    if (tl_capture != nullptr) {
        tl_capture->record(v);
        return;
    }
    std::fprintf(stderr,
                 "URSA_CHECK violation [%s] sim_time=%" PRId64
                 "us: %s\n  failed: %s\n  at: %s:%d\n",
                 v.component, v.simTime, v.message, v.condition, v.file,
                 v.line);
    std::fflush(stderr);
    std::abort();
}

std::uint64_t
violationCount()
{
    return g_violations.load(std::memory_order_relaxed);
}

void
noteSimTime(std::int64_t t)
{
    tl_simTime = t;
}

std::int64_t
currentSimTime()
{
    return tl_simTime;
}

ScopedCapture::ScopedCapture() : prev_(tl_capture)
{
    tl_capture = this;
}

ScopedCapture::~ScopedCapture()
{
    tl_capture = prev_;
}

bool
ScopedCapture::sawComponent(const char *component) const
{
    for (const Violation &v : violations_) {
        const char *a = v.component;
        const char *b = component;
        while (*a && *a == *b) {
            ++a;
            ++b;
        }
        if (*a == *b)
            return true;
    }
    return false;
}

} // namespace ursa::check
