/**
 * @file
 * The Firm baseline (paper Sec. VII-B): a model-free, ML-driven
 * resource manager assigning one reinforcement-learning agent to each
 * microservice. Each agent observes its service's local state (CPU
 * utilization, latency-vs-SLA pressure, load, current replicas) and
 * picks a replica delta; the reward is a weighted sum of resource
 * savings and SLA status, which is why Firm sometimes trades SLA
 * violations for savings (Sec. VII-E). Agents are trained online under
 * injected performance anomalies (CPU throttling), as in the original
 * system; our agents are compact DQNs over discretized deltas standing
 * in for Firm's DDPG (see ml/rl.h).
 */

#ifndef URSA_BASELINES_FIRM_H
#define URSA_BASELINES_FIRM_H

#include "spec/app_spec.h"
#include "ml/rl.h"
#include "sim/cluster.h"
#include "sim/time.h"
#include "sim/types.h"
#include "stats/online.h"
#include "stats/rng.h"

#include <memory>
#include <vector>

namespace ursa::baselines
{

/** Firm configuration. */
struct FirmConfig
{
    sim::SimTime interval = 15 * sim::kSec; ///< decision interval
    /** Replica deltas the agents choose among. */
    std::vector<int> actions = {-2, -1, 0, 1, 2};
    double resourceWeight = 0.6; ///< reward weight of CPU savings
    double slaWeight = 1.0;      ///< reward weight of SLA status
    int maxReplicas = 32;
    ml::QAgentConfig agent = [] {
        ml::QAgentConfig a;
        a.stateDim = 4;
        a.numActions = 5;
        a.hidden = {32, 32};
        a.gamma = 0.8;
        a.epsilonDecaySteps = 2500;
        return a;
    }();
    /** Probability an anomaly (CPU throttle) is injected per training
     * step, and its strength. */
    double anomalyProbability = 0.15;
    double anomalyFactor = 0.35;
    std::uint64_t seed = 1;
};

/** One RL agent per service, trained and deployed on a cluster. */
class FirmController
{
  public:
    FirmController(sim::Cluster &cluster, const spec::AppSpec &app,
                   FirmConfig cfg);

    /**
     * Online training: `steps` decision intervals with epsilon-greedy
     * exploration, random anomaly injection, and a training update per
     * step. Advances simulation time (the cluster must be under load).
     */
    void trainOnline(int steps);

    /**
     * Rebind the controller (and its trained agents) to another
     * cluster running the same application — e.g. train on a staging
     * cluster, deploy on production.
     */
    void attach(sim::Cluster &cluster);

    /** Begin greedy (deployed) decisions at absolute time `at`. */
    void start(sim::SimTime at);

    /** Stop deciding. */
    void stop() { running_ = false; }

    /** Wall-clock decision latency across agents (Table VI). */
    const stats::OnlineStats &decisionLatencyUs() const
    {
        return decisionLatency_;
    }

    /** Wall-clock latency of one training update (Table VI update). */
    const stats::OnlineStats &trainStepLatencyUs() const
    {
        return trainLatency_;
    }

    /** Training steps performed so far. */
    int trainingSteps() const { return trainingSteps_; }

  private:
    std::vector<double> serviceState(sim::ServiceId s) const;
    double reward() const;
    int applyAction(sim::ServiceId s, int actionIdx);
    void deployTick();

    sim::Cluster *cluster_;
    const spec::AppSpec &app_;
    FirmConfig cfg_;
    std::vector<std::unique_ptr<ml::QAgent>> agents_;
    stats::Rng rng_;
    bool running_ = false;
    int trainingSteps_ = 0;
    stats::OnlineStats decisionLatency_;
    stats::OnlineStats trainLatency_;
};

} // namespace ursa::baselines

#endif // URSA_BASELINES_FIRM_H
