/**
 * @file
 * The Sinan baseline (paper Sec. VII-B): a model-based, centralized
 * ML-driven resource manager. A neural network predicts per-class
 * end-to-end latency (as a ratio to the SLA) from the full allocation
 * vector and the current load; boosted trees classify whether an
 * allocation will lead to an SLA violation (capturing queue build-up
 * inertia through a short load history). The scheduler queries both
 * models with candidate allocations every interval and picks the
 * cheapest allocation predicted safe.
 *
 * Training data comes from an exploration process that randomizes
 * allocations while balancing violating and non-violating samples at
 * roughly 1:1, per the Sinan paper's recipe; the sample budget
 * (10,000 samples at one per minute) is what Table V charges Sinan
 * and Firm for.
 */

#ifndef URSA_BASELINES_SINAN_H
#define URSA_BASELINES_SINAN_H

#include "spec/app_spec.h"
#include "base/thread_annotations.h"
#include "ml/gbdt.h"
#include "ml/mlp.h"
#include "sim/cluster.h"
#include "sim/time.h"
#include "stats/online.h"
#include "stats/rng.h"

#include <memory>
#include <vector>

namespace ursa::baselines
{

/** One training sample. */
struct SinanSample
{
    std::vector<double> features;
    /** Per-class latency at the SLA percentile / SLA target. */
    std::vector<double> latencyRatios;
    bool violation = false;
};

/** Sinan configuration. */
struct SinanConfig
{
    sim::SimTime interval = sim::kMin; ///< decision/sampling interval
    std::vector<int> hidden = {64, 64};
    double learningRate = 2e-3;
    int epochs = 40;
    int batchSize = 32;
    ml::GbdtConfig violationModel = [] {
        ml::GbdtConfig g;
        g.objective = ml::Objective::Logistic;
        g.numTrees = 120;
        g.maxDepth = 4;
        return g;
    }();
    int maxReplicas = 64;
    /** A candidate is safe when every predicted ratio is below this. */
    double safeLatencyRatio = 0.85;
    double violationProbThreshold = 0.5;
    std::uint64_t seed = 1;
};

/** Feature extraction + the two learned models. */
class SinanModel
{
  public:
    SinanModel(const spec::AppSpec &app, SinanConfig cfg);

    /** Build the feature vector for an allocation + measured loads. */
    std::vector<double> features(const std::vector<int> &replicas,
                                 const std::vector<double> &classLoads)
        const;

    /** Train both models on collected samples. */
    void train(const std::vector<SinanSample> &samples);

    /** Per-class latency/SLA ratio prediction. */
    std::vector<double> predictRatios(const std::vector<double> &x) const;

    /** Probability the allocation leads to an SLA violation. */
    double violationProbability(const std::vector<double> &x) const;

    bool trained() const { return trained_; }
    int numServices() const { return numServices_; }
    int numClasses() const { return numClasses_; }

  private:
    SinanConfig cfg_;
    int numServices_;
    int numClasses_;
    double loadScale_;
    std::unique_ptr<ml::Mlp> latencyNet_;
    std::unique_ptr<ml::Gbdt> violationGbdt_;
    bool trained_ = false;
};

/**
 * Data collection: drives randomized allocations on a live, loaded
 * cluster, balancing violation labels, one sample per interval.
 *
 * URSA_SINGLE_THREADED: the parallel training-data path (bench
 * runSinanCollection) gives each ursa::exec shard its own
 * (Cluster, SinanCollector) pair seeded from the shard index, so the
 * collector shares no state across threads and carries no locks; the
 * merged sample set is a deterministic index-ordered concatenation.
 */
class URSA_SINGLE_THREADED SinanCollector
{
  public:
    SinanCollector(sim::Cluster &cluster, const spec::AppSpec &app,
                   SinanConfig cfg);

    /**
     * Collect `numSamples` samples starting now (the cluster must
     * already be driven by a load client). Advances simulation time by
     * numSamples * interval.
     */
    std::vector<SinanSample> collect(int numSamples);

  private:
    sim::Cluster &cluster_;
    const spec::AppSpec &app_;
    SinanConfig cfg_;
    stats::Rng rng_;
};

/** The online scheduler querying the trained model. */
class SinanScheduler
{
  public:
    SinanScheduler(sim::Cluster &cluster, const spec::AppSpec &app,
                   const SinanModel &model, SinanConfig cfg);

    /** Begin periodic decisions at absolute time `at`. */
    void start(sim::SimTime at);

    /** Stop deciding. */
    void stop() { running_ = false; }

    /** Wall-clock decision latency (Table VI, deployment path). */
    const stats::OnlineStats &decisionLatencyUs() const
    {
        return decisionLatency_;
    }

  private:
    void tick();
    std::vector<double> measuredClassLoads() const;

    sim::Cluster &cluster_;
    const spec::AppSpec &app_;
    const SinanModel &model_;
    SinanConfig cfg_;
    bool running_ = false;
    stats::OnlineStats decisionLatency_;
};

} // namespace ursa::baselines

#endif // URSA_BASELINES_SINAN_H
