#include "baselines/sinan.h"

#include "spec/app_spec.h"
#include "ml/gbdt.h"
#include "ml/mlp.h"
#include "sim/cluster.h"
#include "sim/service.h"
#include "sim/time.h"
#include "sim/types.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace ursa::baselines
{

namespace
{

/** Latency ratios are clipped here for regression stability. */
constexpr double kRatioClip = 5.0;

/** Measured per-class latency/SLA ratios over [from, to). */
std::vector<double>
measuredRatios(const sim::Cluster &cluster, const spec::AppSpec &app,
               sim::SimTime from, sim::SimTime to)
{
    std::vector<double> ratios(app.classes.size(), 0.0);
    for (std::size_t c = 0; c < app.classes.size(); ++c) {
        const auto samples = cluster.metrics()
                                 .endToEnd(static_cast<int>(c))
                                 .collect(from, to);
        if (samples.empty())
            continue;
        const double lat =
            samples.percentile(app.classes[c].sla.percentile);
        ratios[c] = std::min(
            kRatioClip,
            lat / static_cast<double>(app.classes[c].sla.targetUs));
    }
    return ratios;
}

} // namespace

SinanModel::SinanModel(const spec::AppSpec &app, SinanConfig cfg)
    : cfg_(cfg), numServices_(static_cast<int>(app.services.size())),
      numClasses_(static_cast<int>(app.classes.size())),
      loadScale_(std::max(1.0, app.nominalRps))
{
    std::vector<int> sizes;
    sizes.push_back(numServices_ + numClasses_);
    for (int h : cfg_.hidden)
        sizes.push_back(h);
    sizes.push_back(numClasses_);
    latencyNet_ =
        std::make_unique<ml::Mlp>(sizes, cfg_.seed, cfg_.learningRate);
    violationGbdt_ = std::make_unique<ml::Gbdt>(cfg_.violationModel);
}

std::vector<double>
SinanModel::features(const std::vector<int> &replicas,
                     const std::vector<double> &classLoads) const
{
    std::vector<double> x;
    x.reserve(static_cast<std::size_t>(numServices_ + numClasses_));
    for (int r : replicas)
        x.push_back(static_cast<double>(r) /
                    static_cast<double>(cfg_.maxReplicas));
    for (double l : classLoads)
        x.push_back(l / loadScale_);
    return x;
}

void
SinanModel::train(const std::vector<SinanSample> &samples)
{
    std::vector<std::vector<double>> xs, ys;
    std::vector<double> labels;
    for (const SinanSample &s : samples) {
        xs.push_back(s.features);
        ys.push_back(s.latencyRatios);
        labels.push_back(s.violation ? 1.0 : 0.0);
    }
    latencyNet_->fit(xs, ys, ml::Loss::MeanSquared, cfg_.epochs,
                     cfg_.batchSize, cfg_.seed + 1);
    violationGbdt_->fit(xs, labels);
    trained_ = true;
}

std::vector<double>
SinanModel::predictRatios(const std::vector<double> &x) const
{
    return latencyNet_->forward(x);
}

double
SinanModel::violationProbability(const std::vector<double> &x) const
{
    return violationGbdt_->predict(x);
}

SinanCollector::SinanCollector(sim::Cluster &cluster,
                               const spec::AppSpec &app, SinanConfig cfg)
    : cluster_(cluster), app_(app), cfg_(cfg), rng_(cfg.seed ^ 0xc0ffee)
{
}

std::vector<SinanSample>
SinanCollector::collect(int numSamples)
{
    SinanModel featureBuilder(app_, cfg_);
    std::vector<SinanSample> samples;
    samples.reserve(static_cast<std::size_t>(numSamples));
    int violations = 0;

    for (int k = 0; k < numSamples; ++k) {
        // Bias allocations so the label mix stays near 1:1 (the Sinan
        // paper's data-collection goal): too few violations -> drift
        // allocations down; too many -> drift up.
        const double violFrac =
            samples.empty()
                ? 0.5
                : static_cast<double>(violations) /
                      static_cast<double>(samples.size());
        const double downBias = violFrac < 0.5 ? 0.55 : 0.25;

        std::vector<int> replicas(app_.services.size());
        for (std::size_t s = 0; s < app_.services.size(); ++s) {
            sim::Service &svc =
                cluster_.service(static_cast<sim::ServiceId>(s));
            int r = svc.activeReplicas();
            const double u = rng_.uniform();
            if (u < downBias)
                r -= 1 + static_cast<int>(rng_.uniformInt(2));
            else if (u < downBias + 0.3)
                r += 1 + static_cast<int>(rng_.uniformInt(2));
            r = std::clamp(r, 1, cfg_.maxReplicas);
            svc.setReplicas(r);
            replicas[s] = r;
        }

        const sim::SimTime from = cluster_.events().now();
        const sim::SimTime to = from + cfg_.interval;
        cluster_.run(to);

        std::vector<double> loads(app_.classes.size(), 0.0);
        for (std::size_t c = 0; c < app_.classes.size(); ++c) {
            const sim::ServiceId root =
                cluster_.serviceId(app_.classes[c].rootService);
            loads[c] = cluster_.metrics().arrivalRate(
                root, static_cast<int>(c), from, to);
        }

        SinanSample sample;
        sample.features = featureBuilder.features(replicas, loads);
        sample.latencyRatios = measuredRatios(cluster_, app_, from, to);
        sample.violation =
            std::any_of(sample.latencyRatios.begin(),
                        sample.latencyRatios.end(),
                        [](double r) { return r > 1.0; });
        if (sample.violation)
            ++violations;
        samples.push_back(std::move(sample));
    }
    return samples;
}

SinanScheduler::SinanScheduler(sim::Cluster &cluster,
                               const spec::AppSpec &app,
                               const SinanModel &model, SinanConfig cfg)
    : cluster_(cluster), app_(app), model_(model), cfg_(cfg)
{
}

void
SinanScheduler::start(sim::SimTime at)
{
    running_ = true;
    cluster_.events().schedule(at, [this] { tick(); });
}

std::vector<double>
SinanScheduler::measuredClassLoads() const
{
    const sim::SimTime now = cluster_.events().now();
    const sim::SimTime from =
        std::max<sim::SimTime>(0, now - 2 * cfg_.interval);
    std::vector<double> loads(app_.classes.size(), 0.0);
    for (std::size_t c = 0; c < app_.classes.size(); ++c) {
        const sim::ServiceId root =
            cluster_.serviceId(app_.classes[c].rootService);
        loads[c] = cluster_.metrics().arrivalRate(
            root, static_cast<int>(c), from, now);
    }
    return loads;
}

void
SinanScheduler::tick()
{
    if (!running_)
        return;
    const auto wallStart = std::chrono::steady_clock::now();

    const std::vector<double> loads = measuredClassLoads();
    std::vector<int> current(app_.services.size());
    for (std::size_t s = 0; s < app_.services.size(); ++s)
        current[s] = cluster_.service(static_cast<sim::ServiceId>(s))
                         .activeReplicas();

    // Measured-violation override: Sinan's violation predictor models
    // queue build-up; when the system is already violating, the real
    // system scales the implicated tiers up immediately. Our stand-in
    // uses the observed signal directly: bump the most utilized
    // services and skip the model for this tick.
    {
        const sim::SimTime now = cluster_.events().now();
        const sim::SimTime from =
            std::max<sim::SimTime>(0, now - 2 * cfg_.interval);
        const double viol =
            cluster_.metrics().overallSlaViolationRate(from, now);
        if (viol > 0.0) {
            std::vector<std::pair<double, std::size_t>> byUtil;
            for (std::size_t s = 0; s < current.size(); ++s)
                byUtil.emplace_back(
                    cluster_.metrics().cpuUtilization(
                        static_cast<sim::ServiceId>(s), from, now),
                    s);
            std::sort(byUtil.rbegin(), byUtil.rend());
            for (std::size_t k = 0; k < byUtil.size() && k < 2; ++k) {
                const std::size_t s = byUtil[k].second;
                const int next =
                    std::min(cfg_.maxReplicas, current[s] + 1);
                if (next != current[s])
                    cluster_.service(static_cast<sim::ServiceId>(s))
                        .setReplicas(next);
            }
            decisionLatency_.add(
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - wallStart)
                    .count());
            cluster_.events().scheduleIn(cfg_.interval,
                                         [this] { tick(); });
            return;
        }
    }

    // Candidate allocations: keep, and +/-1 per service.
    std::vector<std::vector<int>> candidates;
    candidates.push_back(current);
    for (std::size_t s = 0; s < current.size(); ++s) {
        for (int d : {-1, +1}) {
            std::vector<int> cand = current;
            cand[s] = std::clamp(cand[s] + d, 1, cfg_.maxReplicas);
            if (cand[s] != current[s])
                candidates.push_back(std::move(cand));
        }
    }

    auto cpuOf = [&](const std::vector<int> &r) {
        double total = 0.0;
        for (std::size_t s = 0; s < r.size(); ++s)
            total += r[s] * app_.services[s].cpuPerReplica;
        return total;
    };
    auto safe = [&](const std::vector<int> &r, double *worst) {
        const auto x = model_.features(r, loads);
        const auto ratios = model_.predictRatios(x);
        double w = 0.0;
        for (double v : ratios)
            w = std::max(w, v);
        if (worst)
            *worst = w;
        if (w >= cfg_.safeLatencyRatio)
            return false;
        return model_.violationProbability(x) <
               cfg_.violationProbThreshold;
    };

    // Cheapest safe candidate; if none, the candidate with the lowest
    // predicted worst latency ratio (scaling up toward safety).
    const std::vector<int> *best = nullptr;
    double bestCpu = 0.0;
    const std::vector<int> *leastBad = nullptr;
    double leastBadRatio = 0.0;
    for (const auto &cand : candidates) {
        double worst = 0.0;
        const bool ok = safe(cand, &worst);
        if (ok) {
            const double cpu = cpuOf(cand);
            if (best == nullptr || cpu < bestCpu) {
                best = &cand;
                bestCpu = cpu;
            }
        }
        if (leastBad == nullptr || worst < leastBadRatio) {
            leastBad = &cand;
            leastBadRatio = worst;
        }
    }
    const std::vector<int> &chosen = best ? *best : *leastBad;

    decisionLatency_.add(std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - wallStart)
                             .count());

    for (std::size_t s = 0; s < chosen.size(); ++s) {
        if (chosen[s] !=
            cluster_.service(static_cast<sim::ServiceId>(s))
                .activeReplicas())
            cluster_.service(static_cast<sim::ServiceId>(s))
                .setReplicas(chosen[s]);
    }
    cluster_.events().scheduleIn(cfg_.interval, [this] { tick(); });
}

} // namespace ursa::baselines
