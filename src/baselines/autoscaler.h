/**
 * @file
 * CPU-utilization step autoscaling (paper Sec. VII-B): the Auto-a
 * configuration mirrors the AWS step-scaling defaults (scale out above
 * 60% CPU, scale in below 30%); Auto-b is the manually tuned
 * conservative configuration that protects SLAs at the cost of extra
 * resources.
 */

#ifndef URSA_BASELINES_AUTOSCALER_H
#define URSA_BASELINES_AUTOSCALER_H

#include "sim/cluster.h"
#include "sim/time.h"
#include "stats/online.h"

#include <vector>

namespace ursa::baselines
{

/** Step-scaling configuration. */
struct AutoscalerConfig
{
    double upThreshold = 0.60;   ///< scale out above this utilization
    double downThreshold = 0.30; ///< scale in below this utilization
    sim::SimTime interval = 30 * sim::kSec;
    /** Look-back horizon for the utilization measurement. */
    sim::SimTime lookback = sim::kMin;
    int minReplicas = 1;
    int maxReplicas = 256;
};

/** The paper's Auto-a (AWS step-scaling defaults). */
AutoscalerConfig autoAConfig();

/** The paper's Auto-b (manually tuned to preserve SLAs). */
AutoscalerConfig autoBConfig();

/** Utilization-threshold autoscaler over every service of a cluster. */
class Autoscaler
{
  public:
    Autoscaler(sim::Cluster &cluster, AutoscalerConfig cfg);

    /** Begin periodic scaling at absolute time `at`. */
    void start(sim::SimTime at);

    /** Stop scaling. */
    void stop() { running_ = false; }

    /** Wall-clock decision latency (Table VI). */
    const stats::OnlineStats &decisionLatencyUs() const
    {
        return decisionLatency_;
    }

    /** Scaling actions taken. */
    int scaleEvents() const { return scaleEvents_; }

  private:
    void tick();

    sim::Cluster &cluster_;
    AutoscalerConfig cfg_;
    bool running_ = false;
    stats::OnlineStats decisionLatency_;
    int scaleEvents_ = 0;
};

} // namespace ursa::baselines

#endif // URSA_BASELINES_AUTOSCALER_H
