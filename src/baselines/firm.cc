#include "baselines/firm.h"

#include "spec/app_spec.h"
#include "ml/rl.h"
#include "sim/cluster.h"
#include "sim/service.h"
#include "sim/time.h"
#include "sim/types.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace ursa::baselines
{

FirmController::FirmController(sim::Cluster &cluster,
                               const spec::AppSpec &app, FirmConfig cfg)
    : cluster_(&cluster), app_(app), cfg_(cfg), rng_(cfg.seed ^ 0xf1b3)
{
    cfg_.agent.numActions = static_cast<int>(cfg_.actions.size());
    for (sim::ServiceId s = 0; s < cluster_->numServices(); ++s) {
        agents_.push_back(std::make_unique<ml::QAgent>(
            cfg_.agent, cfg_.seed + 17ULL * (s + 1)));
    }
}

void
FirmController::attach(sim::Cluster &cluster)
{
    cluster_ = &cluster;
}

std::vector<double>
FirmController::serviceState(sim::ServiceId s) const
{
    const sim::SimTime now = cluster_->events().now();
    const sim::SimTime from =
        std::max<sim::SimTime>(0, now - 2 * cfg_.interval);
    const auto &m = cluster_->metrics();

    const double util = m.cpuUtilization(s, from, now);
    // Worst latency pressure among classes passing through s.
    double pressure = 0.0;
    double load = 0.0;
    for (int c = 0; c < cluster_->numClasses(); ++c) {
        load += m.arrivalRate(s, c, from, now);
        const auto e2e = m.endToEnd(c).collect(from, now);
        if (e2e.empty())
            continue;
        const auto &sla = app_.classes[c].sla;
        pressure = std::max(
            pressure, e2e.percentile(sla.percentile) /
                          static_cast<double>(sla.targetUs));
    }
    const double replicas =
        static_cast<double>(cluster_->service(s).activeReplicas()) /
        static_cast<double>(cfg_.maxReplicas);
    return {util, std::min(pressure, 5.0) / 5.0,
            load / std::max(1.0, app_.nominalRps), replicas};
}

double
FirmController::reward() const
{
    const sim::SimTime now = cluster_->events().now();
    const sim::SimTime from =
        std::max<sim::SimTime>(0, now - cfg_.interval);
    const auto &m = cluster_->metrics();

    // Resource term: CPU saved relative to a nominal full allocation.
    double alloc = 0.0, maxAlloc = 0.0;
    for (std::size_t s = 0; s < app_.services.size(); ++s) {
        alloc += cluster_->service(static_cast<sim::ServiceId>(s))
                     .cpuAllocation();
        maxAlloc += cfg_.maxReplicas * app_.services[s].cpuPerReplica;
    }
    const double saving = 1.0 - alloc / maxAlloc;

    // SLA term: window-based violation status over the last interval.
    const double violation = m.overallSlaViolationRate(from, now);

    return cfg_.resourceWeight * saving - cfg_.slaWeight * violation;
}

int
FirmController::applyAction(sim::ServiceId s, int actionIdx)
{
    sim::Service &svc = cluster_->service(s);
    const int next = std::clamp(
        svc.activeReplicas() + cfg_.actions[actionIdx], 1,
        cfg_.maxReplicas);
    if (next != svc.activeReplicas())
        svc.setReplicas(next);
    return next;
}

void
FirmController::trainOnline(int steps)
{
    std::vector<std::vector<double>> prevState(agents_.size());
    std::vector<int> prevAction(agents_.size(), -1);

    for (int step = 0; step < steps; ++step) {
        // Inject a CPU-throttle anomaly on a random service with some
        // probability — Firm's training recipe.
        sim::ServiceId throttled = -1;
        if (rng_.uniform() < cfg_.anomalyProbability) {
            throttled = static_cast<sim::ServiceId>(
                rng_.uniformInt(cluster_->numServices()));
            cluster_->service(throttled).setCpuFactor(cfg_.anomalyFactor);
        }

        for (std::size_t s = 0; s < agents_.size(); ++s) {
            prevState[s] =
                serviceState(static_cast<sim::ServiceId>(s));
            prevAction[s] = agents_[s]->act(prevState[s], true);
            applyAction(static_cast<sim::ServiceId>(s), prevAction[s]);
        }

        cluster_->run(cluster_->events().now() + cfg_.interval);
        const double r = reward();

        for (std::size_t s = 0; s < agents_.size(); ++s) {
            const auto next =
                serviceState(static_cast<sim::ServiceId>(s));
            agents_[s]->observe({prevState[s], prevAction[s], r, next});
            const auto wallStart = std::chrono::steady_clock::now();
            agents_[s]->trainStep();
            trainLatency_.add(
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - wallStart)
                    .count());
        }
        ++trainingSteps_;

        if (throttled >= 0)
            cluster_->service(throttled).setCpuFactor(1.0);
    }
}

void
FirmController::start(sim::SimTime at)
{
    running_ = true;
    cluster_->events().schedule(at, [this] { deployTick(); });
}

void
FirmController::deployTick()
{
    if (!running_)
        return;
    // Firm localizes SLA violations to critical-path services (the
    // original uses an SVM over per-tier telemetry) and lets their
    // agents mitigate. Our stand-in: for every class currently
    // violating its SLA, the services on its path must not scale down,
    // and the most utilized among them is forced to scale up.
    const sim::SimTime now = cluster_->events().now();
    const sim::SimTime from =
        std::max<sim::SimTime>(0, now - 2 * cfg_.interval);
    std::vector<bool> onViolatingPath(agents_.size(), false);
    std::vector<bool> forceUp(agents_.size(), false);
    for (int c = 0; c < cluster_->numClasses(); ++c) {
        const auto e2e = cluster_->metrics().endToEnd(c).collect(from, now);
        if (e2e.empty())
            continue;
        const auto &sla = app_.classes[c].sla;
        if (e2e.percentile(sla.percentile) <=
            static_cast<double>(sla.targetUs))
            continue;
        double worstUtil = -1.0;
        std::size_t culprit = 0;
        for (std::size_t s = 0; s < agents_.size(); ++s) {
            if (!app_.services[s].behaviors.count(c))
                continue;
            onViolatingPath[s] = true;
            const double util = cluster_->metrics().cpuUtilization(
                static_cast<sim::ServiceId>(s), from, now);
            if (util > worstUtil) {
                worstUtil = util;
                culprit = s;
            }
        }
        forceUp[culprit] = true;
    }
    const int upIdx = static_cast<int>(
        std::max_element(cfg_.actions.begin(), cfg_.actions.end()) -
        cfg_.actions.begin());
    for (std::size_t s = 0; s < agents_.size(); ++s) {
        const auto wallStart = std::chrono::steady_clock::now();
        const auto state = serviceState(static_cast<sim::ServiceId>(s));
        int action = agents_[s]->act(state, /*explore=*/false);
        if (forceUp[s]) {
            action = upIdx;
        } else if (onViolatingPath[s] && cfg_.actions[action] < 0) {
            // Hold instead of shrinking a stressed path.
            for (std::size_t a = 0; a < cfg_.actions.size(); ++a)
                if (cfg_.actions[a] == 0)
                    action = static_cast<int>(a);
        }
        decisionLatency_.add(std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() -
                                 wallStart)
                                 .count());
        applyAction(static_cast<sim::ServiceId>(s), action);
    }
    cluster_->events().scheduleIn(cfg_.interval, [this] { deployTick(); });
}

} // namespace ursa::baselines
