#include "baselines/autoscaler.h"

#include "sim/cluster.h"
#include "sim/service.h"
#include "sim/time.h"
#include "sim/types.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace ursa::baselines
{

AutoscalerConfig
autoAConfig()
{
    return {}; // 60 / 30 defaults
}

AutoscalerConfig
autoBConfig()
{
    AutoscalerConfig cfg;
    cfg.upThreshold = 0.35;
    cfg.downThreshold = 0.12;
    return cfg;
}

Autoscaler::Autoscaler(sim::Cluster &cluster, AutoscalerConfig cfg)
    : cluster_(cluster), cfg_(cfg)
{
}

void
Autoscaler::start(sim::SimTime at)
{
    running_ = true;
    cluster_.events().schedule(at, [this] { tick(); });
}

void
Autoscaler::tick()
{
    if (!running_)
        return;
    const sim::SimTime now = cluster_.events().now();
    const sim::SimTime from =
        std::max<sim::SimTime>(0, now - cfg_.lookback);

    for (sim::ServiceId s = 0; s < cluster_.numServices(); ++s) {
        const auto wallStart = std::chrono::steady_clock::now();

        const double util =
            cluster_.metrics().cpuUtilization(s, from, now);
        sim::Service &svc = cluster_.service(s);
        const int r = svc.activeReplicas();
        int next = r;
        if (util > cfg_.upThreshold) {
            // AWS-style step scaling: one step per breach, a bigger
            // step on a severe breach. Converging from below leaves
            // utilization just under the scale-out threshold.
            next = r + (util > 1.33 * cfg_.upThreshold ? 2 : 1);
        } else if (util < cfg_.downThreshold && r > cfg_.minReplicas) {
            next = r - 1;
        }
        next = std::clamp(next, cfg_.minReplicas, cfg_.maxReplicas);

        decisionLatency_.add(std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() -
                                 wallStart)
                                 .count());
        if (next != r) {
            svc.setReplicas(next);
            ++scaleEvents_;
        }
    }
    cluster_.events().scheduleIn(cfg_.interval, [this] { tick(); });
}

} // namespace ursa::baselines
