/**
 * @file
 * Welch's unequal-variances t-test.
 *
 * Ursa uses Welch's t-test in two places (paper Secs. III and V):
 *  - the backpressure profiler declares the proxy latency "converged"
 *    when the test cannot reject equality of the means measured under
 *    the last two CPU limits;
 *  - the resource controller treats a scaling threshold as exceeded
 *    when the test rejects the hypothesis that the actual load's mean
 *    is no greater than the recorded threshold load's mean.
 */

#ifndef URSA_STATS_WELCH_H
#define URSA_STATS_WELCH_H

#include "stats/online.h"

#include <vector>

namespace ursa::stats
{

/** Result of a Welch t-test. */
struct WelchResult
{
    double t = 0.0;        ///< t statistic (mean(a) - mean(b), studentized)
    double df = 0.0;       ///< Welch-Satterthwaite degrees of freedom
    double pTwoSided = 1.0; ///< P(|T| >= |t|)
    double pGreater = 0.5; ///< P(T >= t): small => mean(a) > mean(b)
};

/** Regularized incomplete beta function I_x(a, b). */
double incompleteBeta(double a, double b, double x);

/** CDF of Student's t distribution with `df` degrees of freedom. */
double studentTCdf(double t, double df);

/** Welch's t-test from two summary accumulators (each needs >= 2 samples). */
WelchResult welchTTest(const OnlineStats &a, const OnlineStats &b);

/** Welch's t-test from raw sample vectors. */
WelchResult welchTTest(const std::vector<double> &a,
                       const std::vector<double> &b);

/**
 * Two-sided test: can we treat the two means as equal at significance
 * `alpha`? Degenerate inputs (tiny samples, zero variance with equal
 * means) are treated as "equal".
 */
bool meansEqual(const std::vector<double> &a, const std::vector<double> &b,
                double alpha = 0.05);

/**
 * One-sided test used by the resource controller: returns true when the
 * data rejects "mean(a) <= mean(b)" at significance `alpha`, i.e. the
 * actual load `a` significantly exceeds the recorded threshold load `b`.
 */
bool meanExceeds(const OnlineStats &a, const OnlineStats &b,
                 double alpha = 0.05);

/**
 * One-sample, one-sided t-test: true when the data rejects
 * "mean(a) <= mu" at significance `alpha`. With fewer than 2 samples
 * falls back to a direct comparison.
 */
bool meanExceedsValue(const OnlineStats &a, double mu, double alpha = 0.05);

/** One-sample, one-sided t-test for "mean(a) >= mu" rejection. */
bool meanBelowValue(const OnlineStats &a, double mu, double alpha = 0.05);

} // namespace ursa::stats

#endif // URSA_STATS_WELCH_H
