#include "stats/timeseries.h"

#include "check/check.h"
#include "stats/quantile.h"

#include <algorithm>
#include <stdexcept>

namespace ursa::stats
{

void
TimeSeries::append(std::int64_t time, double value)
{
    if (!points_.empty() && time < points_.back().time)
        throw std::logic_error("TimeSeries timestamps must not decrease");
    points_.push_back({time, value});
}

std::vector<Point>
TimeSeries::range(std::int64_t from, std::int64_t to) const
{
    std::vector<Point> out;
    const auto lo = std::lower_bound(
        points_.begin(), points_.end(), from,
        [](const Point &p, std::int64_t t) { return p.time < t; });
    for (auto it = lo; it != points_.end() && it->time < to; ++it)
        out.push_back(*it);
    return out;
}

double
TimeSeries::timeAverage(std::int64_t from, std::int64_t to) const
{
    if (points_.empty() || to <= from)
        return 0.0;
    // Step interpolation: value holds from its timestamp until the next.
    double weighted = 0.0;
    std::int64_t covered_from = from;
    // Find the value in effect at `from`: last point with time <= from.
    auto it = std::upper_bound(
        points_.begin(), points_.end(), from,
        [](std::int64_t t, const Point &p) { return t < p.time; });
    double current = 0.0;
    if (it != points_.begin())
        current = std::prev(it)->value;
    for (; it != points_.end() && it->time < to; ++it) {
        weighted += current * static_cast<double>(it->time - covered_from);
        covered_from = it->time;
        current = it->value;
    }
    weighted += current * static_cast<double>(to - covered_from);
    return weighted / static_cast<double>(to - from);
}

double
TimeSeries::mean(std::int64_t from, std::int64_t to) const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (const Point &p : range(from, to)) {
        sum += p.value;
        ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
TimeSeries::last(double fallback) const
{
    return points_.empty() ? fallback : points_.back().value;
}

WindowAggregator::WindowAggregator(std::int64_t width,
                                   std::size_t sampleCapacity)
    : width_(width), sampleCapacity_(sampleCapacity)
{
    URSA_CHECK(width_ > 0, "stats.timeseries",
               "window aggregator with a non-positive width");
}

std::int64_t
WindowAggregator::windowStart(std::int64_t time) const
{
    std::int64_t q = time / width_;
    if (time < 0 && time % width_ != 0)
        --q;
    return q * width_;
}

void
WindowAggregator::add(std::int64_t time, double value)
{
    const std::int64_t start = windowStart(time);
    if (windows_.empty() || windows_.back().start < start) {
        windows_.emplace_back(start, sampleCapacity_);
    } else if (windows_.back().start > start) {
        throw std::logic_error("WindowAggregator: time moved backwards");
    }
    Window &w = windows_.back();
    w.stats.add(value);
    w.samples.add(value);
}

const WindowAggregator::Window *
WindowAggregator::windowAt(std::int64_t time) const
{
    const std::int64_t start = windowStart(time);
    const auto it = std::lower_bound(
        windows_.begin(), windows_.end(), start,
        [](const Window &w, std::int64_t s) { return w.start < s; });
    if (it == windows_.end() || it->start != start)
        return nullptr;
    return &*it;
}

std::vector<const WindowAggregator::Window *>
WindowAggregator::lastWindowsBefore(std::int64_t time, std::size_t n) const
{
    std::vector<const Window *> out;
    const std::int64_t cutoff = windowStart(time);
    for (auto it = windows_.rbegin(); it != windows_.rend() && out.size() < n;
         ++it) {
        if (it->start < cutoff)
            out.push_back(&*it);
    }
    std::reverse(out.begin(), out.end());
    return out;
}

SampleSet
WindowAggregator::collect(std::int64_t from, std::int64_t to) const
{
    SampleSet out(0, 11);
    for (const Window &w : windows_) {
        if (w.start + width_ <= from || w.start >= to)
            continue;
        for (double v : w.samples.samples())
            out.add(v);
    }
    return out;
}

} // namespace ursa::stats
