#include "stats/quantile.h"

#include "check/check.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ursa::stats
{

namespace
{

std::uint64_t
nextState(std::uint64_t &s)
{
    // SplitMix64: enough quality for reservoir replacement indices.
    s += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double
interpolatedPercentile(const std::vector<double> &sorted, double p)
{
    URSA_CHECK(!sorted.empty(), "stats.quantile",
               "percentile of an empty sample set");
    if (p <= 0.0)
        return sorted.front();
    if (p >= 100.0)
        return sorted.back();
    const double rank = p / 100.0 * (static_cast<double>(sorted.size()) - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

} // namespace

SampleSet::SampleSet(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rngState_(seed)
{
}

void
SampleSet::trackThreshold(double threshold)
{
    URSA_CHECK(observed_ == 0, "stats.quantile",
               "trackThreshold after samples were observed");
    trackAbove_ = true;
    aboveThreshold_ = threshold;
}

void
SampleSet::add(double x)
{
    ++observed_;
    if (trackAbove_ && x > aboveThreshold_)
        ++aboveCount_;
    if (capacity_ == 0 || samples_.size() < capacity_) {
        samples_.push_back(x);
    } else {
        // Vitter's Algorithm R: replace with probability capacity/observed.
        const std::uint64_t slot = nextState(rngState_) % observed_;
        if (slot < capacity_)
            samples_[slot] = x;
    }
    sortedValid_ = false;
}

void
SampleSet::ensureSorted() const
{
    if (sortedValid_)
        return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sortedValid_ = true;
}

double
SampleSet::percentile(double p) const
{
    if (samples_.empty())
        throw std::logic_error("percentile of empty SampleSet");
    ensureSorted();
    return interpolatedPercentile(sorted_, p);
}

std::vector<double>
SampleSet::percentiles(const std::vector<double> &ps) const
{
    std::vector<double> out;
    out.reserve(ps.size());
    for (double p : ps)
        out.push_back(percentile(p));
    return out;
}

double
SampleSet::mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double v : samples_)
        s += v;
    return s / static_cast<double>(samples_.size());
}

double
SampleSet::fractionAbove(double threshold) const
{
    if (observed_ == 0)
        return 0.0;
    if (trackAbove_ && threshold == aboveThreshold_)
        return static_cast<double>(aboveCount_) /
               static_cast<double>(observed_);
    if (samples_.empty())
        return 0.0;
    std::size_t above = 0;
    for (double v : samples_)
        if (v > threshold)
            ++above;
    return static_cast<double>(above) / static_cast<double>(samples_.size());
}

void
SampleSet::reset()
{
    observed_ = 0;
    aboveCount_ = 0;
    samples_.clear();
    sorted_.clear();
    sortedValid_ = false;
}

void
SampleSet::merge(const SampleSet &other)
{
    if (other.observed_ == 0)
        return;

    // Fold the exact counters first: threshold exceedances the other
    // set observed but did not retain in its reservoir must survive the
    // merge, or fractionAbove undercounts.
    const std::size_t selfObserved = observed_;
    const std::size_t otherObserved = other.observed_;
    observed_ = selfObserved + otherObserved;
    if (trackAbove_) {
        if (other.trackAbove_ && other.aboveThreshold_ == aboveThreshold_) {
            aboveCount_ += other.aboveCount_;
        } else if (!other.samples_.empty()) {
            // The other set tracked no (or a different) threshold: the
            // best available estimate scales its retained exceedances
            // to its observed count.
            std::size_t above = 0;
            for (double v : other.samples_)
                if (v > aboveThreshold_)
                    ++above;
            aboveCount_ += above * otherObserved / other.samples_.size();
        }
    }
    sortedValid_ = false;

    // Reservoir union. Each retained sample stands for observed/retained
    // observations of its source stream; feeding the other set through
    // add() would weight it by the local observed_ instead, starving
    // whichever set is merged second.
    if (capacity_ == 0 ||
        samples_.size() + other.samples_.size() <= capacity_) {
        samples_.insert(samples_.end(), other.samples_.begin(),
                        other.samples_.end());
        return;
    }
    // Weighted sampling without replacement (Efraimidis-Spirakis): keep
    // the `capacity_` candidates with the largest u^(1/w), where w is
    // the per-sample representation weight. Draws come from the local
    // deterministic stream, so merges stay reproducible.
    struct Candidate
    {
        double key;
        double value;
    };
    std::vector<Candidate> pool;
    pool.reserve(samples_.size() + other.samples_.size());
    auto push = [&](const std::vector<double> &vals, std::size_t observed) {
        if (vals.empty())
            return;
        const double w = static_cast<double>(observed) /
                         static_cast<double>(vals.size());
        for (double v : vals) {
            // u in (0, 1]; key = u^(1/w) compared via log for stability.
            const double u =
                (static_cast<double>(nextState(rngState_) >> 11) + 1.0) *
                0x1.0p-53;
            pool.push_back({std::log(u) / w, v});
        }
    };
    push(samples_, selfObserved);
    push(other.samples_, otherObserved);
    std::nth_element(pool.begin(), pool.begin() + capacity_, pool.end(),
                     [](const Candidate &a, const Candidate &b) {
                         return a.key > b.key;
                     });
    samples_.clear();
    for (std::size_t i = 0; i < capacity_; ++i)
        samples_.push_back(pool[i].value);
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples))
{
    std::sort(sorted_.begin(), sorted_.end());
}

double
EmpiricalCdf::at(double x) const
{
    if (sorted_.empty())
        return 0.0;
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
}

double
EmpiricalCdf::quantile(double q) const
{
    if (sorted_.empty())
        throw std::logic_error("quantile of empty EmpiricalCdf");
    return interpolatedPercentile(sorted_, q * 100.0);
}

std::vector<std::pair<double, double>>
EmpiricalCdf::curve(std::size_t points) const
{
    std::vector<std::pair<double, double>> out;
    if (sorted_.empty() || points < 2)
        return out;
    const double lo = sorted_.front();
    const double hi = sorted_.back();
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double x =
            lo + (hi - lo) * static_cast<double>(i) /
                     static_cast<double>(points - 1);
        out.emplace_back(x, at(x));
    }
    return out;
}

double
percentileOf(std::vector<double> values, double p)
{
    if (values.empty())
        throw std::logic_error("percentileOf empty vector");
    std::sort(values.begin(), values.end());
    return interpolatedPercentile(values, p);
}

} // namespace ursa::stats
