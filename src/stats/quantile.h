/**
 * @file
 * Latency-distribution containers: an exact (optionally reservoir-capped)
 * sample set with percentile queries, and an empirical CDF.
 *
 * Percentile queries use the "linear interpolation between closest
 * ranks" definition (type-7 in R / NumPy's default), which is also what
 * Prometheus-style histograms approximate.
 */

#ifndef URSA_STATS_QUANTILE_H
#define URSA_STATS_QUANTILE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ursa::stats
{

class Rng;

/**
 * A set of latency samples supporting percentile queries.
 *
 * Stores all samples exactly up to `capacity`, then switches to uniform
 * reservoir sampling so long experiments stay bounded in memory while
 * percentile estimates remain unbiased.
 */
class SampleSet
{
  public:
    /**
     * @param capacity Maximum retained samples; 0 means unbounded.
     * @param seed Seed for the reservoir-replacement stream.
     */
    explicit SampleSet(std::size_t capacity = 0, std::uint64_t seed = 1);

    /** Record one sample. */
    void add(double x);

    /** Number of samples *observed* (not merely retained). */
    std::size_t count() const { return observed_; }

    /** Whether no samples have been observed. */
    bool empty() const { return observed_ == 0; }

    /**
     * Percentile in [0, 100]. Requires at least one sample.
     * Linear interpolation between closest ranks.
     */
    double percentile(double p) const;

    /** Convenience: several percentiles at once (single sort). */
    std::vector<double> percentiles(const std::vector<double> &ps) const;

    /** Mean of retained samples. */
    double mean() const;

    /** Fraction of observed samples with value > threshold. */
    double fractionAbove(double threshold) const;

    /** Retained samples, unsorted. */
    const std::vector<double> &samples() const { return samples_; }

    /** Drop all samples. */
    void reset();

    /**
     * Merge another set into this one. Exact counters (observed,
     * threshold exceedances) fold first, so fractionAbove stays exact
     * after the merge even when the other set's reservoir dropped the
     * exceeding samples. When the union of retained samples overflows
     * the capacity, the merged reservoir is drawn by weighted sampling
     * without replacement with each retained sample weighted by its
     * source's observed/retained ratio — both streams end up
     * represented in proportion to what they observed, not to what
     * they happened to retain.
     */
    void merge(const SampleSet &other);

  private:
    void ensureSorted() const;

    std::size_t capacity_;
    std::size_t observed_ = 0;
    std::size_t aboveCount_ = 0;
    double aboveThreshold_ = 0.0;
    bool trackAbove_ = false;
    std::uint64_t rngState_;
    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sortedValid_ = false;

  public:
    /**
     * Arm exact above-threshold counting (used for SLA-violation rates;
     * unlike `fractionAbove` on a capped reservoir this never loses
     * tail samples). Must be called before the first add().
     */
    void trackThreshold(double threshold);
};

/**
 * Empirical CDF over a sample vector; used to print Fig.-14-style
 * distribution curves.
 */
class EmpiricalCdf
{
  public:
    /** Build from samples (copied and sorted). */
    explicit EmpiricalCdf(std::vector<double> samples);

    /** P(X <= x). */
    double at(double x) const;

    /** Inverse CDF (quantile), q in [0, 1]. */
    double quantile(double q) const;

    /** Number of points. */
    std::size_t size() const { return sorted_.size(); }

    /**
     * Evenly-spaced (x, cdf) pairs for plotting, `points` of them
     * spanning [min, max].
     */
    std::vector<std::pair<double, double>> curve(std::size_t points) const;

  private:
    std::vector<double> sorted_;
};

/** Percentile of a raw vector (copies + sorts; for tests and tools). */
double percentileOf(std::vector<double> values, double p);

} // namespace ursa::stats

#endif // URSA_STATS_QUANTILE_H
