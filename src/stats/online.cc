#include "stats/online.h"

#include <algorithm>
#include <cmath>

namespace ursa::stats
{

void
OnlineStats::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
OnlineStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
OnlineStats::reset()
{
    *this = OnlineStats();
}

} // namespace ursa::stats
