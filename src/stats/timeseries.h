/**
 * @file
 * Time-indexed metric containers: an append-only point series and a
 * fixed-width window aggregator. Together with SampleSet these form the
 * storage layer of the tracing substrate (the Prometheus stand-in).
 */

#ifndef URSA_STATS_TIMESERIES_H
#define URSA_STATS_TIMESERIES_H

#include "stats/online.h"
#include "stats/quantile.h"

#include <cstdint>
#include <deque>
#include <vector>

namespace ursa::stats
{

/** One (timestamp, value) observation. */
struct Point
{
    std::int64_t time;
    double value;
};

/**
 * Append-only series of (time, value) points with range queries.
 * Timestamps must be non-decreasing (simulation time always is).
 */
class TimeSeries
{
  public:
    /** Append a point; `time` must be >= the last appended time. */
    void append(std::int64_t time, double value);

    /** All points in [from, to). */
    std::vector<Point> range(std::int64_t from, std::int64_t to) const;

    /** Time-weighted average over [from, to) (step interpolation). */
    double timeAverage(std::int64_t from, std::int64_t to) const;

    /** Plain mean of point values in [from, to). */
    double mean(std::int64_t from, std::int64_t to) const;

    /** Last appended value, or `fallback` when empty. */
    double last(double fallback = 0.0) const;

    /** Number of points. */
    std::size_t size() const { return points_.size(); }

    const std::vector<Point> &points() const { return points_; }

  private:
    std::vector<Point> points_;
};

/**
 * Fixed-width tumbling-window aggregator. Each window keeps summary
 * stats and a latency reservoir; old windows are retained (they are
 * small) so whole-experiment queries remain possible.
 */
class WindowAggregator
{
  public:
    /** Per-window aggregate. */
    struct Window
    {
        std::int64_t start = 0;
        OnlineStats stats;
        SampleSet samples;

        Window(std::int64_t s, std::size_t cap)
            : start(s), samples(cap, static_cast<std::uint64_t>(s) + 7)
        {
        }
    };

    /**
     * @param width Window width in the caller's time unit (>0).
     * @param sampleCapacity Reservoir capacity per window (0: unbounded).
     */
    explicit WindowAggregator(std::int64_t width,
                              std::size_t sampleCapacity = 4096);

    /** Record an observation at `time`. */
    void add(std::int64_t time, double value);

    /** Window width. */
    std::int64_t width() const { return width_; }

    /** All completed-or-open windows in chronological order. */
    const std::deque<Window> &windows() const { return windows_; }

    /**
     * Pointer to the window covering `time`, or nullptr if no
     * observation has created it.
     */
    const Window *windowAt(std::int64_t time) const;

    /**
     * The last `n` windows strictly before `time` (most recent last);
     * fewer are returned if history is shorter.
     */
    std::vector<const Window *> lastWindowsBefore(std::int64_t time,
                                                  std::size_t n) const;

    /** Merge all samples in [from, to) into one SampleSet. */
    SampleSet collect(std::int64_t from, std::int64_t to) const;

  private:
    std::int64_t windowStart(std::int64_t time) const;

    std::int64_t width_;
    std::size_t sampleCapacity_;
    std::deque<Window> windows_;
};

} // namespace ursa::stats

#endif // URSA_STATS_TIMESERIES_H
