/**
 * @file
 * Streaming summary statistics: Welford mean/variance and extrema.
 */

#ifndef URSA_STATS_ONLINE_H
#define URSA_STATS_ONLINE_H

#include <cstddef>
#include <limits>

namespace ursa::stats
{

/**
 * Numerically-stable online mean and variance (Welford's algorithm),
 * plus min/max. Used for Welch's t-test inputs and CPU-usage summaries.
 */
class OnlineStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const OnlineStats &other);

    /** Number of observations. */
    std::size_t count() const { return n_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 when fewer than 2 samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Minimum observation (+inf when empty). */
    double min() const { return min_; }

    /** Maximum observation (-inf when empty). */
    double max() const { return max_; }

    /** Sum of all observations. */
    double sum() const { return mean_ * static_cast<double>(n_); }

    /** Reset to the empty state. */
    void reset();

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace ursa::stats

#endif // URSA_STATS_ONLINE_H
