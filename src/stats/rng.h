/**
 * @file
 * Deterministic pseudo-random number generation and the sampling
 * distributions used throughout the simulator and workload generators.
 *
 * The whole reproduction is seeded and deterministic: a single Rng
 * instance is owned by each simulation and every stochastic choice is
 * drawn from it, so a (topology, workload, seed) triple fully determines
 * an experiment's outcome.
 */

#ifndef URSA_STATS_RNG_H
#define URSA_STATS_RNG_H

#include <cstdint>
#include <vector>

namespace ursa::stats
{

/**
 * Precomputed lognormal parameters.
 *
 * Sampling a lognormal from (mean, cv) pays a `log`, a `sqrt` and an
 * extra `log` per draw just to re-derive (mu, sigma) from the same two
 * inputs every time. Service-time distributions are fixed for the
 * lifetime of a behavior, so the transform can be done once up front
 * and the hot path reduced to `exp(mu + sigma * normal())`.
 *
 * `sigma == 0` (from cv == 0, or mean == 0) marks the degenerate
 * constant distribution: sampling returns `mean` exactly, bypassing
 * the `exp(log(mean))` round-trip that would otherwise perturb it in
 * the last ulp.
 */
struct LognormalParams
{
    double mean = 0.0;
    double mu = 0.0;
    double sigma = 0.0;

    /**
     * Derive (mu, sigma) from the arithmetic mean and coefficient of
     * variation. Requires mean >= 0 and cv >= 0.
     */
    static LognormalParams fromMeanCv(double mean, double cv);
};

/**
 * xoshiro256++ pseudo-random generator.
 *
 * Small, fast, and with a period of 2^256 - 1; more than adequate for
 * discrete-event simulation. Seeding goes through SplitMix64 as the
 * algorithm's authors recommend, so low-entropy seeds (0, 1, 2, ...)
 * still yield well-mixed states.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Exponential with the given mean. */
    double exponential(double mean);

    /** Standard normal via Box-Muller (cached spare). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Lognormal parameterized by its *arithmetic* mean and coefficient
     * of variation (stddev/mean), the natural way to express service
     * times. cv = 0 degenerates to the constant `mean`.
     */
    double lognormal(double mean, double cv);

    /**
     * Lognormal from precomputed parameters: the per-sample cost is
     * one normal draw and one `exp`. Bit-identical to the (mean, cv)
     * overload for `LognormalParams::fromMeanCv(mean, cv)`.
     */
    double lognormal(const LognormalParams &params);

    /**
     * Sample an index from a discrete distribution given non-negative
     * weights. Weights need not be normalized; at least one must be
     * positive.
     */
    std::size_t weightedChoice(const std::vector<double> &weights);

    /** Fork a child generator with an independent stream. */
    Rng fork();

  private:
    std::uint64_t s_[4];
    double spareNormal_ = 0.0;
    bool hasSpare_ = false;
};

} // namespace ursa::stats

#endif // URSA_STATS_RNG_H
