#include "stats/welch.h"

#include "check/check.h"
#include "stats/online.h"

#include <cmath>
#include <limits>

namespace ursa::stats
{

namespace
{

/**
 * Continued-fraction evaluation of the incomplete beta function
 * (modified Lentz's method, as in Numerical Recipes betacf).
 */
double
betaContinuedFraction(double a, double b, double x)
{
    constexpr int maxIters = 300;
    constexpr double eps = 3.0e-12;
    constexpr double fpmin = 1.0e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < fpmin)
        d = fpmin;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= maxIters; ++m) {
        const int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < eps)
            break;
    }
    return h;
}

/**
 * Thread-safe ln|Gamma(x)|: glibc's lgamma() writes the process-global
 * `signgam`, which races under parallel exploration. All arguments
 * here are positive, so the sign output is irrelevant.
 */
double
lnGamma(double x)
{
#if defined(__GLIBC__) || defined(_REENTRANT)
    int sign = 0;
    return ::lgamma_r(x, &sign);
#else
    return std::lgamma(x);
#endif
}

} // namespace

double
incompleteBeta(double a, double b, double x)
{
    URSA_CHECK(a > 0.0 && b > 0.0, "stats.welch",
               "incomplete beta with non-positive shape");
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;
    const double lnBeta = lnGamma(a + b) - lnGamma(a) - lnGamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
    const double front = std::exp(lnBeta);
    // Use the continued fraction directly for x < (a+1)/(a+b+2),
    // else use the symmetry relation.
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * betaContinuedFraction(a, b, x) / a;
    return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double
studentTCdf(double t, double df)
{
    URSA_CHECK(df > 0.0, "stats.welch",
               "Student t CDF with non-positive degrees of freedom");
    if (std::isinf(t))
        return t > 0 ? 1.0 : 0.0;
    const double x = df / (df + t * t);
    const double p = 0.5 * incompleteBeta(0.5 * df, 0.5, x);
    return t >= 0.0 ? 1.0 - p : p;
}

WelchResult
welchTTest(const OnlineStats &a, const OnlineStats &b)
{
    WelchResult res;
    if (a.count() < 2 || b.count() < 2)
        return res;

    const double na = static_cast<double>(a.count());
    const double nb = static_cast<double>(b.count());
    const double va = a.variance() / na;
    const double vb = b.variance() / nb;
    const double se2 = va + vb;
    const double diff = a.mean() - b.mean();
    if (se2 <= 0.0) {
        // Degenerate: no sampling noise at all.
        if (diff == 0.0)
            return res; // identical constants: p = 1
        res.t = diff > 0 ? std::numeric_limits<double>::infinity()
                         : -std::numeric_limits<double>::infinity();
        res.df = na + nb - 2.0;
        res.pTwoSided = 0.0;
        res.pGreater = diff > 0 ? 0.0 : 1.0;
        return res;
    }

    res.t = diff / std::sqrt(se2);
    // Welch-Satterthwaite approximation of the degrees of freedom.
    res.df = se2 * se2 /
             (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
    const double cdf = studentTCdf(res.t, res.df);
    res.pGreater = 1.0 - cdf;
    res.pTwoSided = 2.0 * std::min(cdf, 1.0 - cdf);
    return res;
}

WelchResult
welchTTest(const std::vector<double> &a, const std::vector<double> &b)
{
    OnlineStats sa, sb;
    for (double v : a)
        sa.add(v);
    for (double v : b)
        sb.add(v);
    return welchTTest(sa, sb);
}

bool
meansEqual(const std::vector<double> &a, const std::vector<double> &b,
           double alpha)
{
    if (a.size() < 2 || b.size() < 2)
        return true; // not enough evidence to call them different
    const WelchResult res = welchTTest(a, b);
    return res.pTwoSided >= alpha;
}

bool
meanExceedsValue(const OnlineStats &a, double mu, double alpha)
{
    if (a.count() < 2)
        return a.mean() > mu;
    const double se =
        a.stddev() / std::sqrt(static_cast<double>(a.count()));
    if (se <= 0.0)
        return a.mean() > mu;
    const double t = (a.mean() - mu) / se;
    const double df = static_cast<double>(a.count() - 1);
    return 1.0 - studentTCdf(t, df) < alpha;
}

bool
meanBelowValue(const OnlineStats &a, double mu, double alpha)
{
    if (a.count() < 2)
        return a.mean() < mu;
    const double se =
        a.stddev() / std::sqrt(static_cast<double>(a.count()));
    if (se <= 0.0)
        return a.mean() < mu;
    const double t = (a.mean() - mu) / se;
    const double df = static_cast<double>(a.count() - 1);
    return studentTCdf(t, df) < alpha;
}

bool
meanExceeds(const OnlineStats &a, const OnlineStats &b, double alpha)
{
    if (a.count() < 2 || b.count() < 2) {
        // With almost no data fall back to a direct mean comparison so
        // the resource controller is never blind at startup.
        return a.mean() > b.mean();
    }
    const WelchResult res = welchTTest(a, b);
    return res.pGreater < alpha;
}

} // namespace ursa::stats
