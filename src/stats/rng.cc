#include "stats/rng.h"

#include "check/check.h"

#include <cmath>
#include <stdexcept>

namespace ursa::stats
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &w : s_)
        w = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    URSA_CHECK(n > 0, "stats.rng", "uniformInt over an empty range");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

double
Rng::exponential(double mean)
{
    URSA_CHECK(mean >= 0.0, "stats.rng",
               "exponential with a negative mean");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spareNormal_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spareNormal_ = mag * std::sin(2.0 * M_PI * u2);
    hasSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

LognormalParams
LognormalParams::fromMeanCv(double mean, double cv)
{
    URSA_CHECK(mean >= 0.0, "stats.rng",
               "lognormal with a negative mean");
    URSA_CHECK(cv >= 0.0, "stats.rng",
               "lognormal with a negative coefficient of variation");
    LognormalParams p;
    p.mean = mean;
    if (mean == 0.0 || cv == 0.0)
        return p; // sigma == 0: degenerate constant, sampled exactly.
    // mean = exp(mu + sigma^2/2), cv^2 = exp(sigma^2) - 1.
    const double sigma2 = std::log(1.0 + cv * cv);
    p.mu = std::log(mean) - 0.5 * sigma2;
    p.sigma = std::sqrt(sigma2);
    return p;
}

double
Rng::lognormal(double mean, double cv)
{
    return lognormal(LognormalParams::fromMeanCv(mean, cv));
}

double
Rng::lognormal(const LognormalParams &params)
{
    if (params.sigma == 0.0)
        return params.mean;
    return std::exp(params.mu + params.sigma * normal());
}

std::size_t
Rng::weightedChoice(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        URSA_CHECK(w >= 0.0, "stats.rng",
                   "weightedChoice with a negative weight");
        total += w;
    }
    if (total <= 0.0)
        throw std::invalid_argument("weightedChoice: all weights zero");
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace ursa::stats
