/**
 * @file
 * Determinism regression for the Fig. 11/12 deployment grid: a full
 * (scaled-down) performanceGrid run must be bit-identical with
 * URSA_THREADS=1 and URSA_THREADS=8, including the on-disk CSV cache.
 * Every cell owns its cluster and derives all seeds from (system, app,
 * load), so thread scheduling must not leak into results.
 */

#include "common.h"

#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace
{

using namespace ursa;
using namespace ursa::bench;

PerfHarnessOptions
tinyOptions()
{
    PerfHarnessOptions opts;
    opts.warmup = 30 * sim::kSec;
    opts.measure = 2 * sim::kMin;
    opts.firmTrainSteps = 8;
    opts.sinanSamples = 16;
    opts.seed = 7;
    core::ExplorationOptions explore;
    explore.window = 5 * sim::kSec;
    explore.windowsPerLevel = 2;
    explore.seed = opts.seed;
    explore.bpOptions.stepDuration = 10 * sim::kSec;
    explore.bpOptions.sampleWindow = 2 * sim::kSec;
    explore.bpOptions.maxSteps = 3;
    opts.exploration = explore;
    return opts;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Drop the trailing decision_us column from each CSV line: it is a
 * wall-clock measurement of the host solver (Table 6), not simulation
 * output, so it legitimately varies run to run.
 */
std::string
stripDecisionColumn(const std::string &csv)
{
    std::istringstream in(csv);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        const auto cut = line.rfind(',');
        out << (cut == std::string::npos ? line : line.substr(0, cut))
            << '\n';
    }
    return out.str();
}

/** Run the full grid in a fresh cache dir; return the CSV cache bytes. */
std::string
gridBytes(int threads, const std::string &cacheDir,
          std::vector<GridRow> &rows)
{
    namespace fs = std::filesystem;
    fs::remove_all(cacheDir);
    setenv("URSA_CACHE_DIR", cacheDir.c_str(), 1);
    exec::setThreadCount(threads);
    const PerfHarnessOptions opts = tinyOptions();
    rows = performanceGrid(opts);
    const std::string csv =
        cacheDir + "/perf_grid_" + std::to_string(opts.seed) + "_" +
        std::to_string(opts.measure / sim::kMin) + ".csv";
    return slurp(csv);
}

TEST(GridDeterminism, GridIdenticalAcrossThreadCounts)
{
    namespace fs = std::filesystem;
    const std::string base =
        fs::temp_directory_path() / "ursa_grid_determinism";
    const int saved = exec::threadCount();

    std::vector<GridRow> serialRows, parallelRows;
    const std::string serial = gridBytes(1, base + "_t1", serialRows);
    const std::string parallel = gridBytes(8, base + "_t8", parallelRows);

    exec::setThreadCount(saved);
    unsetenv("URSA_CACHE_DIR");

    ASSERT_FALSE(serial.empty());
    // Byte-identical caches, modulo the wall-clock decision_us column.
    EXPECT_EQ(stripDecisionColumn(serial), stripDecisionColumn(parallel));

    ASSERT_EQ(serialRows.size(), parallelRows.size());
    ASSERT_EQ(serialRows.size(), 100u); // 4 apps x 5 loads x 5 systems
    for (std::size_t i = 0; i < serialRows.size(); ++i) {
        EXPECT_EQ(serialRows[i].app, parallelRows[i].app);
        EXPECT_EQ(serialRows[i].load, parallelRows[i].load);
        EXPECT_EQ(serialRows[i].system, parallelRows[i].system);
        EXPECT_EQ(serialRows[i].result.violationRate,
                  parallelRows[i].result.violationRate);
        EXPECT_EQ(serialRows[i].result.cpuCores,
                  parallelRows[i].result.cpuCores);
        // decisionLatencyUs is deliberately not compared: it times the
        // host's solver wall clock, not the simulation.
    }

    fs::remove_all(base + "_t1");
    fs::remove_all(base + "_t8");
}

} // namespace
