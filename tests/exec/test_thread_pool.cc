/** @file Unit tests for the ursa::exec parallel execution layer. */

#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace
{

using ursa::exec::parallelFor;
using ursa::exec::parallelMap;
using ursa::exec::setThreadCount;
using ursa::exec::threadCount;

/** Restore the ambient thread count after each test. */
class ThreadPoolTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved_ = threadCount(); }
    void TearDown() override { setThreadCount(saved_); }

  private:
    int saved_ = 1;
};

TEST_F(ThreadPoolTest, ThreadCountOverride)
{
    setThreadCount(3);
    EXPECT_EQ(threadCount(), 3);
    setThreadCount(0); // clamps to 1
    EXPECT_EQ(threadCount(), 1);
}

TEST_F(ThreadPoolTest, EveryIndexRunsExactlyOnce)
{
    for (int threads : {1, 2, 8}) {
        setThreadCount(threads);
        const std::size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "i=" << i
                                         << " threads=" << threads;
    }
}

TEST_F(ThreadPoolTest, SingleThreadRunsInOrder)
{
    setThreadCount(1);
    std::vector<std::size_t> order;
    parallelFor(10, [&](std::size_t i) { order.push_back(i); });
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST_F(ThreadPoolTest, EmptyLoopIsANoop)
{
    setThreadCount(8);
    parallelFor(0, [&](std::size_t) { FAIL(); });
}

TEST_F(ThreadPoolTest, ParallelMapPreservesIndexOrder)
{
    setThreadCount(8);
    const auto out = parallelMap<int>(
        257, [](std::size_t i) { return static_cast<int>(i * i); });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST_F(ThreadPoolTest, ExceptionsPropagateAfterDrain)
{
    setThreadCount(4);
    std::atomic<int> completed{0};
    EXPECT_THROW(parallelFor(100,
                             [&](std::size_t i) {
                                 if (i == 13)
                                     throw std::runtime_error("boom");
                                 completed.fetch_add(1);
                             }),
                 std::runtime_error);
    // Every non-throwing index still ran: the loop drains, then throws.
    EXPECT_EQ(completed.load(), 99);
}

TEST_F(ThreadPoolTest, NestedLoopsDoNotDeadlock)
{
    setThreadCount(4);
    std::atomic<int> total{0};
    parallelFor(8, [&](std::size_t) {
        parallelFor(8, [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST_F(ThreadPoolTest, MoreIndicesThanThreadsBalances)
{
    setThreadCount(2);
    std::atomic<long> sum{0};
    parallelFor(10000,
                [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
    EXPECT_EQ(sum.load(), 10000L * 9999 / 2);
}

TEST_F(ThreadPoolTest, ResultsIndependentOfThreadCount)
{
    // The determinism contract: per-index work seeded by the index
    // yields identical results for any thread count.
    auto compute = [](std::size_t i) {
        unsigned long long x = 0x9e3779b97f4a7c15ULL * (i + 1);
        for (int r = 0; r < 100; ++r)
            x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        return x;
    };
    setThreadCount(1);
    const auto serial = parallelMap<unsigned long long>(500, compute);
    setThreadCount(8);
    const auto parallel = parallelMap<unsigned long long>(500, compute);
    EXPECT_EQ(serial, parallel);
}

TEST_F(ThreadPoolTest, EnsureWorkersDuringShutdownDoesNotRace)
{
    // Regression for a gap the thread-safety annotations surfaced: the
    // destructor used to iterate threads_ without the lock while a
    // pool task could still be inside ensureWorkers() growing it —
    // a data race on the vector, plus freshly spawned workers that
    // were never joined (std::terminate at handle destruction). The
    // fixed destructor moves the handles out under the lock and
    // ensureWorkers refuses to grow a stopping pool; under the TSan CI
    // leg the old code fails this test.
    for (int rep = 0; rep < 25; ++rep) {
        auto pool = std::make_unique<ursa::exec::ThreadPool>();
        ursa::exec::ThreadPool *p = pool.get();
        std::atomic<bool> started{false};
        p->post([p, &started] {
            started = true;
            for (int n = 2; n <= 8; ++n)
                p->ensureWorkers(n); // races with ~ThreadPool below
        });
        p->ensureWorkers(1);
        while (!started.load())
            std::this_thread::yield();
        pool.reset(); // join while the task may still be growing
    }
}

} // namespace
