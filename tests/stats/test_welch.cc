/** @file Unit tests for Welch's t-test and its special functions. */

#include "stats/welch.h"

#include "stats/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace
{

using ursa::stats::incompleteBeta;
using ursa::stats::meanExceeds;
using ursa::stats::meansEqual;
using ursa::stats::OnlineStats;
using ursa::stats::Rng;
using ursa::stats::studentTCdf;
using ursa::stats::welchTTest;

TEST(IncompleteBeta, Endpoints)
{
    EXPECT_DOUBLE_EQ(incompleteBeta(2.0, 3.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(incompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetricCase)
{
    // I_0.5(a, a) = 0.5 for any a.
    for (double a : {0.5, 1.0, 3.0, 10.0})
        EXPECT_NEAR(incompleteBeta(a, a, 0.5), 0.5, 1e-10);
}

TEST(IncompleteBeta, UniformSpecialCase)
{
    // I_x(1, 1) = x.
    for (double x : {0.1, 0.3, 0.7, 0.9})
        EXPECT_NEAR(incompleteBeta(1.0, 1.0, x), x, 1e-10);
}

TEST(IncompleteBeta, KnownValue)
{
    // I_x(2, 2) = 3x^2 - 2x^3.
    for (double x : {0.2, 0.5, 0.8}) {
        EXPECT_NEAR(incompleteBeta(2.0, 2.0, x),
                    3 * x * x - 2 * x * x * x, 1e-10);
    }
}

TEST(StudentT, SymmetryAndCenter)
{
    EXPECT_NEAR(studentTCdf(0.0, 5.0), 0.5, 1e-12);
    for (double t : {0.5, 1.0, 2.5}) {
        EXPECT_NEAR(studentTCdf(t, 7.0) + studentTCdf(-t, 7.0), 1.0,
                    1e-10);
    }
}

TEST(StudentT, KnownQuantiles)
{
    // t_{0.975, df=10} = 2.228; CDF(2.228, 10) ~ 0.975.
    EXPECT_NEAR(studentTCdf(2.228, 10.0), 0.975, 1e-3);
    // t_{0.95, df=5} = 2.015.
    EXPECT_NEAR(studentTCdf(2.015, 5.0), 0.95, 1e-3);
    // Large df approaches the normal: CDF(1.96, 1e6) ~ 0.975.
    EXPECT_NEAR(studentTCdf(1.96, 1e6), 0.975, 1e-3);
}

TEST(Welch, IdenticalSamplesPValueOne)
{
    const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
    const auto res = welchTTest(a, a);
    EXPECT_NEAR(res.t, 0.0, 1e-12);
    EXPECT_NEAR(res.pTwoSided, 1.0, 1e-12);
}

TEST(Welch, ClearlyDifferentMeans)
{
    Rng r(1);
    std::vector<double> a, b;
    for (int i = 0; i < 50; ++i) {
        a.push_back(r.normal(10.0, 1.0));
        b.push_back(r.normal(20.0, 1.0));
    }
    const auto res = welchTTest(a, b);
    EXPECT_LT(res.pTwoSided, 1e-6);
    EXPECT_LT(res.t, 0.0); // mean(a) < mean(b)
    EXPECT_FALSE(meansEqual(a, b));
}

TEST(Welch, SameDistributionUsuallyEqual)
{
    Rng r(2);
    int rejections = 0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
        std::vector<double> a, b;
        for (int i = 0; i < 30; ++i) {
            a.push_back(r.normal(5.0, 2.0));
            b.push_back(r.normal(5.0, 2.0));
        }
        if (!meansEqual(a, b, 0.05))
            ++rejections;
    }
    // Type-I error should be near alpha = 5%.
    EXPECT_LT(rejections, trials * 0.12);
}

TEST(Welch, WelchDfBetweenMinAndSum)
{
    Rng r(3);
    std::vector<double> a, b;
    for (int i = 0; i < 10; ++i)
        a.push_back(r.normal(0.0, 1.0));
    for (int i = 0; i < 40; ++i)
        b.push_back(r.normal(0.0, 5.0));
    const auto res = welchTTest(a, b);
    EXPECT_GE(res.df, 9.0);
    EXPECT_LE(res.df, 48.0);
}

TEST(Welch, TooFewSamplesTreatedEqual)
{
    EXPECT_TRUE(meansEqual({1.0}, {100.0}));
}

TEST(Welch, ZeroVarianceDistinctMeans)
{
    const std::vector<double> a = {2.0, 2.0, 2.0};
    const std::vector<double> b = {3.0, 3.0, 3.0};
    const auto res = welchTTest(a, b);
    EXPECT_DOUBLE_EQ(res.pTwoSided, 0.0);
    EXPECT_FALSE(meansEqual(a, b));
}

TEST(Welch, MeanExceedsOneSided)
{
    Rng r(4);
    OnlineStats high, low;
    for (int i = 0; i < 40; ++i) {
        high.add(r.normal(12.0, 1.0));
        low.add(r.normal(10.0, 1.0));
    }
    EXPECT_TRUE(meanExceeds(high, low, 0.05));
    EXPECT_FALSE(meanExceeds(low, high, 0.05));
}

TEST(Welch, MeanExceedsFallbackWithTinySamples)
{
    OnlineStats a, b;
    a.add(5.0);
    b.add(1.0);
    EXPECT_TRUE(meanExceeds(a, b));
    EXPECT_FALSE(meanExceeds(b, a));
}

TEST(Welch, NoisyEqualLoadsDoNotTriggerScaling)
{
    // The resource-controller use case: load fluctuating around the
    // threshold should not count as exceeding it.
    Rng r(5);
    int triggers = 0;
    const int trials = 100;
    for (int t = 0; t < trials; ++t) {
        OnlineStats actual, threshold;
        for (int i = 0; i < 20; ++i) {
            actual.add(r.normal(100.0, 10.0));
            threshold.add(r.normal(100.0, 10.0));
        }
        if (meanExceeds(actual, threshold, 0.05))
            ++triggers;
    }
    EXPECT_LT(triggers, 15);
}

} // namespace
