/** @file Unit tests for TimeSeries and WindowAggregator. */

#include "stats/timeseries.h"

#include <gtest/gtest.h>

namespace
{

using ursa::stats::TimeSeries;
using ursa::stats::WindowAggregator;

TEST(TimeSeries, AppendAndRange)
{
    TimeSeries ts;
    ts.append(0, 1.0);
    ts.append(10, 2.0);
    ts.append(20, 3.0);
    const auto r = ts.range(5, 25);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_DOUBLE_EQ(r[0].value, 2.0);
    EXPECT_DOUBLE_EQ(r[1].value, 3.0);
}

TEST(TimeSeries, RejectsDecreasingTime)
{
    TimeSeries ts;
    ts.append(10, 1.0);
    EXPECT_THROW(ts.append(5, 2.0), std::logic_error);
}

TEST(TimeSeries, EqualTimestampsAllowed)
{
    TimeSeries ts;
    ts.append(10, 1.0);
    ts.append(10, 2.0);
    EXPECT_EQ(ts.size(), 2u);
}

TEST(TimeSeries, TimeAverageStepFunction)
{
    TimeSeries ts;
    ts.append(0, 2.0);   // 2.0 over [0, 10)
    ts.append(10, 4.0);  // 4.0 over [10, 20)
    EXPECT_DOUBLE_EQ(ts.timeAverage(0, 20), 3.0);
    EXPECT_DOUBLE_EQ(ts.timeAverage(0, 10), 2.0);
    EXPECT_DOUBLE_EQ(ts.timeAverage(10, 20), 4.0);
    EXPECT_DOUBLE_EQ(ts.timeAverage(5, 15), 3.0);
}

TEST(TimeSeries, TimeAverageBeforeFirstPointIsZero)
{
    TimeSeries ts;
    ts.append(100, 5.0);
    EXPECT_DOUBLE_EQ(ts.timeAverage(0, 100), 0.0);
    EXPECT_DOUBLE_EQ(ts.timeAverage(0, 200), 2.5);
}

TEST(TimeSeries, MeanAndLast)
{
    TimeSeries ts;
    EXPECT_DOUBLE_EQ(ts.last(9.0), 9.0);
    ts.append(0, 1.0);
    ts.append(1, 3.0);
    EXPECT_DOUBLE_EQ(ts.mean(0, 10), 2.0);
    EXPECT_DOUBLE_EQ(ts.last(), 3.0);
}

TEST(WindowAggregator, BucketsByWidth)
{
    WindowAggregator agg(100);
    agg.add(5, 1.0);
    agg.add(50, 2.0);
    agg.add(150, 3.0);
    ASSERT_EQ(agg.windows().size(), 2u);
    EXPECT_EQ(agg.windows()[0].start, 0);
    EXPECT_EQ(agg.windows()[0].stats.count(), 2u);
    EXPECT_EQ(agg.windows()[1].start, 100);
}

TEST(WindowAggregator, SkipsEmptyWindows)
{
    WindowAggregator agg(10);
    agg.add(5, 1.0);
    agg.add(95, 2.0);
    ASSERT_EQ(agg.windows().size(), 2u);
    EXPECT_EQ(agg.windows()[1].start, 90);
}

TEST(WindowAggregator, WindowAtLookup)
{
    WindowAggregator agg(10);
    agg.add(5, 1.0);
    agg.add(25, 2.0);
    ASSERT_NE(agg.windowAt(7), nullptr);
    EXPECT_EQ(agg.windowAt(7)->start, 0);
    EXPECT_EQ(agg.windowAt(15), nullptr);
    ASSERT_NE(agg.windowAt(29), nullptr);
    EXPECT_EQ(agg.windowAt(29)->start, 20);
}

TEST(WindowAggregator, LastWindowsBefore)
{
    WindowAggregator agg(10);
    for (int t = 0; t < 50; t += 10)
        agg.add(t, double(t));
    const auto ws = agg.lastWindowsBefore(45, 3);
    ASSERT_EQ(ws.size(), 3u);
    EXPECT_EQ(ws[0]->start, 10);
    EXPECT_EQ(ws[1]->start, 20);
    EXPECT_EQ(ws[2]->start, 30);
}

TEST(WindowAggregator, LastWindowsBeforeShortHistory)
{
    WindowAggregator agg(10);
    agg.add(0, 1.0);
    const auto ws = agg.lastWindowsBefore(100, 5);
    ASSERT_EQ(ws.size(), 1u);
    EXPECT_EQ(ws[0]->start, 0);
}

TEST(WindowAggregator, CollectMergesSamples)
{
    WindowAggregator agg(10);
    agg.add(1, 1.0);
    agg.add(11, 2.0);
    agg.add(21, 3.0);
    const auto set = agg.collect(0, 20);
    EXPECT_EQ(set.count(), 2u);
    EXPECT_DOUBLE_EQ(set.percentile(100), 2.0);
}

TEST(WindowAggregator, TimeMovingBackwardsThrows)
{
    WindowAggregator agg(10);
    agg.add(25, 1.0);
    EXPECT_THROW(agg.add(5, 1.0), std::logic_error);
}

} // namespace
