/** @file Unit tests for OnlineStats (Welford accumulation and merging). */

#include "stats/online.h"

#include <gtest/gtest.h>

namespace
{

using ursa::stats::OnlineStats;

TEST(OnlineStats, EmptyDefaults)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue)
{
    OnlineStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownVariance)
{
    OnlineStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Population variance is 4; sample variance = 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(OnlineStats, MergeMatchesSequential)
{
    OnlineStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double v = i * 0.37 - 3.0;
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty)
{
    OnlineStats a, empty;
    a.add(1.0);
    a.add(2.0);
    const double mean = a.mean();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), mean);
    OnlineStats c;
    c.merge(a);
    EXPECT_DOUBLE_EQ(c.mean(), mean);
    EXPECT_EQ(c.count(), 2u);
}

TEST(OnlineStats, SumAndReset)
{
    OnlineStats s;
    s.add(1.5);
    s.add(2.5);
    EXPECT_DOUBLE_EQ(s.sum(), 4.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(OnlineStats, NumericalStabilityLargeOffset)
{
    OnlineStats s;
    const double offset = 1e9;
    for (double v : {offset + 1.0, offset + 2.0, offset + 3.0})
        s.add(v);
    EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
    EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

} // namespace
