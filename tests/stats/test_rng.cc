/** @file Unit tests for the deterministic RNG and its distributions. */

#include "stats/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace
{

using ursa::stats::LognormalParams;
using ursa::stats::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRange)
{
    Rng r(3);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[r.uniformInt(10)];
    for (int c : counts)
        EXPECT_NEAR(c, 5000, 500);
}

TEST(Rng, ExponentialMean)
{
    Rng r(5);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(3.0);
    EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ExponentialZeroMeanIsZero)
{
    Rng r(5);
    EXPECT_DOUBLE_EQ(r.exponential(0.0), 0.0);
}

TEST(Rng, NormalMoments)
{
    Rng r(13);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = r.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, LognormalMeanAndCv)
{
    Rng r(17);
    double sum = 0.0, sq = 0.0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) {
        const double v = r.lognormal(5.0, 0.5);
        EXPECT_GT(v, 0.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.05);
    EXPECT_NEAR(std::sqrt(var) / mean, 0.5, 0.02);
}

TEST(Rng, LognormalZeroCvIsConstant)
{
    // Degenerate input returns the mean exactly (deterministic constant
    // service time), without touching the sampling transform or
    // consuming any RNG state.
    Rng r(19);
    EXPECT_DOUBLE_EQ(r.lognormal(7.0, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(r.lognormal(7.0, 0.0), 7.0);

    Rng fresh(19), drained(19);
    (void)drained.lognormal(123.0, 0.0);
    EXPECT_DOUBLE_EQ(fresh.uniform(0.0, 1.0), drained.uniform(0.0, 1.0));

    const LognormalParams p = LognormalParams::fromMeanCv(7.0, 0.0);
    EXPECT_EQ(p.sigma, 0.0);
    EXPECT_DOUBLE_EQ(r.lognormal(p), 7.0);
}

TEST(Rng, LognormalCachedParamsMatchDirectPath)
{
    // Precomputing (mu, sigma) once must be a pure refactor: the same
    // RNG stream yields bit-identical samples via either overload.
    Rng direct(29), cached(29);
    const LognormalParams p = LognormalParams::fromMeanCv(5.0, 0.5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(direct.lognormal(5.0, 0.5), cached.lognormal(p));
}

TEST(Rng, WeightedChoiceProportions)
{
    Rng r(23);
    const std::vector<double> w = {1.0, 3.0, 6.0};
    std::vector<int> counts(3, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[r.weightedChoice(w)];
    EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / double(n), 0.3, 0.015);
    EXPECT_NEAR(counts[2] / double(n), 0.6, 0.015);
}

TEST(Rng, WeightedChoiceAllZeroThrows)
{
    Rng r(29);
    EXPECT_THROW(r.weightedChoice({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, WeightedChoiceSkipsZeroWeight)
{
    Rng r(31);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(r.weightedChoice({0.0, 1.0, 0.0}), 1u);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(99);
    Rng child = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == child.next())
            ++same;
    EXPECT_LT(same, 2);
}

} // namespace
