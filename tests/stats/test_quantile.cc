/** @file Unit + property tests for SampleSet and EmpiricalCdf. */

#include "stats/quantile.h"
#include "stats/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace
{

using ursa::stats::EmpiricalCdf;
using ursa::stats::percentileOf;
using ursa::stats::Rng;
using ursa::stats::SampleSet;

TEST(SampleSet, PercentileSmall)
{
    SampleSet s;
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 3.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
    EXPECT_DOUBLE_EQ(s.percentile(25), 2.0);
    EXPECT_DOUBLE_EQ(s.percentile(12.5), 1.5);
}

TEST(SampleSet, PercentileOfEmptyThrows)
{
    SampleSet s;
    EXPECT_THROW(s.percentile(50), std::logic_error);
}

TEST(SampleSet, PercentileClampsOutOfRange)
{
    SampleSet s;
    s.add(2.0);
    s.add(8.0);
    EXPECT_DOUBLE_EQ(s.percentile(-5), 2.0);
    EXPECT_DOUBLE_EQ(s.percentile(150), 8.0);
}

TEST(SampleSet, UnsortedInsertOrderIrrelevant)
{
    SampleSet a, b;
    const std::vector<double> v = {9, 1, 7, 3, 5, 2, 8, 4, 6, 0};
    for (double x : v)
        a.add(x);
    std::vector<double> w = v;
    std::sort(w.begin(), w.end());
    for (double x : w)
        b.add(x);
    for (double p : {10.0, 33.0, 66.0, 90.0, 99.0})
        EXPECT_DOUBLE_EQ(a.percentile(p), b.percentile(p));
}

TEST(SampleSet, ReservoirKeepsCapacity)
{
    SampleSet s(100, 42);
    for (int i = 0; i < 10000; ++i)
        s.add(i);
    EXPECT_EQ(s.count(), 10000u);
    EXPECT_EQ(s.samples().size(), 100u);
}

TEST(SampleSet, ReservoirMedianUnbiased)
{
    // Reservoir median of uniform[0,1) should be near 0.5.
    Rng r(1);
    double totalErr = 0.0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t) {
        SampleSet s(500, 100 + t);
        for (int i = 0; i < 20000; ++i)
            s.add(r.uniform());
        totalErr += s.percentile(50) - 0.5;
    }
    EXPECT_NEAR(totalErr / trials, 0.0, 0.02);
}

TEST(SampleSet, TrackThresholdExactUnderReservoir)
{
    SampleSet s(10, 7);
    s.trackThreshold(0.5);
    Rng r(2);
    int above = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        const double v = r.uniform();
        if (v > 0.5)
            ++above;
        s.add(v);
    }
    EXPECT_DOUBLE_EQ(s.fractionAbove(0.5), double(above) / n);
}

TEST(SampleSet, FractionAboveNoTracking)
{
    SampleSet s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.fractionAbove(2.5), 0.5);
    EXPECT_DOUBLE_EQ(s.fractionAbove(10.0), 0.0);
}

TEST(SampleSet, MergeCombines)
{
    SampleSet a, b;
    a.add(1.0);
    b.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.percentile(50), 2.0);
}

// Regression: merge used to re-add the other set's *retained* samples
// through add(), dropping its unretained threshold exceedances. With a
// capacity-4 reservoir on `b`, only ~4 of its 100 exceedances survived.
TEST(SampleSet, MergePreservesThresholdCounts)
{
    SampleSet a, b(4, 11);
    a.trackThreshold(10.0);
    b.trackThreshold(10.0);
    for (int i = 0; i < 100; ++i)
        b.add(20.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 100u);
    EXPECT_DOUBLE_EQ(a.fractionAbove(10.0), 1.0);
}

// Regression: merging through add() weighted the other stream by the
// *local* observed count, so a second stream of equal size was nearly
// squeezed out of the merged reservoir. With the weighted union the
// merged reservoir represents both streams ~equally.
TEST(SampleSet, MergeReservoirsWeightedByObserved)
{
    SampleSet a(64, 3), b(64, 5);
    Rng r(17);
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        a.add(r.uniform() * 0.01); // stream near 0
    for (int i = 0; i < n; ++i)
        b.add(1.0 - r.uniform() * 0.01); // stream near 1
    a.merge(b);
    EXPECT_EQ(a.count(), 2u * n);
    EXPECT_EQ(a.samples().size(), 64u);
    // Old code: mean ~0.006 (stream b nearly absent). Fixed: ~0.5.
    EXPECT_NEAR(a.mean(), 0.5, 0.15);
}

TEST(SampleSet, MergeExactModeConcatenates)
{
    SampleSet a, b;
    for (double v : {1.0, 2.0})
        a.add(v);
    for (double v : {3.0, 4.0})
        b.add(v);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.samples().size(), 4u);
    EXPECT_DOUBLE_EQ(a.percentile(100), 4.0);
}

TEST(SampleSet, MergeEmptyOtherIsNoOp)
{
    SampleSet a, b;
    a.add(1.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(a.samples().size(), 1u);
}

TEST(SampleSet, ResetClears)
{
    SampleSet s;
    s.add(1.0);
    s.reset();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
}

TEST(SampleSet, MeanOfRetained)
{
    SampleSet s;
    for (double v : {2.0, 4.0, 6.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
}

// Property: percentile is monotone in p.
TEST(SampleSetProperty, PercentileMonotone)
{
    Rng r(33);
    for (int trial = 0; trial < 20; ++trial) {
        SampleSet s;
        const int n = 1 + int(r.uniformInt(200));
        for (int i = 0; i < n; ++i)
            s.add(r.lognormal(10.0, 1.0));
        double prev = -1.0;
        for (double p = 0; p <= 100.0; p += 2.5) {
            const double v = s.percentile(p);
            EXPECT_GE(v, prev);
            prev = v;
        }
    }
}

// Property: percentileOf agrees with SampleSet on exact storage.
TEST(SampleSetProperty, AgreesWithVectorHelper)
{
    Rng r(44);
    for (int trial = 0; trial < 10; ++trial) {
        SampleSet s;
        std::vector<double> v;
        const int n = 5 + int(r.uniformInt(100));
        for (int i = 0; i < n; ++i) {
            const double x = r.normal(0, 5);
            s.add(x);
            v.push_back(x);
        }
        for (double p : {1.0, 25.0, 50.0, 75.0, 99.0})
            EXPECT_DOUBLE_EQ(s.percentile(p), percentileOf(v, p));
    }
}

TEST(EmpiricalCdf, BasicSteps)
{
    EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
    EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
    EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, QuantileInverse)
{
    EmpiricalCdf cdf({10.0, 20.0, 30.0});
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 20.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 30.0);
}

TEST(EmpiricalCdf, CurveSpansRangeAndIsMonotone)
{
    Rng r(55);
    std::vector<double> v;
    for (int i = 0; i < 500; ++i)
        v.push_back(r.exponential(2.0));
    EmpiricalCdf cdf(v);
    const auto curve = cdf.curve(50);
    ASSERT_EQ(curve.size(), 50u);
    double prev = -1.0;
    for (const auto &[x, y] : curve) {
        EXPECT_GE(y, prev);
        prev = y;
    }
    EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

} // namespace
